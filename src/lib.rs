//! # Marlin — Efficient Coordination for Autoscaling Cloud DBMS
//!
//! This is the umbrella crate of the Marlin reproduction (SIGMOD 2025,
//! arXiv:2508.01931). It re-exports the workspace crates so examples and
//! integration tests can use a single dependency:
//!
//! - [`common`] — shared identifiers, key ranges, errors, configuration.
//! - [`sim`] — deterministic discrete-event simulation kernel.
//! - [`telemetry`] — deterministic observability: virtual-time tracing
//!   (`MARLIN_TRACE`), coordination-op accounting, and the sim
//!   self-profiler behind the `BENCH_*.json` perf trajectory
//!   (`MARLIN_BENCH_JSON`).
//! - [`storage`] — disaggregated storage: shared logs with conditional
//!   append (`Append@LSN`), page store (`GetPage@LSN`), log replay.
//! - [`engine`] — per-node database engine: 2PL `NO_WAIT` locking, clock
//!   cache, granule store, group commit, WAL codec.
//! - [`core`] — the paper's contribution: MTable/GTable system tables,
//!   MarlinCommit, the five reconfiguration transactions, failure
//!   detection, routing, invariants, and an executable model checker.
//! - [`baselines`] — ZooKeeper-style and FoundationDB-style coordination
//!   services used as evaluation baselines.
//! - [`workload`] — YCSB and TPC-C workload generators, plus load traces
//!   for the closed-loop autoscaling scenarios.
//! - [`autoscaler`] — the closed-loop autoscaling controller: pluggable
//!   scaling policies (reactive hysteresis, target-utilization PI,
//!   cost-bounded) and a hot-granule rebalance planner, actuated through
//!   the reconfiguration drivers on both runners.
//! - [`fuzz`] — deterministic scenario fuzzer (`docs/TESTING.md`):
//!   seed → randomized fault/load/churn scenario, swarm execution
//!   (`MARLIN_FUZZ_SEEDS`), automatic shrinking, and replayable repro
//!   artifacts (`MARLIN_FUZZ_REPRO`).
//! - [`cluster`] — the full simulated cloud DBMS testbed plus the
//!   unified experiment harness (`cluster::harness`): declarative
//!   `Scenario`s, the `Runner` trait over both execution backends, and
//!   the JSON-serializable `RunReport` behind every figure in the
//!   paper.
//!
//! See `README.md` for a quickstart (including the preset → figure →
//! binary table) and `docs/ARCHITECTURE.md` for the crate map, the
//! control loop, and the CPU-model guidance.

pub use marlin_autoscaler as autoscaler;
pub use marlin_baselines as baselines;
pub use marlin_cluster as cluster;
pub use marlin_common as common;
pub use marlin_core as core;
pub use marlin_engine as engine;
pub use marlin_fuzz as fuzz;
pub use marlin_sim as sim;
pub use marlin_storage as storage;
pub use marlin_telemetry as telemetry;
pub use marlin_workload as workload;
