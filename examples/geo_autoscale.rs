//! Region-aware autoscaling: the §6.5 geo-distributed deployment as a
//! *live multi-region control loop* instead of a static latency overlay.
//!
//! Four regions (US West, East Asia, UK South, Australia East) run two
//! nodes each. Region 1's demand spikes to 2× while the other three
//! idle; the `RegionalPolicy` controller — one independent reactive
//! policy per region — must answer with `AddNodes` targeted at region 1
//! only, then drain region 1 back to its floor with region-local victims
//! once the spike passes. Region 0, where baselines pin their external
//! coordination service, is floored so a drain can never strand it.
//!
//! Both runners execute the same `Scenario`:
//!
//! 1. `LocalRunner` — the synchronous `LocalCluster`: every region-
//!    targeted decision lands as real `AddNodeTxn`/`MigrationTxn`/
//!    `DeleteNodeTxn` transactions with the I0–I4 invariants asserted
//!    after every control step;
//! 2. `SimRunner` — the discrete-event `ClusterSim`: the same decisions
//!    play out against the paper's cross-region latency matrix, with
//!    per-region throughput and cost splits in the report.
//!
//! Run with: `cargo run --release --example geo_autoscale`
//! (`MARLIN_SCALE=<n>` shrinks the simulated granule count by `n`;
//! `MARLIN_REPORT_JSON=<path>` writes the reports — including the
//! per-region splits — as a JSON artifact.)

use marlin::cluster::harness::{
    maybe_write_json, run, LocalRunner, RunReport, Scenario, SimRunner,
};
use marlin::cluster::params::CoordKind;
use marlin::common::RegionId;
use marlin::sim::SECOND;
use marlin_bench::scale;

const REGION_NAMES: [&str; 4] = ["US West", "East Asia", "UK South", "Australia East"];

fn main() {
    let local_report = local_cluster_loop();
    let sim_report = cluster_sim_loop();
    maybe_write_json(&[local_report, sim_report]);
}

/// Part 1 — the synchronous runtime: region-targeted decisions become
/// real reconfiguration transactions, checked against the ownership
/// invariants at every step.
fn local_cluster_loop() -> RunReport {
    println!("== LocalCluster geo closed loop (synchronous, invariant-checked) ==\n");
    let scenario = Scenario::geo_autoscale(CoordKind::Marlin, 64);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    println!(
        "{:>6} {:>7} {:>24} {:>12}",
        "tick", "nodes", "per-region nodes", "action"
    );
    for rec in &report.log {
        let per_region: Vec<String> = rec
            .observation
            .regions
            .iter()
            .map(|r| r.live_nodes.to_string())
            .collect();
        println!(
            "{:>5}s {:>7} {:>24} {:>12}",
            rec.at / SECOND,
            rec.observation.live_nodes,
            format!("[{}]", per_region.join(" ")),
            rec.action
                .as_ref()
                .map_or("-".to_string(), marlin::cluster::harness::action_signature),
        );
    }
    assert_eq!(
        report.metrics.live_nodes, 8,
        "every region must drain back to its 2-node floor"
    );
    for r in 0..4u16 {
        assert_eq!(report.metrics.region(r).map(|b| b.live_nodes), Some(2));
    }
    runner.harness().cluster.assert_invariants();
    println!("\nall region-targeted reconfigurations preserved exclusive ownership (I0)\n");
    report
}

/// Part 2 — the discrete-event simulator: the same policy under the
/// cross-region latency matrix, with the per-region split reported.
fn cluster_sim_loop() -> RunReport {
    println!("== ClusterSim geo closed loop (4 regions, region 1 spikes 2x) ==\n");
    let scenario = Scenario::geo_autoscale(CoordKind::Marlin, 40_000 / scale().max(10));
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    println!("controller decision log (from the RunReport):");
    for rec in report.actions() {
        println!(
            "  t={:>3}s  {}  (actuated in {}µs)",
            rec.at / SECOND,
            rec.action
                .as_ref()
                .map(marlin::cluster::harness::action_signature)
                .unwrap_or_default(),
            rec.actuation_micros,
        );
    }

    // The acceptance bar: only the hot region scales, drains stay
    // region-local, and the report carries the per-region split.
    let mut hot_adds = 0;
    for rec in report.actions() {
        if let Some(marlin::autoscaler::ScaleAction::AddNodes { region, .. }) = &rec.action {
            assert_eq!(
                *region,
                Some(RegionId(1)),
                "scale-outs must target the hot region only"
            );
            hot_adds += 1;
        }
    }
    assert!(hot_adds >= 1, "the spike must provoke a scale-out");
    assert_eq!(report.metrics.live_nodes, 8, "calm drains back to 2/region");

    println!("\nper-region split (end of run):");
    println!(
        "{:>16} {:>6} {:>10} {:>10} {:>10}",
        "region", "nodes", "commits", "tps", "db cost"
    );
    let horizon_s = report.horizon as f64 / SECOND as f64;
    for b in &report.metrics.region_breakdown {
        println!(
            "{:>16} {:>6} {:>10} {:>10.0} {:>9.4}$",
            REGION_NAMES[b.region as usize],
            b.live_nodes,
            b.commits,
            b.commits as f64 / horizon_s,
            b.db_cost,
        );
        assert_eq!(b.live_nodes, 2, "every region ends at its floor");
    }
    let hot = report.metrics.region(1).expect("hot region breakdown");
    let idle = report.metrics.region(2).expect("idle region breakdown");
    assert!(
        hot.commits > idle.commits && hot.db_cost > idle.db_cost,
        "the spike region must both commit and cost more"
    );

    // Region-local drains: region-1-homed granules end on region-1 nodes.
    let owners = runner.sim().owners();
    let r1_nodes: Vec<u32> = runner
        .sim()
        .live_nodes_by_region()
        .into_iter()
        .filter(|&(_, r)| r == RegionId(1))
        .map(|(n, _)| n)
        .collect();
    assert!(
        runner.sim().region_granules()[1]
            .iter()
            .all(|&g| r1_nodes.contains(&owners[g as usize])),
        "drained granules must stay in their home region"
    );

    println!("\npeak nodes:       {}", report.peak_nodes());
    println!("final nodes:      {}", report.metrics.live_nodes);
    println!("total migrations: {}", report.metrics.migrations);
    println!("committed txns:   {}", report.metrics.commits);
    println!(
        "total cost:       ${:.4} (Meta Cost: ${:.4})",
        report.metrics.total_cost, report.metrics.meta_cost
    );
    report
}
