//! Predictive vs reactive autoscaling under a provisioning lead time.
//!
//! Reactive scaling is optimal when capacity is free and instant. The
//! moment an `AddNodes` takes real time to land
//! (`SimParams::provision_lead_time`), react-after-breach eats the whole
//! lead as queue build-up — while a forecaster that sizes for demand one
//! lead ahead has the nodes serving *as the demand arrives*.
//!
//! This example runs the `predictive_diurnal` preset (the
//! `autoscale_diurnal` curve with a 10 s provisioning lead under the
//! per-request CPU model) twice on the same seed: once under the
//! trend-forecasting `PredictivePolicy` and once under the SLO-armed
//! reactive baseline. It prints the SLO-violations-vs-node-cost table —
//! the frontier the cost-intelligent scaling literature frames — plus
//! each run's forecast accuracy.
//!
//! Run with: `cargo run --release --example predictive_vs_reactive`
//! (`MARLIN_SCALE=<n>` shrinks the simulated granule count by `n`;
//! `MARLIN_REPORT_JSON=<path>` writes both `RunReport`s, decision logs
//! and forecast samples included.)

use marlin::autoscaler::ScaleAction;
use marlin::cluster::harness::{maybe_write_json, run, RunReport, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::report::Table;
use marlin::sim::SECOND;
use marlin_bench::scale;

fn main() {
    println!("== Predictive vs reactive — diurnal ramp, 10 s provisioning lead ==\n");
    let granules = 20_000 / scale().max(10);
    let ceiling = Scenario::PRESET_P99_CEILING;

    let mk = |predictive: bool| -> Scenario {
        let mut s = Scenario::predictive_diurnal(CoordKind::Marlin, granules);
        if !predictive {
            // The reactive twin: identical scenario (same trace, lead,
            // CPU model, seed), only the policy swapped for the
            // SLO-armed reactive baseline.
            let baseline = s.slo_reactive_policy(4, 12, ceiling);
            s = s.policy(baseline);
            s.name = "predictive-diurnal-reactive".into();
        }
        s
    };

    let mut reports: Vec<RunReport> = Vec::new();
    for predictive in [false, true] {
        let scenario = mk(predictive);
        let mut runner = SimRunner::new(&scenario);
        reports.push(run(scenario, &mut runner));
    }

    let first_add =
        |r: &RunReport| r.first_action_at(0, |a| matches!(a, ScaleAction::AddNodes { .. }));
    let max_p99 = |r: &RunReport| {
        r.log
            .iter()
            .map(|x| x.observation.p99_latency)
            .max()
            .unwrap_or(0)
    };

    let mut table = Table::new(&[
        "policy",
        "first scale-out",
        "SLO viol. ticks",
        "max p99",
        "node-seconds",
        "total $",
        "forecast MAPE",
    ]);
    for r in &reports {
        table.row(&[
            r.policy.clone().unwrap_or_default(),
            first_add(r).map_or("never".into(), |t| format!("{:.0}s", t as f64 / 1e9)),
            format!("{}", r.slo_violation_ticks(ceiling)),
            format!("{:.1}ms", max_p99(r) as f64 / 1e6),
            format!("{:.0}", r.node_seconds()),
            format!("{:.4}", r.metrics.total_cost),
            r.forecast.map_or("-".into(), |f| format!("{:.3}", f.mape)),
        ]);
    }
    print!("{}", table.render());

    let (reactive, predictive) = (&reports[0], &reports[1]);

    // The acceptance bar, asserted so CI catches regressions:
    // 1. prediction orders capacity at least one control tick earlier;
    let (r_add, p_add) = (
        first_add(reactive).expect("reactive scales out"),
        first_add(predictive).expect("predictive scales out"),
    );
    assert!(
        p_add + 2 * SECOND <= r_add,
        "predictive must order at least one tick earlier: {p_add} vs {r_add}"
    );
    // 2. the reactive run breaches the SLO ceiling, the predictive run
    //    rides the same two demand cycles without a single violation;
    assert!(
        reactive.slo_violation_ticks(ceiling) > 0,
        "react-after-breach must pay the lead in breaches"
    );
    assert_eq!(
        predictive.slo_violation_ticks(ceiling),
        0,
        "provision-before-demand must hold the SLO"
    );
    // 3. the forecast was genuinely used and scored.
    let accuracy = predictive.forecast.expect("predictive runs are scored");
    assert!(accuracy.samples > 0 && accuracy.mape.is_finite());

    println!(
        "\nprediction buys the SLO with capacity: {:.0} vs {:.0} node-seconds \
         ({:+.1}%), {} vs {} violation ticks",
        predictive.node_seconds(),
        reactive.node_seconds(),
        (predictive.node_seconds() / reactive.node_seconds() - 1.0) * 100.0,
        predictive.slo_violation_ticks(ceiling),
        reactive.slo_violation_ticks(ceiling),
    );
    println!(
        "forecast accuracy over the run: MAPE {:.3}, bias {:+.3}, {} fallback tick(s)",
        accuracy.mape, accuracy.bias, accuracy.fallback_ticks
    );
    maybe_write_json(&reports);
}
