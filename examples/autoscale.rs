//! Closed-loop autoscaling: a controller — not a script — scales the
//! cluster through a §6.6-style burst.
//!
//! The example drives the same reactive policy (80%/35% watermarks with
//! hysteresis + cooldown) through *both* runners:
//!
//! 1. the synchronous `LocalCluster`, where every decision executes real
//!    `AddNodeTxn`/`MigrationTxn`/`DeleteNodeTxn` reconfiguration
//!    transactions and the I0–I4 invariants are asserted after every
//!    control step;
//! 2. the discrete-event `ClusterSim`, where the same decisions play out
//!    against queueing, cold caches, and migration contention under a
//!    400→800→400-client spike trace, scaling the cluster 8→16→8.
//!
//! Run with: `cargo run --release --example autoscale`

use marlin::autoscaler::{Controller, LocalHarness, ReactiveConfig, ReactivePolicy, ScaleAction};
use marlin::cluster::params::CoordKind;
use marlin::cluster::scenarios::autoscale::{peak_nodes, run_autoscale, AutoscaleSpec};
use marlin::sim::SECOND;

fn main() {
    local_cluster_loop();
    cluster_sim_loop();
}

/// Part 1 — the synchronous runtime: decisions become real
/// reconfiguration transactions, checked against the ownership invariants
/// at every step.
fn local_cluster_loop() {
    println!("== LocalCluster closed loop (synchronous, invariant-checked) ==\n");
    let mut harness = LocalHarness::bootstrap(8, 256);
    let mut controller = Controller::new(Box::new(ReactivePolicy::new(
        ReactiveConfig::paper_default(8, 16),
    )));
    // Exogenous demand in node-capacity units: calm ≈30%, spike ≈125%
    // of an 8-node cluster, then calm again.
    let offered = [2.4, 2.4, 10.0, 10.0, 10.0, 2.0, 2.0, 2.0];
    println!(
        "{:>6} {:>9} {:>7} {:>22}",
        "tick", "offered", "nodes", "action"
    );
    for (tick, &load) in offered.iter().enumerate() {
        let obs = harness.observe(tick as u64 * 10 * SECOND, load);
        let action = controller.tick(&obs, &mut harness);
        harness.cluster.assert_invariants();
        let label = match &action {
            Some(ScaleAction::AddNodes { count }) => format!("AddNodes +{count}"),
            Some(ScaleAction::RemoveNodes { victims }) => {
                format!("RemoveNodes -{}", victims.len())
            }
            Some(ScaleAction::Rebalance { moves }) => format!("Rebalance {} moves", moves.len()),
            None => "-".to_string(),
        };
        println!(
            "{:>5}s {:>9.2} {:>7} {:>22}",
            tick * 10,
            load,
            harness.members().len(),
            label
        );
    }
    assert_eq!(
        harness.members().len(),
        8,
        "the calm tail must drain back to 8 nodes"
    );
    println!("\nall reconfiguration transactions preserved exclusive ownership (I0)\n");
}

/// Part 2 — the discrete-event simulator: the same policy under the
/// paper's burst, with throughput, cost, and node count over time.
fn cluster_sim_loop() {
    println!("== ClusterSim closed loop (discrete-event, 400→800→400 clients) ==\n");
    let spec = AutoscaleSpec {
        // 10× reduced granule count keeps the example snappy; use
        // granule_scale = 1 for the paper-scale run.
        ..AutoscaleSpec::paper_spike(CoordKind::Marlin, 10)
    };
    let mut controller = spec.reactive_controller();
    let sim = run_autoscale(&spec, &mut controller);

    println!(
        "{:>6} {:>8} {:>8} {:>7} {:>10}",
        "time", "tps", "migs/s", "nodes", "cum. cost"
    );
    for t in (0..=120).step_by(10) {
        let at = t * SECOND;
        println!(
            "{:>5}s {:>8.0} {:>8.0} {:>7.0} {:>9.4}$",
            t,
            sim.metrics.user_commits.rate_at(at),
            sim.metrics.migrations.rate_at(at),
            sim.metrics.node_count.at(at).unwrap_or(0.0),
            sim.cost_series.at(at).unwrap_or(0.0),
        );
    }

    println!("\ncontroller decisions:");
    for (at, action) in controller.history() {
        let label = match action {
            ScaleAction::AddNodes { count } => format!("scale-out +{count}"),
            ScaleAction::RemoveNodes { victims } => format!("scale-in  -{}", victims.len()),
            ScaleAction::Rebalance { moves } => format!("rebalance {} granules", moves.len()),
        };
        println!("  t={:>3}s  {label}", at / SECOND);
    }

    // The acceptance bar: the spike drives 8→16 and the calm drains back,
    // with every granule on a live node (no dual ownership, no orphans).
    assert_eq!(peak_nodes(&sim), 16, "spike must scale out to 16 nodes");
    assert_eq!(sim.live_nodes(), 8, "calm must drain back to 8 nodes");
    let live = sim.live_node_ids();
    assert!(
        sim.owners().iter().all(|o| live.contains(o)),
        "every granule must end on a live node"
    );

    println!("\npeak nodes:       {}", peak_nodes(&sim));
    println!("final nodes:      {}", sim.live_nodes());
    println!("total migrations: {}", sim.metrics.migrations.total());
    println!("committed txns:   {}", sim.metrics.total_commits());
    println!(
        "abort ratio:      {:.2}%",
        sim.metrics.abort_ratio() * 100.0
    );
    println!(
        "total cost:       ${:.4} (Meta Cost: ${:.4} — Marlin needs no coordination cluster)",
        sim.cost.total_cost(),
        sim.cost.meta_cost()
    );
}
