//! Closed-loop autoscaling: a controller — not a script — scales the
//! cluster through a §6.6-style burst, driven through the unified
//! experiment harness.
//!
//! The *same* `Scenario` shape (reactive policy, 80%/35% watermarks with
//! hysteresis + cooldown) runs on both runners via the one generic
//! `run(scenario, runner)` driver:
//!
//! 1. `LocalRunner` — the synchronous `LocalCluster`, where every
//!    decision executes real `AddNodeTxn`/`MigrationTxn`/`DeleteNodeTxn`
//!    reconfiguration transactions and the I0–I4 invariants are asserted
//!    after every control step;
//! 2. `SimRunner` — the discrete-event `ClusterSim`, where the same
//!    decisions play out against queueing, cold caches, and migration
//!    contention under a 400→800→400-client spike trace, scaling the
//!    cluster 8→16→8.
//!
//! Run with: `cargo run --release --example autoscale`
//! (`MARLIN_SCALE=<n>` shrinks the simulated granule count by `n`.)

use marlin::cluster::harness::{run, LocalRunner, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;
use marlin_bench::scale;

fn main() {
    local_cluster_loop();
    cluster_sim_loop();
}

/// Part 1 — the synchronous runtime: decisions become real
/// reconfiguration transactions, checked against the ownership invariants
/// at every step.
fn local_cluster_loop() {
    println!("== LocalCluster closed loop (synchronous, invariant-checked) ==\n");
    // The same spike shape at walkthrough scale: 256 real granules, the
    // cluster free to move between 8 and 16 members. Offered load crosses
    // the watermarks through the client trace (≈0.012 node-capacity per
    // client), exactly as the simulator's clients would drive it.
    let s = Scenario::new("autoscale-local")
        .backend(CoordKind::Marlin)
        .workload(Workload::ycsb(256))
        .trace(LoadTrace::spike(200, 850, 16 * SECOND, 56 * SECOND))
        .initial_nodes(8)
        .control_interval(10 * SECOND)
        .duration(80 * SECOND);
    let policy = s.reactive_policy(8, 16);
    let scenario = s.policy(policy);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    println!(
        "{:>6} {:>8} {:>7} {:>12}",
        "tick", "util", "nodes", "action"
    );
    for rec in &report.log {
        println!(
            "{:>5}s {:>7.0}% {:>7} {:>12}",
            rec.at / SECOND,
            rec.observation.mean_utilization * 100.0,
            rec.observation.live_nodes,
            rec.action
                .as_ref()
                .map_or("-".to_string(), marlin::cluster::harness::action_signature),
        );
    }
    assert_eq!(
        report.metrics.live_nodes, 8,
        "the calm tail must drain back to 8 nodes"
    );
    runner.harness().cluster.assert_invariants();
    println!("\nall reconfiguration transactions preserved exclusive ownership (I0)\n");
}

/// Part 2 — the discrete-event simulator: the same policy under the
/// paper's burst, with throughput, cost, and node count over time.
fn cluster_sim_loop() {
    println!("== ClusterSim closed loop (discrete-event, 400→800→400 clients) ==\n");
    // 10× reduced granule count keeps the example snappy; MARLIN_SCALE=1
    // with patience gives the paper-scale run.
    let scenario = Scenario::autoscale_spike(CoordKind::Marlin, scale().max(10));
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    println!(
        "{:>6} {:>8} {:>8} {:>7} {:>10}",
        "time", "tps", "migs/s", "nodes", "cum. cost"
    );
    for t in (0..=120).step_by(10) {
        let at = t * SECOND;
        println!(
            "{:>5}s {:>8.0} {:>8.0} {:>7.0} {:>9.4}$",
            t,
            runner.sim().metrics.user_commits.rate_at(at),
            runner.sim().metrics.migrations.rate_at(at),
            runner.sim().metrics.node_count.at(at).unwrap_or(0.0),
            runner.sim().cost_series.at(at).unwrap_or(0.0),
        );
    }

    println!("\ncontroller decision log (from the RunReport):");
    for rec in report.actions() {
        println!(
            "  t={:>3}s  {}  (actuated in {}µs)",
            rec.at / SECOND,
            rec.action
                .as_ref()
                .map(marlin::cluster::harness::action_signature)
                .unwrap_or_default(),
            rec.actuation_micros,
        );
    }

    // The acceptance bar: the spike drives 8→16 and the calm drains back,
    // with every granule on a live node (no dual ownership, no orphans).
    assert_eq!(report.peak_nodes(), 16, "spike must scale out to 16 nodes");
    assert_eq!(
        report.metrics.live_nodes, 8,
        "calm must drain back to 8 nodes"
    );
    let live = runner.sim().live_node_ids();
    assert!(
        runner.sim().owners().iter().all(|o| live.contains(o)),
        "every granule must end on a live node"
    );

    println!("\npeak nodes:       {}", report.peak_nodes());
    println!("final nodes:      {}", report.metrics.live_nodes);
    println!("total migrations: {}", report.metrics.migrations);
    println!("committed txns:   {}", report.metrics.commits);
    println!(
        "abort ratio:      {:.2}%",
        report.metrics.abort_ratio * 100.0
    );
    println!(
        "total cost:       ${:.4} (Meta Cost: ${:.4} — Marlin needs no coordination cluster)",
        report.metrics.total_cost, report.metrics.meta_cost
    );
}
