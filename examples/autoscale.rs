//! Autoscaling under a bursty workload on the simulated cloud testbed
//! (the paper's §6.6 scenario at reduced scale): watch the cluster scale
//! out when load doubles and release the extra nodes as soon as they are
//! drained after the load drops.
//!
//! Run with: `cargo run --release --example autoscale`

use marlin::cluster::params::{CoordKind, SimParams};
use marlin::cluster::scenarios::dynamic::{release_lag, run_dynamic, DynamicSpec};
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;

fn main() {
    let spec = DynamicSpec {
        kind: CoordKind::Marlin,
        workload: Workload::Ycsb { granules: 20_000 },
        base_nodes: 4,
        burst_nodes: 4,
        base_clients: 100,
        burst_clients: 200,
        burst_at: 10 * SECOND,
        calm_at: 40 * SECOND,
        horizon: 70 * SECOND,
        threads_per_node: 8,
        params: SimParams::default(),
    };
    println!("dynamic workload: {} clients -> {} at t=10s -> {} at t=40s",
        spec.base_clients, spec.burst_clients, spec.base_clients);
    println!("cluster: {} nodes, bursting to {}\n", spec.base_nodes, spec.base_nodes + spec.burst_nodes);

    let sim = run_dynamic(&spec);

    println!("{:>6} {:>8} {:>8} {:>7} {:>10}", "time", "tps", "migs/s", "nodes", "cum. cost");
    for t in (0..70).step_by(5) {
        let at = t * SECOND;
        println!(
            "{:>5}s {:>8.0} {:>8.0} {:>7.0} {:>9.4}$",
            t,
            sim.metrics.user_commits.rate_at(at),
            sim.metrics.migrations.rate_at(at),
            sim.metrics.node_count.at(at).unwrap_or(0.0),
            sim.cost_series.at(at).unwrap_or(0.0),
        );
    }

    let lag = release_lag(&sim, spec.base_nodes, spec.calm_at)
        .map_or("never".to_string(), |l| format!("{:.1}s", l as f64 / 1e9));
    println!("\nscale-in release lag after the load drop: {lag}");
    println!("total migrations: {}", sim.metrics.migrations.total());
    println!("committed txns:   {}", sim.metrics.total_commits());
    println!("abort ratio:      {:.2}%", sim.metrics.abort_ratio() * 100.0);
    println!("total cost:       ${:.4} (Meta Cost: ${:.4} — Marlin needs no coordination cluster)",
        sim.cost.total_cost(), sim.cost.meta_cost());
}
