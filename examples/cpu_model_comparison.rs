//! The two CPU congestion models, side by side on the autoscale spike.
//!
//! `ClusterSim` prices each node's CPU with one of two stations
//! (`SimParams::cpu_model`):
//!
//! - **analytic** — the EMA congestion model: fast, smooth, and
//!   bit-identical to every historical decision log, but per-request
//!   delay is clamped below saturation, so tail latency *flattens*
//!   under a real overload;
//! - **per-request** — a reservation-calendar queueing station: every
//!   request books a concrete service slot and its latency is the exact
//!   sojourn time, so the windowed p99 tracks queue build-up
//!   immediately and without a ceiling.
//!
//! This example runs the §6.6 burst (400→800→400 clients, reactive
//! policy with the 150 ms p99 escape hatch armed) once per model with
//! the same seed and prints where the two diverge: the p99 series
//! around the spike, the peak tail latency, and when the controller
//! decided to scale.
//!
//! Run with: `cargo run --release --example cpu_model_comparison`
//! (`MARLIN_SCALE=<n>` shrinks the simulated granule count by `n`.)

use marlin::autoscaler::ScaleAction;
use marlin::cluster::harness::{run, RunReport, Scenario, SimRunner};
use marlin::cluster::params::{CoordKind, CpuModel};
use marlin::sim::SECOND;
use marlin_bench::scale;

fn main() {
    println!("== CPU model comparison — autoscale spike, analytic vs per-request ==\n");
    let spike_at = 20 * SECOND;
    let mut reports: Vec<RunReport> = Vec::new();
    for model in CpuModel::all() {
        let scenario = Scenario::cpu_model_comparison(CoordKind::Marlin, scale().max(10), model);
        let mut runner = SimRunner::new(&scenario);
        assert_eq!(runner.sim().cpu_model(), model);
        reports.push(run(scenario, &mut runner));
    }

    // The p99 series around the spike edge, side by side.
    println!(
        "{:>6} {:>16} {:>16}",
        "tick", "analytic p99", "per-request p99"
    );
    for (a, p) in reports[0].log.iter().zip(&reports[1].log) {
        if a.at < 14 * SECOND || a.at > 34 * SECOND {
            continue;
        }
        println!(
            "{:>5}s {:>14.1}ms {:>14.1}ms",
            a.at / SECOND,
            a.observation.p99_latency as f64 / 1e6,
            p.observation.p99_latency as f64 / 1e6,
        );
    }

    println!();
    for report in &reports {
        let peak_p99 = report
            .log
            .iter()
            .map(|r| r.observation.p99_latency)
            .max()
            .unwrap_or(0);
        let decided = report
            .first_action_at(spike_at, |a| matches!(a, ScaleAction::AddNodes { .. }))
            .map_or("never".into(), |t| {
                format!("+{:.1}s", (t - spike_at) as f64 / 1e9)
            });
        println!(
            "{:<12} peak p99 {:>7.1}ms   scale-out decided {:>6}   commits {:>8}   ${:.4}",
            report.cpu_model,
            peak_p99 as f64 / 1e6,
            decided,
            report.metrics.commits,
            report.metrics.total_cost,
        );
    }

    // The acceptance bar: both models execute the full closed loop, the
    // analytic run keeps its historical shape, and the per-request run's
    // tail visibly exceeds the clamped analytic one at the spike.
    for report in &reports {
        assert_eq!(
            report.peak_nodes(),
            16,
            "{}: spike must scale out",
            report.cpu_model
        );
        assert_eq!(
            report.metrics.live_nodes, 8,
            "{}: calm must drain back",
            report.cpu_model
        );
    }
    let p99_at = |r: &RunReport, t: u64| {
        r.log
            .iter()
            .filter(|rec| rec.at >= t && rec.at <= t + 4 * SECOND)
            .map(|rec| rec.observation.p99_latency)
            .max()
            .unwrap_or(0)
    };
    let (an, pr) = (p99_at(&reports[0], spike_at), p99_at(&reports[1], spike_at));
    assert!(
        pr > an,
        "true sojourn p99 at the spike ({pr}) must exceed the clamped analytic one ({an})"
    );
    println!(
        "\np99 divergence at the spike: {:.1}ms (per-request) vs {:.1}ms (analytic) — {:.1}x",
        pr as f64 / 1e6,
        an as f64 / 1e6,
        pr as f64 / an as f64
    );
    println!(
        "the analytic clamp hides {:.0}ms of real queueing delay from the tail",
        (pr - an) as f64 / 1e6
    );
}
