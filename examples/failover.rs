//! Failover without an external coordination service: the paper's
//! Figure 7 walkthrough, end to end — first step by step on the raw
//! protocol, then as a one-line fault injection through the unified
//! experiment harness.
//!
//! N3 goes silent; N1's ring heartbeat detector suspects it; N1 runs a
//! `RecoveryMigrTxn` that commits on the *dead node's* GLog (the log is a
//! MarlinCommit participant — the heart of §4.4.2); N3 then comes back
//! and its stale write is caught by the conditional append.
//!
//! Run with: `cargo run --example failover`

use bytes::Bytes;
use marlin::cluster::harness::{run, Fault, LocalRunner, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::common::{
    ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, TableId, TxnError,
};
use marlin::core::failure::{DetectorConfig, RingDetector};
use marlin::core::LocalCluster;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

const TABLE: TableId = TableId(0);

fn main() {
    protocol_walkthrough();
    harness_fault_injection();
}

/// Part 1 — the raw protocol, step by step.
fn protocol_walkthrough() {
    println!("== Figure 7 walkthrough (raw protocol) ==\n");
    let config = ClusterConfig {
        initial_nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, 900),
            9,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    };
    let mut cluster = LocalCluster::bootstrap(&config);
    cluster
        .user_txn(
            NodeId(3),
            TABLE,
            &[],
            &[(650, Bytes::from_static(b"survives the crash"))],
        )
        .unwrap();
    println!(
        "N3 owns {:?} and holds key 650",
        cluster.node(NodeId(3)).marlin.owned_granules()
    );

    // 1. N3 becomes unresponsive; N1's ring detector notices.
    cluster.kill(NodeId(3));
    let mut detector = RingDetector::new(
        NodeId(1),
        DetectorConfig {
            fanout: 2,
            miss_threshold: 3,
        },
    );
    cluster.refresh_mtable(NodeId(1));
    detector.update_membership(cluster.node(NodeId(1)).marlin.mtable());
    for tick in 1..=4 {
        let targets = detector.tick();
        // N2 answers its heartbeat; N3 is silent.
        detector.ack(NodeId(2));
        println!("heartbeat tick {tick}: pinged {targets:?}, N3 silent");
    }
    let suspects = detector.take_suspicions();
    println!("detector suspects: {suspects:?}");
    assert_eq!(suspects, vec![NodeId(3)]);

    // 2. RecoveryMigrTxn: N1 takes over N3's granules, committing to both
    //    GLog(N1) and GLog(N3) even though N3 cannot respond.
    cluster
        .recovery_migrate(
            NodeId(1),
            NodeId(3),
            vec![GranuleId(6), GranuleId(7), GranuleId(8)],
        )
        .expect("recovery commits on the dead node's log");
    println!(
        "\nRecoveryMigrTxn committed; N1 now owns {:?}",
        cluster.node(NodeId(1)).marlin.owned_granules()
    );
    let reads = cluster.user_txn(NodeId(1), TABLE, &[650], &[]).unwrap();
    println!(
        "N1 recovered key 650 from the shared page store: {:?}",
        reads[0]
            .as_ref()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    );

    // 3. N3 was only slow — it comes back and tries a write. Its H-LSN
    //    for GLog(N3) is stale, so MarlinCommit's Append@LSN fails; the
    //    node invalidates its GTable cache, refreshes, and discovers it
    //    lost the granules.
    cluster.revive(NodeId(3));
    let err = cluster
        .user_txn(
            NodeId(3),
            TABLE,
            &[],
            &[(660, Bytes::from_static(b"stale write"))],
        )
        .unwrap_err();
    println!("\nrecovered N3's write aborts during MarlinCommit: {err}");
    assert!(matches!(err, TxnError::CommitConflict { .. }));
    let err = cluster.user_txn(NodeId(3), TABLE, &[660], &[]).unwrap_err();
    println!("after its cache refresh, N3 redirects: {err}");

    // 4. N1 removes N3 from the membership.
    cluster.delete_node(NodeId(1), NodeId(3)).unwrap();
    cluster.refresh_mtable(NodeId(2));
    println!(
        "\nmembership after DeleteNodeTxn: {:?}",
        cluster.node(NodeId(2)).marlin.mtable().scan()
    );
    cluster.assert_invariants();
    println!("exclusive-granule-ownership invariant holds ✓\n");
}

/// Part 2 — the same failure as a declarative `Scenario`: one
/// `Fault::Crash` injected mid-run, on both runners.
fn harness_fault_injection() {
    println!("== The same crash through the unified harness ==\n");
    let scenario = || {
        Scenario::new("failover")
            .backend(CoordKind::Marlin)
            .workload(Workload::ycsb(600))
            .trace(LoadTrace::constant(20))
            .initial_nodes(3)
            .duration(20 * SECOND)
            .faults(vec![(5 * SECOND, Fault::Crash(NodeId(1)))])
    };

    // Synchronous runtime: the crash runs the full §4.4.2 recovery
    // (kill → RecoveryMigrTxn on the dead GLog → DeleteNodeTxn), with
    // I0–I4 asserted afterwards.
    let s = scenario().workload(Workload::ycsb(9));
    let mut local = LocalRunner::new(&s);
    let local_report = run(s, &mut local);
    println!(
        "local-cluster: {} -> {} members, {} granules recovered by RecoveryMigrTxn",
        3, local_report.metrics.live_nodes, local_report.metrics.migrations
    );
    assert_eq!(local_report.metrics.live_nodes, 2);

    // Simulator: the recovery storm drains the victim at migration speed
    // while user transactions keep committing.
    let s = scenario();
    let mut sim = SimRunner::new(&s);
    let sim_report = run(s, &mut sim);
    println!(
        "cluster-sim:   {} -> {} nodes, {} migrations, {} commits around the failure",
        3, sim_report.metrics.live_nodes, sim_report.metrics.migrations, sim_report.metrics.commits
    );
    assert_eq!(sim_report.metrics.live_nodes, 2);
    assert!(sim.sim().owners().iter().all(|&o| o != 1));
    println!("\nboth runners agree: the dead node's granules ended on survivors ✓");
}
