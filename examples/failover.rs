//! Failover without an external coordination service: the paper's
//! Figure 7 walkthrough, end to end.
//!
//! N3 goes silent; N1's ring heartbeat detector suspects it; N1 runs a
//! `RecoveryMigrTxn` that commits on the *dead node's* GLog (the log is a
//! MarlinCommit participant — the heart of §4.4.2); N3 then comes back
//! and its stale write is caught by the conditional append.
//!
//! Run with: `cargo run --example failover`

use bytes::Bytes;
use marlin::common::{
    ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, TableId, TxnError,
};
use marlin::core::failure::{DetectorConfig, RingDetector};
use marlin::core::LocalCluster;

const TABLE: TableId = TableId(0);

fn main() {
    let config = ClusterConfig {
        initial_nodes: vec![NodeId(1), NodeId(2), NodeId(3)],
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, 900),
            9,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    };
    let mut cluster = LocalCluster::bootstrap(&config);
    cluster
        .user_txn(
            NodeId(3),
            TABLE,
            &[],
            &[(650, Bytes::from_static(b"survives the crash"))],
        )
        .unwrap();
    println!(
        "N3 owns {:?} and holds key 650",
        cluster.node(NodeId(3)).marlin.owned_granules()
    );

    // 1. N3 becomes unresponsive; N1's ring detector notices.
    cluster.kill(NodeId(3));
    let mut detector = RingDetector::new(
        NodeId(1),
        DetectorConfig {
            fanout: 2,
            miss_threshold: 3,
        },
    );
    cluster.refresh_mtable(NodeId(1));
    detector.update_membership(cluster.node(NodeId(1)).marlin.mtable());
    for tick in 1..=4 {
        let targets = detector.tick();
        // N2 answers its heartbeat; N3 is silent.
        detector.ack(NodeId(2));
        println!("heartbeat tick {tick}: pinged {targets:?}, N3 silent");
    }
    let suspects = detector.take_suspicions();
    println!("detector suspects: {suspects:?}");
    assert_eq!(suspects, vec![NodeId(3)]);

    // 2. RecoveryMigrTxn: N1 takes over N3's granules, committing to both
    //    GLog(N1) and GLog(N3) even though N3 cannot respond.
    cluster
        .recovery_migrate(
            NodeId(1),
            NodeId(3),
            vec![GranuleId(6), GranuleId(7), GranuleId(8)],
        )
        .expect("recovery commits on the dead node's log");
    println!(
        "\nRecoveryMigrTxn committed; N1 now owns {:?}",
        cluster.node(NodeId(1)).marlin.owned_granules()
    );
    let reads = cluster.user_txn(NodeId(1), TABLE, &[650], &[]).unwrap();
    println!(
        "N1 recovered key 650 from the shared page store: {:?}",
        reads[0]
            .as_ref()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    );

    // 3. N3 was only slow — it comes back and tries a write. Its H-LSN
    //    for GLog(N3) is stale, so MarlinCommit's Append@LSN fails; the
    //    node invalidates its GTable cache, refreshes, and discovers it
    //    lost the granules.
    cluster.revive(NodeId(3));
    let err = cluster
        .user_txn(
            NodeId(3),
            TABLE,
            &[],
            &[(660, Bytes::from_static(b"stale write"))],
        )
        .unwrap_err();
    println!("\nrecovered N3's write aborts during MarlinCommit: {err}");
    assert!(matches!(err, TxnError::CommitConflict { .. }));
    let err = cluster.user_txn(NodeId(3), TABLE, &[660], &[]).unwrap_err();
    println!("after its cache refresh, N3 redirects: {err}");

    // 4. N1 removes N3 from the membership.
    cluster.delete_node(NodeId(1), NodeId(3)).unwrap();
    cluster.refresh_mtable(NodeId(2));
    println!(
        "\nmembership after DeleteNodeTxn: {:?}",
        cluster.node(NodeId(2)).marlin.mtable().scan()
    );
    cluster.assert_invariants();
    println!("exclusive-granule-ownership invariant holds ✓");
}
