//! Quickstart: bring up a Marlin-coordinated cluster, write some data,
//! scale out with a live migration, and watch requests follow the data.
//!
//! This is the paper's Figure 6 walkthrough on the synchronous in-process
//! runtime — every step below runs the real protocol code (MarlinCommit,
//! conditional appends, GTable swaps) against in-memory disaggregated
//! storage.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use marlin::common::{
    ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, TableId, TxnError,
};
use marlin::core::LocalCluster;

const TABLE: TableId = TableId(0);

fn main() {
    // A 2-node cluster over 8 granules of keys [0, 800).
    let config = ClusterConfig {
        initial_nodes: vec![NodeId(1), NodeId(2)],
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, 800),
            8,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    };
    let mut cluster = LocalCluster::bootstrap(&config);
    println!(
        "bootstrapped: N1 owns {:?}",
        cluster.node(NodeId(1)).marlin.owned_granules()
    );
    println!(
        "             N2 owns {:?}",
        cluster.node(NodeId(2)).marlin.owned_granules()
    );

    // Write through the owner of key 450 (granule G4, on N2).
    cluster
        .user_txn(
            NodeId(2),
            TABLE,
            &[],
            &[(450, Bytes::from_static(b"hello marlin"))],
        )
        .expect("write commits at the owner");
    println!("\nwrote key 450 at N2 (granule G4)");

    // Scale out: N3 adds itself via AddNodeTxn, then a MigrationTxn moves
    // granules G4 and G5 over — one cross-node MarlinCommit on both GLogs.
    cluster
        .add_node(NodeId(3), "10.0.0.3:5000".into())
        .expect("AddNodeTxn commits");
    cluster
        .migrate(
            NodeId(2),
            NodeId(3),
            TABLE,
            vec![GranuleId(4), GranuleId(5)],
        )
        .expect("MigrationTxn commits");
    println!(
        "scaled out: N3 joined and took {:?}",
        cluster.node(NodeId(3)).marlin.owned_granules()
    );

    // The old owner now redirects (Algorithm 1 lines 5-6)...
    match cluster.user_txn(NodeId(2), TABLE, &[450], &[]) {
        Err(TxnError::WrongNode { granule, owner }) => {
            println!("N2 redirects: granule {granule} now owned by {owner}");
        }
        other => panic!("expected a WrongNode redirect, got {other:?}"),
    }
    // ...and the new owner serves the data, warmed up by the migration.
    let reads = cluster
        .user_txn(NodeId(3), TABLE, &[450], &[])
        .expect("read at new owner");
    println!(
        "N3 serves key 450 = {:?}",
        reads[0]
            .as_ref()
            .map(|b| String::from_utf8_lossy(b).into_owned())
    );

    // The safety net behind it all (§4.5): every granule has exactly one
    // owner, verified against the logs in disaggregated storage.
    cluster.assert_invariants();
    println!("\nexclusive-granule-ownership invariant holds across all GLogs ✓");

    // And the experiment API over it: the same protocol, driven by a
    // declarative Scenario through the unified harness — a full
    // scripted scale-out in four lines (see `examples/autoscale.rs` for
    // the closed-loop version and the discrete-event runner).
    use marlin::autoscaler::ScaleAction;
    use marlin::cluster::harness::{run, LocalRunner, Scenario};
    use marlin::cluster::sim::Workload;
    use marlin::sim::SECOND;
    let scenario = Scenario::new("quickstart")
        .workload(Workload::ycsb(16))
        .initial_nodes(2)
        .duration(10 * SECOND)
        .action(2 * SECOND, ScaleAction::add(2));
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    println!(
        "\nharness run '{}': {} -> {} members, {} real MigrationTxns, report has {} log entries",
        report.scenario,
        2,
        report.metrics.live_nodes,
        report.metrics.migrations,
        report.log.len()
    );
}
