//! Deterministic fuzz swarm over the experiment harness.
//!
//! FoundationDB-style simulation testing: every seed expands into a
//! complete randomized scenario — load trace, fault schedule, churn,
//! policy/backend configuration — runs with all invariants armed, and
//! reports a decision-log digest. A violation is automatically shrunk
//! to a minimal case and written out as a replayable repro artifact.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example fuzz_swarm                 # swarm
//! cargo run --release --example fuzz_swarm -- replay <f>   # replay a repro
//! ```
//!
//! Knobs (see `docs/TESTING.md`):
//! - `MARLIN_FUZZ_SEEDS=<n>`  — seeds to run (default 8; CI swarm uses 64)
//! - `MARLIN_FUZZ_REPRO=<dir>` — write `repro_seed_<s>.txt` per failure
//! - `MARLIN_SCALE=<n>`       — divide workload sizes for quick runs
//! - `MARLIN_BENCH_JSON=<dir>` — drop the `BENCH_fuzz_swarm.json` trajectory
//!
//! Exits non-zero iff any seed produced a violation.

use marlin::fuzz::{run_case, swarm, FuzzCase, FuzzConfig};
use marlin::telemetry::{BenchReport, BenchSection};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let failed = match args.get(1).map(String::as_str) {
        Some("replay") => {
            let path = args.get(2).unwrap_or_else(|| {
                eprintln!("usage: fuzz_swarm replay <repro-file>");
                std::process::exit(2);
            });
            replay(path)
        }
        Some(other) => {
            eprintln!("unknown subcommand {other:?}; usage: fuzz_swarm [replay <repro-file>]");
            std::process::exit(2);
        }
        None => swarm_main(),
    };
    if failed {
        std::process::exit(1);
    }
}

/// Run the seed swarm; returns whether any seed failed.
fn swarm_main() -> bool {
    let n: u64 = std::env::var("MARLIN_FUZZ_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(8);
    let scale = marlin_bench::scale();
    let cfg = FuzzConfig {
        scale,
        shrink_budget: 400,
        oracle: None,
    };
    // A fixed, offset seed list: stable across runs and disjoint from the
    // low seeds the unit tests pin.
    let seeds: Vec<u64> = (0..n).map(|i| 1_000 + i).collect();
    println!("== fuzz swarm: {n} seeds, scale {scale} ==");
    let started = Instant::now();
    let outcomes = swarm(&seeds, &cfg);
    let elapsed = started.elapsed();

    let repro_dir = std::env::var("MARLIN_FUZZ_REPRO").ok();
    let mut failures = 0u64;
    for o in &outcomes {
        match &o.failure {
            None => println!("seed {:>6}  digest {:016x}  ok", o.seed, o.digest),
            Some(f) => {
                failures += 1;
                println!(
                    "seed {:>6}  digest {:016x}  FAILED ({} violation(s)), shrunk to {} event(s)",
                    o.seed,
                    o.digest,
                    f.violations.len(),
                    f.shrunk.events.len()
                );
                for v in &f.violations {
                    println!("    {v}");
                }
                if let Some(dir) = &repro_dir {
                    let path = format!("{dir}/repro_seed_{}.txt", o.seed);
                    match std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&path, &f.repro))
                    {
                        Ok(()) => println!("    repro written: {path}"),
                        Err(e) => eprintln!("    could not write repro {path}: {e}"),
                    }
                }
            }
        }
    }
    println!(
        "\n{} seed(s), {} failure(s), {:.1}s wall ({:.2} scenarios/s)",
        n,
        failures,
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64().max(1e-9)
    );

    let mut bench = BenchReport::new("fuzz_swarm", scale);
    bench.sections.push(BenchSection {
        name: "swarm".to_string(),
        wall_nanos: elapsed.as_nanos() as u64,
        virtual_nanos: 0,
        wall_bounded: false,
        profile: None,
        values: vec![
            ("seeds".to_string(), n as f64),
            ("failures".to_string(), failures as f64),
            (
                "scenarios_per_sec".to_string(),
                n as f64 / elapsed.as_secs_f64().max(1e-9),
            ),
        ],
    });
    if let Some(path) = bench.maybe_write() {
        println!("perf trajectory: {path}");
    }
    failures > 0
}

/// Replay a repro artifact; returns whether the case still fails.
fn replay(path: &str) -> bool {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let case = FuzzCase::from_repro(&text).unwrap_or_else(|e| {
        eprintln!("malformed repro {path}: {e}");
        std::process::exit(2);
    });
    println!("== replay {path} (seed {}) ==", case.seed);
    let outcome = run_case(&case, None);
    println!("digest {:016x}", outcome.digest);
    if outcome.violations.is_empty() {
        println!("clean: the case no longer violates any invariant");
        false
    } else {
        for v in &outcome.violations {
            println!("VIOLATION: {v}");
        }
        true
    }
}
