//! Head-to-head: the same scale-out under Marlin vs ZooKeeper vs
//! FoundationDB coordination — a miniature of the paper's Figure 12.
//!
//! Run with: `cargo run --release --example coordination_compare`

use marlin::cluster::params::{CoordKind, SimParams};
use marlin::cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;

fn main() {
    println!("scale-out 4 -> 8 nodes, 25,000 granule migrations, 400 clients\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "system", "duration", "mig tput", "mig lat", "$/Mtxn", "Meta $"
    );
    for kind in CoordKind::all() {
        let spec = ScaleOutSpec {
            kind,
            workload: Workload::Ycsb { granules: 50_000 },
            initial_nodes: 4,
            new_nodes: 4,
            clients: 400,
            scale_at: 5 * SECOND,
            horizon: 60 * SECOND,
            threads_per_new_node: 12,
            params: SimParams::default(),
        };
        let s = summarize(&run_scale_out(&spec));
        println!(
            "{:>8} {:>9.1}s {:>8.0}/s {:>8.2}ms {:>9.4} {:>9.4}",
            s.kind.name(),
            s.migration_duration as f64 / 1e9,
            s.migration_throughput,
            s.migration_latency.mean / 1e6,
            s.cost_per_mtxn,
            s.meta_cost,
        );
    }
    println!("\nMarlin wins on both axes: no coordination cluster to pay for, and");
    println!("migration metadata commits scale with the database instead of");
    println!("funneling through an external service.");
}
