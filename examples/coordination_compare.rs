//! Head-to-head: the same scale-out `Scenario` under Marlin vs ZooKeeper
//! vs FoundationDB coordination — a miniature of the paper's Figure 12,
//! swept over backends by changing one knob.
//!
//! Run with: `cargo run --release --example coordination_compare`

use marlin::autoscaler::ScaleAction;
use marlin::cluster::harness::{run, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

fn main() {
    println!("scale-out 4 -> 8 nodes, 25,000 granule migrations, 400 clients\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "system", "duration", "mig tput", "mig lat", "$/Mtxn", "Meta $"
    );
    let mut breakdowns = Vec::new();
    for kind in CoordKind::all() {
        // One spec, four backends: the coordination mechanism is just a
        // `Scenario` knob.
        let scenario = Scenario::new("coordination-compare")
            .backend(kind)
            .workload(Workload::ycsb(50_000))
            .trace(LoadTrace::constant(400))
            .initial_nodes(4)
            .threads_per_node(12)
            .duration(60 * SECOND)
            .action(5 * SECOND, ScaleAction::add(4));
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        let m = &report.metrics;
        println!(
            "{:>8} {:>9.1}s {:>8.0}/s {:>8.2}ms {:>9.4} {:>9.4}",
            report.backend,
            m.migration_duration as f64 / 1e9,
            m.migration_throughput,
            m.migration_latency.mean / 1e6,
            m.cost_per_mtxn,
            m.meta_cost,
        );
        breakdowns.push((report.backend.clone(), m.coordination));
    }

    // What the Meta $ column is *made of*: the coordination-op registry
    // (docs/OBSERVABILITY.md has the full glossary).
    println!(
        "\n{:>8} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "system", "mig CAS", "svc wr", "svc rd", "watches", "write $", "uptime $"
    );
    for (backend, c) in &breakdowns {
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>9.4} {:>9.4}",
            backend,
            c.ops.migration_cas_attempts,
            c.ops.service_writes,
            c.ops.service_reads,
            c.ops.watch_notifications,
            c.write_dollars + c.read_dollars,
            c.uptime_dollars,
        );
    }
    println!("\nMarlin wins on both axes: no coordination cluster to pay for, and");
    println!("migration metadata commits scale with the database instead of");
    println!("funneling through an external service.");
}
