//! One million closed-loop clients on the cohort scale engine.
//!
//! The exact client engine materializes a generator and an event per
//! client — faithful, but a million clients means a million 10 ms timers
//! and the event queue becomes the workload. The cohort engine
//! (`SimParams::client_engine = Cohort`) advances all clients of a
//! region as one flow-level cohort: every 100 ms it samples a handful of
//! representative transaction walks, converts the closed-loop think/RTT
//! cycle into an aggregate offered rate, and charges stations and
//! metrics with *weighted* bulk operations. Granule heat is tracked by a
//! deterministic count-min sketch instead of a per-granule vector.
//!
//! This example runs the `million_clients` preset end to end and prints
//! the sustained client count, throughput, and the virtual-time speedup
//! the engine achieves over wall-clock.
//!
//! Run with: `cargo run --release --example million_clients`
//! (`MARLIN_SCALE=<n>` shrinks clients and granules by `n`.)

use std::time::Instant;

use marlin::cluster::harness::{run, Scenario, SimRunner};
use marlin::sim::SECOND;
use marlin_bench::scale;

fn main() {
    // Clamp so the preset stays above both scale-engine activation
    // thresholds even under aggressive MARLIN_SCALE shrinks: clients
    // (1M/s) >= 10_000 needs s <= 100, and sketched granules
    // (200k/s) >= 4_096 needs s <= 48.
    let scenario = Scenario::million_clients(scale().min(40));
    let horizon = scenario.horizon;
    let expected_clients = scenario.trace.peak();
    println!("== million clients — cohort scale engine, {expected_clients} clients ==\n");

    let mut runner = SimRunner::new(&scenario);
    assert!(
        runner.sim().cohort_active(),
        "the preset must activate the cohort engine"
    );
    assert!(
        runner.sim().heat_sketched(),
        "the preset must sketch granule heat"
    );

    let wall = Instant::now();
    let report = run(scenario, &mut runner);
    let wall_s = wall.elapsed().as_secs_f64();
    let virt_s = horizon as f64 / SECOND as f64;

    let active = runner.sim().active_clients();
    println!("active clients    {active:>12}");
    println!("commits           {:>12}", report.metrics.commits);
    println!(
        "throughput        {:>12.0} txn/s",
        report.metrics.commits as f64 / virt_s
    );
    println!(
        "p99 latency       {:>9.1} ms",
        report.metrics.p99_latency as f64 / 1e6
    );
    println!("abort ratio       {:>12.4}", report.metrics.abort_ratio);
    println!(
        "simulated {virt_s:.0}s in {wall_s:.2}s wall — {:.0}x virtual-per-wall",
        virt_s / wall_s
    );

    assert!(report.metrics.commits > 0, "the cohort engine must commit");
    assert_eq!(
        active, expected_clients,
        "the cohort engine must sustain the preset's full client count \
         (a million at scale 1)"
    );
}
