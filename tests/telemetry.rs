//! The observability layer's contracts.
//!
//! Determinism: the tracer records only virtual-time data, so the same
//! scenario and seed must produce a byte-identical Chrome-trace JSON
//! export across runs — on both the discrete-event simulator and the
//! synchronous local cluster.
//!
//! Accounting: the coordination-op breakdown must sum back to the scalar
//! Meta Cost (§6.1.5) for the service-backed baselines and to exactly
//! zero for Marlin, and the `LocalRunner` must report *real* Append@LSN
//! CAS counts from its storage logs rather than a hard-coded zero.

use marlin::cluster::harness::{run, run_with_series, LocalRunner, Runner, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::telemetry::{MetricsSeries, DEFAULT_TRACE_CAPACITY};

fn spike(kind: CoordKind, granule_scale: u64) -> Scenario {
    Scenario::autoscale_spike(kind, granule_scale)
}

fn sim_trace(kind: CoordKind, seed: u64) -> String {
    let scenario = spike(kind, 100).seed(seed);
    let mut runner = SimRunner::new(&scenario);
    runner.sim_mut().enable_tracing(DEFAULT_TRACE_CAPACITY);
    run(scenario, &mut runner);
    runner.trace_json().expect("tracing was enabled")
}

fn local_trace(seed: u64) -> String {
    let scenario = spike(CoordKind::Marlin, 400).seed(seed);
    let mut runner = LocalRunner::new(&scenario);
    runner.enable_tracing();
    run(scenario, &mut runner);
    runner.trace_json().expect("tracing was enabled")
}

#[test]
fn sim_trace_is_byte_identical_across_runs_of_the_same_seed() {
    let a = sim_trace(CoordKind::Marlin, 42);
    let b = sim_trace(CoordKind::Marlin, 42);
    assert_eq!(a, b, "same scenario+seed must trace identically");
    // The export is a loadable Chrome trace with real content.
    assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(a.trim_end().ends_with("]}"));
    assert!(a.contains("\"ph\":\"X\""), "spans present");
    assert!(a.contains("\"ph\":\"i\""), "instants present");
    assert!(a.contains("provision_lead"), "scale-out lead-time spans");
}

#[test]
fn sim_traces_differ_across_seeds_but_not_across_identical_runs() {
    let a = sim_trace(CoordKind::Marlin, 7);
    let b = sim_trace(CoordKind::Marlin, 1234);
    assert_ne!(a, b, "different seeds should shift event timings");
}

#[test]
fn local_trace_is_byte_identical_across_runs_of_the_same_seed() {
    let a = local_trace(42);
    let b = local_trace(42);
    assert_eq!(a, b, "same scenario+seed must trace identically");
    assert!(a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(a.contains("\"policy\""), "policy actuations are traced");
}

#[test]
fn coordination_breakdown_sums_to_meta_cost_for_service_backends() {
    for kind in [CoordKind::ZkSmall, CoordKind::ZkLarge, CoordKind::Fdb] {
        let scenario = spike(kind, 100);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        let c = &report.metrics.coordination;
        assert!(
            report.metrics.meta_cost > 0.0,
            "{}: service backends pay a Meta Cost",
            kind.name()
        );
        assert!(
            (c.meta_dollars() - report.metrics.meta_cost).abs() < 1e-12,
            "{}: breakdown {} must sum to the scalar {}",
            kind.name(),
            c.meta_dollars(),
            report.metrics.meta_cost
        );
        assert!(
            c.ops.service_writes > 0,
            "{}: reconfiguration writes go through the service",
            kind.name()
        );
    }
}

#[test]
fn marlin_pays_exactly_zero_meta_cost_in_the_breakdown() {
    let scenario = spike(CoordKind::Marlin, 100);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    let c = &report.metrics.coordination;
    assert_eq!(c.write_dollars, 0.0);
    assert_eq!(c.read_dollars, 0.0);
    assert_eq!(c.uptime_dollars, 0.0);
    assert_eq!(c.meta_dollars(), 0.0);
    assert_eq!(report.metrics.meta_cost, 0.0);
    // Coordination still *happened* — through the database's own logs:
    // user commits CAS their GLogs, and the scale-in drain migrates
    // granules through 2PC MigrationTxns.
    assert!(
        c.ops.commit_cas_attempts > 0,
        "user commits drive GLog CAS: {:?}",
        c.ops
    );
    assert!(
        c.ops.migration_cas_attempts > 0,
        "drain migrations drive MigrationTxn CAS: {:?}",
        c.ops
    );
    assert_eq!(c.ops.service_writes, 0, "no external service");
    assert_eq!(c.ops.service_reads, 0, "routing repairs from own logs");
}

#[test]
fn local_runner_reports_real_cas_counts_not_a_hardcoded_zero() {
    let scenario = spike(CoordKind::Marlin, 400).seed(42);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    let ops = runner.coordination();
    assert!(
        ops.membership_cas_attempts > 0,
        "add/remove actuations append to the SysLog via CAS: {ops:?}"
    );
    assert_eq!(
        report.metrics.coordination.ops, ops,
        "the snapshot must carry the runner's measured ops"
    );
    assert_eq!(
        report.metrics.meta_cost, 0.0,
        "Marlin's own-log coordination is free"
    );
}

fn sim_timeline(seed: u64) -> String {
    let scenario = spike(CoordKind::Marlin, 100).seed(seed);
    let mut runner = SimRunner::new(&scenario);
    let mut series = MetricsSeries::enabled(1 << 12);
    run_with_series(scenario, &mut runner, &mut series);
    series.to_json()
}

fn local_timeline(seed: u64) -> String {
    let scenario = spike(CoordKind::Marlin, 400).seed(seed);
    let mut runner = LocalRunner::new(&scenario);
    let mut series = MetricsSeries::enabled(1 << 12);
    run_with_series(scenario, &mut runner, &mut series);
    series.to_json()
}

#[test]
fn sim_metrics_timeline_is_byte_identical_across_runs_of_the_same_seed() {
    let a = sim_timeline(42);
    let b = sim_timeline(42);
    assert_eq!(a, b, "same scenario+seed must record identical timelines");
    assert_ne!(a, sim_timeline(7), "seeds shift the recorded vitals");
    // One row per control tick, carrying the driver vitals, the
    // runner's own counters, and the tail-blame decomposition.
    assert!(a.starts_with("{\"ticks\":"));
    assert!(a.contains("\"throughput_tps\""));
    assert!(a.contains("\"p99_latency_ns\""));
    assert!(a.contains("\"dollars_per_hour\""));
    assert!(a.contains("\"blame_queue_wait_ns\""));
    assert!(a.contains("\"blame_service_ns\""));
    // The spike preset's reactive policy has no p99 ceiling armed, so
    // no SLO series appear — they exist only when an SLO exists.
    assert!(!a.contains("\"slo_burn_rate\""));
}

#[test]
fn slo_series_derive_from_the_policys_armed_p99_ceiling() {
    use marlin::cluster::params::CpuModel;
    // The CPU-model preset arms the reactive policy's 150 ms escape
    // hatch, so every tick carries burn-rate and error-budget gauges.
    let scenario = Scenario::cpu_model_comparison(CoordKind::Marlin, 100, CpuModel::PerRequest);
    let mut runner = SimRunner::new(&scenario);
    let mut series = MetricsSeries::enabled(1 << 12);
    run_with_series(scenario, &mut runner, &mut series);
    let json = series.to_json();
    assert!(json.contains("\"slo_burn_rate\""));
    assert!(json.contains("\"slo_error_budget\""));
}

#[test]
fn local_metrics_timeline_is_byte_identical_across_runs_of_the_same_seed() {
    let a = local_timeline(42);
    let b = local_timeline(42);
    assert_eq!(a, b, "same scenario+seed must record identical timelines");
    assert!(a.contains("\"live_nodes\""));
    assert!(a.contains("\"membership_cas_attempts\""));
}

#[test]
fn recording_the_timeline_leaves_the_report_untouched() {
    let scenario = spike(CoordKind::Marlin, 100).seed(42);
    let mut plain_r = SimRunner::new(&scenario);
    let plain = run(scenario, &mut plain_r);

    let scenario = spike(CoordKind::Marlin, 100).seed(42);
    let mut recorded_r = SimRunner::new(&scenario);
    let mut series = MetricsSeries::enabled(1 << 12);
    let recorded = run_with_series(scenario, &mut recorded_r, &mut series);
    assert!(!series.is_empty(), "the spike run has control ticks");
    // Digest comparison: FNV over the full report JSON with the
    // wall-clock actuation times zeroed — everything deterministic.
    assert_eq!(
        marlin::fuzz::report_digest(&plain),
        marlin::fuzz::report_digest(&recorded),
        "the timeline is an observer: the report must not change"
    );
}

#[test]
fn report_json_omits_telemetry_when_disabled_and_includes_it_when_enabled() {
    let scenario = spike(CoordKind::Marlin, 100).seed(42);
    let mut off = SimRunner::new(&scenario);
    let off_report = run(scenario, &mut off);
    let off_json = off_report.to_json();
    assert!(
        !off_json.contains("\"telemetry\""),
        "telemetry-off JSON must not carry host-dependent fields"
    );
    assert!(
        off_json.contains("\"coordination\""),
        "the deterministic coordination breakdown is always present"
    );

    let scenario = spike(CoordKind::Marlin, 100).seed(42);
    let mut on = SimRunner::new(&scenario);
    on.sim_mut().enable_tracing(DEFAULT_TRACE_CAPACITY);
    on.sim_mut().enable_profiling();
    let on_report = run(scenario, &mut on);
    let on_json = on_report.to_json();
    assert!(on_json.contains("\"telemetry\""));
    assert!(on_json.contains("\"virtual_per_wall\""));
    assert!(on_json.contains("\"phases\""));
}
