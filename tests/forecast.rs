//! The forecasting subsystem end to end: provisioning lead time in the
//! simulator, the predictive policy against its reactive twin, regional
//! composition, and the forecaster invariants (proptest shim).
//!
//! The headline pin mirrors the predictive presets at test scale: on a
//! diurnal ramp with a real provisioning lead, the identical
//! `Scenario` + seed is run once under `PredictivePolicy` and once under
//! the SLO-armed reactive baseline. The predictive run must order its
//! first scale-out at least one control tick earlier, and its p99 must
//! stay under the SLO ceiling across the run where the reactive run
//! breaches it — react-after-breach structurally eats the whole lead as
//! queue build-up.

use marlin::autoscaler::{
    backtest, BacktestConfig, Forecaster, HoltWintersForecaster, LinearTrendForecaster,
    NaiveForecaster, ScaleAction,
};
use marlin::cluster::harness::{run, RunReport, Scenario, SimRunner};
use marlin::cluster::params::{CoordKind, CpuModel};
use marlin::cluster::sim::Workload;
use marlin::sim::{Nanos, MILLISECOND, SECOND};
use marlin::workload::LoadTrace;
use proptest::prelude::*;

/// The SLO ceiling of the A/B comparison (the presets' value).
const CEILING: Nanos = 150 * MILLISECOND;

/// The predictive presets' shape at test scale: one diurnal climb
/// (50→560 clients over a 120 s period, the paper presets' 12-level
/// staircase), 4–8 nodes, per-request CPU pricing, and an 8 s
/// provisioning lead. Identical in everything but the policy.
fn diurnal_scenario(predictive: bool) -> Scenario {
    let period = 120 * SECOND;
    let s = Scenario::new(if predictive {
        "forecast-predictive"
    } else {
        "forecast-reactive"
    })
    .backend(CoordKind::Marlin)
    .workload(Workload::ycsb(600))
    .trace(LoadTrace::diurnal(50, 560, period, period, 12))
    .initial_nodes(4)
    .threads_per_node(8)
    .control_interval(2 * SECOND)
    .observe_window(4 * SECOND)
    .duration(60 * SECOND)
    .cpu_model(CpuModel::PerRequest)
    .provision_lead_time(8 * SECOND)
    .seed(42);
    let policy = if predictive {
        s.predictive_policy(4, 8)
    } else {
        s.slo_reactive_policy(4, 8, CEILING)
    };
    s.policy(policy)
}

fn diurnal_report(predictive: bool) -> RunReport {
    let scenario = diurnal_scenario(predictive);
    let mut runner = SimRunner::new(&scenario);
    run(scenario, &mut runner)
}

fn first_add_at(report: &RunReport) -> Nanos {
    report
        .first_action_at(0, |a| matches!(a, ScaleAction::AddNodes { .. }))
        .expect("the ramp must provoke a scale-out")
}

fn max_p99(report: &RunReport) -> Nanos {
    report
        .log
        .iter()
        .map(|r| r.observation.p99_latency)
        .max()
        .unwrap_or(0)
}

/// The acceptance pin: under a provisioning lead on the diurnal ramp,
/// prediction orders capacity at least one control tick before reaction
/// does, and only the reactive run breaches the SLO ceiling.
#[test]
fn predictive_orders_capacity_before_reactive_and_holds_the_slo() {
    let reactive = diurnal_report(false);
    let predictive = diurnal_report(true);

    // Identical scenario but the policy.
    assert_eq!(reactive.seed, predictive.seed);
    assert_eq!(reactive.cpu_model, predictive.cpu_model);
    assert_eq!(reactive.policy.as_deref(), Some("reactive"));
    assert_eq!(predictive.policy.as_deref(), Some("predictive"));

    let tick = 2 * SECOND;
    let (r_add, p_add) = (first_add_at(&reactive), first_add_at(&predictive));
    assert!(
        p_add + tick <= r_add,
        "predictive must order at least one control tick earlier: {p_add} vs {r_add}"
    );

    let (r_p99, p_p99) = (max_p99(&reactive), max_p99(&predictive));
    assert!(
        r_p99 > CEILING,
        "react-after-breach must eat the lead as a breach (max p99 {r_p99})"
    );
    assert!(
        p_p99 <= CEILING,
        "provision-before-demand must hold the SLO (max p99 {p_p99})"
    );
    assert_eq!(predictive.slo_violation_ticks(CEILING), 0);
    assert!(reactive.slo_violation_ticks(CEILING) >= 1);

    // Forecast bookkeeping: the predictive report carries accuracy and
    // per-record forecast samples; the reactive one has neither.
    let accuracy = predictive.forecast.expect("predictive runs are scored");
    assert!(accuracy.samples > 10);
    assert!(
        accuracy.mape.is_finite() && accuracy.mape < 1.0,
        "matured MAPE should be sane: {accuracy:?}"
    );
    assert!(reactive.forecast.is_none());
    assert!(predictive
        .log
        .iter()
        .filter(|r| r.tick > 0)
        .all(|r| !r.forecasts.is_empty()));
    // The JSON artifact carries both surfaces.
    let json = predictive.to_json();
    assert!(json.contains("\"forecast_accuracy\":{"));
    assert!(json.contains("\"forecasts\":[{"));
    assert!(reactive.to_json().contains("\"forecast_accuracy\":null"));

    // In-flight capacity is never bought twice: while orders ride out
    // the provisioning lead the observation reports them as pending, so
    // neither policy can blow through max_nodes re-buying the same
    // shortfall every tick.
    assert!(reactive.peak_nodes() <= 8, "peak {}", reactive.peak_nodes());
    assert!(
        predictive.peak_nodes() <= 8,
        "peak {}",
        predictive.peak_nodes()
    );
}

/// The lead-time model itself: an `AddNodes` actuation joins the
/// membership only after `provision_lead_time`, and the default of 0
/// keeps the historical instant join.
#[test]
fn provision_lead_time_delays_the_join() {
    let scenario = |lead: Nanos| {
        Scenario::new("lead")
            .workload(Workload::ycsb(200))
            .trace(LoadTrace::constant(8))
            .initial_nodes(2)
            .duration(30 * SECOND)
            .provision_lead_time(lead)
            .action(5 * SECOND, ScaleAction::add(2))
    };
    let joined_at = |lead: Nanos| {
        let s = scenario(lead);
        let mut runner = SimRunner::new(&s);
        let report = run(s, &mut runner);
        assert_eq!(report.metrics.live_nodes, 4, "the add lands either way");
        report
            .metrics
            .node_count
            .iter()
            .find(|&&(_, v)| v > 2.0)
            .map(|&(t, _)| t)
            .expect("the join is in the node series")
    };
    assert_eq!(joined_at(0), 5 * SECOND, "default: instant capacity");
    assert_eq!(
        joined_at(10 * SECOND),
        15 * SECOND,
        "the join waits out the provisioning lead"
    );
}

/// Regional composition (`RegionalPolicy` over per-region
/// `PredictivePolicy`s): a demand ramp confined to region 1 must produce
/// region-targeted adds *before* region 1's p99 breaches, and the calm
/// regions must see zero adds.
#[test]
fn regional_predictive_targets_only_the_ramping_region() {
    let scenario = Scenario::predictive_geo(CoordKind::Marlin, 1_600).duration(80 * SECOND);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    let adds: Vec<&ScaleAction> = report
        .log
        .iter()
        .filter_map(|r| r.action.as_ref())
        .filter(|a| matches!(a, ScaleAction::AddNodes { .. }))
        .collect();
    assert!(!adds.is_empty(), "the ramp must provoke scale-outs");
    for add in &adds {
        assert!(
            matches!(
                add,
                ScaleAction::AddNodes {
                    region: Some(r),
                    ..
                } if r.0 == 1
            ),
            "every add must target the ramping region: {add:?}"
        );
    }
    // Proactive, not reactive: at every add the ramping region's p99 was
    // still under the SLO ceiling.
    for record in report.log.iter().filter(|r| {
        r.action
            .as_ref()
            .is_some_and(|a| matches!(a, ScaleAction::AddNodes { .. }))
    }) {
        let r1 = record
            .observation
            .regions
            .iter()
            .find(|x| x.region.0 == 1)
            .expect("region 1 digest");
        assert!(
            r1.p99_latency < CEILING,
            "capacity must be ordered before the breach (p99 {} at t={})",
            r1.p99_latency,
            record.at
        );
    }
    // Calm regions end where they started; region 1 grew.
    for region in [0u16, 2, 3] {
        let r = report.metrics.region(region).expect("region breakdown");
        assert_eq!(r.live_nodes, 2, "calm region {region} never scales");
    }
    assert!(report.metrics.region(1).expect("r1").live_nodes > 2);
    // Per-region forecasts ride in the decision log, tagged.
    assert!(report
        .log
        .iter()
        .filter(|r| r.tick > 0)
        .all(|r| r.forecasts.len() == 4));
    assert!(report
        .log
        .iter()
        .flat_map(|r| &r.forecasts)
        .all(|f| f.region.is_some()));
}

// ---------------------------------------------------------------------------
// Forecaster invariants (proptest shim)

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Holt-Winters on a constant trace converges to the constant.
    #[test]
    fn holt_winters_converges_on_constant_traces(
        level in 1u32..2_000,
        season in 3usize..24,
    ) {
        let mut f = HoltWintersForecaster::paper_default(season);
        let mut t = 0;
        for _ in 0..season * 6 {
            f.observe(t, f64::from(level));
            t += SECOND;
        }
        let predicted = f.forecast(5 * SECOND).expect("long warm model");
        let err = (predicted - f64::from(level)).abs();
        prop_assert!(
            err < f64::from(level) * 1e-6 + 1e-6,
            "constant {level} forecast {predicted}"
        );
    }

    /// Forecasts are deterministic: the same sample stream yields
    /// bitwise-identical forecasts on every run.
    #[test]
    fn forecasters_are_deterministic_across_runs(
        samples in proptest::collection::vec(1u32..5_000, 8..40),
        lead_s in 1u64..30,
    ) {
        let runs: Vec<Vec<Option<f64>>> = (0..2)
            .map(|_| {
                let mut models: Vec<Box<dyn Forecaster>> = vec![
                    Box::new(NaiveForecaster::new()),
                    Box::new(LinearTrendForecaster::new(5)),
                    Box::new(HoltWintersForecaster::paper_default(4)),
                ];
                let mut out = Vec::new();
                for (i, &s) in samples.iter().enumerate() {
                    for m in &mut models {
                        m.observe(i as u64 * SECOND, f64::from(s));
                        out.push(m.forecast(lead_s * SECOND));
                    }
                }
                out
            })
            .collect();
        // Bitwise comparison (None == None; Some bits equal).
        let bits = |v: &Vec<Option<f64>>| -> Vec<Option<u64>> {
            v.iter().map(|o| o.map(f64::to_bits)).collect()
        };
        prop_assert_eq!(bits(&runs[0]), bits(&runs[1]));
    }

    /// MAPE is exactly 0 when the trace is perfectly predictable by the
    /// model: a constant trace under the naive forecaster.
    #[test]
    fn mape_is_zero_for_a_perfectly_predicted_trace(
        clients in 1u32..5_000,
        lead_s in 1u64..60,
    ) {
        let trace = LoadTrace::constant(clients);
        let report = backtest(
            &mut NaiveForecaster::new(),
            &trace,
            BacktestConfig {
                cadence: 2 * SECOND,
                lead: lead_s * SECOND,
                horizon: 300 * SECOND,
            },
        );
        prop_assert!(report.samples > 0);
        prop_assert_eq!(report.mape, 0.0);
        prop_assert_eq!(report.bias, 0.0);
        prop_assert_eq!(report.worst_abs_error, 0.0);
    }
}

/// The backtester ranks models the way the motivation claims: trend
/// beats naive on the preset diurnal ramp (the quantity
/// `predictive_policy` relies on).
#[test]
fn backtest_ranks_trend_above_naive_on_the_preset_diurnal() {
    let trace = LoadTrace::paper_diurnal();
    let cfg = BacktestConfig {
        cadence: 2 * SECOND,
        lead: 12 * SECOND,
        horizon: 240 * SECOND,
    };
    let naive = backtest(&mut NaiveForecaster::new(), &trace, cfg);
    let trend = backtest(&mut LinearTrendForecaster::new(5), &trace, cfg);
    assert!(
        trend.mape < naive.mape,
        "trend {:.4} vs naive {:.4}",
        trend.mape,
        naive.mape
    );
}
