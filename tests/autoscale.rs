//! End-to-end closed-loop autoscaling: the same policy code drives both
//! runners — the synchronous `LocalCluster` (real reconfiguration
//! transactions, invariants asserted every step) and the discrete-event
//! `ClusterSim` (virtual-time migration plans) — and both scale out under
//! a spike and drain back when it passes.

use marlin::autoscaler::{Controller, LocalHarness, ReactiveConfig, ReactivePolicy, ScaleAction};
use marlin::cluster::params::{CoordKind, SimParams};
use marlin::cluster::scenarios::autoscale::{peak_nodes, run_autoscale, AutoscaleSpec};
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

fn reactive(min: u32, max: u32) -> Controller {
    Controller::new(Box::new(ReactivePolicy::new(ReactiveConfig {
        cooldown: 0,
        ..ReactiveConfig::paper_default(min, max)
    })))
}

#[test]
fn local_cluster_spike_scales_out_and_back_with_invariants() {
    let mut harness = LocalHarness::bootstrap(2, 24);
    let mut controller = reactive(2, 4);
    // Offered load in node-capacity units: calm, spike past the 80%
    // watermark of a 2-node cluster, calm again.
    let offered = [0.6, 0.6, 3.4, 3.4, 0.5, 0.5];
    let mut sizes = Vec::new();
    for (tick, &load) in offered.iter().enumerate() {
        let obs = harness.observe(tick as u64 * SECOND, load);
        controller.tick(&obs, &mut harness);
        // Every control step leaves the cluster with exclusive granule
        // ownership, reconstructed from the storage logs.
        harness.cluster.assert_invariants();
        sizes.push(harness.members().len());
    }
    assert!(
        sizes.contains(&4),
        "spike must double the cluster: {sizes:?}"
    );
    assert_eq!(*sizes.last().unwrap(), 2, "calm must drain back: {sizes:?}");
}

#[test]
fn cluster_sim_spike_scales_out_and_back_on_live_nodes() {
    let spec = AutoscaleSpec {
        kind: CoordKind::Marlin,
        workload: Workload::Ycsb { granules: 2_000 },
        initial_nodes: 2,
        min_nodes: 2,
        max_nodes: 4,
        trace: LoadTrace::spike(8, 160, 10 * SECOND, 40 * SECOND),
        control_interval: 2 * SECOND,
        observe_window: 4 * SECOND,
        horizon: 70 * SECOND,
        threads_per_node: 4,
        params: SimParams::default(),
    };
    let mut controller = spec.reactive_controller();
    let sim = run_autoscale(&spec, &mut controller);

    assert_eq!(peak_nodes(&sim), 4, "spike must reach max_nodes");
    assert_eq!(sim.live_nodes(), 2, "calm must drain back to min_nodes");
    let outs = controller
        .history()
        .iter()
        .any(|(_, a)| matches!(a, ScaleAction::AddNodes { .. }));
    let ins = controller
        .history()
        .iter()
        .any(|(_, a)| matches!(a, ScaleAction::RemoveNodes { .. }));
    assert!(
        outs && ins,
        "both directions must fire: {:?}",
        controller.history()
    );
    // No granule may end on a released node — the simulator-side
    // equivalent of the dual-ownership check.
    let live = sim.live_node_ids();
    assert!(sim.owners().iter().all(|o| live.contains(o)));
    assert!(sim.metrics.migrations.total() > 0);
}

#[test]
fn the_same_policy_type_drives_both_runners() {
    // One policy configuration, two actuation worlds: the type system
    // guarantees it — this test exists to keep it that way (a refactor
    // that forks the policy layer per-runner breaks this file).
    let cfg = ReactiveConfig {
        cooldown: 0,
        ..ReactiveConfig::paper_default(2, 4)
    };

    let mut local = Controller::new(Box::new(ReactivePolicy::new(cfg.clone())));
    let mut harness = LocalHarness::bootstrap(2, 12);
    let obs = harness.observe(0, 3.2);
    let local_action = local.tick(&obs, &mut harness);
    assert!(matches!(local_action, Some(ScaleAction::AddNodes { .. })));

    let spec = AutoscaleSpec {
        kind: CoordKind::Marlin,
        workload: Workload::Ycsb { granules: 500 },
        initial_nodes: 2,
        min_nodes: 2,
        max_nodes: 4,
        trace: LoadTrace::constant(160),
        control_interval: 2 * SECOND,
        observe_window: 4 * SECOND,
        horizon: 20 * SECOND,
        threads_per_node: 4,
        params: SimParams::default(),
    };
    let mut remote = Controller::new(Box::new(ReactivePolicy::new(cfg)));
    let sim = run_autoscale(&spec, &mut remote);
    assert!(
        remote
            .history()
            .iter()
            .any(|(_, a)| matches!(a, ScaleAction::AddNodes { .. })),
        "saturated constant load must scale the sim out: {:?}",
        remote.history()
    );
    assert_eq!(peak_nodes(&sim), 4);
}
