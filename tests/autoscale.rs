//! End-to-end closed-loop autoscaling through the unified harness: the
//! same `Scenario` drives both runners — the synchronous `LocalCluster`
//! (real reconfiguration transactions, invariants asserted every step)
//! and the discrete-event `ClusterSim` (virtual-time migration plans) —
//! and both scale out under a spike and drain back when it passes.

use marlin::cluster::harness::{run, LocalRunner, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

/// A spike that decisively crosses the reactive policy's watermarks on
/// both runners: ~0.012 node-capacity per client, so 8 clients idle at
/// ~5% and 160 saturate two 4-vCPU nodes.
fn spike_scenario(granules: u64) -> Scenario {
    let s = Scenario::new("spike")
        .backend(CoordKind::Marlin)
        .workload(Workload::ycsb(granules))
        .trace(LoadTrace::spike(8, 160, 9 * SECOND, 29 * SECOND))
        .initial_nodes(2)
        .threads_per_node(4)
        .control_interval(2 * SECOND)
        .observe_window(4 * SECOND)
        .duration(50 * SECOND);
    let policy = s.reactive_policy(2, 4);
    s.policy(policy)
}

#[test]
fn local_cluster_spike_scales_out_and_back_with_invariants() {
    // `LocalRunner` asserts the I0–I4 invariants after every actuation;
    // a violation panics the run.
    let scenario = spike_scenario(24);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    assert_eq!(
        report.peak_nodes(),
        4,
        "spike must double the cluster: {:?}",
        report.decision_signature()
    );
    assert_eq!(
        report.metrics.live_nodes,
        2,
        "calm must drain back: {:?}",
        report.decision_signature()
    );
    assert!(report.metrics.migrations > 0, "real MigrationTxns executed");
    runner.harness().cluster.assert_invariants();
}

#[test]
fn cluster_sim_spike_scales_out_and_back_on_live_nodes() {
    let scenario = spike_scenario(2_000);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    assert_eq!(report.peak_nodes(), 4, "spike must reach max_nodes");
    assert_eq!(report.metrics.live_nodes, 2, "calm must drain back");
    let sig = report.decision_signature();
    let outs = sig.iter().any(|(_, a)| a.starts_with("add"));
    let ins = sig.iter().any(|(_, a)| a.starts_with("remove"));
    assert!(outs && ins, "both directions must fire: {sig:?}");
    // No granule may end on a released node — the simulator-side
    // equivalent of the dual-ownership check.
    let live = runner.sim().live_node_ids();
    assert!(runner.sim().owners().iter().all(|o| live.contains(o)));
    assert!(report.metrics.migrations > 0);
}

#[test]
fn the_same_scenario_value_drives_both_runners() {
    // One declarative spec, two actuation worlds: the harness guarantees
    // it — this test exists to keep it that way (a refactor that forks
    // the scenario layer per-runner breaks this file).
    let local_report = {
        let scenario = spike_scenario(12);
        let mut runner = LocalRunner::new(&scenario);
        run(scenario, &mut runner)
    };
    let sim_report = {
        let scenario = spike_scenario(500);
        let mut runner = SimRunner::new(&scenario);
        run(scenario, &mut runner)
    };
    for report in [&local_report, &sim_report] {
        assert!(
            report
                .decision_signature()
                .iter()
                .any(|(_, a)| a.starts_with("add")),
            "{}: the spike must scale out: {:?}",
            report.runner,
            report.decision_signature()
        );
        assert_eq!(report.policy.as_deref(), Some("reactive"));
    }
    assert_eq!(local_report.runner, "local-cluster");
    assert_eq!(sim_report.runner, "cluster-sim");
}
