//! Client-engine parity: `Exact` vs `Cohort` on every §6 preset.
//!
//! The cohort scale engine is opt-in (`SimParams::client_engine`) and
//! **parity-pinned**: below `cohort_min_clients` (default 10,000 — above
//! every §6 preset's peak) a `Cohort` run routes through the literal
//! exact per-client path, so its decision log and full report digest
//! must be *bit-identical* to an `Exact` run of the same scenario. That
//! pin is what lets the fuzz swarm sample the engine freely without
//! forking its digest corpus, and what keeps the historical §6 digests
//! authoritative.
//!
//! The latency histogram rides the same pin: the cohort leg of every
//! preset runs with `latency_hist(true)`, which below `hist_min_clients`
//! must route through the literal exact tuple window — so the digests
//! above also certify the histogram knob is inert at §6 scale.
//!
//! The file also pins the approximating components when they *are*
//! active: the count-min heat sketch must produce the same rebalance
//! plan as the exact heat vector on the skewed-access preset, the
//! log-bucketed histogram's p99 must stay within its documented 1/32
//! relative-error bound at `million_clients` scale, and the aggregate
//! cohort path (forced on by `cohort_min_clients(0)`) must still drive
//! the closed autoscaling loop sensibly.

use marlin::cluster::harness::{run, RunReport, Scenario, SimRunner};
use marlin::cluster::params::{ClientEngine, CoordKind, CpuModel};
use marlin::fuzz::report_digest;
use marlin::sim::SECOND;

/// Run `make()`'s scenario once per engine and return both reports,
/// asserting the cohort leg actually took the pinned exact path. The
/// cohort leg also arms the latency histogram: every §6 preset peaks
/// below `hist_min_clients`, so the histogram must stay parity-pinned
/// to the exact tuple window — same discipline, same digest.
fn parity_pair(make: impl Fn() -> Scenario) -> (RunReport, RunReport) {
    let exact_s = make().client_engine(ClientEngine::Exact);
    let mut exact_r = SimRunner::new(&exact_s);
    let exact = run(exact_s, &mut exact_r);

    let cohort_s = make()
        .client_engine(ClientEngine::Cohort)
        .latency_hist(true);
    let mut cohort_r = SimRunner::new(&cohort_s);
    assert!(
        !cohort_r.sim().cohort_active(),
        "§6 presets sit below the activation threshold — the parity pin"
    );
    assert!(
        !cohort_r.sim().hist_active(),
        "§6 presets sit below hist_min_clients — the histogram parity pin"
    );
    let cohort = run(cohort_s, &mut cohort_r);
    (exact, cohort)
}

/// The parity oracle: identical decision logs, identical report digests
/// (FNV over the full JSON with wall-clock actuation times zeroed).
fn assert_parity(name: &str, make: impl Fn() -> Scenario) {
    let (exact, cohort) = parity_pair(make);
    assert_eq!(
        exact.decision_signature(),
        cohort.decision_signature(),
        "{name}: decision logs diverge across engines"
    );
    assert_eq!(
        report_digest(&exact),
        report_digest(&cohort),
        "{name}: report digests diverge across engines"
    );
}

#[test]
fn ycsb_scale_out_is_engine_invariant() {
    assert_parity("ycsb_scale_out", || {
        Scenario::ycsb_scale_out(CoordKind::Marlin, 10)
    });
}

#[test]
fn tpcc_scale_out_is_engine_invariant() {
    assert_parity("tpcc_scale_out", || {
        Scenario::tpcc_scale_out(CoordKind::Marlin, 10)
    });
}

#[test]
fn sweep_point_is_engine_invariant() {
    assert_parity("sweep_point", || {
        Scenario::sweep_point(CoordKind::Fdb, 2, 10)
    });
}

#[test]
fn dynamic_burst_is_engine_invariant() {
    assert_parity("dynamic_burst", || {
        Scenario::dynamic_burst(CoordKind::ZkSmall, 10)
    });
}

#[test]
fn membership_is_engine_invariant() {
    assert_parity("membership", || {
        Scenario::membership(CoordKind::Marlin, 8, 5 * SECOND, 20 * SECOND)
    });
}

#[test]
fn autoscale_spike_is_engine_invariant() {
    assert_parity("autoscale_spike", || {
        Scenario::autoscale_spike(CoordKind::Marlin, 10)
    });
}

#[test]
fn autoscale_diurnal_is_engine_invariant() {
    assert_parity("autoscale_diurnal", || {
        Scenario::autoscale_diurnal(CoordKind::Marlin, 2_000)
    });
}

#[test]
fn cpu_model_comparison_is_engine_invariant() {
    assert_parity("cpu_model_comparison", || {
        Scenario::cpu_model_comparison(CoordKind::Marlin, 10, CpuModel::PerRequest)
    });
}

#[test]
fn geo_autoscale_is_engine_invariant() {
    assert_parity("geo_autoscale", || {
        Scenario::geo_autoscale(CoordKind::Marlin, 1_600)
    });
}

#[test]
fn zipfian_rebalance_is_engine_invariant() {
    assert_parity("zipfian_rebalance", || {
        Scenario::zipfian_rebalance(CoordKind::Marlin, 2_000, 0.9)
    });
}

#[test]
fn predictive_diurnal_is_engine_invariant() {
    assert_parity("predictive_diurnal", || {
        Scenario::predictive_diurnal(CoordKind::Marlin, 2_000)
    });
}

#[test]
fn predictive_geo_is_engine_invariant() {
    assert_parity("predictive_geo", || {
        Scenario::predictive_geo(CoordKind::Marlin, 1_600)
    });
}

// ---------------------------------------------------------------------------
// The approximating components, active.

/// The count-min sketch must agree with the exact heat vector where it
/// matters: the rebalance plan the planner derives from the observed hot
/// granules. Zipfian skew separates the head granules by orders of
/// magnitude, so the sketch's bounded overestimate cannot reorder them.
#[test]
fn sketched_heat_reproduces_the_exact_rebalance_plan() {
    let build = |sketch: bool| {
        let mut s = Scenario::zipfian_rebalance(CoordKind::Marlin, 2_000, 0.9).heat_sketch(sketch);
        // The preset's 2,000 granules sit below the default exact-mode
        // cutoff; lower it so the sketch is genuinely exercised.
        s.params.sketch_min_granules = 1_024;
        s
    };
    let run_one = |sketch: bool| {
        let s = build(sketch);
        let mut r = SimRunner::new(&s);
        let report = run(s, &mut r);
        assert_eq!(r.sim().heat_sketched(), sketch);
        report
    };
    let exact = run_one(false);
    let sketched = run_one(true);
    let plans = |r: &RunReport| -> Vec<(u64, String)> {
        r.decision_signature()
            .into_iter()
            .filter(|(_, a)| a.starts_with("rebalance"))
            .collect()
    };
    assert!(
        !plans(&exact).is_empty(),
        "the skew must provoke rebalance plans"
    );
    assert_eq!(
        plans(&exact),
        plans(&sketched),
        "sketched heat must yield the exact heat's rebalance plan"
    );
}

/// Above `hist_min_clients` the log-bucketed histogram genuinely runs,
/// and its p99 must honor the documented bound: an underestimate within
/// one sub-bucket, `exact - hist <= hist / 32`. The hold policy and the
/// planner never read p99, so the two runs' event streams are identical
/// and every control tick's observation pairs an exact p99 with its
/// histogram estimate of the *same* window.
#[test]
fn histogram_p99_stays_within_the_documented_error_bound_at_scale() {
    // Scale 100 ⇒ 10,000 clients — exactly the activation threshold.
    let run_one = |hist: bool| {
        let s = Scenario::million_clients(100).latency_hist(hist);
        let mut r = SimRunner::new(&s);
        assert!(r.sim().cohort_active(), "the preset pins the scale engine");
        assert_eq!(r.sim().hist_active(), hist);
        run(s, &mut r)
    };
    let exact = run_one(false);
    let hist = run_one(true);
    assert_eq!(
        exact.decision_signature(),
        hist.decision_signature(),
        "p99 derivation must not perturb the decision stream"
    );
    assert_eq!(exact.metrics.commits, hist.metrics.commits);
    let mut checked = 0u32;
    for (e, h) in exact.log.iter().zip(&hist.log) {
        assert_eq!(e.at, h.at);
        assert_eq!(
            e.observation.throughput_tps, h.observation.throughput_tps,
            "tick {}: identical event streams must agree on throughput",
            e.tick
        );
        let (ep, hp) = (e.observation.p99_latency, h.observation.p99_latency);
        if ep == 0 && hp == 0 {
            continue; // warm-up tick with an empty window
        }
        assert!(
            hp <= ep,
            "tick {}: bucket lower bounds underestimate (hist {hp} > exact {ep})",
            e.tick
        );
        assert!(
            ep - hp <= hp / 32,
            "tick {}: histogram p99 {hp} misses exact {ep} by more than 1/32",
            e.tick
        );
        checked += 1;
    }
    assert!(checked > 0, "the run must produce non-empty p99 windows");
}

/// Force the aggregate path on at §6 scale (no bit-parity expected —
/// cohorts approximate) and check the closed loop still works: the
/// spike provokes a scale-out, the calm drains it, and the run commits.
#[test]
fn forced_cohort_engine_still_drives_the_autoscaling_loop() {
    let scenario = Scenario::autoscale_spike(CoordKind::Marlin, 10)
        .client_engine(ClientEngine::Cohort)
        .cohort_min_clients(0);
    let initial = scenario.initial_nodes;
    let mut runner = SimRunner::new(&scenario);
    assert!(
        runner.sim().cohort_active(),
        "threshold 0 forces cohorts on"
    );
    let report = run(scenario, &mut runner);
    assert!(report.metrics.commits > 0, "the cohort engine must commit");
    assert!(
        report.peak_nodes() > initial,
        "the spike must provoke a scale-out under cohort load (peak {} vs initial {initial})",
        report.peak_nodes()
    );
    assert_eq!(
        report.metrics.live_nodes, initial,
        "the calm must drain back to the floor"
    );
}

/// The cohort engine tracks trace-driven client changes: active counts
/// follow the trace through the spike and back.
#[test]
fn cohort_engine_follows_the_load_trace() {
    let scenario = Scenario::autoscale_spike(CoordKind::Marlin, 10)
        .client_engine(ClientEngine::Cohort)
        .cohort_min_clients(0);
    let mut runner = SimRunner::new(&scenario);
    // The runner provisions at the trace *peak*; the t=0 step down to
    // the base count is itself a scheduled event, so advance past it.
    runner.sim_mut().run_until(SECOND);
    let base = runner.sim().active_clients();
    runner.sim_mut().run_until(25 * SECOND);
    let at_spike = runner.sim().active_clients();
    runner.sim_mut().run_until(85 * SECOND);
    let after_calm = runner.sim().active_clients();
    assert!(
        at_spike > base,
        "spike must raise active clients ({base} -> {at_spike})"
    );
    assert_eq!(after_calm, base, "calm must restore the base count");
}
