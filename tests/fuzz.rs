//! Pins on the deterministic scenario fuzzer (`marlin::fuzz`).
//!
//! Three promises the swarm workflow rests on, each pinned end to end:
//!
//! 1. **Replayability from a seed** — the same seed generates a
//!    byte-identical scenario (repro serialization and scenario
//!    manifest) and a bit-identical decision-log digest across runs.
//! 2. **Shrinking converges** — a seeded case that violates a planted
//!    invariant shrinks to a minimal schedule (≤ the pinned event
//!    count) that still violates it.
//! 3. **Repro artifacts replay exactly** — parsing a failure's repro
//!    artifact and re-running it reproduces the identical `RunReport`
//!    digest the shrinker recorded.

use marlin::cluster::harness::{run, SimRunner};
use marlin::cluster::params::ClientEngine;
use marlin::fuzz::{
    fuzz_seed, generate, report_digest, run_case, FuzzCase, FuzzConfig, FuzzEvent, RunnerKind,
};

/// Everything at MARLIN_SCALE=20-equivalent so the whole file stays fast.
const SCALE: u64 = 20;

fn quick_cfg() -> FuzzConfig<'static> {
    FuzzConfig {
        scale: SCALE,
        shrink_budget: 300,
        oracle: None,
    }
}

/// Promise 1: seed → scenario is a pure function, and the run digest is
/// bit-stable. Covers both runners so the local path (real
/// reconfiguration transactions) is pinned too.
#[test]
fn same_seed_generates_identical_scenario_and_decision_log() {
    let cfg = quick_cfg();
    let mut runners_seen = (false, false);
    let mut checked = 0;
    for seed in 0..60 {
        let a = generate(seed, SCALE);
        let b = generate(seed, SCALE);
        // Byte-identical generated scenario: the repro text and the
        // harness manifest both serialize every choice.
        assert_eq!(a.to_repro(), b.to_repro(), "seed {seed}");
        assert_eq!(
            a.build_scenario().manifest_json(),
            b.build_scenario().manifest_json(),
            "seed {seed}"
        );
        // Bit-identical decision log: run a sample of seeds twice and
        // compare stripped-report digests (covering both runners).
        let run_it = match a.runner {
            RunnerKind::Local if !runners_seen.0 => {
                runners_seen.0 = true;
                true
            }
            RunnerKind::Sim if !runners_seen.1 => {
                runners_seen.1 = true;
                true
            }
            _ => checked < 4,
        };
        if run_it {
            checked += 1;
            let x = fuzz_seed(seed, &cfg);
            let y = fuzz_seed(seed, &cfg);
            assert_eq!(x.digest, y.digest, "seed {seed} digest unstable");
        }
    }
    assert!(
        runners_seen.0 && runners_seen.1,
        "sweep must exercise both runners"
    );
}

/// Promise 2: a known-violation case shrinks to a minimal schedule.
/// The planted invariant trips whenever a crash and a scripted add
/// coexist in the schedule — so the minimal still-failing case carries
/// exactly those two events, and the pin allows a small margin.
#[test]
fn planted_violation_shrinks_to_minimal_schedule() {
    let trips = |case: &FuzzCase| {
        let has = |f: fn(&FuzzEvent) -> bool| case.events.iter().any(|e| f(&e.event));
        has(|e| matches!(e, FuzzEvent::Crash { .. }))
            && has(|e| matches!(e, FuzzEvent::AddNodes { .. }))
    };
    let oracle = move |case: &FuzzCase, _: &marlin::cluster::RunReport| -> Vec<String> {
        if trips(case) {
            vec!["planted: crash+add coexist".to_string()]
        } else {
            Vec::new()
        }
    };
    let cfg = FuzzConfig {
        scale: SCALE,
        shrink_budget: 500,
        oracle: Some(&oracle),
    };
    // Deterministically search the low seeds for a qualifying case with
    // a busy schedule, so shrinking has real work to do.
    let seed = (0..500)
        .find(|&s| {
            let c = generate(s, SCALE);
            trips(&c) && c.events.len() >= 4
        })
        .expect("some low seed has crash+add among >= 4 events");
    let outcome = fuzz_seed(seed, &cfg);
    let failure = outcome.failure.expect("planted invariant must fire");
    assert!(
        failure.shrunk.events.len() <= 10,
        "shrunk case still has {} events",
        failure.shrunk.events.len()
    );
    // The pass structure actually reaches the true minimum: exactly the
    // crash and the add survive.
    assert_eq!(failure.shrunk.events.len(), 2, "crash + add only");
    assert!(trips(&failure.shrunk), "shrunk case still violates");
}

/// Planted-divergence self-test for the engine-sampling swarm: the
/// digest oracle only protects the `Cohort` parity pin if a *genuine*
/// engine divergence would actually move the digest. Force the
/// aggregate cohort path on a generated sim case (activation threshold
/// 0) and check the digest separates from the exact run — while the
/// pinned run (default threshold) stays bit-identical to it.
#[test]
fn digest_oracle_detects_a_planted_engine_divergence() {
    let seed = (0..200)
        .find(|&s| generate(s, SCALE).runner == RunnerKind::Sim)
        .expect("some low seed runs on the simulator");
    let case = generate(seed, SCALE);
    let digest_with = |engine: ClientEngine, min_clients: u32| {
        let mut scenario = case.build_scenario().client_engine(engine);
        scenario.params.cohort_min_clients = min_clients;
        let mut runner = SimRunner::new(&scenario);
        report_digest(&run(scenario, &mut runner))
    };
    let exact = digest_with(ClientEngine::Exact, 10_000);
    let pinned = digest_with(ClientEngine::Cohort, 10_000);
    let aggregate = digest_with(ClientEngine::Cohort, 0);
    assert_eq!(exact, pinned, "seed {seed}: the parity pin must hold");
    assert_ne!(
        exact, aggregate,
        "seed {seed}: a real engine divergence must move the digest, or the oracle is blind"
    );
}

/// Promise 3: a repro artifact replays to the identical report digest.
#[test]
fn repro_artifact_replays_to_identical_digest() {
    // Any schedule event trips the planted oracle, so every seeded case
    // with events yields a failure carrying a repro artifact.
    let oracle = |case: &FuzzCase, _: &marlin::cluster::RunReport| -> Vec<String> {
        if case.events.is_empty() {
            Vec::new()
        } else {
            vec!["planted: schedule non-empty".to_string()]
        }
    };
    let cfg = FuzzConfig {
        scale: SCALE,
        shrink_budget: 300,
        oracle: Some(&oracle),
    };
    let seed = (0..200)
        .find(|&s| !generate(s, SCALE).events.is_empty())
        .expect("some low seed has events");
    let failure = fuzz_seed(seed, &cfg).failure.expect("oracle fired");

    // Write the artifact out and read it back through the same path the
    // `fuzz_swarm replay` subcommand uses.
    let path = std::env::temp_dir().join(format!("marlin_fuzz_repro_{seed}.txt"));
    std::fs::write(&path, &failure.repro).expect("write repro");
    let text = std::fs::read_to_string(&path).expect("read repro");
    std::fs::remove_file(&path).ok();

    let replayed = FuzzCase::from_repro(&text).expect("repro parses");
    assert_eq!(replayed, failure.shrunk, "artifact round-trips the case");
    let rerun = run_case(&replayed, cfg.oracle);
    assert_eq!(
        rerun.digest, failure.digest,
        "replay must reproduce the identical report digest"
    );
    assert!(
        !rerun.violations.is_empty(),
        "replay must reproduce the violation"
    );
}
