//! The per-request queueing CPU model vs the analytic EMA station.
//!
//! `CpuModel::Analytic` must stay bit-identical to the historical
//! decision logs (the runner-parity suite pins that separately); this
//! file pins what the new `CpuModel::PerRequest` mode buys on the
//! autoscale spike: commit latencies are exact sojourn times, so the
//! windowed p99 in the decision log responds to queue build-up at the
//! spike edge *before* (and far beyond) the analytic approximation,
//! which clamps per-request congestion delay and flattens the tail.

use marlin::cluster::harness::{run, RunReport, Scenario, SimRunner};
use marlin::cluster::params::{CoordKind, CpuModel};
use marlin::cluster::sim::Workload;
use marlin::sim::{Nanos, MILLISECOND, SECOND};
use marlin::workload::LoadTrace;

/// The p99 ceiling armed on the reactive policy. The
/// `cpu_model_comparison` preset uses 150 ms at paper scale; at this
/// test's 2-node scale the closed loop bounds the worst sojourn near
/// 120 ms (at most 200 in-flight requests can queue), so the hatch sits
/// at 90 ms — above anything the analytic clamp reports before its EMA
/// converges, below the true sojourn p99 of the first post-spike window.
const CEILING: Nanos = 90 * MILLISECOND;

/// The autoscale spike at test scale: the same shape as
/// `Scenario::cpu_model_comparison` (spike trace, reactive policy with
/// the 150 ms p99 escape hatch armed), shrunk from 8–16 nodes / 800
/// clients to 2–4 nodes / 200 clients so the debug-mode suite stays
/// fast. Spike edges sit 4 s before a control tick, as in the parity
/// scenario.
fn spike_scenario(model: CpuModel) -> Scenario {
    let s = Scenario::new(format!("cpu-model-test-{}", model.name()))
        .backend(CoordKind::Marlin)
        .workload(Workload::ycsb(800))
        .trace(LoadTrace::spike(8, 200, 6 * SECOND, 26 * SECOND))
        .initial_nodes(2)
        .threads_per_node(8)
        .control_interval(2 * SECOND)
        .observe_window(4 * SECOND)
        .duration(36 * SECOND)
        .cpu_model(model);
    let policy = Box::new(marlin::autoscaler::ReactivePolicy::new(
        marlin::autoscaler::ReactiveConfig {
            step_nodes: 2,
            cooldown: 3 * 2 * SECOND,
            p99_ceiling: Some(CEILING),
            ..marlin::autoscaler::ReactiveConfig::paper_default(2, 4)
        },
    ));
    s.policy(policy)
}

fn spike_report(model: CpuModel) -> RunReport {
    let scenario = spike_scenario(model);
    let mut runner = SimRunner::new(&scenario);
    run(scenario, &mut runner)
}

/// p99 series from the decision log: (tick time, p99).
fn p99_series(report: &RunReport) -> Vec<(Nanos, Nanos)> {
    report
        .log
        .iter()
        .map(|r| (r.at, r.observation.p99_latency))
        .collect()
}

#[test]
fn per_request_p99_responds_to_queue_buildup_before_the_analytic_model() {
    let analytic = spike_report(CpuModel::Analytic);
    let per_request = spike_report(CpuModel::PerRequest);
    assert_eq!(analytic.cpu_model, "analytic");
    assert_eq!(per_request.cpu_model, "per-request");

    let spike_at = 6 * SECOND;
    // Common threshold: 25% above the worst pre-spike p99 either model
    // saw — decisively out of the calm band, reachable by both models.
    let base = p99_series(&analytic)
        .iter()
        .chain(p99_series(&per_request).iter())
        .filter(|&&(t, _)| t < spike_at)
        .map(|&(_, p)| p)
        .max()
        .expect("pre-spike ticks exist");
    let threshold = base + base / 4;
    let first_breach = |report: &RunReport, threshold: Nanos| {
        p99_series(report)
            .iter()
            .find(|&&(t, p)| t >= spike_at && p > threshold)
            .map(|&(t, _)| t)
    };
    eprintln!("analytic series:    {:?}", p99_series(&analytic));
    eprintln!("per-request series: {:?}", p99_series(&per_request));

    let pr = first_breach(&per_request, threshold)
        .expect("per-request p99 must react to the queue build-up");
    // The core pin: exact sojourn times surface the backlog in the very
    // first post-spike observation window, strictly before the analytic
    // EMA has converged on it. (`None` means the clamp kept analytic
    // below the threshold entirely — an even stronger divergence.)
    if let Some(an) = first_breach(&analytic, threshold) {
        assert!(
            pr < an,
            "per-request p99 must breach strictly before analytic: {pr} vs {an}"
        );
    }

    // The tail itself: exact sojourn times grow with the real backlog,
    // the analytic clamp flattens — the per-request peak must clearly
    // exceed the analytic one.
    let peak = |r: &RunReport| p99_series(r).iter().map(|&(_, p)| p).max().unwrap();
    let (pr_peak, an_peak) = (peak(&per_request), peak(&analytic));
    assert!(
        pr_peak > an_peak + an_peak / 4,
        "per-request peak p99 ({pr_peak}) must clearly exceed the clamped analytic one ({an_peak})"
    );
}

#[test]
fn per_request_mode_sharpens_the_p99_escape_hatch() {
    // The reactive policy's latency escape hatch fires on `p99 >
    // ceiling`. Under per-request pricing the spike's true sojourn times
    // cross the ceiling, so the hatch is live; the run must still scale
    // out on the spike and drain back, ending healthy.
    let report = spike_report(CpuModel::PerRequest);
    let sig = report.decision_signature();
    assert!(
        sig.iter().any(|(_, a)| a.starts_with("add")),
        "the spike must provoke a scale-out: {sig:?}"
    );
    assert!(
        sig.iter().any(|(_, a)| a.starts_with("remove")),
        "the calm must drain back: {sig:?}"
    );
    assert_eq!(report.metrics.live_nodes, 2, "ends at the floor");
    // The hatch had real teeth: at least one observed tick crossed the
    // ceiling while the cluster was still at its pre-spike size.
    assert!(
        report
            .log
            .iter()
            .any(|r| r.observation.p99_latency > CEILING && r.observation.live_nodes == 2),
        "true sojourn p99 must cross the ceiling during the build-up"
    );
}

#[test]
fn both_models_report_their_identity_and_stay_deterministic() {
    // Same scenario + seed + model → identical decision logs and commit
    // counts (the per-request station must be as deterministic as the
    // EMA it complements).
    let a = spike_report(CpuModel::PerRequest);
    let b = spike_report(CpuModel::PerRequest);
    assert_eq!(a.decision_signature(), b.decision_signature());
    assert_eq!(a.metrics.commits, b.metrics.commits);
    assert_eq!(a.cpu_model, "per-request");
}
