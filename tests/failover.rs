//! The paper's failover story (§4.4.2, Figure 7), executed end-to-end:
//! heartbeat suspicion → RecoveryMigrTxn committing to the dead node's
//! GLog → the recovered node's stale transaction aborting during
//! MarlinCommit → cache refresh discovering the lost granules →
//! DeleteNodeTxn — plus the Cornus-style termination protocol for
//! transactions left in doubt by an ill-timed crash.

use bytes::Bytes;
use marlin::common::{
    ClusterConfig, CoordError, GranuleId, GranuleLayout, KeyRange, NodeId, TableId, TxnError,
};
use marlin::core::failure::{DetectorConfig, RingDetector};
use marlin::core::LocalCluster;

const TABLE: TableId = TableId(0);

fn config(nodes: u32, granules: u64) -> ClusterConfig {
    ClusterConfig {
        initial_nodes: (0..nodes).map(NodeId).collect(),
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, granules * 100),
            granules,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    }
}

/// The full Figure 7 walkthrough.
#[test]
fn figure7_failover_and_recovery_race() {
    // Three nodes; node 2 owns granules 6..9 (keys [600, 900)).
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));
    cluster
        .user_txn(
            NodeId(2),
            TABLE,
            &[],
            &[(650, Bytes::from_static(b"durable"))],
        )
        .unwrap();

    // Step 1: N1's ring detector times out on N2.
    let mut detector = RingDetector::new(
        NodeId(1),
        DetectorConfig {
            fanout: 1,
            miss_threshold: 3,
        },
    );
    cluster.refresh_mtable(NodeId(1));
    detector.update_membership(cluster.node(NodeId(1)).marlin.mtable());
    assert_eq!(detector.monitored(), vec![NodeId(2)]);
    cluster.kill(NodeId(2));
    for _ in 0..4 {
        let targets = detector.tick();
        // Heartbeats to a dead node get no ack.
        assert!(targets.contains(&NodeId(2)));
    }
    assert_eq!(detector.take_suspicions(), vec![NodeId(2)]);

    // Step 2: N1 runs RecoveryMigrTxn for N2's granules. The commit lands
    // on BOTH GLog(1) and GLog(2) even though N2 is unresponsive.
    let victims = vec![GranuleId(6), GranuleId(7), GranuleId(8)];
    cluster
        .recovery_migrate(NodeId(1), NodeId(2), victims.clone())
        .unwrap();
    cluster.assert_invariants();
    for g in &victims {
        assert!(cluster.node(NodeId(1)).marlin.owned_granules().contains(g));
    }

    // The data survived: N1 recovered the rows from the shared page store.
    let reads = cluster.user_txn(NodeId(1), TABLE, &[650], &[]).unwrap();
    assert_eq!(reads[0], Some(Bytes::from_static(b"durable")));

    // Step 3: N2 comes back (it was merely slow) and tries a user
    // transaction on granule 6. Its MarlinCommit CAS on GLog(2) fails
    // because the recovery advanced the log; the txn aborts.
    cluster.revive(NodeId(2));
    let err = cluster
        .user_txn(
            NodeId(2),
            TABLE,
            &[],
            &[(660, Bytes::from_static(b"stale-write"))],
        )
        .unwrap_err();
    assert!(
        matches!(err, TxnError::CommitConflict { .. }),
        "the stale write must abort during MarlinCommit, got {err}"
    );
    // The abort invalidated and refreshed N2's partition cache: it now
    // knows it lost the granules, so the next request gets a redirect.
    let err = cluster.user_txn(NodeId(2), TABLE, &[660], &[]).unwrap_err();
    assert_eq!(
        err,
        TxnError::WrongNode {
            granule: GranuleId(6),
            owner: NodeId(1)
        }
    );
    // And the stale write never became visible at the new owner.
    let reads = cluster.user_txn(NodeId(1), TABLE, &[660], &[]).unwrap();
    assert_eq!(reads[0], None);

    // Step 4: N1 removes N2 from the membership.
    cluster.delete_node(NodeId(1), NodeId(2)).unwrap();
    cluster.refresh_mtable(NodeId(0));
    assert_eq!(
        cluster.node(NodeId(0)).marlin.mtable().scan(),
        vec![NodeId(0), NodeId(1)]
    );
    cluster.assert_invariants();
}

/// Two nodes race to recover the same dead node's granules; the GLog CAS
/// lets exactly one win per granule.
#[test]
fn racing_recoveries_never_dual_own() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));
    cluster.kill(NodeId(2));
    let r0 = cluster.recovery_migrate(NodeId(0), NodeId(2), vec![GranuleId(6)]);
    let r1 = cluster.recovery_migrate(NodeId(1), NodeId(2), vec![GranuleId(6)]);
    // The first recovery wins; the second must fail its data-effectiveness
    // check (refreshed view shows the granule already moved) or its CAS.
    assert!(r0.is_ok());
    assert!(
        r1.is_err(),
        "second recovery must not also claim the granule"
    );
    cluster.assert_invariants();
    assert!(cluster
        .node(NodeId(0))
        .marlin
        .owned_granules()
        .contains(&GranuleId(6)));
    assert!(!cluster
        .node(NodeId(1))
        .marlin
        .owned_granules()
        .contains(&GranuleId(6)));
}

/// A recovered node whose *read-only* traffic resumes: reads don't commit
/// anything, so the ownership discovery happens via the guard after the
/// first failed write refreshes the cache.
#[test]
fn recovered_node_reads_stale_until_first_commit_attempt() {
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    cluster.kill(NodeId(1));
    cluster
        .recovery_migrate(NodeId(0), NodeId(1), vec![GranuleId(4)])
        .unwrap();
    cluster.revive(NodeId(1));
    // N1 still thinks it owns granule 4 (stale cache) and will serve a
    // read — this is the documented weak spot that the paper closes on
    // the *write* path: the commit CAS catches it.
    let stale_read = cluster.user_txn(NodeId(1), TABLE, &[450], &[]);
    assert!(
        stale_read.is_ok(),
        "read-only traffic does not touch the log"
    );
    let err = cluster
        .user_txn(NodeId(1), TABLE, &[], &[(450, Bytes::from_static(b"x"))])
        .unwrap_err();
    assert!(matches!(err, TxnError::CommitConflict { .. }));
    // Now the cache is fresh; even reads are redirected.
    let err = cluster.user_txn(NodeId(1), TABLE, &[450], &[]).unwrap_err();
    assert!(matches!(err, TxnError::WrongNode { .. }));
}

/// Delete of a dead node plus recovery of its data, in either order.
#[test]
fn delete_after_recovery_keeps_cluster_consistent() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 6));
    cluster.kill(NodeId(0));
    cluster
        .recovery_migrate(NodeId(1), NodeId(0), vec![GranuleId(0)])
        .unwrap();
    cluster
        .recovery_migrate(NodeId(2), NodeId(0), vec![GranuleId(1)])
        .unwrap();
    cluster.delete_node(NodeId(1), NodeId(0)).unwrap();
    cluster.assert_invariants();
    cluster.refresh_mtable(NodeId(2));
    assert_eq!(
        cluster.node(NodeId(2)).marlin.mtable().scan(),
        vec![NodeId(1), NodeId(2)]
    );
}

/// The termination protocol: a migration's decision message is lost
/// because the source dies mid-commit; a third node resolves the in-doubt
/// transaction from the logs (Cornus-style, §4.3.2).
#[test]
fn termination_protocol_resolves_in_doubt_txns() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));

    // Set up a prepared-but-undecided transaction on N0's GLog by hand:
    // run a migration whose decision delivery is suppressed by killing the
    // source right after its vote. We emulate the partial failure by
    // appending the prepared record directly (the runtime's synchronous
    // pump otherwise always completes).
    use marlin::common::{LogId, TxnId};
    use marlin::core::records::{GRecord, OwnershipSwap};
    let txn = TxnId::new(NodeId(1), 4242);
    let swap = OwnershipSwap {
        table: TABLE,
        granule: GranuleId(0),
        range: KeyRange::new(0, 100),
        old: NodeId(0),
        new: NodeId(1),
    };
    let prepared = GRecord::Prepared {
        txn,
        swaps: vec![swap],
        participants: vec![LogId::GLog(NodeId(0)), LogId::GLog(NodeId(1))],
    };
    // N0 voted YES (prepared record in its log)...
    let end = cluster.storage().end_lsn(LogId::GLog(NodeId(0))).unwrap();
    cluster
        .storage()
        .conditional_append(LogId::GLog(NodeId(0)), vec![prepared.encode()], end)
        .unwrap();
    // ...but the coordinator N1 crashed before logging its own vote or any
    // decision. N0 then dies too; N2 finds the in-doubt txn.
    cluster.kill(NodeId(0));
    let resolved = cluster.resolve_in_doubt(NodeId(2), NodeId(0));
    assert_eq!(resolved, vec![txn]);

    // Not all participants voted YES ⇒ the termination rule aborts: the
    // swap must NOT have been applied anywhere.
    cluster.refresh_foreign(NodeId(2), NodeId(0));
    let p = cluster
        .node(NodeId(2))
        .marlin
        .foreign_partition(NodeId(0))
        .unwrap();
    assert_eq!(p.owner_of(GranuleId(0)), Some(NodeId(0)));
    assert!(p.in_doubt().is_empty(), "the txn must be resolved");
    cluster.assert_invariants();
}

/// Full-cluster churn: kill a node, recover, re-add it as a fresh member,
/// rebalance back. Ownership stays exclusive throughout.
#[test]
fn churn_cycle_kill_recover_readd_rebalance() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));
    cluster.kill(NodeId(1));
    // Recover all of N1's granules onto N0.
    cluster
        .recovery_migrate(
            NodeId(0),
            NodeId(1),
            vec![GranuleId(3), GranuleId(4), GranuleId(5)],
        )
        .unwrap();
    cluster.delete_node(NodeId(0), NodeId(1)).unwrap();
    cluster.assert_invariants();

    // The node returns as a fresh member (new identity in practice; same
    // id is fine once deleted).
    cluster.revive(NodeId(1));
    // Its stale state gets repaired on the first commit attempt...
    let _ = cluster.user_txn(NodeId(1), TABLE, &[], &[(350, Bytes::from_static(b"z"))]);
    // ...and it rejoins.
    cluster
        .add_node(NodeId(1), "10.0.0.1-rejoined".into())
        .unwrap();
    cluster
        .migrate(NodeId(0), NodeId(1), TABLE, vec![GranuleId(3)])
        .unwrap();
    cluster.assert_invariants();
    assert!(cluster
        .node(NodeId(1))
        .marlin
        .owned_granules()
        .contains(&GranuleId(3)));
    // And serves traffic again.
    cluster
        .user_txn(NodeId(1), TABLE, &[], &[(350, Bytes::from_static(b"back"))])
        .unwrap();
    let reads = cluster.user_txn(NodeId(1), TABLE, &[350], &[]).unwrap();
    assert_eq!(reads[0], Some(Bytes::from_static(b"back")));
}

/// Recovery fails cleanly when the "dead" node was already drained.
#[test]
fn recovery_of_already_recovered_granule_fails_effectiveness_check() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));
    cluster.kill(NodeId(2));
    cluster
        .recovery_migrate(NodeId(0), NodeId(2), vec![GranuleId(6)])
        .unwrap();
    let err = cluster
        .recovery_migrate(NodeId(1), NodeId(2), vec![GranuleId(6)])
        .unwrap_err();
    assert!(matches!(err, CoordError::WrongOwner { .. }), "got {err}");
}
