//! Property tests for the deterministic granule-heat sketch
//! (`marlin::sim::sketch`), via the offline proptest shim.
//!
//! Four promises the cohort scale engine rests on:
//!
//! 1. **Determinism per seed** — the same `DetRng` seed and access
//!    stream always produce the same estimates and the same hottest-`k`
//!    shortlist; the simulator's digest stability depends on it.
//! 2. **Error envelope** — estimates never undercount, and overcount by
//!    at most `8 * total / width` (4 independent rows make the expected
//!    excess `total / width`; the factor-8 envelope makes the property
//!    deterministic rather than probabilistic).
//! 3. **Monotone under merge** — folding one sketch into another never
//!    lowers any estimate, and the merged estimate still upper-bounds
//!    the summed true counts.
//! 4. **Exact-mode equivalence** — below the `sketch_min` threshold a
//!    sketch-requested tracker is *bit-identical* to the exact vector
//!    (the parity pin the §6 presets rely on).

use marlin::sim::{CountMinSketch, DetRng, HeatTracker};
use proptest::prelude::*;

/// A weighted access stream: `(key, weight)` pairs over a small keyspace
/// so collisions and repeats are common.
fn stream(keys: u64) -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0..keys, 1..64u32), 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Promise 1: seed + stream is a pure function of the sketch state.
    #[test]
    fn same_seed_and_stream_reproduce_the_sketch(
        seed in 0..u64::MAX,
        ops in stream(512),
    ) {
        let build = || {
            let mut rng = DetRng::seed(seed);
            let mut t = HeatTracker::new(100_000, true, 1, &mut rng);
            for &(k, w) in &ops {
                t.record(k as usize, w);
            }
            t
        };
        let (a, b) = (build(), build());
        prop_assert!(a.is_sketched());
        for k in 0..512usize {
            prop_assert_eq!(a.estimate(k), b.estimate(k), "key {}", k);
        }
        prop_assert_eq!(a.hottest(64), b.hottest(64));
    }

    /// Promise 2: `true <= estimate <= true + 8 * total / width` for
    /// every touched key, against an exact shadow count.
    #[test]
    fn estimates_respect_the_error_envelope(
        seed in 0..u64::MAX,
        ops in stream(2_048),
    ) {
        let mut rng = DetRng::seed(seed);
        let mut s = CountMinSketch::new(256, &mut rng);
        let mut shadow = std::collections::BTreeMap::new();
        for &(k, w) in &ops {
            s.record(k, w);
            *shadow.entry(k).or_insert(0u64) += u64::from(w);
        }
        let slack = 8 * s.total() / s.width() as u64;
        for (&k, &true_count) in &shadow {
            let est = u64::from(s.estimate(k));
            prop_assert!(est >= true_count, "undercount on key {}: {} < {}", k, est, true_count);
            prop_assert!(
                est <= true_count + slack,
                "key {}: estimate {} exceeds true {} + slack {}",
                k, est, true_count, slack
            );
        }
    }

    /// Promise 3: merging adds tables, so no estimate ever drops, and
    /// the merged sketch still upper-bounds the combined true counts.
    #[test]
    fn merge_is_monotone_and_never_undercounts(
        seed in 0..u64::MAX,
        left in stream(512),
        right in stream(512),
    ) {
        let mut a = CountMinSketch::new(64, &mut DetRng::seed(seed));
        let mut b = CountMinSketch::new(64, &mut DetRng::seed(seed));
        let mut shadow = std::collections::BTreeMap::new();
        for &(k, w) in &left {
            a.record(k, w);
            *shadow.entry(k).or_insert(0u64) += u64::from(w);
        }
        for &(k, w) in &right {
            b.record(k, w);
            *shadow.entry(k).or_insert(0u64) += u64::from(w);
        }
        let before: Vec<u32> = (0..512).map(|k| a.estimate(k)).collect();
        a.merge(&b);
        prop_assert_eq!(a.total(), shadow.values().sum::<u64>());
        for k in 0..512u64 {
            prop_assert!(
                a.estimate(k) >= before[k as usize],
                "merge lowered key {}: {} -> {}", k, before[k as usize], a.estimate(k)
            );
        }
        for (&k, &true_count) in &shadow {
            prop_assert!(
                u64::from(a.estimate(k)) >= true_count,
                "merged sketch undercounts key {}", k
            );
        }
    }

    /// Promise 4: below the threshold, a sketch-requested tracker *is*
    /// the exact vector — same estimates, same shortlist, same reset.
    #[test]
    fn below_threshold_sketch_mode_equals_exact_mode(
        seed in 0..u64::MAX,
        ops in stream(256),
    ) {
        let mut sketchy = HeatTracker::new(256, true, 4_096, &mut DetRng::seed(seed));
        let mut exact = HeatTracker::new(256, false, 4_096, &mut DetRng::seed(seed));
        prop_assert!(!sketchy.is_sketched(), "256 keys sit below sketch_min");
        for &(k, w) in &ops {
            sketchy.record(k as usize, w);
            exact.record(k as usize, w);
        }
        for k in 0..256usize {
            prop_assert_eq!(sketchy.estimate(k), exact.estimate(k));
        }
        prop_assert_eq!(sketchy.hottest(64), exact.hottest(64));
        sketchy.reset();
        exact.reset();
        prop_assert_eq!(sketchy.hottest(64), exact.hottest(64));
    }
}
