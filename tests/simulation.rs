//! Cross-crate checks on the simulated evaluation testbed, driven
//! through the unified harness: conservation laws, determinism, and the
//! headline comparative orderings at smoke scale (the full-scale
//! versions are the bench targets).

use marlin::autoscaler::ScaleAction;
use marlin::cluster::harness::{run, MetricsSnapshot, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

fn scale_out(kind: CoordKind) -> Scenario {
    Scenario::new("smoke-so4-8")
        .backend(kind)
        .workload(Workload::ycsb(4_000))
        .trace(LoadTrace::constant(80))
        .initial_nodes(4)
        .threads_per_node(8)
        .duration(25 * SECOND)
        .action(2 * SECOND, ScaleAction::add(4))
}

fn report_and_owners(kind: CoordKind) -> (MetricsSnapshot, Vec<u32>) {
    let scenario = scale_out(kind);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    (report.metrics, runner.sim().owners())
}

/// Granules are conserved: every granule has exactly one owner at the end
/// and the per-node distribution is balanced after the scale-out.
#[test]
fn granules_conserved_and_balanced() {
    for kind in CoordKind::all() {
        let (metrics, owners) = report_and_owners(kind);
        assert_eq!(owners.len(), 4_000, "{}", kind.name());
        for n in 0..8u32 {
            let c = owners.iter().filter(|&&o| o == n).count();
            assert!(
                (400..=600).contains(&c),
                "{}: node {n} owns {c} granules",
                kind.name()
            );
        }
        // Every planned migration committed exactly once.
        assert_eq!(metrics.migrations, 2_000, "{}", kind.name());
    }
}

/// The same scenario and seed yield bit-identical results for every
/// backend.
#[test]
fn simulation_is_deterministic() {
    for kind in CoordKind::all() {
        let (a, _) = report_and_owners(kind);
        let (b, _) = report_and_owners(kind);
        assert_eq!(a.commits, b.commits, "{}", kind.name());
        assert_eq!(
            a.migration_duration,
            b.migration_duration,
            "{}",
            kind.name()
        );
        assert_eq!(a.cost_per_mtxn, b.cost_per_mtxn, "{}", kind.name());
    }
}

/// The headline ordering at smoke scale: Marlin has zero Meta Cost and
/// the lowest cost per transaction of all four systems.
#[test]
fn marlin_is_cheapest_of_all_four() {
    let results: Vec<_> = CoordKind::all()
        .into_iter()
        .map(|k| (k, report_and_owners(k).0))
        .collect();
    let (_, marlin) = &results[0];
    assert_eq!(marlin.meta_cost, 0.0);
    for (kind, r) in &results[1..] {
        assert!(
            r.meta_cost > 0.0,
            "{} must pay for its service",
            kind.name()
        );
        assert!(
            marlin.cost_per_mtxn < r.cost_per_mtxn,
            "Marlin ${} vs {} ${}",
            marlin.cost_per_mtxn,
            kind.name(),
            r.cost_per_mtxn
        );
    }
}

/// Throughput roughly doubles across the scale-out (the capacity-relief
/// shape of Figure 9): post-reconfiguration rate exceeds the overloaded
/// pre-reconfiguration rate.
#[test]
fn scale_out_relieves_the_overloaded_cluster() {
    // Enough clients to saturate the initial 4 nodes.
    let scenario = scale_out(CoordKind::Marlin)
        .trace(LoadTrace::constant(400))
        .duration(30 * SECOND);
    let mut runner = SimRunner::new(&scenario);
    let _report = run(scenario, &mut runner);
    let pre = runner.sim().metrics.user_commits.rate_at(SECOND);
    let post = runner.sim().metrics.user_commits.rate_at(25 * SECOND);
    assert!(
        post > pre * 1.2,
        "scale-out must lift throughput: pre {pre:.0} tps post {post:.0} tps"
    );
}

/// Geo mode keeps clients region-local: latency stays intra-region even
/// though the cluster spans four regions.
#[test]
fn geo_clients_stay_local() {
    let scenario = scale_out(CoordKind::Marlin).geo().duration(20 * SECOND);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    // 16 requests at intra-region RTTs ≈ tens of ms; a cross-region txn
    // would cost seconds.
    assert!(
        report.metrics.mean_latency < 200.0 * 1e6,
        "geo txn latency must stay intra-region, got {:.1}ms",
        report.metrics.mean_latency / 1e6
    );
    assert!(report.metrics.commits > 1_000);
}

/// The Figure 15 contention knee through the harness: Marlin's
/// membership latency is ZK-comparable at low node counts and collapses
/// at high counts.
#[test]
fn membership_contention_knee() {
    let stress = |kind, members| {
        let scenario = Scenario::membership(kind, members, 15 * SECOND, 50 * SECOND);
        let mut runner = SimRunner::new(&scenario);
        run(scenario, &mut runner).metrics
    };
    let small = stress(CoordKind::Marlin, 20);
    let large = stress(CoordKind::Marlin, 640);
    let zk = stress(CoordKind::ZkSmall, 20);
    assert!(
        small.membership_mean_latency < zk.membership_mean_latency * 3.0,
        "low contention: Marlin {}ns vs ZK {}ns",
        small.membership_mean_latency,
        zk.membership_mean_latency
    );
    assert!(
        large.membership_mean_latency > small.membership_mean_latency * 10.0,
        "high contention must degrade: {} vs {}",
        large.membership_mean_latency,
        small.membership_mean_latency
    );
}
