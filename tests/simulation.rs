//! Cross-crate checks on the simulated evaluation testbed: conservation
//! laws, determinism, and the headline comparative orderings at smoke
//! scale (the full-scale versions are the bench targets).

use marlin::cluster::params::{CoordKind, SimParams};
use marlin::cluster::scenarios::scale_out::{run_scale_out, summarize, ScaleOutSpec};
use marlin::cluster::sim::Workload;
use marlin::sim::SECOND;

fn spec(kind: CoordKind) -> ScaleOutSpec {
    ScaleOutSpec {
        kind,
        workload: Workload::Ycsb { granules: 4_000 },
        initial_nodes: 4,
        new_nodes: 4,
        clients: 80,
        scale_at: 2 * SECOND,
        horizon: 25 * SECOND,
        threads_per_new_node: 8,
        params: SimParams::default(),
    }
}

/// Granules are conserved: every granule has exactly one owner at the end
/// and the per-node distribution is balanced after the scale-out.
#[test]
fn granules_conserved_and_balanced() {
    for kind in CoordKind::all() {
        let sim = run_scale_out(&spec(kind));
        let owners = sim.owners();
        assert_eq!(owners.len(), 4_000, "{}", kind.name());
        for n in 0..8u32 {
            let c = owners.iter().filter(|&&o| o == n).count();
            assert!(
                (400..=600).contains(&c),
                "{}: node {n} owns {c} granules",
                kind.name()
            );
        }
        // Every planned migration committed exactly once.
        assert_eq!(sim.metrics.migrations.total(), 2_000, "{}", kind.name());
    }
}

/// The same spec and seed yield bit-identical results for every backend.
#[test]
fn simulation_is_deterministic() {
    for kind in CoordKind::all() {
        let a = summarize(&run_scale_out(&spec(kind)));
        let b = summarize(&run_scale_out(&spec(kind)));
        assert_eq!(a.commits, b.commits, "{}", kind.name());
        assert_eq!(
            a.migration_duration,
            b.migration_duration,
            "{}",
            kind.name()
        );
        assert_eq!(a.cost_per_mtxn, b.cost_per_mtxn, "{}", kind.name());
    }
}

/// The headline ordering at smoke scale: Marlin has zero Meta Cost and the
/// lowest cost per transaction of all four systems.
#[test]
fn marlin_is_cheapest_of_all_four() {
    let results: Vec<_> = CoordKind::all()
        .into_iter()
        .map(|k| summarize(&run_scale_out(&spec(k))))
        .collect();
    let marlin = &results[0];
    assert_eq!(marlin.meta_cost, 0.0);
    for r in &results[1..] {
        assert!(
            r.meta_cost > 0.0,
            "{} must pay for its service",
            r.kind.name()
        );
        assert!(
            marlin.cost_per_mtxn < r.cost_per_mtxn,
            "Marlin ${} vs {} ${}",
            marlin.cost_per_mtxn,
            r.kind.name(),
            r.cost_per_mtxn
        );
    }
}

/// Throughput roughly doubles across the scale-out (the capacity-relief
/// shape of Figure 9): post-reconfiguration rate exceeds the overloaded
/// pre-reconfiguration rate for every backend.
#[test]
fn scale_out_relieves_the_overloaded_cluster() {
    // Use enough clients to saturate the initial 4 nodes.
    let mut s = spec(CoordKind::Marlin);
    s.clients = 400;
    s.horizon = 30 * SECOND;
    let sim = run_scale_out(&s);
    let pre = sim.metrics.user_commits.rate_at(SECOND);
    let post = sim.metrics.user_commits.rate_at(25 * SECOND);
    assert!(
        post > pre * 1.2,
        "scale-out must lift throughput: pre {pre:.0} tps post {post:.0} tps"
    );
}

/// Geo mode keeps clients region-local: latency stays intra-region even
/// though the cluster spans four regions.
#[test]
fn geo_clients_stay_local() {
    let mut s = spec(CoordKind::Marlin).geo();
    s.horizon = 20 * SECOND;
    let sim = run_scale_out(&s);
    // 16 requests at intra-region RTTs ≈ tens of ms; a cross-region txn
    // would cost seconds.
    let mean = sim.metrics.user_latency.mean();
    assert!(
        mean < 200.0 * 1e6,
        "geo txn latency must stay intra-region, got {:.1}ms",
        mean / 1e6
    );
    assert!(sim.metrics.total_commits() > 1_000);
}

/// The Figure 15 contention knee: Marlin's membership latency is
/// ZK-comparable at low node counts and collapses at high counts.
#[test]
fn membership_contention_knee() {
    use marlin::cluster::scenarios::membership::run_membership_stress;
    let small = run_membership_stress(
        CoordKind::Marlin,
        20,
        15 * SECOND,
        50 * SECOND,
        SimParams::default(),
    );
    let large = run_membership_stress(
        CoordKind::Marlin,
        640,
        15 * SECOND,
        50 * SECOND,
        SimParams::default(),
    );
    let zk = run_membership_stress(
        CoordKind::ZkSmall,
        20,
        15 * SECOND,
        50 * SECOND,
        SimParams::default(),
    );
    assert!(
        small.mean_latency < zk.mean_latency * 3,
        "low contention: Marlin {}ns vs ZK {}ns",
        small.mean_latency,
        zk.mean_latency
    );
    assert!(
        large.mean_latency > small.mean_latency * 10,
        "high contention must degrade: {} vs {}",
        large.mean_latency,
        small.mean_latency
    );
}
