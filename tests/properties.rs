//! Property-based tests over the full coordination stack: random
//! interleavings of migrations, recoveries, failures, revivals, and user
//! transactions must always preserve the paper's §4.5 invariants, with the
//! ownership state reconstructed from the logs (the ground truth).

use bytes::Bytes;
use marlin::common::{
    ClusterConfig, CoordError, GranuleId, GranuleLayout, KeyRange, NodeId, TableId,
};
use marlin::core::LocalCluster;
use proptest::prelude::*;

const TABLE: TableId = TableId(0);
const NODES: u32 = 4;
const GRANULES: u64 = 12;

#[derive(Clone, Debug)]
enum Op {
    Migrate { src: u8, dst: u8, granule: u8 },
    Kill { node: u8 },
    Revive { node: u8 },
    Recover { dst: u8, src: u8, granule: u8 },
    Write { node: u8, key_slot: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NODES as u8, 0..NODES as u8, 0..GRANULES as u8)
            .prop_map(|(src, dst, granule)| Op::Migrate { src, dst, granule }),
        (0..NODES as u8).prop_map(|node| Op::Kill { node }),
        (0..NODES as u8).prop_map(|node| Op::Revive { node }),
        (0..NODES as u8, 0..NODES as u8, 0..GRANULES as u8)
            .prop_map(|(dst, src, granule)| Op::Recover { dst, src, granule }),
        (0..NODES as u8, 0..120u8).prop_map(|(node, key_slot)| Op::Write { node, key_slot }),
    ]
}

fn cluster() -> LocalCluster {
    LocalCluster::bootstrap(&ClusterConfig {
        initial_nodes: (0..NODES).map(NodeId).collect(),
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, GRANULES * 10),
            GRANULES,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Exclusive Granule Ownership (I0) holds after every operation of any
    /// random schedule, no matter which operations succeed or fail.
    #[test]
    fn random_schedules_preserve_exclusive_ownership(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut cluster = cluster();
        for op in ops {
            match op {
                Op::Migrate { src, dst, granule } => {
                    if src % NODES as u8 != dst % NODES as u8 {
                        let src = NodeId(u32::from(src % NODES as u8));
                        let dst = NodeId(u32::from(dst % NODES as u8));
                        // Live migration requires both ends responsive; the
                        // runtime returns an error otherwise — any outcome
                        // is fine as long as the invariant holds.
                        let _ = cluster.migrate(src, dst, TABLE, vec![GranuleId(u64::from(granule))]);
                    }
                }
                Op::Kill { node } => cluster.kill(NodeId(u32::from(node % NODES as u8))),
                Op::Revive { node } => cluster.revive(NodeId(u32::from(node % NODES as u8))),
                Op::Recover { dst, src, granule } => {
                    if src % NODES as u8 != dst % NODES as u8 {
                        let src = NodeId(u32::from(src % NODES as u8));
                        let dst = NodeId(u32::from(dst % NODES as u8));
                        let _ = cluster.recovery_migrate(dst, src, vec![GranuleId(u64::from(granule))]);
                    }
                }
                Op::Write { node, key_slot } => {
                    let node = NodeId(u32::from(node % NODES as u8));
                    let key = u64::from(key_slot) % (GRANULES * 10);
                    let _ = cluster.user_txn(node, TABLE, &[], &[(key, Bytes::from_static(b"w"))]);
                }
            }
            cluster.assert_invariants();
        }
    }

    /// Committed writes are never lost by subsequent reconfigurations:
    /// whatever sequence of migrations/recoveries happens, the current
    /// owner of a granule serves the last committed value.
    #[test]
    fn committed_writes_survive_reconfiguration(
        moves in proptest::collection::vec((0..NODES as u8, 0..NODES as u8, any::<bool>()), 1..12),
    ) {
        let mut cluster = cluster();
        let key = 55u64; // granule 5
        let granule = GranuleId(5);
        // Find the initial owner and commit a value.
        let owner = (0..NODES)
            .map(NodeId)
            .find(|n| cluster.node(*n).marlin.owned_granules().contains(&granule))
            .expect("granule has an owner");
        cluster.user_txn(owner, TABLE, &[], &[(key, Bytes::from_static(b"golden"))]).unwrap();

        for (src, dst, use_recovery) in moves {
            let src = NodeId(u32::from(src % NODES as u8));
            let dst = NodeId(u32::from(dst % NODES as u8));
            if src == dst {
                continue;
            }
            if use_recovery {
                cluster.kill(src);
                let _ = cluster.recovery_migrate(dst, src, vec![granule]);
                cluster.revive(src);
            } else {
                let _ = cluster.migrate(src, dst, TABLE, vec![granule]);
            }
            cluster.assert_invariants();
        }
        // Wherever the granule ended up, the value must be there: route
        // like a fresh client — ScanGTableTxn for the owner, then follow
        // any remaining WrongNode redirects (stale caches self-correct).
        let entries = cluster.scan_gtable(NodeId(0)).unwrap();
        let mut target = entries
            .iter()
            .find(|(g, _)| *g == granule)
            .map(|(_, meta)| meta.owner)
            .expect("scan locates the granule");
        let mut value = None;
        for _hop in 0..8 {
            match cluster.user_txn(target, TABLE, &[key], &[]) {
                Ok(reads) => {
                    value = Some(reads[0].clone());
                    break;
                }
                Err(marlin::common::TxnError::WrongNode { owner, .. })
                    if owner != NodeId(u32::MAX) =>
                {
                    target = owner;
                }
                Err(other) => panic!("unexpected error while routing: {other}"),
            }
        }
        prop_assert_eq!(value, Some(Some(Bytes::from_static(b"golden"))));
    }

    /// Membership churn (adds and deletes in any order) keeps every node's
    /// refreshed MTable identical — the SysLog is the single source of truth.
    #[test]
    fn membership_churn_converges(ops in proptest::collection::vec((4u32..10, any::<bool>()), 1..16)) {
        let mut cluster = cluster();
        for (node, add) in ops {
            if add {
                let _ = cluster.add_node(NodeId(node), format!("10.0.0.{node}"));
            } else {
                let _ = cluster.delete_node(NodeId(0), NodeId(node));
            }
        }
        cluster.refresh_mtable(NodeId(0));
        cluster.refresh_mtable(NodeId(1));
        let a = cluster.node(NodeId(0)).marlin.mtable().scan();
        let b = cluster.node(NodeId(1)).marlin.mtable().scan();
        prop_assert_eq!(a, b);
    }
}

/// Deterministic regression: a recovery racing a live migration for the
/// same granule — exactly one wins, never both.
#[test]
fn recovery_vs_migration_race_has_one_winner() {
    let mut cluster = cluster();
    // Granule 0 lives on node 0. Kill node 0; start a recovery from node 1
    // while node 2 believes node 0 is still alive and attempts a live
    // migration (which needs node 0's vote — it times out).
    cluster.kill(NodeId(0));
    let recover = cluster.recovery_migrate(NodeId(1), NodeId(0), vec![GranuleId(0)]);
    let migrate = cluster.migrate(NodeId(0), NodeId(2), TABLE, vec![GranuleId(0)]);
    assert!(recover.is_ok());
    assert!(matches!(
        migrate,
        Err(CoordError::WrongOwner { .. }) | Err(CoordError::Aborted(_))
    ));
    cluster.assert_invariants();
    assert!(cluster
        .node(NodeId(1))
        .marlin
        .owned_granules()
        .contains(&GranuleId(0)));
}
