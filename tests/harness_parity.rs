//! Runner parity and the Zipfian-heat rebalance scenario.
//!
//! Parity: the harness promises that a `Scenario` is a *complete*
//! description of an experiment — for a deterministic trace that crosses
//! the policy watermarks decisively, the same scenario and seed must
//! produce the identical decision log (same tick/action sequence) on the
//! synchronous `LocalCluster` and on the discrete-event `ClusterSim`.
//!
//! Rebalance: a skewed YCSB workload concentrates heat on the first
//! node's contiguous granule block; a planner-only controller must
//! migrate hot granules off the loaded node — with zero I0–I4 violations
//! on the synchronous runtime, where every move is a real MigrationTxn.

use marlin::cluster::harness::{run, LocalRunner, RunReport, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::common::{GranuleId, NodeId};
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

/// The parity scenario: spike and calm edges land 4 s before a control
/// tick (several EMA time constants, so the simulator's queueing models
/// fully converge), and each side sits far beyond the 80%/35%
/// watermarks — ~200 clients drive two 4-vCPU nodes past saturation and
/// four nodes to ~55%, so both the synthesized (trace-driven) and the
/// emergent (queueing-model) observations cross on the same tick.
fn parity_scenario(granules: u64, seed: u64) -> Scenario {
    let s = Scenario::new("parity")
        .backend(CoordKind::Marlin)
        .workload(Workload::ycsb(granules))
        .trace(LoadTrace::spike(8, 200, 6 * SECOND, 26 * SECOND))
        .initial_nodes(2)
        .threads_per_node(8)
        .control_interval(5 * SECOND)
        .observe_window(4 * SECOND)
        .duration(40 * SECOND)
        .seed(seed);
    let policy = s.reactive_policy(2, 4);
    s.policy(policy)
}

fn run_local(granules: u64, seed: u64) -> RunReport {
    let scenario = parity_scenario(granules, seed);
    let mut runner = LocalRunner::new(&scenario);
    run(scenario, &mut runner)
}

fn run_sim(granules: u64, seed: u64) -> RunReport {
    let scenario = parity_scenario(granules, seed);
    let mut runner = SimRunner::new(&scenario);
    run(scenario, &mut runner)
}

#[test]
fn same_scenario_and_seed_produce_identical_decision_logs_on_both_runners() {
    let local = run_local(64, 42);
    let sim = run_sim(800, 42);
    assert_eq!(
        local.decision_signature(),
        sim.decision_signature(),
        "local {:?} vs sim {:?}",
        local.decision_signature(),
        sim.decision_signature()
    );
    // The shared log is non-trivial: one scale-out on the spike, one
    // scale-in after the calm.
    let sig = sim.decision_signature();
    assert_eq!(sig.len(), 2, "{sig:?}");
    assert_eq!(sig[0].1, "add+2");
    assert_eq!(sig[1].1, "remove-2");
    // Both end where they started.
    assert_eq!(local.metrics.live_nodes, 2);
    assert_eq!(sim.metrics.live_nodes, 2);
}

#[test]
fn parity_holds_across_seeds() {
    for seed in [7, 1234] {
        let local = run_local(64, seed);
        let sim = run_sim(800, seed);
        assert_eq!(
            local.decision_signature(),
            sim.decision_signature(),
            "seed {seed}"
        );
    }
}

#[test]
fn simulator_decision_log_is_reproducible_bit_for_bit() {
    let a = run_sim(800, 42);
    let b = run_sim(800, 42);
    assert_eq!(a.decision_signature(), b.decision_signature());
    assert_eq!(a.metrics.commits, b.metrics.commits);
    assert_eq!(a.metrics.node_count, b.metrics.node_count);
}

// ---------------------------------------------------------------------------
// Geo autoscale: per-region decisions, region-local drains

fn run_geo_local(granules: u64, seed: u64) -> (RunReport, Vec<(u64, String)>) {
    let scenario = Scenario::geo_autoscale(CoordKind::Marlin, granules).seed(seed);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    runner.harness().cluster.assert_invariants();
    let sig = report.decision_signature();
    (report, sig)
}

fn run_geo_sim(granules: u64, seed: u64) -> (RunReport, SimRunner) {
    let scenario = Scenario::geo_autoscale(CoordKind::Marlin, granules).seed(seed);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);
    (report, runner)
}

#[test]
fn geo_autoscale_decision_logs_match_on_both_runners() {
    let (local, local_sig) = run_geo_local(64, 42);
    let (sim, _) = run_geo_sim(1_600, 42);
    assert_eq!(
        local_sig,
        sim.decision_signature(),
        "local {local_sig:?} vs sim {:?}",
        sim.decision_signature()
    );
    // The shared log is non-trivial and region-targeted: region 1's 2×
    // spike provokes exactly one scale-out into region 1 and one
    // region-local drain after the calm; no other region ever scales.
    assert_eq!(local_sig.len(), 2, "{local_sig:?}");
    assert_eq!(local_sig[0].1, "add+2@r1");
    assert_eq!(local_sig[1].1, "remove-2");
    // Both runners end where they started: two nodes in each region.
    for report in [&local, &sim] {
        assert_eq!(report.metrics.live_nodes, 8, "{}", report.runner);
        for r in 0..4u16 {
            let b = report.metrics.region(r).expect("breakdown per region");
            assert_eq!(
                b.live_nodes, 2,
                "{}: region {r} must end at its floor",
                report.runner
            );
        }
    }
}

#[test]
fn geo_autoscale_adds_land_in_the_hot_region_and_drains_stay_local() {
    let (report, runner) = run_geo_sim(1_600, 42);
    // Every scale-out in the log targets region 1 (the spiking region).
    let mut adds = 0;
    for rec in report.actions() {
        if let Some(marlin::autoscaler::ScaleAction::AddNodes { region, .. }) = &rec.action {
            assert_eq!(
                *region,
                Some(marlin::common::RegionId(1)),
                "scale-out must target the hot region"
            );
            adds += 1;
        }
    }
    assert!(adds >= 1, "the spike must provoke a scale-out");
    // The spike peaked region 1 at 4 nodes while the others held at 2.
    let peak_r1 = report
        .log
        .iter()
        .flat_map(|r| r.observation.regions.iter())
        .filter(|r| r.region == marlin::common::RegionId(1))
        .map(|r| r.live_nodes)
        .max()
        .unwrap_or(0);
    assert_eq!(peak_r1, 4, "region 1 doubles at the spike");
    for quiet in [0u16, 2, 3] {
        let peak = report
            .log
            .iter()
            .flat_map(|r| r.observation.regions.iter())
            .filter(|r| r.region == marlin::common::RegionId(quiet))
            .map(|r| r.live_nodes)
            .max()
            .unwrap_or(0);
        assert_eq!(peak, 2, "idle region {quiet} never scales");
    }
    // Region-local drains: every region-1-homed granule is owned by a
    // live region-1 node at the end — the drain never shipped data to
    // another region while local capacity existed.
    let owners = runner.sim().owners();
    let r1_nodes: Vec<u32> = runner
        .sim()
        .live_nodes_by_region()
        .into_iter()
        .filter(|&(_, r)| r == marlin::common::RegionId(1))
        .map(|(n, _)| n)
        .collect();
    for &g in &runner.sim().region_granules()[1] {
        assert!(
            r1_nodes.contains(&owners[g as usize]),
            "granule {g} homed in region 1 ended on node {} (region-1 nodes: {r1_nodes:?})",
            owners[g as usize]
        );
    }
    // The per-region split reaches the metrics: the hot region committed
    // more and cost more than each idle region.
    let hot = report.metrics.region(1).expect("region 1 breakdown");
    for quiet in [0u16, 2, 3] {
        let idle = report.metrics.region(quiet).expect("idle breakdown");
        assert!(
            hot.commits > idle.commits,
            "hot region commits {} vs region {quiet} {}",
            hot.commits,
            idle.commits
        );
        assert!(
            hot.db_cost > idle.db_cost,
            "hot region cost {} vs region {quiet} {}",
            hot.db_cost,
            idle.db_cost
        );
    }
}

#[test]
fn geo_autoscale_parity_holds_across_seeds() {
    for seed in [7, 1234] {
        let (_, local_sig) = run_geo_local(64, seed);
        let (sim, _) = run_geo_sim(1_600, seed);
        assert_eq!(local_sig, sim.decision_signature(), "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// Zipfian-heat rebalance

#[test]
fn zipfian_heat_migrates_off_the_loaded_node_in_the_simulator() {
    let scenario = Scenario::zipfian_rebalance(CoordKind::Marlin, 600, 0.9);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    // The planner acted (member count never changes under HoldPolicy).
    let sig = report.decision_signature();
    assert!(
        sig.iter().any(|(_, a)| a.starts_with("rebalance")),
        "the planner must propose moves: {sig:?}"
    );
    assert_eq!(report.metrics.live_nodes, 3, "hold policy never scales");
    assert!(report.metrics.migrations > 0, "moves really migrated");

    // Heat left node 0: some of the hot block (granules 0..200, the
    // first node's initial contiguous assignment) now lives elsewhere,
    // and every granule still has a live owner.
    let owners = runner.sim().owners();
    let moved_hot = owners[..200].iter().filter(|&&o| o != 0).count();
    assert!(
        moved_hot > 0,
        "hot granules must migrate off the loaded node"
    );
    let live = runner.sim().live_node_ids();
    assert!(owners.iter().all(|o| live.contains(o)));
}

#[test]
fn zipfian_rebalance_preserves_i0_i4_on_the_local_cluster() {
    // Same scenario shape on the synchronous runtime: every planner move
    // is a real MigrationTxn and `LocalRunner` asserts the I0–I4
    // invariants after every actuation (a violation panics).
    let scenario = Scenario::zipfian_rebalance(CoordKind::Marlin, 60, 0.9).duration(20 * SECOND);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    assert!(
        report
            .decision_signature()
            .iter()
            .any(|(_, a)| a.starts_with("rebalance")),
        "the planner must act on the skew: {:?}",
        report.decision_signature()
    );
    assert!(report.metrics.migrations > 0);
    assert_eq!(report.metrics.live_nodes, 3);
    // The hottest granule (id 0) left the loaded first node.
    let owners = runner.owners();
    assert_ne!(
        owners.get(&GranuleId(0)),
        Some(&NodeId(0)),
        "the hottest granule must move off node 0"
    );
    runner.harness().cluster.assert_invariants();
}
