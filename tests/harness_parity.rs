//! Runner parity and the Zipfian-heat rebalance scenario.
//!
//! Parity: the harness promises that a `Scenario` is a *complete*
//! description of an experiment — for a deterministic trace that crosses
//! the policy watermarks decisively, the same scenario and seed must
//! produce the identical decision log (same tick/action sequence) on the
//! synchronous `LocalCluster` and on the discrete-event `ClusterSim`.
//!
//! Rebalance: a skewed YCSB workload concentrates heat on the first
//! node's contiguous granule block; a planner-only controller must
//! migrate hot granules off the loaded node — with zero I0–I4 violations
//! on the synchronous runtime, where every move is a real MigrationTxn.

use marlin::cluster::harness::{run, LocalRunner, RunReport, Scenario, SimRunner};
use marlin::cluster::params::CoordKind;
use marlin::cluster::sim::Workload;
use marlin::common::{GranuleId, NodeId};
use marlin::sim::SECOND;
use marlin::workload::LoadTrace;

/// The parity scenario: spike and calm edges land 4 s before a control
/// tick (several EMA time constants, so the simulator's queueing models
/// fully converge), and each side sits far beyond the 80%/35%
/// watermarks — ~200 clients drive two 4-vCPU nodes past saturation and
/// four nodes to ~55%, so both the synthesized (trace-driven) and the
/// emergent (queueing-model) observations cross on the same tick.
fn parity_scenario(granules: u64, seed: u64) -> Scenario {
    let s = Scenario::new("parity")
        .backend(CoordKind::Marlin)
        .workload(Workload::ycsb(granules))
        .trace(LoadTrace::spike(8, 200, 6 * SECOND, 26 * SECOND))
        .initial_nodes(2)
        .threads_per_node(8)
        .control_interval(5 * SECOND)
        .observe_window(4 * SECOND)
        .duration(40 * SECOND)
        .seed(seed);
    let policy = s.reactive_policy(2, 4);
    s.policy(policy)
}

fn run_local(granules: u64, seed: u64) -> RunReport {
    let scenario = parity_scenario(granules, seed);
    let mut runner = LocalRunner::new(&scenario);
    run(scenario, &mut runner)
}

fn run_sim(granules: u64, seed: u64) -> RunReport {
    let scenario = parity_scenario(granules, seed);
    let mut runner = SimRunner::new(&scenario);
    run(scenario, &mut runner)
}

#[test]
fn same_scenario_and_seed_produce_identical_decision_logs_on_both_runners() {
    let local = run_local(64, 42);
    let sim = run_sim(800, 42);
    assert_eq!(
        local.decision_signature(),
        sim.decision_signature(),
        "local {:?} vs sim {:?}",
        local.decision_signature(),
        sim.decision_signature()
    );
    // The shared log is non-trivial: one scale-out on the spike, one
    // scale-in after the calm.
    let sig = sim.decision_signature();
    assert_eq!(sig.len(), 2, "{sig:?}");
    assert_eq!(sig[0].1, "add+2");
    assert_eq!(sig[1].1, "remove-2");
    // Both end where they started.
    assert_eq!(local.metrics.live_nodes, 2);
    assert_eq!(sim.metrics.live_nodes, 2);
}

#[test]
fn parity_holds_across_seeds() {
    for seed in [7, 1234] {
        let local = run_local(64, seed);
        let sim = run_sim(800, seed);
        assert_eq!(
            local.decision_signature(),
            sim.decision_signature(),
            "seed {seed}"
        );
    }
}

#[test]
fn simulator_decision_log_is_reproducible_bit_for_bit() {
    let a = run_sim(800, 42);
    let b = run_sim(800, 42);
    assert_eq!(a.decision_signature(), b.decision_signature());
    assert_eq!(a.metrics.commits, b.metrics.commits);
    assert_eq!(a.metrics.node_count, b.metrics.node_count);
}

// ---------------------------------------------------------------------------
// Zipfian-heat rebalance

#[test]
fn zipfian_heat_migrates_off_the_loaded_node_in_the_simulator() {
    let scenario = Scenario::zipfian_rebalance(CoordKind::Marlin, 600, 0.9);
    let mut runner = SimRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    // The planner acted (member count never changes under HoldPolicy).
    let sig = report.decision_signature();
    assert!(
        sig.iter().any(|(_, a)| a.starts_with("rebalance")),
        "the planner must propose moves: {sig:?}"
    );
    assert_eq!(report.metrics.live_nodes, 3, "hold policy never scales");
    assert!(report.metrics.migrations > 0, "moves really migrated");

    // Heat left node 0: some of the hot block (granules 0..200, the
    // first node's initial contiguous assignment) now lives elsewhere,
    // and every granule still has a live owner.
    let owners = runner.sim().owners();
    let moved_hot = owners[..200].iter().filter(|&&o| o != 0).count();
    assert!(
        moved_hot > 0,
        "hot granules must migrate off the loaded node"
    );
    let live = runner.sim().live_node_ids();
    assert!(owners.iter().all(|o| live.contains(o)));
}

#[test]
fn zipfian_rebalance_preserves_i0_i4_on_the_local_cluster() {
    // Same scenario shape on the synchronous runtime: every planner move
    // is a real MigrationTxn and `LocalRunner` asserts the I0–I4
    // invariants after every actuation (a violation panics).
    let scenario = Scenario::zipfian_rebalance(CoordKind::Marlin, 60, 0.9).duration(20 * SECOND);
    let mut runner = LocalRunner::new(&scenario);
    let report = run(scenario, &mut runner);

    assert!(
        report
            .decision_signature()
            .iter()
            .any(|(_, a)| a.starts_with("rebalance")),
        "the planner must act on the skew: {:?}",
        report.decision_signature()
    );
    assert!(report.metrics.migrations > 0);
    assert_eq!(report.metrics.live_nodes, 3);
    // The hottest granule (id 0) left the loaded first node.
    let owners = runner.owners();
    assert_ne!(
        owners.get(&GranuleId(0)),
        Some(&NodeId(0)),
        "the hottest granule must move off node 0"
    );
    runner.harness().cluster.assert_invariants();
}
