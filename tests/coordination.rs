//! End-to-end coordination tests over the synchronous runtime: bootstrap,
//! membership, live migration (the paper's Figure 6 scale-out walkthrough),
//! routing, and the invariants of §4.5.

use bytes::Bytes;
use marlin::common::{
    ClusterConfig, GranuleId, GranuleLayout, KeyRange, NodeId, TableId, TxnError,
};
use marlin::core::router::Router;
use marlin::core::LocalCluster;

const TABLE: TableId = TableId(0);

fn config(nodes: u32, granules: u64) -> ClusterConfig {
    ClusterConfig {
        initial_nodes: (0..nodes).map(NodeId).collect(),
        tables: vec![GranuleLayout::uniform(
            TABLE,
            KeyRange::new(0, granules * 100),
            granules,
            64 * 1024,
            1024,
        )],
        ..ClusterConfig::default()
    }
}

#[test]
fn bootstrap_assigns_all_granules() {
    let cluster = LocalCluster::bootstrap(&config(2, 8));
    cluster.assert_invariants();
    assert_eq!(cluster.node(NodeId(0)).marlin.owned_granules().len(), 4);
    assert_eq!(cluster.node(NodeId(1)).marlin.owned_granules().len(), 4);
    assert_eq!(cluster.node(NodeId(0)).data.count(), 4);
}

#[test]
fn user_txns_read_their_writes() {
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    // Key 150 lives in granule 1 (range [100, 200)), owned by node 0.
    cluster
        .user_txn(
            NodeId(0),
            TABLE,
            &[],
            &[(150, Bytes::from_static(b"hello"))],
        )
        .unwrap();
    let reads = cluster
        .user_txn(NodeId(0), TABLE, &[150, 151], &[])
        .unwrap();
    assert_eq!(reads[0], Some(Bytes::from_static(b"hello")));
    assert_eq!(reads[1], None);
}

#[test]
fn wrong_node_requests_are_redirected() {
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    // Granule 7 (keys [700, 800)) belongs to node 1; ask node 0.
    let err = cluster.user_txn(NodeId(0), TABLE, &[750], &[]).unwrap_err();
    match err {
        TxnError::WrongNode { granule, .. } => assert_eq!(granule, GranuleId(7)),
        other => panic!("expected WrongNode, got {other}"),
    }
}

#[test]
fn scale_out_migrates_and_serves_at_destination() {
    // The Figure 6 walkthrough: N2 owns [100, 300); after scale-out a new
    // node takes over the upper half and serves it with warm data.
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    cluster
        .user_txn(
            NodeId(1),
            TABLE,
            &[],
            &[(450, Bytes::from_static(b"precious"))],
        )
        .unwrap();

    // Membership update: the new node adds itself (AddNodeTxn).
    cluster.add_node(NodeId(2), "10.0.0.2".into()).unwrap();
    // Live migration: granules 4 and 5 move from node 1 to node 2.
    cluster
        .migrate(
            NodeId(1),
            NodeId(2),
            TABLE,
            vec![GranuleId(4), GranuleId(5)],
        )
        .unwrap();
    cluster.assert_invariants();

    // Old owner rejects with a redirect to the new owner.
    let err = cluster.user_txn(NodeId(1), TABLE, &[450], &[]).unwrap_err();
    assert_eq!(
        err,
        TxnError::WrongNode {
            granule: GranuleId(4),
            owner: NodeId(2)
        }
    );

    // New owner serves the warmed-up data.
    let reads = cluster.user_txn(NodeId(2), TABLE, &[450], &[]).unwrap();
    assert_eq!(reads[0], Some(Bytes::from_static(b"precious")));
}

#[test]
fn migration_aborts_under_user_lock_then_succeeds() {
    // NO_WAIT: a user transaction holding the granule lock aborts the
    // migration, not the other way around. Our synchronous user txns
    // release locks at completion, so emulate the conflict by holding an
    // explicit granule lock.
    use marlin::engine::{LockMode, LockTarget};
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    let blocker = marlin::common::TxnId::new(NodeId(1), 999);
    cluster
        .node(NodeId(1))
        .locks
        .try_lock(
            blocker,
            LockTarget::GTableEntry {
                granule: GranuleId(4),
            },
            LockMode::Shared,
        )
        .unwrap();
    let err = cluster
        .migrate(NodeId(1), NodeId(0), TABLE, vec![GranuleId(4)])
        .unwrap_err();
    assert!(
        matches!(err, marlin::common::CoordError::Aborted(_)),
        "got {err}"
    );
    cluster.assert_invariants();

    // After the user transaction finishes, migration goes through.
    cluster.node(NodeId(1)).locks.release_all(blocker);
    cluster
        .migrate(NodeId(1), NodeId(0), TABLE, vec![GranuleId(4)])
        .unwrap();
    cluster.assert_invariants();
    assert!(cluster
        .node(NodeId(0))
        .marlin
        .owned_granules()
        .contains(&GranuleId(4)));
}

#[test]
fn migration_with_wrong_source_fails_data_effectiveness() {
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    // Granule 0 belongs to node 0, not node 1.
    let err = cluster
        .migrate(NodeId(1), NodeId(0), TABLE, vec![GranuleId(0)])
        .unwrap_err();
    assert!(
        matches!(err, marlin::common::CoordError::WrongOwner { .. }),
        "got {err}"
    );
    cluster.assert_invariants();
}

#[test]
fn scan_gtable_feeds_router() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 9));
    cluster
        .migrate(NodeId(0), NodeId(2), TABLE, vec![GranuleId(1)])
        .unwrap();
    let entries = cluster.scan_gtable(NodeId(1)).unwrap();
    let mut router = Router::new();
    router.install_scan(&entries);
    assert_eq!(router.route(GranuleId(1)), Some(NodeId(2)));
    assert_eq!(router.route(GranuleId(0)), Some(NodeId(0)));
    assert_eq!(router.route(GranuleId(8)), Some(NodeId(2)));
}

#[test]
fn router_absorbs_redirects_from_misrouted_requests() {
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    let mut router = Router::new();
    router.install_scan(&cluster.scan_gtable(NodeId(0)).unwrap());
    // Ownership moves; the router is now stale.
    cluster
        .migrate(NodeId(0), NodeId(1), TABLE, vec![GranuleId(2)])
        .unwrap();
    let stale = router.route(GranuleId(2)).unwrap();
    assert_eq!(stale, NodeId(0));
    // The misrouted request aborts with the owner hint; the router learns.
    let err = cluster.user_txn(stale, TABLE, &[250], &[]).unwrap_err();
    let TxnError::WrongNode { granule, owner } = err else {
        panic!("expected WrongNode")
    };
    router.redirect(granule, owner);
    assert_eq!(router.route(GranuleId(2)), Some(NodeId(1)));
    // Retry at the new owner succeeds.
    cluster.user_txn(NodeId(1), TABLE, &[250], &[]).unwrap();
}

#[test]
fn concurrent_membership_changes_serialize_via_syslog() {
    // Several nodes join and one leaves; the SysLog CAS serializes all of
    // it and every node converges to the same MTable after refresh.
    let mut cluster = LocalCluster::bootstrap(&config(2, 8));
    cluster.add_node(NodeId(2), "n2".into()).unwrap();
    cluster.add_node(NodeId(3), "n3".into()).unwrap();
    cluster.delete_node(NodeId(0), NodeId(3)).unwrap();
    for id in [0u32, 1, 2] {
        cluster.refresh_mtable(NodeId(id));
        let m = cluster.node(NodeId(id)).marlin.mtable();
        assert_eq!(m.scan(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
    // Double-add is rejected by the data-effectiveness check.
    let err = cluster.add_node(NodeId(2), "dup".into()).unwrap_err();
    assert_eq!(err, marlin::common::CoordError::NodeAlreadyExist(NodeId(2)));
}

#[test]
fn chained_migrations_preserve_ownership_invariant() {
    let mut cluster = LocalCluster::bootstrap(&config(3, 12));
    // Shuffle granules around repeatedly; the invariant must hold after
    // every step (migration never duplicates or loses a granule).
    let moves = [
        (0u32, 1u32, 0u64),
        (1, 2, 0),
        (2, 0, 0),
        (1, 0, 5),
        (2, 1, 8),
        (0, 2, 1),
        (0, 1, 0),
    ];
    for (src, dst, g) in moves {
        cluster
            .migrate(NodeId(src), NodeId(dst), TABLE, vec![GranuleId(g)])
            .unwrap();
        cluster.assert_invariants();
    }
}
