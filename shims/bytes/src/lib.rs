//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible implementation of the subset the
//! Marlin codebase uses: [`Bytes`] (a cheaply cloneable, sliceable,
//! immutable byte buffer), [`BytesMut`] (a growable builder that freezes
//! into `Bytes`), and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors the wire codecs rely on.
//!
//! Semantics match the real crate for everything exercised here: `Bytes`
//! clones share the underlying allocation, `Buf` reads advance an internal
//! cursor without copying, and `copy_to_bytes` returns a zero-copy slice
//! of the shared allocation.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[must_use]
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// A buffer holding a copy of a static slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from_vec(bytes.to_vec())
    }

    /// A buffer holding a copy of `data`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the buffer in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The whole buffer as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy sub-slice `[at, len)`; `self` keeps `[0, at)`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// A zero-copy slice of the buffer.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Self {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

fn fmt_byte_string(bytes: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
            write!(f, "{}", b as char)?;
        } else {
            write!(f, "\\x{b:02x}")?;
        }
    }
    write!(f, "\"")
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_byte_string(self.as_slice(), f)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }

    /// The content as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Ensure room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Clear the content, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_byte_string(&self.buf, f)
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The bytes after the cursor.
    fn chunk(&self) -> &[u8];

    /// Advance the cursor by `cnt`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_into(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_into(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_into(&mut b);
        u64::from_le_bytes(b)
    }

    /// Copy exactly `dst.len()` bytes and advance.
    fn copy_into(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "read past end of buffer");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copy the next `len` bytes out as a `Bytes` and advance.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "copy_to_bytes past end");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end");
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor that appends to a byte sink.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(0xBEEF);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u64_le(u64::MAX - 3);
        m.put_slice(b"tail");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.copy_to_bytes(4), Bytes::from_static(b"tail"));
        assert!(!b.has_remaining());
    }

    #[test]
    fn clones_share_and_cursor_is_per_handle() {
        let a = Bytes::from_static(b"hello");
        let mut b = a.clone();
        b.advance(2);
        assert_eq!(a.as_slice(), b"hello");
        assert_eq!(b.as_slice(), b"llo");
    }

    #[test]
    fn copy_to_bytes_is_zero_copy_slice() {
        let mut b = Bytes::from_static(b"abcdef");
        let head = b.copy_to_bytes(3);
        assert_eq!(head.as_slice(), b"abc");
        assert_eq!(b.as_slice(), b"def");
    }
}
