//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the subset of the API the workspace's microbenches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock measurement loop: a short warm-up to size the batch, then a
//! timed run that prints mean ns/iter. No statistics, plots, or
//! comparisons; just enough to keep `harness = false` bench targets
//! runnable without crates.io access.

use std::hint::black_box;
use std::time::Instant;

/// Target wall-clock time per measured benchmark.
const TARGET_NANOS: u128 = 200_000_000;

/// Hint for how much a batched setup allocates. Ignored by the shim.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One iteration per batch.
    PerIteration,
}

/// The benchmark driver handed to each registered function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run `f` as a named benchmark and print its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed_nanos: 0,
        };
        // Calibration pass: find an iteration count that runs long enough
        // to measure, then a measurement pass.
        b.run_calibrated();
        f(&mut b);
        let mean = if b.iters == 0 {
            0.0
        } else {
            b.elapsed_nanos as f64 / b.iters as f64
        };
        println!("bench {name:<44} {mean:>12.1} ns/iter ({} iters)", b.iters);
        self
    }
}

/// Per-benchmark measurement state.
pub struct Bencher {
    iters: u64,
    elapsed_nanos: u128,
}

impl Bencher {
    fn run_calibrated(&mut self) {
        self.iters = 0;
        self.elapsed_nanos = 0;
    }

    /// Measure `routine` repeatedly until the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            // Check the clock in geometrically growing strides so timing
            // overhead stays negligible for nanosecond-scale routines.
            if iters.is_power_of_two() || iters.is_multiple_of(1024) {
                let elapsed = start.elapsed().as_nanos();
                if elapsed >= TARGET_NANOS {
                    self.iters = iters;
                    self.elapsed_nanos = elapsed;
                    return;
                }
            }
        }
    }

    /// Measure `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured: u128 = 0;
        let mut iters = 0u64;
        while measured < TARGET_NANOS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed().as_nanos();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed_nanos = measured;
    }
}

/// Define a bench group: a function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_iters() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
