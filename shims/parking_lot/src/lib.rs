//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s Result-free API:
//! `lock()`/`read()`/`write()` return guards directly. Poisoning is
//! ignored (a panicked holder does not poison the lock), matching
//! `parking_lot` semantics.

use std::sync;

/// A mutual-exclusion lock with a Result-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock with Result-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
