//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a small property-testing engine that is source-compatible with
//! the subset of `proptest` the Marlin test suites use:
//!
//! - [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   ranges, tuples of strategies, and boxed strategies;
//! - [`arbitrary::any`] (re-exported through the prelude) for the
//!   primitive types the tests draw;
//! - [`collection::vec`] for variable-length vectors;
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! - [`ProptestConfig`] with the `cases` knob.
//!
//! Differences from the real crate: cases are generated from a seed
//! derived deterministically from the test name (every run explores the
//! same cases), and the `proptest!` macro's failing cases are *not*
//! shrunk — the failing values simply panic out through `prop_assert!`.
//! That trade keeps the engine a few hundred lines while preserving the
//! tests' exploratory power. Harnesses that need shrinking (the
//! `marlin-fuzz` scenario fuzzer) build it from the deterministic
//! candidate enumerators in [`shrink`].

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)` (`lo < hi`).
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        let hi128 = (u128::from(self.next_u64()) * u128::from(span)) >> 64;
        lo + hi128 as u64
    }
}

/// Derive a per-test RNG from the test's name, deterministically.
#[must_use]
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (used by [`prop_oneof!`]).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// [`Strategy::prop_map`]'s adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform strategies for primitive types ([`arbitrary::any`]).
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a uniformly random value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }
    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start < self.len.end {
                rng.range_u64(self.len.start as u64, self.len.end as u64) as usize
            } else {
                self.len.start
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// A uniform choice between boxed alternative strategies
/// (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.range_u64(0, self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Deterministic shrinking primitives.
///
/// Shrinking here is *candidate enumeration*: given a failing value,
/// propose a fixed, deterministically ordered list of strictly smaller
/// values; the caller re-runs its oracle on each candidate and recurses
/// into the first that still fails. Because the candidate order is a pure
/// function of the input, a shrink run is exactly reproducible — which is
/// what lets `marlin-fuzz` replay a shrunk repro artifact bit-identically.
pub mod shrink {
    /// Candidate smaller magnitudes for `value`, largest first, never
    /// going below `floor`: the classic halving ladder
    /// (`floor`, then midpoints approaching `value`). Empty when `value`
    /// is already at the floor.
    ///
    /// Trying candidates in this order finds the smallest still-failing
    /// magnitude in O(log) oracle runs when failure is monotone in the
    /// value, and still terminates (just less minimally) when it is not.
    #[must_use]
    pub fn halves_toward(value: u64, floor: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if value <= floor {
            return out;
        }
        out.push(floor);
        let mut delta = (value - floor) / 2;
        while delta > 0 {
            let candidate = value - delta;
            if candidate != floor {
                out.push(candidate);
            }
            delta /= 2;
        }
        out.dedup();
        out
    }

    /// Candidate sublists of `items`, in ddmin order: first halves, then
    /// quarters, ... then every single-element removal. Each candidate is
    /// strictly shorter than the input; the list is empty when `items` is
    /// empty.
    #[must_use]
    pub fn list_candidates<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
        let n = items.len();
        let mut out: Vec<Vec<T>> = Vec::new();
        if n == 0 {
            return out;
        }
        // Remove progressively smaller chunks (delta debugging's
        // complement pass): chunk sizes n/2, n/4, ..., 2.
        let mut chunk = n / 2;
        while chunk > 1 {
            let mut start = 0;
            while start < n {
                let end = (start + chunk).min(n);
                let mut candidate = Vec::with_capacity(n - (end - start));
                candidate.extend_from_slice(&items[..start]);
                candidate.extend_from_slice(&items[end..]);
                out.push(candidate);
                start = end;
            }
            chunk /= 2;
        }
        // Finally every single-element removal.
        for i in 0..n {
            let mut candidate = Vec::with_capacity(n - 1);
            candidate.extend_from_slice(&items[..i]);
            candidate.extend_from_slice(&items[i + 1..]);
            out.push(candidate);
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn halving_ladder_is_ordered_and_bounded() {
            // delta walks (16-2)/2 = 7 → 3 → 1, giving 9, 13, 15.
            assert_eq!(halves_toward(16, 2), vec![2, 9, 13, 15]);
            assert!(halves_toward(5, 5).is_empty());
            assert!(halves_toward(3, 5).is_empty());
            // Every candidate is in [floor, value).
            for c in halves_toward(1000, 10) {
                assert!((10..1000).contains(&c));
            }
        }

        #[test]
        fn list_candidates_are_strictly_smaller() {
            let items: Vec<u32> = (0..8).collect();
            let cands = list_candidates(&items);
            assert!(!cands.is_empty());
            for c in &cands {
                assert!(c.len() < items.len());
            }
            // Single-element removals are all present at the tail.
            let singles: Vec<&Vec<u32>> = cands
                .iter()
                .filter(|c| c.len() == items.len() - 1)
                .collect();
            assert_eq!(singles.len(), items.len());
        }

        #[test]
        fn list_candidates_of_empty_is_empty() {
            assert!(list_candidates::<u32>(&[]).is_empty());
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Uniform choice between strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as $crate::BoxedStrategy<_>),+])
    };
}

/// Assert inside a property (panics on failure; the shim never shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1_000 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let s = prop_oneof![(0u8..1).prop_map(|_| 'a'), (0u8..1).prop_map(|_| 'b')];
        let mut rng = crate::test_rng("union");
        let mut seen = [false; 2];
        for _ in 0..64 {
            match s.sample(&mut rng) {
                'a' => seen[0] = true,
                _ => seen[1] = true,
            }
        }
        assert!(seen[0] && seen[1]);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, any::<bool>())) {
            prop_assert!(pair.0 < 4);
        }
    }
}
