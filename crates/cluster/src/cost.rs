//! The §6.1.5 cost model.
//!
//! "The total system cost includes data-plane and control-plane costs. DB
//! Cost accounts for computing servers and cloud storage, while Meta Cost
//! reflects coordination expenses. Since Marlin eliminates the external
//! coordination service, its Meta Cost is zero. Computing server costs are
//! calculated based on the machine's hourly rate. Storage costs are
//! excluded from comparisons due to their negligible impact."

use marlin_sim::{Nanos, TimeSeries, SECOND};
use marlin_telemetry::{CoordBreakdown, CoordOps};

/// Accumulates node-seconds and coordination-cluster time for one run.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// $/hour for one compute node (D4s v3: $0.192).
    node_hourly: f64,
    /// $/hour for the external coordination cluster (0 for Marlin).
    meta_hourly: f64,
    /// Compute node-nanoseconds accumulated.
    node_nanos: u128,
    /// Time the coordination service has been up.
    meta_nanos: u128,
    /// Last accounting timestamp and node count.
    last_t: Nanos,
    last_nodes: u32,
}

impl CostModel {
    /// Start accounting at time zero with `nodes` compute nodes.
    #[must_use]
    pub fn new(node_hourly: f64, meta_hourly: f64, nodes: u32) -> Self {
        CostModel {
            node_hourly,
            meta_hourly,
            node_nanos: 0,
            meta_nanos: 0,
            last_t: 0,
            last_nodes: nodes,
        }
    }

    /// Advance to `now` with the current node count, then apply a change
    /// to `nodes` (pass the same count for a pure advance).
    pub fn advance(&mut self, now: Nanos, nodes: u32) {
        debug_assert!(now >= self.last_t, "cost accounting must move forward");
        let dt = u128::from(now - self.last_t);
        self.node_nanos += dt * u128::from(self.last_nodes);
        self.meta_nanos += dt;
        self.last_t = now;
        self.last_nodes = nodes;
    }

    /// DB cost in dollars accrued so far.
    #[must_use]
    pub fn db_cost(&self) -> f64 {
        self.node_nanos as f64 / (3600.0 * SECOND as f64) * self.node_hourly
    }

    /// Meta cost in dollars accrued so far.
    #[must_use]
    pub fn meta_cost(&self) -> f64 {
        self.meta_nanos as f64 / (3600.0 * SECOND as f64) * self.meta_hourly
    }

    /// Total cost.
    #[must_use]
    pub fn total_cost(&self) -> f64 {
        self.db_cost() + self.meta_cost()
    }

    /// Cost per million committed transactions (Figures 10b, 12).
    #[must_use]
    pub fn per_million_txns(&self, commits: u64) -> f64 {
        if commits == 0 {
            f64::INFINITY
        } else {
            self.total_cost() / (commits as f64 / 1e6)
        }
    }

    /// Instantaneous spend rate in dollars per hour.
    #[must_use]
    pub fn hourly_rate_now(&self) -> f64 {
        f64::from(self.last_nodes) * self.node_hourly + self.meta_hourly
    }

    /// The coordination service's hourly rate (0 for Marlin) — billed to
    /// the region the service is pinned in for per-region spend splits.
    #[must_use]
    pub fn meta_hourly(&self) -> f64 {
        self.meta_hourly
    }

    /// Sample the cumulative total cost into a time series (Figure 14b
    /// plots real-time cost).
    pub fn sample_into(&self, series: &mut TimeSeries, now: Nanos) {
        series.push(now, self.total_cost());
    }

    /// Break the accrued scalar Meta Cost into per-subsystem dollars over
    /// the run's coordination ops. The breakdown always sums back to
    /// [`CostModel::meta_cost`]; for Marlin (`meta_hourly = 0`) every
    /// component is exactly zero.
    #[must_use]
    pub fn attribute_meta(&self, ops: CoordOps) -> CoordBreakdown {
        CoordBreakdown::attribute(ops, self.meta_cost())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marlin_has_zero_meta_cost() {
        let mut c = CostModel::new(0.192, 0.0, 8);
        c.advance(3600 * SECOND, 8);
        assert!((c.db_cost() - 8.0 * 0.192).abs() < 1e-9);
        assert_eq!(c.meta_cost(), 0.0);
    }

    #[test]
    fn zk_meta_cost_accrues_continuously() {
        let mut c = CostModel::new(0.192, 0.597, 1);
        c.advance(1800 * SECOND, 1);
        assert!((c.meta_cost() - 0.597 / 2.0).abs() < 1e-9);
        assert!((c.total_cost() - (0.192 / 2.0 + 0.597 / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn scale_out_changes_the_burn_rate() {
        let mut c = CostModel::new(1.0, 0.0, 8);
        c.advance(3600 * SECOND, 16); // first hour at 8 nodes
        c.advance(2 * 3600 * SECOND, 16); // second hour at 16
        assert!((c.db_cost() - (8.0 + 16.0)).abs() < 1e-9);
        assert_eq!(c.hourly_rate_now(), 16.0);
    }

    #[test]
    fn meta_attribution_sums_back_to_the_scalar() {
        let mut c = CostModel::new(0.192, 0.597, 1);
        c.advance(1800 * SECOND, 1);
        let ops = CoordOps {
            service_writes: 30,
            service_reads: 10,
            ..CoordOps::default()
        };
        let b = c.attribute_meta(ops);
        assert!((b.meta_dollars() - c.meta_cost()).abs() < 1e-12);
        assert!(b.write_dollars > b.read_dollars);
        assert!(b.uptime_dollars > 0.0);
    }

    #[test]
    fn per_million_txn_math() {
        let mut c = CostModel::new(0.192, 0.0, 10);
        c.advance(3600 * SECOND, 10);
        // $1.92 over 4M txns = $0.48/Mtxn.
        assert!((c.per_million_txns(4_000_000) - 0.48).abs() < 1e-9);
        assert!(c.per_million_txns(0).is_infinite());
    }
}
