//! The dynamic (bursty) workload scenario (§6.6, Figure 14).
//!
//! "The workload starts with 400 clients, scales to 800 at the 20th
//! second, holds for 60 seconds, and drops back to 400 at the 80th second.
//! The cluster begins with 8 compute nodes, scales out to 16, then returns
//! to 8. An efficient coordination mechanism enables rapid scale-out and
//! scale-in."

use crate::params::{CoordKind, SimParams};
use crate::sim::{ClusterSim, Workload};
use marlin_sim::{Nanos, SECOND};

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct DynamicSpec {
    pub kind: CoordKind,
    pub workload: Workload,
    pub base_nodes: u32,
    /// Total node count during the burst (the paper scales 8 → 16, so
    /// `burst_nodes - base_nodes` nodes join at `burst_at` and drain at
    /// `calm_at`).
    pub burst_nodes: u32,
    pub base_clients: u32,
    pub burst_clients: u32,
    /// Burst start (paper: 20 s).
    pub burst_at: Nanos,
    /// Burst end (paper: 80 s).
    pub calm_at: Nanos,
    pub horizon: Nanos,
    pub threads_per_node: u32,
    pub params: SimParams,
}

impl DynamicSpec {
    /// The Figure 14 configuration (optionally shrunk by `granule_scale`).
    #[must_use]
    pub fn paper(kind: CoordKind, granule_scale: u64) -> Self {
        DynamicSpec {
            kind,
            workload: Workload::Ycsb {
                granules: 200_000 / granule_scale,
            },
            base_nodes: 8,
            burst_nodes: 16,
            base_clients: 400,
            burst_clients: 800,
            burst_at: 20 * SECOND,
            calm_at: 80 * SECOND,
            horizon: 120 * SECOND,
            threads_per_node: 16,
            params: SimParams::default(),
        }
    }
}

/// Run the dynamic scenario: burst → scale-out, calm → scale-in, with the
/// added nodes released as soon as their granules are drained.
#[must_use]
pub fn run_dynamic(spec: &DynamicSpec) -> ClusterSim {
    let mut sim = ClusterSim::new(
        spec.params.clone(),
        spec.kind,
        &spec.workload,
        spec.base_nodes,
        spec.burst_clients, // provision generators for the peak
        spec.horizon,
    );
    assert!(
        spec.burst_nodes > spec.base_nodes,
        "burst_nodes is the burst-time total and must exceed base_nodes"
    );
    let added = spec.burst_nodes - spec.base_nodes;
    // Start at the base load.
    sim.schedule_client_count(0, spec.base_clients);
    // Burst: more clients + scale-out to `burst_nodes` total.
    sim.schedule_client_count(spec.burst_at, spec.burst_clients);
    sim.schedule_scale_out(spec.burst_at, added, spec.threads_per_node);
    // Calm: fewer clients + scale-in of the added nodes.
    sim.schedule_client_count(spec.calm_at, spec.base_clients);
    let victims: Vec<u32> = (spec.base_nodes..spec.burst_nodes).collect();
    sim.schedule_scale_in(spec.calm_at, victims, spec.threads_per_node);
    sim.run();
    sim
}

/// When the node count first returned to `base` after `calm_at` — the
/// scale-in release lag the paper reports (12 s for Marlin vs 45 s/32 s
/// for S-ZK/L-ZK).
#[must_use]
pub fn release_lag(sim: &ClusterSim, base: u32, calm_at: Nanos) -> Option<Nanos> {
    sim.metrics
        .node_count
        .points()
        .iter()
        .find(|&&(t, v)| t >= calm_at && v <= f64::from(base))
        .map(|&(t, _)| t - calm_at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_cycle_scales_out_and_back_in() {
        let spec = DynamicSpec {
            kind: CoordKind::Marlin,
            workload: Workload::Ycsb { granules: 1_000 },
            base_nodes: 2,
            burst_nodes: 4,
            base_clients: 10,
            burst_clients: 20,
            burst_at: 5 * SECOND,
            calm_at: 15 * SECOND,
            horizon: 40 * SECOND,
            threads_per_node: 4,
            params: SimParams::default(),
        };
        let sim = run_dynamic(&spec);
        // Scale-out happened (some point shows 4 nodes)...
        let peak = sim
            .metrics
            .node_count
            .points()
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max);
        assert_eq!(peak, 4.0);
        // ...and scale-in released the added nodes.
        assert_eq!(sim.live_nodes(), 2, "victims must be drained and released");
        let lag = release_lag(&sim, 2, spec.calm_at).expect("release lag observed");
        assert!(lag > 0);
        // All granules ended on the surviving nodes.
        assert!(sim.owners().iter().all(|&o| o < 2));
        // Both reconfigurations' migrations happened: out (500) + back (500).
        assert_eq!(sim.metrics.migrations.total(), 1_000);
    }

    #[test]
    fn slower_coordination_releases_nodes_later() {
        // Enough granules that the bulk drain (not the straggler tail of a
        // last NO_WAIT retry) dominates the release lag, as at paper scale.
        let run = |kind: CoordKind| {
            let spec = DynamicSpec {
                kind,
                workload: Workload::Ycsb { granules: 20_000 },
                base_nodes: 2,
                burst_nodes: 4,
                base_clients: 10,
                burst_clients: 20,
                burst_at: 5 * SECOND,
                calm_at: 25 * SECOND,
                horizon: 90 * SECOND,
                threads_per_node: 24,
                params: SimParams::default(),
            };
            let sim = run_dynamic(&spec);
            release_lag(&sim, 2, spec.calm_at)
        };
        let marlin = run(CoordKind::Marlin).expect("marlin releases");
        let szk = run(CoordKind::ZkSmall).expect("szk releases");
        assert!(
            marlin < szk,
            "Marlin release lag ({marlin}ns) must beat S-ZK ({szk}ns)"
        );
    }
}
