//! The closed-loop autoscaling scenario: a controller, not a script,
//! decides when the cluster scales.
//!
//! Where [`dynamic`](crate::scenarios::dynamic) replays the §6.6 events at
//! fixed timestamps, this scenario wires a `marlin-autoscaler`
//! [`Controller`] into the discrete-event simulation: every control
//! interval the simulator pauses, produces an [`Observation`] (windowed
//! throughput/p99, CPU utilization from the queueing models, burn rate,
//! granule heat), the policy decides, and the resulting action is
//! scheduled back into virtual time as real migration plans. The workload
//! follows a [`LoadTrace`] — the controller never sees the trace, only
//! its measured effect.

use crate::params::{CoordKind, SimParams};
use crate::sim::{ClusterSim, Workload};
use marlin_autoscaler::{
    Actuator, Controller, GranuleMove, ReactiveConfig, ReactivePolicy, ScaleAction,
};
use marlin_common::NodeId;
use marlin_sim::{Nanos, SECOND};
use marlin_workload::LoadTrace;

/// Parameters of a closed-loop run.
#[derive(Clone, Debug)]
pub struct AutoscaleSpec {
    /// Coordination backend under test.
    pub kind: CoordKind,
    /// The client workload.
    pub workload: Workload,
    /// Nodes at t=0.
    pub initial_nodes: u32,
    /// Lower bound the policy must respect.
    pub min_nodes: u32,
    /// Upper bound the policy must respect.
    pub max_nodes: u32,
    /// Exogenous demand in active clients.
    pub trace: LoadTrace,
    /// How often the controller observes and decides.
    pub control_interval: Nanos,
    /// Trailing window each observation summarizes.
    pub observe_window: Nanos,
    /// End of simulated time.
    pub horizon: Nanos,
    /// Migration worker threads per new/drained node.
    pub threads_per_node: u32,
    /// Simulator constants.
    pub params: SimParams,
}

impl AutoscaleSpec {
    /// The §6.6 burst at paper scale driven closed-loop: 400→800→400
    /// clients, the cluster free to move between 8 and 16 nodes.
    #[must_use]
    pub fn paper_spike(kind: CoordKind, granule_scale: u64) -> Self {
        AutoscaleSpec {
            kind,
            workload: Workload::Ycsb {
                granules: 200_000 / granule_scale,
            },
            initial_nodes: 8,
            min_nodes: 8,
            max_nodes: 16,
            trace: LoadTrace::spike(400, 800, 20 * SECOND, 80 * SECOND),
            control_interval: 2 * SECOND,
            observe_window: 4 * SECOND,
            horizon: 120 * SECOND,
            threads_per_node: 16,
            params: SimParams::default(),
        }
    }

    /// A two-cycle diurnal curve between `min_nodes` and `max_nodes`
    /// worth of demand.
    #[must_use]
    pub fn diurnal(kind: CoordKind, granules: u64) -> Self {
        let period = 120 * SECOND;
        let horizon = 2 * period;
        AutoscaleSpec {
            kind,
            workload: Workload::Ycsb { granules },
            initial_nodes: 4,
            min_nodes: 4,
            max_nodes: 12,
            trace: LoadTrace::diurnal(100, 600, period, horizon, 12),
            control_interval: 2 * SECOND,
            observe_window: 4 * SECOND,
            horizon,
            threads_per_node: 8,
            params: SimParams::default(),
        }
    }

    /// The default reactive controller for this spec's bounds.
    #[must_use]
    pub fn reactive_controller(&self) -> Controller {
        Controller::new(Box::new(ReactivePolicy::new(ReactiveConfig {
            step_nodes: self.initial_nodes,
            cooldown: 3 * self.control_interval,
            ..ReactiveConfig::paper_default(self.min_nodes, self.max_nodes)
        })))
    }
}

/// The simulator-side [`Actuator`]: controller decisions become
/// virtual-time migration plans.
pub struct SimActuator<'a> {
    sim: &'a mut ClusterSim,
    threads_per_node: u32,
}

impl Actuator for SimActuator<'_> {
    fn add_nodes(&mut self, at: Nanos, count: u32) {
        self.sim
            .apply_action(at, &ScaleAction::AddNodes { count }, self.threads_per_node);
    }

    fn remove_nodes(&mut self, at: Nanos, victims: &[NodeId]) {
        self.sim.apply_action(
            at,
            &ScaleAction::RemoveNodes {
                victims: victims.to_vec(),
            },
            self.threads_per_node,
        );
    }

    fn rebalance(&mut self, at: Nanos, moves: &[GranuleMove]) {
        self.sim.apply_action(
            at,
            &ScaleAction::Rebalance {
                moves: moves.to_vec(),
            },
            self.threads_per_node,
        );
    }
}

/// Run the closed loop: simulate, observe every `control_interval`,
/// decide, actuate, repeat to the horizon.
pub fn run_autoscale(spec: &AutoscaleSpec, controller: &mut Controller) -> ClusterSim {
    let mut sim = ClusterSim::new(
        spec.params.clone(),
        spec.kind,
        &spec.workload,
        spec.initial_nodes,
        spec.trace.peak(),
        spec.horizon,
    );
    for &(t, clients) in spec.trace.changes() {
        sim.schedule_client_count(t, clients);
    }
    let mut t = spec.control_interval;
    while t <= spec.horizon {
        sim.run_until(t);
        let obs = sim.observe(t, spec.observe_window);
        let mut actuator = SimActuator {
            sim: &mut sim,
            threads_per_node: spec.threads_per_node,
        };
        controller.tick(&obs, &mut actuator);
        t += spec.control_interval;
    }
    sim.run_until(spec.horizon);
    sim.finish();
    sim
}

/// Peak live node count over a run (from the node-count series).
#[must_use]
pub fn peak_nodes(sim: &ClusterSim) -> u32 {
    sim.metrics
        .node_count
        .points()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> AutoscaleSpec {
        AutoscaleSpec {
            kind: CoordKind::Marlin,
            workload: Workload::Ycsb { granules: 2_000 },
            initial_nodes: 2,
            min_nodes: 2,
            max_nodes: 4,
            // ~0.05 worker-equivalents per closed-loop client: 8 clients
            // idle along at ~5% utilization, 160 saturate two 4-vCPU
            // nodes (≈96%), so the spike crosses the 80% watermark.
            trace: LoadTrace::spike(8, 160, 10 * SECOND, 40 * SECOND),
            control_interval: 2 * SECOND,
            observe_window: 4 * SECOND,
            horizon: 70 * SECOND,
            threads_per_node: 4,
            params: SimParams::default(),
        }
    }

    #[test]
    fn controller_scales_out_on_the_spike_and_back_in() {
        let spec = small_spec();
        let mut controller = spec.reactive_controller();
        let sim = run_autoscale(&spec, &mut controller);
        assert_eq!(
            peak_nodes(&sim),
            spec.max_nodes,
            "the spike must reach max_nodes"
        );
        assert_eq!(
            sim.live_nodes(),
            spec.min_nodes,
            "calm must drain back to min_nodes"
        );
        assert!(
            controller.scale_action_count() >= 2,
            "at least one scale-out and one scale-in: {:?}",
            controller.history()
        );
        // Every granule is owned by a live node at the end (the policy is
        // free to drain *any* coolest nodes, not necessarily the added
        // ones — what matters is that no granule is left on a released
        // node).
        let live = sim.live_node_ids();
        let owners = sim.owners();
        assert!(
            owners.iter().all(|o| live.contains(o)),
            "granules drained to survivors"
        );
        assert!(
            sim.metrics.migrations.total() > 0,
            "scaling really migrated granules"
        );
    }

    #[test]
    fn quiet_load_never_triggers_scaling() {
        let mut spec = small_spec();
        spec.trace = LoadTrace::constant(8);
        spec.horizon = 30 * SECOND;
        let mut controller = spec.reactive_controller();
        let sim = run_autoscale(&spec, &mut controller);
        assert_eq!(sim.live_nodes(), spec.initial_nodes);
        assert_eq!(
            controller.scale_action_count(),
            0,
            "steady low load must not flap: {:?}",
            controller.history()
        );
    }

    #[test]
    fn diurnal_cycles_scale_out_and_in_repeatedly() {
        let mut spec = AutoscaleSpec::diurnal(CoordKind::Marlin, 2_000);
        // Shrink for test time: one 60 s period, two cycles.
        let period = 60 * SECOND;
        spec.trace = LoadTrace::diurnal(8, 160, period, 2 * period, 8);
        spec.initial_nodes = 2;
        spec.min_nodes = 2;
        spec.max_nodes = 4;
        spec.threads_per_node = 4;
        spec.horizon = 2 * period;
        let mut controller = spec.reactive_controller();
        let sim = run_autoscale(&spec, &mut controller);
        // The cluster breathed: grew above min and returned at least once.
        assert!(peak_nodes(&sim) > spec.min_nodes);
        let outs = controller
            .history()
            .iter()
            .filter(|(_, a)| matches!(a, ScaleAction::AddNodes { .. }))
            .count();
        let ins = controller
            .history()
            .iter()
            .filter(|(_, a)| matches!(a, ScaleAction::RemoveNodes { .. }))
            .count();
        assert!(outs >= 2, "two diurnal peaks → two scale-outs, got {outs}");
        assert!(ins >= 2, "two troughs → two scale-ins, got {ins}");
    }
}
