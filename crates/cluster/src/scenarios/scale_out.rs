//! The scale-out scenario (§6.2–§6.5): a static workload exceeding the
//! initial cluster's capacity; at `scale_at` the cluster doubles and the
//! migration storm redistributes granules onto the new nodes.

use crate::params::{CoordKind, SimParams};
use crate::sim::{ClusterSim, Workload};
use marlin_sim::{Nanos, Summary, SECOND};

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct ScaleOutSpec {
    pub kind: CoordKind,
    pub workload: Workload,
    pub initial_nodes: u32,
    pub new_nodes: u32,
    pub clients: u32,
    /// When the scale-out triggers (paper: the 10th second).
    pub scale_at: Nanos,
    /// Total simulated time.
    pub horizon: Nanos,
    /// Migration worker threads per new node (concurrency grows with the
    /// cluster, §6.1.4; TPC-C uses 80, §6.3).
    pub threads_per_new_node: u32,
    pub params: SimParams,
}

impl ScaleOutSpec {
    /// The Figure 8/9 configuration: YCSB, 800 clients, 8→16 nodes,
    /// ~100K granule migrations (24 GB table at ~200K granules, half of
    /// which move), scale-out at t=10 s. `granule_scale` shrinks the
    /// granule count for quick runs (1 = full).
    #[must_use]
    pub fn ycsb_so8_16(kind: CoordKind, granule_scale: u64) -> Self {
        ScaleOutSpec {
            kind,
            workload: Workload::Ycsb {
                granules: 200_000 / granule_scale,
            },
            initial_nodes: 8,
            new_nodes: 8,
            clients: 800,
            scale_at: 10 * SECOND,
            horizon: 50 * SECOND,
            threads_per_new_node: 7,
            params: SimParams::default(),
        }
    }

    /// The Figure 11 configuration: TPC-C, 1600 warehouses per server
    /// (12.8K warehouses at 8 nodes; 6.4K migrate), 80 migration threads
    /// per new node.
    #[must_use]
    pub fn tpcc_so8_16(kind: CoordKind, granule_scale: u64) -> Self {
        // Warehouse granules are ~1 MB (vs 64 KB for YCSB): each migration
        // step does substantially more per-node work (locking a whole
        // warehouse, initiating a 1 MB scan), which is what bounds Marlin's
        // TPC-C migration rate in Figure 11.
        let params = SimParams {
            migration_service: 2_000_000, // 2 ms per side
            ..SimParams::default()
        };
        ScaleOutSpec {
            kind,
            workload: Workload::Tpcc {
                warehouses: 12_800 / granule_scale,
            },
            initial_nodes: 8,
            new_nodes: 8,
            clients: 800,
            scale_at: 10 * SECOND,
            horizon: 30 * SECOND,
            threads_per_new_node: 80,
            params,
        }
    }

    /// One of the Figure 12 sweep points: SO1-2 / SO2-4 / SO4-8 / SO8-16.
    /// Scales clients (100..800), table size (~25K granules per initial
    /// node — 3 GB..24 GB), and migration concurrency together (§6.4).
    #[must_use]
    pub fn sweep_point(kind: CoordKind, initial_nodes: u32, granule_scale: u64) -> Self {
        let granules = u64::from(initial_nodes) * 25_000 / granule_scale;
        ScaleOutSpec {
            kind,
            workload: Workload::Ycsb { granules },
            initial_nodes,
            new_nodes: initial_nodes,
            clients: 100 * initial_nodes,
            scale_at: 5 * SECOND,
            horizon: 120 * SECOND,
            threads_per_new_node: 7,
            params: SimParams::default(),
        }
    }

    /// Geo-distributed variant (§6.5): same shape, four regions, the
    /// external coordination service pinned in region 0 (US West). The
    /// horizon stretches so that baselines paying cross-region round trips
    /// per metadata commit still finish their storms in-window.
    #[must_use]
    pub fn geo(mut self) -> Self {
        self.params = SimParams {
            seed: self.params.seed,
            ..SimParams::geo()
        };
        self.horizon = 400 * SECOND;
        self.threads_per_new_node = 16;
        self
    }
}

/// Headline numbers extracted from a finished run.
#[derive(Clone, Debug)]
pub struct ScaleOutSummary {
    pub kind: CoordKind,
    /// First-to-last migration commit (the paper's migration duration).
    pub migration_duration: Nanos,
    /// Migrations per second over that window.
    pub migration_throughput: f64,
    /// MigrationTxn latency stats (Figure 10a).
    pub migration_latency: Summary,
    /// Committed user transactions.
    pub commits: u64,
    /// Overall abort ratio.
    pub abort_ratio: f64,
    /// DB / Meta / total cost in dollars (§6.1.5).
    pub db_cost: f64,
    pub meta_cost: f64,
    /// Cost per million user transactions (Figures 10b, 12a).
    pub cost_per_mtxn: f64,
}

/// Run the scenario to completion and return the simulator (full series)
/// for the bench mains to render.
#[must_use]
pub fn run_scale_out(spec: &ScaleOutSpec) -> ClusterSim {
    let mut sim = ClusterSim::new(
        spec.params.clone(),
        spec.kind,
        &spec.workload,
        spec.initial_nodes,
        spec.clients,
        spec.horizon,
    );
    sim.schedule_scale_out(spec.scale_at, spec.new_nodes, spec.threads_per_new_node);
    sim.run();
    sim
}

/// Extract the headline summary from a finished run.
#[must_use]
pub fn summarize(sim: &ClusterSim) -> ScaleOutSummary {
    ScaleOutSummary {
        kind: sim.kind(),
        migration_duration: sim.metrics.migration_duration(),
        migration_throughput: sim.metrics.migration_throughput(),
        migration_latency: sim.metrics.migration_summary(),
        commits: sim.metrics.total_commits(),
        abort_ratio: sim.metrics.abort_ratio(),
        db_cost: sim.cost.db_cost(),
        meta_cost: sim.cost.meta_cost(),
        cost_per_mtxn: sim.cost.per_million_txns(sim.metrics.total_commits()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke-scale run: every granule ends on the right node, all
    /// migrations complete, the system commits transactions throughout.
    #[test]
    fn small_scale_out_completes_and_balances() {
        let spec = ScaleOutSpec {
            kind: CoordKind::Marlin,
            workload: Workload::Ycsb { granules: 800 },
            initial_nodes: 2,
            new_nodes: 2,
            clients: 40,
            scale_at: 2 * SECOND,
            horizon: 20 * SECOND,
            threads_per_new_node: 4,
            params: SimParams::default(),
        };
        let sim = run_scale_out(&spec);
        let s = summarize(&sim);
        assert_eq!(sim.live_nodes(), 4);
        // Half the granules moved (2→4 nodes).
        assert_eq!(sim.metrics.migrations.total(), 400);
        assert!(s.commits > 1_000, "commits {}", s.commits);
        assert!(s.migration_duration > 0);
        // Ownership balanced: each node owns ~200 granules.
        let owners = sim.owners();
        for n in 0..4u32 {
            let owned = owners.iter().filter(|&&o| o == n).count();
            assert!((150..=250).contains(&owned), "node {n} owns {owned}");
        }
        assert_eq!(s.meta_cost, 0.0, "Marlin has no Meta Cost");
    }

    /// The headline comparison at smoke scale: Marlin's migration storm
    /// finishes faster than S-ZK's and costs less per transaction.
    #[test]
    fn marlin_beats_szk_on_duration_and_cost() {
        let run = |kind: CoordKind| {
            let spec = ScaleOutSpec {
                kind,
                workload: Workload::Ycsb { granules: 2_000 },
                initial_nodes: 2,
                new_nodes: 2,
                clients: 40,
                scale_at: 2 * SECOND,
                horizon: 30 * SECOND,
                // Marlin's migration rate scales with worker concurrency
                // (its advantage grows with cluster size); give the tiny
                // 2-node cluster enough threads to exceed the ZK leader's
                // serial capacity, as any real deployment would.
                threads_per_new_node: 24,
                params: SimParams::default(),
            };
            summarize(&run_scale_out(&spec))
        };
        let marlin = run(CoordKind::Marlin);
        let szk = run(CoordKind::ZkSmall);
        assert!(
            marlin.migration_duration < szk.migration_duration,
            "Marlin {:?} must beat S-ZK {:?}",
            marlin.migration_duration,
            szk.migration_duration
        );
        assert!(marlin.cost_per_mtxn < szk.cost_per_mtxn);
        assert!(marlin.meta_cost == 0.0 && szk.meta_cost > 0.0);
    }

    /// Runs are bit-for-bit reproducible for a fixed seed.
    #[test]
    fn determinism_under_fixed_seed() {
        let spec = ScaleOutSpec {
            kind: CoordKind::Marlin,
            workload: Workload::Ycsb { granules: 400 },
            initial_nodes: 2,
            new_nodes: 2,
            clients: 10,
            scale_at: SECOND,
            horizon: 10 * SECOND,
            threads_per_new_node: 2,
            params: SimParams::default(),
        };
        let a = summarize(&run_scale_out(&spec));
        let b = summarize(&run_scale_out(&spec));
        assert_eq!(a.commits, b.commits);
        assert_eq!(a.migration_duration, b.migration_duration);
        assert_eq!(a.abort_ratio, b.abort_ratio);
    }
}
