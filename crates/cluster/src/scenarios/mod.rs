//! Experiment drivers: one function per evaluation scenario (§6.1.3's
//! four testing scenarios), consumed by the bench targets.

pub mod autoscale;
pub mod dynamic;
pub mod membership;
pub mod scale_out;

pub use autoscale::{peak_nodes, run_autoscale, AutoscaleSpec, SimActuator};
pub use dynamic::{run_dynamic, DynamicSpec};
pub use membership::{run_membership_stress, MembershipResult};
pub use scale_out::{run_scale_out, ScaleOutSpec, ScaleOutSummary};
