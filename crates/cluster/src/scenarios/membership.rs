//! The membership-change stress test (§6.7, Figure 15).
//!
//! "We simulate each compute node with one thread continuously issuing
//! membership update requests, including node additions and removals. We
//! scale the number of nodes by increasing threads number. Each thread
//! issues a membership update every 15 seconds."
//!
//! Marlin's path is the real SysLog conditional append with per-member
//! LSN trackers: aligned bursts of CAS attempts collide, losers refresh
//! the MTable cache and retry — the OCC behavior whose cost shows past
//! ~160 nodes. ZooKeeper and FDB serialize the same updates through their
//! services without client-side retries.

use crate::params::{CoordKind, SimParams};
use crate::sim::{ClusterSim, Workload};
use marlin_sim::{Nanos, SECOND};

/// Result of one stress run.
#[derive(Clone, Debug)]
pub struct MembershipResult {
    pub kind: CoordKind,
    pub members: u32,
    /// Committed membership updates per second (achieved throughput).
    pub throughput: f64,
    /// Offered load (members / period).
    pub offered: f64,
    /// Mean commit latency of an update.
    pub mean_latency: Nanos,
    /// CAS retries (Marlin's OCC contention signal; 0 for baselines).
    pub retries: u64,
}

/// Run the stress for `members` virtual nodes at one update per `period`.
#[must_use]
pub fn run_membership_stress(
    kind: CoordKind,
    members: u32,
    period: Nanos,
    horizon: Nanos,
    params: SimParams,
) -> MembershipResult {
    // No user workload: the scenario isolates the metadata path.
    let mut sim = ClusterSim::new(
        params,
        kind,
        &Workload::Ycsb { granules: 16 },
        1,
        0,
        horizon,
    );
    sim.schedule_membership_stress(members, period);
    sim.run();
    let commits = sim.metrics.membership_commits;
    MembershipResult {
        kind,
        members,
        throughput: commits as f64 / (horizon as f64 / SECOND as f64),
        offered: f64::from(members) / (period as f64 / SECOND as f64),
        mean_latency: sim.membership_mean_latency() as Nanos,
        retries: sim.metrics.membership_retries,
    }
}

/// Updates expected over the run (bursts fully inside the horizon).
#[must_use]
pub fn expected_updates(members: u32, period: Nanos, horizon: Nanos) -> u64 {
    u64::from(members) * (horizon / period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_sim::MILLISECOND;

    #[test]
    fn low_contention_marlin_matches_offered_load() {
        let (period, horizon) = (15 * SECOND, 50 * SECOND);
        let r = run_membership_stress(CoordKind::Marlin, 8, period, horizon, SimParams::default());
        // Every burst inside the horizon commits fully.
        let committed = (r.throughput * (horizon as f64 / SECOND as f64)).round() as u64;
        assert_eq!(committed, expected_updates(8, period, horizon));
        assert!(
            r.mean_latency < 50 * MILLISECOND,
            "latency {}",
            r.mean_latency
        );
    }

    #[test]
    fn high_contention_marlin_pays_occ_retries() {
        let quiet = run_membership_stress(
            CoordKind::Marlin,
            16,
            15 * SECOND,
            45 * SECOND,
            SimParams::default(),
        );
        let stormy = run_membership_stress(
            CoordKind::Marlin,
            512,
            15 * SECOND,
            45 * SECOND,
            SimParams::default(),
        );
        assert!(
            stormy.retries > quiet.retries * 10,
            "retries {} vs {}",
            stormy.retries,
            quiet.retries
        );
        assert!(stormy.mean_latency > quiet.mean_latency);
    }

    #[test]
    fn zk_serializes_without_client_retries() {
        let (period, horizon) = (15 * SECOND, 50 * SECOND);
        let r = run_membership_stress(
            CoordKind::ZkSmall,
            256,
            period,
            horizon,
            SimParams::default(),
        );
        assert_eq!(r.retries, 0, "the leader serializes; clients never retry");
        let committed = (r.throughput * (horizon as f64 / SECOND as f64)).round() as u64;
        assert_eq!(committed, expected_updates(256, period, horizon));
    }
}
