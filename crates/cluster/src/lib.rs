//! The simulated cloud DBMS testbed (§5, §6.1).
//!
//! This crate wires everything together into the evaluation harness: a
//! discrete-event simulation of the paper's Azure deployment where compute
//! nodes, clients, the disaggregated storage service, and the baseline
//! coordination services interact in virtual time, while all coordination
//! *state* (logs, LSN trackers, ownership, membership) is real — the same
//! `SharedLog` compare-and-swap and `LsnTracker` machinery that
//! `marlin-core`'s drivers are tested against.
//!
//! Layout:
//!
//! - [`params`] — every calibrated constant (latencies, service times,
//!   hardware profiles, prices), each documented against the paper's
//!   hardware (D4s/D8s v3, 2/4 Gbps, Azure storage).
//! - [`metrics`] — per-run measurement state feeding the figures.
//! - [`cost`] — the §6.1.5 cost model (DB Cost + Meta Cost).
//! - [`sim`] — the cluster simulator: closed-loop interactive clients,
//!   per-node CPU queueing, group commit, granule warmth (cold-cache
//!   effects), NO_WAIT conflict handling, migration threads, and the
//!   coordination backends (Marlin's log CAS vs ZooKeeper/FDB services).
//! - [`harness`] — the unified experiment API: declarative
//!   [`Scenario`]s (every §6 figure is a preset), the [`Runner`] trait
//!   implemented by both the simulator and the synchronous
//!   `LocalCluster`, the one generic [`run`] driver, and the
//!   JSON-serializable [`RunReport`] with the full controller decision
//!   log.
//! - [`report`] — plain-text series/table rendering for the bench mains.
//!
//! The architecture overview — crate map, control loop, harness, region
//! axis, and CPU-model guidance — lives in `docs/ARCHITECTURE.md`.

// Everything public here is experiment-facing API; CI escalates this to
// an error via RUSTDOCFLAGS=-D warnings.
#![warn(missing_docs)]

pub mod cost;
pub mod harness;
pub mod metrics;
pub mod params;
pub mod report;
pub mod sim;

pub use cost::CostModel;
pub use harness::{run, LocalRunner, RunReport, Runner, Scenario, SimRunner};
pub use metrics::{Blame, RunMetrics, TailExemplar, TailExemplars};
pub use params::{CoordKind, CpuModel, SimParams};
pub use sim::{ClusterSim, CpuStation, MigrationPlan, PerRequestStation, Workload};
