//! The cluster simulator: the paper's testbed in virtual time.
//!
//! The simulator combines **real coordination state** with **modeled
//! time**:
//!
//! - Every node owns a real `SharedLog` (its GLog, which doubles as its
//!   data WAL) and a real `LsnTracker`; Marlin's metadata commits and the
//!   membership stress test perform actual conditional appends, so CAS
//!   conflicts, retries, and the Figure 15 contention collapse *emerge*
//!   from the protocol rather than being scripted.
//! - Network hops, CPU service, storage appends, page reads, and the
//!   baseline coordination services are priced through latency models and
//!   queueing stations ([`marlin_sim`]).
//!
//! Transactions are simulated at flow level: each interactive transaction
//! computes its full timeline (16 request round trips through the node's
//! CPU station, cold-page fetches, group commit, log CAS) in one event and
//! schedules its own completion; NO_WAIT conflicts are enforced through
//! per-granule busy windows and migration marks. This keeps 100K-migration
//! scale-outs tractable while preserving queueing behavior (stations are
//! work-conserving across interleaved offers).
//!
//! Node CPU congestion is priced by one of two station models, selected
//! per run via [`SimParams::cpu_model`]: [`CpuStation`] (the analytic EMA
//! default, bit-identical to historical decision logs) or
//! [`PerRequestStation`] (a per-request reservation calendar yielding
//! exact sojourn times and real queue lengths). See
//! [`crate::params::CpuModel`] for the trade-off.

use crate::cost::CostModel;
use crate::metrics::{Blame, RunMetrics, TailExemplar, TailExemplars};
use crate::params::{ClientEngine, CoordKind, CpuModel, SimParams};
use bytes::Bytes;
use marlin_autoscaler::{GranuleLoad, NodeLoad, Observation, ScaleAction};
use marlin_baselines::{CoordReply, CoordRequest, CoordinationService, FdbService, ZkService};
use marlin_common::{GranuleId, LogId, NodeId, RegionId, StorageError};
use marlin_core::LsnTracker;
use marlin_sim::{ActorId, DetRng, EventQueue, HeatTracker, Nanos, TimeSeries, SECOND};
use marlin_storage::SharedLog;
use marlin_telemetry::{CoordBreakdown, CoordOps, LatencyHist, ProfileSummary, Profiler, Tracer};
use marlin_workload::{
    interleaved_share, TpccConfig, TpccGenerator, TxnTemplate, YcsbConfig, YcsbGenerator,
};

/// Fork label of the heat sketch's row-seed stream (pure fork: drawing
/// it consumes nothing from the main stream, so exact-path RNG
/// trajectories are unchanged whether or not the sketch is on).
const FORK_SKETCH: u64 = 7001;

/// Fork label of the cohort engine's generator base stream; per-cohort
/// generator streams are derived from it by region index.
const FORK_COHORT: u64 = 7002;

/// Analytic (EMA) CPU congestion station — [`CpuModel::Analytic`].
///
/// Transactions compute their full timeline in a single event, which means
/// CPU demands arrive out of chronological order — a naive FIFO queue
/// station would serialize unrelated transactions behind far-future
/// bookings. This station instead tracks an exponentially-averaged
/// utilization (offered work per unit time over a 0.5 s EMA constant) and charges
/// each request its service time plus an M/M/c-style congestion delay
/// `service * rho / (1 - rho)` with `rho` clamped at 0.98. The closed-loop
/// clients then settle into the classic equilibrium: an overloaded 8-node
/// cluster saturates near its capacity, and the scale-out to 16 relieves
/// it (the Figure 9 shape).
///
/// The clamp is also the model's known blind spot: under sustained
/// overload per-request delay caps at `49 × service`, so tail latency
/// flattens where a real queue keeps growing. [`PerRequestStation`]
/// removes that approximation at a higher bookkeeping cost.
pub struct CpuStation {
    workers: f64,
    /// EMA load estimator: expected value = arrival_rate x mean_service.
    load: f64,
    last: Nanos,
}

/// EMA time constant for the analytic CPU load estimator (0.5 s).
const CPU_TAU: f64 = 0.5e9;

impl CpuStation {
    /// An idle station with `workers` service threads.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        CpuStation {
            workers: workers as f64,
            load: 0.0,
            last: 0,
        }
    }

    /// Charge `service` work arriving at `at`; returns service + modeled
    /// queueing delay.
    pub fn charge(&mut self, at: Nanos, service: Nanos) -> Nanos {
        if at > self.last {
            let dt = (at - self.last) as f64;
            self.load *= (-dt / CPU_TAU).exp();
            self.last = at;
        }
        self.load += service as f64 / CPU_TAU;
        let rho = (self.load / self.workers).min(0.98);
        let delay = service as f64 * rho / (1.0 - rho);
        service + delay as Nanos
    }

    /// Deposit `service` offered work at `at` without pricing a sojourn —
    /// the cohort engine's bulk path for the unmaterialized copies of a
    /// sampled walk. The load EMA is linear in offered work, so this has
    /// exactly the effect of charging each copy individually at `at`;
    /// only the per-copy congestion delay (which no materialized request
    /// is waiting on) is skipped.
    pub fn offer(&mut self, at: Nanos, service: Nanos) {
        if at > self.last {
            let dt = (at - self.last) as f64;
            self.load *= (-dt / CPU_TAU).exp();
            self.last = at;
        }
        self.load += service as f64 / CPU_TAU;
    }

    /// Read-only utilization estimate at `at` (load decayed to the
    /// observation instant, *not* clamped to the service ceiling — values
    /// above 1 expose queue build-up to the autoscaler).
    #[must_use]
    pub fn rho_at(&self, at: Nanos) -> f64 {
        let load = if at > self.last {
            self.load * (-((at - self.last) as f64) / CPU_TAU).exp()
        } else {
            self.load
        };
        load / self.workers
    }
}

/// One reserved service slot on a [`PerRequestStation`] worker.
#[derive(Clone, Copy, Debug)]
struct Booking {
    /// When the request reached the station.
    arrival: Nanos,
    /// When its service begins (≥ `arrival`; the gap is real queueing).
    start: Nanos,
    /// When its service completes (`start + service`).
    end: Nanos,
}

/// Per-request queueing CPU station — [`CpuModel::PerRequest`].
///
/// Every request books a concrete, contiguous service slot on a concrete
/// worker and its reported latency is the *exact sojourn time*: waiting
/// plus service, with no analytic smoothing or saturation clamp. Because
/// the simulator offers CPU demands out of chronological order (a
/// transaction's whole timeline is computed in one event), the station is
/// a reservation calendar rather than a running queue: each worker keeps
/// its booked intervals sorted by start time, and a new request takes the
/// earliest-completing feasible slot across workers — gaps left in front
/// of far-future bookings are filled, which keeps the station
/// work-conserving across interleaved offers (an early arrival is never
/// serialized behind an unrelated transaction's future booking).
///
/// Observability is exact too, and *windowed* like every other
/// observation field. The station accumulates two integrals into 100 ms
/// buckets as slots are booked:
///
/// - **offered work** (service demand, keyed by arrival time) —
///   [`PerRequestStation::rho_windowed`] reads it as offered load per
///   worker-capacity over a trailing window. This is the *same
///   quantity* the analytic station's EMA estimates, measured exactly,
///   so the reactive watermarks calibrated against offered load keep
///   their meaning in both modes (a busy+waiting occupancy reading
///   would run structurally hotter and sit on the 80% watermark at
///   healthy load);
/// - **waiting time** (the queue-length integral) —
///   [`PerRequestStation::queue_windowed`] reads it as the real queue
///   length per worker, time-averaged over the window. This is what
///   `Observation::queue_depth` reports in per-request mode, measured
///   directly instead of derived from a utilization excess.
///
/// [`PerRequestStation::queue_len_at`] and
/// [`PerRequestStation::in_system_at`] expose the instantaneous view
/// for tests and debugging (a single-sample probe is too noisy to
/// drive threshold policies).
///
/// Bookings wholly in the past of the event clock are pruned on every
/// charge, so memory tracks the in-flight transaction window, not the
/// run length.
pub struct PerRequestStation {
    /// Per-worker reservation calendars, each sorted by slot start.
    workers: Vec<Vec<Booking>>,
    /// Offered-work integral per [`BUCKET`] of virtual time (each
    /// request's service demand deposited at its arrival), ring-indexed
    /// as `(bucket id, nanoseconds offered in it)`.
    offered_ring: Vec<(u64, u64)>,
    /// Waiting-time integral (queue length × time) per bucket.
    wait_ring: Vec<(u64, u64)>,
    /// Event clock of the last calendar pruning — nothing new can die
    /// until the clock advances, so same-event charges (a transaction's
    /// whole timeline prices in one event) skip the retain pass.
    pruned_at: Nanos,
}

/// Bucket width of the windowed-occupancy rings (100 ms).
const BUCKET: Nanos = 100 * 1_000_000;

/// Ring length in buckets: covers the 60 s maximum observation window
/// plus 70 s of booking lookahead under deep backlog. A booking whose
/// lookahead exceeded that budget would recycle a slot still inside a
/// live trailing window and silently under-report occupancy;
/// [`PerRequestStation::charge`] debug-asserts the invariant instead
/// (paper-scale backlogs book a few seconds ahead at most).
const RING: u64 = 1_300;

/// The lookahead budget the ring affords: bookings may end at most this
/// far past the event clock without endangering reads over the maximum
/// observation window. One extra bucket is reserved because a windowed
/// read spans `window/BUCKET + 1` buckets (the window-edge bucket is
/// included whole).
const MAX_LOOKAHEAD: Nanos = RING * BUCKET - ClusterSim::MAX_OBSERVE_WINDOW - BUCKET;

/// The ring slot for `bucket`, recycled (tag rewritten, value zeroed)
/// if it still holds an older bucket's total.
fn ring_slot(ring: &mut [(u64, u64)], bucket: u64) -> &mut u64 {
    let slot = &mut ring[(bucket % RING) as usize];
    if slot.0 != bucket {
        *slot = (bucket, 0);
    }
    &mut slot.1
}

/// Distribute the interval `[from, to)` into the ring's buckets.
fn deposit(ring: &mut [(u64, u64)], from: Nanos, to: Nanos) {
    let mut t = from;
    while t < to {
        let bucket = t / BUCKET;
        let edge = ((bucket + 1) * BUCKET).min(to);
        *ring_slot(ring, bucket) += edge - t;
        t = edge;
    }
}

/// Integrate the ring over `[cutoff, at]`, prorating the partially
/// covered edge buckets by their overlap (a whole-bucket sum would
/// systematically under-report short windows) and skipping recycled
/// slots.
fn ring_integral(ring: &[(u64, u64)], cutoff: Nanos, at: Nanos) -> f64 {
    let mut sum = 0.0;
    for bucket in (cutoff / BUCKET)..=(at / BUCKET) {
        let slot = ring[(bucket % RING) as usize];
        if slot.0 != bucket {
            continue;
        }
        let b_start = bucket * BUCKET;
        let overlap = (b_start + BUCKET)
            .min(at)
            .saturating_sub(b_start.max(cutoff));
        sum += slot.1 as f64 * overlap as f64 / BUCKET as f64;
    }
    sum
}

impl PerRequestStation {
    /// An idle station with `workers` service threads.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a station needs at least one worker");
        PerRequestStation {
            workers: vec![Vec::new(); workers],
            offered_ring: vec![(u64::MAX, 0); RING as usize],
            wait_ring: vec![(u64::MAX, 0); RING as usize],
            pruned_at: 0,
        }
    }

    /// Admit a request arriving at `at` with `service` demand; returns its
    /// exact sojourn time (waiting + service).
    ///
    /// `now` is the dispatching event's timestamp. Events pop in
    /// non-decreasing time order and every charge or observation happens
    /// at or after its event's `now`, so bookings that end at or before
    /// `now` can never be looked at again — they are pruned here, which
    /// bounds the calendars to the in-flight window.
    pub fn charge(&mut self, now: Nanos, at: Nanos, service: Nanos) -> Nanos {
        debug_assert!(at >= now, "arrivals cannot precede the event clock");
        if now > self.pruned_at {
            for calendar in &mut self.workers {
                calendar.retain(|b| b.end > now);
            }
            self.pruned_at = now;
        }
        // Earliest feasible start per worker: scan the sorted calendar,
        // pushing the candidate past every overlapping booking until a
        // gap of `service` length opens (or the calendar ends).
        let mut best: Option<(Nanos, usize)> = None;
        for (w, calendar) in self.workers.iter().enumerate() {
            let mut candidate = at;
            for b in calendar {
                if b.start >= candidate.saturating_add(service) {
                    break; // the gap before `b` fits the whole slot
                }
                if b.end > candidate {
                    candidate = b.end;
                }
            }
            // Strict `<` keeps the lowest worker index on ties, which
            // makes slot assignment deterministic.
            if best.is_none_or(|(s, _)| candidate < s) {
                best = Some((candidate, w));
            }
        }
        let (start, w) = best.expect("at least one worker");
        let end = start + service;
        debug_assert!(
            end.saturating_sub(now) <= MAX_LOOKAHEAD,
            "booking lookahead {} ns overflows the occupancy ring's {} ns budget",
            end.saturating_sub(now),
            MAX_LOOKAHEAD,
        );
        deposit(&mut self.wait_ring, at, start);
        // Offered work is a point event: the whole service demand lands
        // in the arrival's bucket (uniform within it, as far as a
        // prorated read can tell).
        *ring_slot(&mut self.offered_ring, at / BUCKET) += service;
        let calendar = &mut self.workers[w];
        let pos = calendar.partition_point(|b| b.start < start);
        calendar.insert(
            pos,
            Booking {
                arrival: at,
                start,
                end,
            },
        );
        end - at
    }

    /// Deposit `service` offered work at `at` without booking a slot —
    /// the cohort engine's bulk path. The windowed offered-load
    /// observable (what the autoscaler watches) sees the full aggregate
    /// demand; the reservation calendars see only the sampled walks, so
    /// sojourn congestion in cohort runs is sampled rather than exact.
    pub fn offer(&mut self, at: Nanos, service: Nanos) {
        *ring_slot(&mut self.offered_ring, at / BUCKET) += service;
    }

    /// Requests in the system at `at`: arrived (admitted at or before
    /// `at`) and not yet departed.
    #[must_use]
    pub fn in_system_at(&self, at: Nanos) -> usize {
        self.workers
            .iter()
            .flatten()
            .filter(|b| b.arrival <= at && b.end > at)
            .count()
    }

    /// Real queue length at `at`: requests that have arrived but whose
    /// service has not yet started.
    #[must_use]
    pub fn queue_len_at(&self, at: Nanos) -> usize {
        self.workers
            .iter()
            .flatten()
            .filter(|b| b.arrival <= at && b.start > at)
            .count()
    }

    /// Instantaneous in-system occupancy at `at` in worker units:
    /// `in_system / workers`. A single-sample probe — noisy by nature;
    /// observations use [`PerRequestStation::rho_windowed`] instead.
    #[must_use]
    pub fn rho_at(&self, at: Nanos) -> f64 {
        self.in_system_at(at) as f64 / self.workers.len() as f64
    }

    /// Measured offered load over the trailing `window` ending at `at`,
    /// in worker units: service demand that arrived in the window
    /// divided by the capacity the window held (`workers × window`).
    ///
    /// This is the exact-measurement counterpart of
    /// [`CpuStation::rho_at`] — the same offered-load quantity the EMA
    /// estimates, so policy watermarks keep one meaning across both
    /// models. Values above 1 mean demand arrived faster than the
    /// station could serve (backlog grew); under sustained closed-loop
    /// saturation completions gate arrivals, so the value hovers near 1
    /// while the backlog itself shows up in
    /// [`PerRequestStation::queue_windowed`] and in the sojourn times.
    /// Edge buckets are prorated by overlap (100 ms quantization).
    #[must_use]
    pub fn rho_windowed(&self, at: Nanos, window: Nanos) -> f64 {
        let cutoff = at.saturating_sub(window.max(BUCKET));
        let span = (at - cutoff).max(1);
        let offered = ring_integral(&self.offered_ring, cutoff, at);
        offered / (span as f64 * self.workers.len() as f64)
    }

    /// Real queue length per worker, time-averaged over the trailing
    /// `window` ending at `at`: the waiting-time integral (queue length
    /// × time, from each booking's arrival→start gap) divided by
    /// `workers × window`. Measured directly — not derived from a
    /// utilization excess. Edge buckets are prorated by overlap.
    #[must_use]
    pub fn queue_windowed(&self, at: Nanos, window: Nanos) -> f64 {
        let cutoff = at.saturating_sub(window.max(BUCKET));
        let span = (at - cutoff).max(1);
        let wait = ring_integral(&self.wait_ring, cutoff, at);
        wait / (span as f64 * self.workers.len() as f64)
    }
}

/// A node's CPU station: one of the two [`CpuModel`]s, behind one call
/// surface. The analytic arm ignores the event clock (`now`); the
/// per-request arm uses it to prune dead bookings.
enum NodeCpu {
    Analytic(CpuStation),
    PerRequest(PerRequestStation),
}

impl NodeCpu {
    fn new(model: CpuModel, workers: usize) -> Self {
        match model {
            CpuModel::Analytic => NodeCpu::Analytic(CpuStation::new(workers)),
            CpuModel::PerRequest => NodeCpu::PerRequest(PerRequestStation::new(workers)),
        }
    }

    fn charge(&mut self, now: Nanos, at: Nanos, service: Nanos) -> Nanos {
        match self {
            NodeCpu::Analytic(s) => s.charge(at, service),
            NodeCpu::PerRequest(s) => s.charge(now, at, service),
        }
    }

    /// The utilization an observation reports: offered load, as the EMA
    /// estimate decayed to `at` (analytic) or measured exactly over the
    /// trailing `window` (per-request).
    fn observed_rho(&self, at: Nanos, window: Nanos) -> f64 {
        match self {
            NodeCpu::Analytic(s) => s.rho_at(at),
            NodeCpu::PerRequest(s) => s.rho_windowed(at, window),
        }
    }

    /// Bulk-deposit offered work without pricing a sojourn (cohort
    /// engine): the EMA estimator (analytic) or the offered-load ring
    /// (per-request) absorbs the aggregate demand of a sampled walk's
    /// unmaterialized copies.
    fn offer(&mut self, at: Nanos, service: Nanos) {
        match self {
            NodeCpu::Analytic(s) => s.offer(at, service),
            NodeCpu::PerRequest(s) => s.offer(at, service),
        }
    }

    /// The measured queue length per worker over the window, when the
    /// model can measure one (`None` tells the observation to fall back
    /// to the modeled utilization excess).
    fn observed_queue(&self, at: Nanos, window: Nanos) -> Option<f64> {
        match self {
            NodeCpu::Analytic(_) => None,
            NodeCpu::PerRequest(s) => Some(s.queue_windowed(at, window)),
        }
    }
}

/// One simulated compute node.
struct NodeSim {
    /// Region the node runs in.
    region: RegionId,
    /// CPU congestion station (4 vCPU), in whichever [`CpuModel`] the
    /// run's [`SimParams`] selected.
    cpu: NodeCpu,
    /// The node's GLog (metadata + data WAL): real CAS state.
    glog: SharedLog,
    /// The node's H-LSN tracker.
    tracker: LsnTracker,
    /// Storage-side append station for this log. Always analytic: append
    /// bandwidth is not the subject of the per-request model, and user
    /// commits book at out-of-order future times (see [`CpuStation`]).
    append_station: CpuStation,
    /// Whether the node is a live member.
    alive: bool,
}

/// One granule's dynamic state.
#[derive(Clone, Copy)]
struct GranuleSim {
    /// Authoritative owner (node index).
    owner: u32,
    /// A migration transaction currently holds this granule.
    migrating: bool,
    /// Latest completion time of any user transaction touching it
    /// (NO_WAIT lock horizon).
    busy_until: Nanos,
    /// Cold-page fetches remaining before the granule is warm at its
    /// current owner (0 = warm).
    cold_left: u32,
}

/// The per-client workload stream.
enum ClientGen {
    Ycsb(YcsbGenerator),
    Tpcc(TpccGenerator),
}

impl ClientGen {
    fn next_txn(&mut self) -> TxnTemplate {
        match self {
            ClientGen::Ycsb(g) => g.next_txn(),
            ClientGen::Tpcc(g) => g.next_txn(),
        }
    }
}

/// One closed-loop interactive client.
struct ClientSim {
    region: RegionId,
    gen: ClientGen,
    /// Consecutive aborts (drives exponential backoff, capped 100 ms §6.1.4).
    strikes: u32,
    /// Clients beyond the active count idle until re-activated (dynamic
    /// workload scenario).
    active: bool,
    /// First dispatch time of the transaction currently being retried
    /// (client-perceived latency includes retries).
    attempt_started: Option<Nanos>,
    /// Blame accrued by aborted attempts of the in-flight transaction;
    /// folded into the commit's attribution so the components sum to
    /// the client-perceived latency (which includes retries).
    attempt_blame: Blame,
}

/// One flow-level client cohort: every client of one region, advanced
/// together by [`Event::CohortStep`] instead of one event per client
/// ([`ClientEngine::Cohort`] at or above the activation threshold).
struct Cohort {
    /// The region whose clients this cohort aggregates.
    region: RegionId,
    /// Clients the cohort *could* activate (its share of the peak).
    members: u32,
    /// Currently active clients.
    active: u32,
    /// Representative workload stream (forked per cohort, so workload
    /// draws are independent of every other deterministic stream).
    gen: ClientGen,
    /// Fractional transactions carried between steps, so the long-run
    /// rate is exact despite integer per-step counts.
    carry: f64,
}

/// One sampled representative transaction walk of a cohort step. The
/// walk prices a full timeline through the real stations/logs exactly
/// like a per-client transaction; the step handler then replays its
/// outcome with an aggregate weight.
enum CohortWalk {
    /// The walk committed.
    Commit {
        /// Response time back at the client.
        t_end: Nanos,
        /// Granules the transaction touched (post-remap, deduped).
        touched: Vec<u64>,
        /// Commit participants (node indices, deduped).
        participants: Vec<usize>,
        /// Per-op CPU service charged, as `(node, service)` pairs — the
        /// demand bulk-offered on behalf of the walk's weighted copies.
        node_service: Vec<(usize, Nanos)>,
        /// Where the walk's sojourn went (components sum to
        /// `t_end - now`; replayed per weighted copy).
        blame: Blame,
        /// The walk's anchor granule (exemplar attribution).
        anchor: u64,
        /// The home node that served the walk (exemplar attribution).
        home: u32,
    },
    /// The walk aborted (misroute, NO_WAIT, or commit CAS conflict).
    Abort {
        /// When the abort is observed.
        at: Nanos,
        /// The abort consumed a metered coordination-service read
        /// (misroute refresh on a service-backed deployment).
        coord_read: bool,
        /// The abort was a commit-time CAS conflict (counted as a
        /// retry in the coordination-op breakdown).
        cas_retry: bool,
        /// Virtual time until the client would retry (the closed-loop
        /// cycle this walk contributes to the step's mean).
        cycle: Nanos,
        /// CPU service charged before the abort (bulk-offered like the
        /// commit arm's).
        node_service: Vec<(usize, Nanos)>,
    },
}

impl CohortWalk {
    /// The closed-loop cycle time this walk observed: dispatch →
    /// response for commits, dispatch → scheduled retry for aborts.
    fn cycle(&self, now: Nanos) -> Nanos {
        match self {
            CohortWalk::Commit { t_end, .. } => t_end - now,
            CohortWalk::Abort { cycle, .. } => *cycle,
        }
    }
}

/// Weighted p99 over `(latency, weight)` samples. With unit weights
/// this reduces exactly to the historical `sorted[(len - 1) * 99 / 100]`
/// index rule: the first sample whose cumulative weight exceeds
/// `(total - 1) * 99 / 100` is the one at that index.
fn weighted_p99(lat: &mut [(Nanos, u64)]) -> Nanos {
    if lat.is_empty() {
        return 0;
    }
    lat.sort_unstable();
    let total: u64 = lat.iter().map(|&(_, w)| w).sum();
    let target = total.saturating_sub(1) * 99 / 100;
    let mut cum = 0u64;
    for &(l, w) in lat.iter() {
        cum += w;
        if cum > target {
            return l;
        }
    }
    lat.last().map_or(0, |&(l, _)| l)
}

/// Windowed per-region commit-latency histograms — the `latency_hist`
/// scale path replacing the exact `(latency, weight)` tuple window.
///
/// One slot per virtual second of *commit time*, recycled lazily: a
/// write whose second differs from the slot's tag clears the slot
/// first. [`LatencyWindow::SLOTS`] exceeds
/// `ClusterSim::MAX_OBSERVE_WINDOW` in seconds, so no slot still inside
/// an observation window is ever recycled (commit timestamps run at
/// most a few seconds ahead of the event clock — client latencies are
/// bounded far below the ~68 s of recycle slack).
///
/// Observation windows in the presets are whole seconds and control
/// ticks fire on whole-second boundaries, so the window cutoff lands on
/// a slot boundary and the merged histogram covers exactly the commit
/// multiset the exact tuple window retains — any p99 difference is
/// purely the histogram's documented bucketing error.
struct LatencyWindow {
    /// `(second tag, one histogram per region)`; slot index is
    /// `second % SLOTS`. Empty when the hist path is inactive.
    slots: Vec<(u64, Vec<LatencyHist>)>,
}

impl LatencyWindow {
    /// Retained slots (seconds); must exceed `MAX_OBSERVE_WINDOW / SECOND`.
    const SLOTS: u64 = 128;

    /// A window for `regions` regions, or a zero-footprint stub when
    /// `regions == 0` (the hist path is inactive).
    fn new(regions: usize) -> Self {
        let slots = if regions == 0 {
            Vec::new()
        } else {
            (0..Self::SLOTS)
                .map(|_| (0u64, vec![LatencyHist::new(); regions]))
                .collect()
        };
        LatencyWindow { slots }
    }

    /// Record a commit at `at` with client-perceived `latency`.
    fn record(&mut self, at: Nanos, latency: Nanos, region: u16, weight: u64) {
        let sec = at / SECOND;
        let slot = &mut self.slots[(sec % Self::SLOTS) as usize];
        if slot.0 != sec {
            slot.0 = sec;
            for h in &mut slot.1 {
                h.clear();
            }
        }
        slot.1[region as usize].record_n(latency, weight);
    }

    /// Merge every slot overlapping `[cutoff, ∞)` — all regions, or one.
    /// Merge order never affects the result (bucket counts add; exact
    /// tuples are re-sorted by value before quantile selection), so the
    /// derived stats are deterministic.
    fn merged(&self, cutoff: Nanos, region: Option<u16>) -> LatencyHist {
        let mut out = LatencyHist::new();
        for (sec, hists) in &self.slots {
            if sec.saturating_add(1).saturating_mul(SECOND) <= cutoff {
                continue;
            }
            match region {
                Some(r) => out.merge(&hists[r as usize]),
                None => {
                    for h in hists {
                        out.merge(h);
                    }
                }
            }
        }
        out
    }
}

/// The external coordination service, if any.
enum CoordBackend {
    Marlin,
    Zk(ZkService),
    Fdb(FdbService),
}

/// A migration work item: move `granule` from `src` to `dst`.
#[derive(Clone, Copy, Debug)]
pub struct MigrationTask {
    /// The granule to move.
    pub granule: u64,
    /// Source node index (must own the granule when the task runs).
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
}

/// A migration plan: tasks partitioned over destination-side worker
/// threads ("the number of concurrent migration transactions is increased
/// as the number of compute nodes increases", §6.1.4).
#[derive(Clone, Debug, Default)]
pub struct MigrationPlan {
    /// One queue per worker thread.
    pub queues: Vec<Vec<MigrationTask>>,
}

impl MigrationPlan {
    /// Total tasks in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queues.iter().map(Vec::len).sum()
    }

    /// Whether the plan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A scheduled-but-not-yet-started migration plan.
///
/// Scale-outs are deliberately *deferred*: at order time only the node
/// slots are reserved (so concurrent orders cannot collide and
/// observations can report the capacity as pending); the balanced task
/// list is built when the provisioning lead elapses and the nodes
/// actually join. Building tasks at order time looks equivalent with
/// instant provisioning — and is bit-identical then, since no event can
/// run in between — but under a real lead any migration that commits
/// during the window invalidates prebuilt tasks (the data-effectiveness
/// check skips them as stale), leaving the join under-balanced and a
/// subset of old nodes hot for the rest of the run.
enum PendingPlan {
    /// Tasks already built (drain-less rebalances, prepared plans).
    Built {
        /// The task queues to run when the plan starts.
        plan: MigrationPlan,
        /// Node slots to activate when the plan starts.
        activate: Vec<u32>,
    },
    /// A scale-out whose rebalance tasks are built at start time.
    ScaleOut {
        /// Reserved node slots that join when the lead elapses.
        slots: Vec<u32>,
        /// Migration worker threads per joining node.
        threads_per: u32,
        /// Placement request the order carried.
        region: Option<RegionId>,
        /// When the capacity was ordered (the provision-lead trace span
        /// runs from here to the plan start).
        ordered_at: Nanos,
    },
}

impl Default for PendingPlan {
    fn default() -> Self {
        PendingPlan::Built {
            plan: MigrationPlan::default(),
            activate: Vec::new(),
        }
    }
}

impl PendingPlan {
    /// Slots this pending plan has reserved (they may not be handed to
    /// another plan, and observations report them as pending capacity).
    fn reserved_slots(&self) -> &[u32] {
        match self {
            PendingPlan::Built { activate, .. } => activate,
            PendingPlan::ScaleOut { slots, .. } => slots,
        }
    }
}

/// Simulator events.
enum Event {
    /// A client dispatches its next transaction (or retries).
    ClientTxn { client: u32 },
    /// A client cohort advances one flow-level step (cohort engine).
    CohortStep { cohort: u32 },
    /// A migration worker thread picks up its next task.
    MigWorker { worker: u32 },
    /// A granule's proactive warm-up finished.
    WarmupDone { granule: u64 },
    /// The periodic ownership broadcast reached the routing tier (§4.2:
    /// "compute nodes can periodically broadcast updates of their owned
    /// GTable partitions to routers, thereby reducing redirections").
    RouteUpdate { granule: u64 },
    /// Periodic cost sampling.
    CostTick,
    /// One virtual member fires its membership update (Figure 15).
    MembershipTick { member: u32 },
    /// Dynamic scenario: change the number of active clients.
    SetClients { count: u32 },
    /// Geo scenario: change one region's active client count (clients are
    /// interleaved over regions; region `r`'s clients are `r, r+R, ...`).
    SetRegionClients { region: u16, count: u32 },
    /// Dynamic scenario: start a migration plan (scale-out or scale-in).
    StartPlan { plan_idx: usize },
    /// Dynamic scenario: drain `victims` onto survivors (the plan is built
    /// at fire time against current ownership).
    StartDrain {
        victims: Vec<u32>,
        threads_per_victim: u32,
    },
    /// Scale-in bookkeeping: remove nodes that have been fully drained.
    ReleaseDrained,
    /// An injected network-latency overlay (region latency spike or
    /// partition) heals: drop the overlay with this token.
    EndNetworkOverlay { token: u64 },
}

/// The simulated cluster.
pub struct ClusterSim {
    params: SimParams,
    kind: CoordKind,
    queue: EventQueue<Event>,
    rng: DetRng,
    nodes: Vec<NodeSim>,
    granules: Vec<GranuleSim>,
    /// Routing-tier cache granule → node index (stale entries fixed by
    /// redirects, as in §4.2).
    routes: Vec<u32>,
    clients: Vec<ClientSim>,
    active_clients: u32,
    backend: CoordBackend,
    /// The global SysLog (membership; real CAS state).
    syslog: SharedLog,
    syslog_station: CpuStation,
    /// Per-virtual-member SysLog trackers (membership stress test).
    member_trackers: Vec<LsnTracker>,
    membership_latency_sum: Nanos,
    /// Membership stress cadence and per-member tick origins.
    membership_period: Nanos,
    membership_origins: Vec<Nanos>,
    /// First attempt time of each member's in-flight update (latency
    /// includes OCC retries — the Figure 15 degradation signal).
    membership_starts: Vec<Option<Nanos>>,
    /// Migration worker state: (queue, cursor, current blocked task).
    workers: Vec<(Vec<MigrationTask>, usize)>,
    /// Plans scheduled but not yet started (scale-out task lists are
    /// built when the plan fires; see [`PendingPlan`]).
    pending_plans: Vec<PendingPlan>,
    /// Flow-level client cohorts (cohort engine only; empty otherwise).
    cohorts: Vec<Cohort>,
    /// Whether this run batches clients into cohorts. Decided once at
    /// construction: `Cohort` runs below
    /// [`SimParams::cohort_min_clients`] take the exact per-client path
    /// and are bit-identical to `Exact`.
    cohort_active: bool,
    /// Committed user transactions in the recent past: (commit time,
    /// client-perceived latency, client region, weight). The exact
    /// engine records weight 1 per commit; the cohort engine records
    /// one weighted entry per sampled walk. Pruned to the observation
    /// window.
    recent_commits: std::collections::VecDeque<(Nanos, Nanos, u16, u32)>,
    /// Whether windowed p99 comes from the log-bucketed histogram
    /// rather than the exact tuple window. Decided once at
    /// construction: `latency_hist` runs below
    /// [`SimParams::hist_min_clients`] keep the exact window and are
    /// bit-identical to histogram-off runs (the same parity discipline
    /// as `cohort_active`).
    hist_active: bool,
    /// The histogram-backed commit-latency window (empty stub unless
    /// `hist_active`).
    lat_window: LatencyWindow,
    /// The run's slowest commits with their blame breakdowns.
    exemplars: TailExemplars,
    /// Committed user transactions per client region (the §6.5 per-region
    /// throughput split).
    region_commits: Vec<u64>,
    /// Live-node-nanoseconds accrued per region (the per-region DB Cost
    /// split; mirrors the global `CostModel` accounting).
    region_node_ns: Vec<f64>,
    /// Last time `region_node_ns` was brought current.
    region_accrued_at: Nanos,
    /// Accesses per granule since the last observation (heat sampling
    /// for the rebalance planner): exact counters, or a deterministic
    /// count-min sketch when [`SimParams::heat_sketch`] is on and the
    /// granule table is large enough.
    heat: HeatTracker,
    /// Nodes being drained for scale-in.
    draining: Vec<u32>,
    /// Active network overlays from injected region faults:
    /// `(token, region, extra one-way latency, cross_region_only)`.
    /// Empty in every non-fuzzed run, so `one_way` costs one `is_empty`
    /// check and existing timestamp streams stay bit-identical.
    net_overlays: Vec<(u64, u16, Nanos, bool)>,
    /// Monotonic token source for overlay heal events.
    overlay_seq: u64,
    /// One-shot extra provisioning lead consumed by the next scale-out
    /// order (injected [`jitter_provision_lead`](Self::jitter_provision_lead)).
    lead_extra_once: Nanos,
    /// Granules initially owned by each region's nodes (geo deployments
    /// keep clients local: "each client accessing only local compute
    /// nodes", §6.5 — and migrations stay within a region).
    region_granules: Vec<Vec<u64>>,
    /// Measurement state.
    pub metrics: RunMetrics,
    /// The §6.1.5 cost model (DB Cost + Meta Cost accrual).
    pub cost: CostModel,
    /// Cumulative cost over time (Figure 14b).
    pub cost_series: TimeSeries,
    /// Virtual-time tracer (enabled by `MARLIN_TRACE`, or explicitly).
    tracer: Tracer,
    /// Wall-time self-profiler (enabled by `MARLIN_BENCH_JSON`, or
    /// explicitly). Its numbers measure the host and are therefore kept
    /// out of the deterministic report surface unless requested.
    profiler: Profiler,
    /// End of simulated time.
    horizon: Nanos,
}

/// Which workload the clients run.
#[derive(Clone, Debug)]
pub enum Workload {
    /// YCSB over `granules` granules (64 tuples each). `zipfian:
    /// Some(theta)` skews the anchor-granule distribution (hot granules at
    /// the low ids); `None` is the paper's uniform access.
    Ycsb {
        /// Number of granules the table spans.
        granules: u64,
        /// Zipfian skew θ of the anchor-granule distribution, if any.
        zipfian: Option<f64>,
    },
    /// TPC-C with one warehouse per granule.
    Tpcc {
        /// Number of warehouses (= granules).
        warehouses: u64,
    },
}

impl Workload {
    /// Uniform YCSB over `granules` granules (the paper's default).
    #[must_use]
    pub fn ycsb(granules: u64) -> Self {
        Workload::Ycsb {
            granules,
            zipfian: None,
        }
    }

    /// Zipfian-skewed YCSB (hot granules concentrated at the low ids).
    #[must_use]
    pub fn ycsb_zipfian(granules: u64, theta: f64) -> Self {
        Workload::Ycsb {
            granules,
            zipfian: Some(theta),
        }
    }

    /// TPC-C with one warehouse per granule.
    #[must_use]
    pub fn tpcc(warehouses: u64) -> Self {
        Workload::Tpcc { warehouses }
    }

    /// Number of granules the workload spans.
    #[must_use]
    pub fn granule_count(&self) -> u64 {
        match self {
            Workload::Ycsb { granules, .. } => *granules,
            Workload::Tpcc { warehouses } => *warehouses,
        }
    }
}

impl ClusterSim {
    /// Build a cluster of `initial_nodes` nodes with the given workload,
    /// client count, and coordination backend. Granules start contiguously
    /// assigned (block partitioning) and warm.
    #[must_use]
    pub fn new(
        params: SimParams,
        kind: CoordKind,
        workload: &Workload,
        initial_nodes: u32,
        clients: u32,
        horizon: Nanos,
    ) -> Self {
        let rng = DetRng::seed(params.seed);
        let granule_count = workload.granule_count();
        let regions = params.regions.regions() as u16;

        // Nodes: spread across regions round-robin (geo scenarios place
        // equal node counts per region, §6.5).
        let nodes: Vec<NodeSim> = (0..initial_nodes)
            .map(|i| NodeSim {
                region: RegionId(i as u16 % regions),
                cpu: NodeCpu::new(params.cpu_model, params.cpu_workers),
                glog: SharedLog::new(),
                tracker: LsnTracker::new(),
                append_station: CpuStation::new(1),
                alive: true,
            })
            .collect();

        // Granules: contiguous blocks per node, all warm.
        let granules: Vec<GranuleSim> = (0..granule_count)
            .map(|g| {
                let owner =
                    (u128::from(g) * u128::from(initial_nodes) / u128::from(granule_count)) as u32;
                GranuleSim {
                    owner,
                    migrating: false,
                    busy_until: 0,
                    cold_left: 0,
                }
            })
            .collect();
        let routes = granules.iter().map(|g| g.owner).collect();
        let mut region_granules: Vec<Vec<u64>> = vec![Vec::new(); regions as usize];
        for (g, gran) in granules.iter().enumerate() {
            let r = nodes[gran.owner as usize].region.0 as usize;
            region_granules[r].push(g as u64);
        }

        // Engine selection happens once, here: a `Cohort` run below the
        // activation threshold takes the exact per-client path and is
        // bit-identical to `Exact` (the parity pin the §6 presets and
        // the fuzz digest oracle rely on).
        let cohort_active =
            params.client_engine == ClientEngine::Cohort && clients >= params.cohort_min_clients;
        // Same once-at-construction discipline for the latency
        // histogram: below the threshold the exact tuple window runs
        // and decision logs are bit-identical to histogram-off runs.
        let hist_active = params.latency_hist && clients >= params.hist_min_clients;

        let make_gen = |stream: DetRng| match workload {
            Workload::Ycsb { granules, zipfian } => ClientGen::Ycsb(YcsbGenerator::new(
                YcsbConfig {
                    zipfian: *zipfian,
                    ..YcsbConfig::paper_default(YcsbConfig::paper_layout(
                        marlin_common::TableId(0),
                        *granules,
                    ))
                },
                stream,
            )),
            Workload::Tpcc { warehouses } => ClientGen::Tpcc(TpccGenerator::new(
                TpccConfig::paper_default(*warehouses),
                stream,
            )),
        };

        // Clients: one generator stream each, distributed over regions —
        // unless the cohort engine aggregates them, in which case no
        // per-client state is materialized at all.
        let client_sims: Vec<ClientSim> = if cohort_active {
            Vec::new()
        } else {
            (0..clients)
                .map(|c| ClientSim {
                    region: RegionId(c as u16 % regions),
                    gen: make_gen(rng.fork(1000 + u64::from(c))),
                    strikes: 0,
                    active: true,
                    attempt_started: None,
                    attempt_blame: Blame::default(),
                })
                .collect()
        };
        // Cohorts: one per region, sized by the same round-robin deal
        // the exact engine uses (`client % regions`), with generator
        // streams forked off a dedicated label.
        let cohorts: Vec<Cohort> = if cohort_active {
            let base = rng.fork(FORK_COHORT);
            (0..regions)
                .map(|r| Cohort {
                    region: RegionId(r),
                    members: interleaved_share(clients, u32::from(regions), u32::from(r)),
                    active: interleaved_share(clients, u32::from(regions), u32::from(r)),
                    gen: make_gen(base.fork(u64::from(r))),
                    carry: 0.0,
                })
                .collect()
        } else {
            Vec::new()
        };

        let backend = match kind {
            CoordKind::Marlin => CoordBackend::Marlin,
            CoordKind::ZkSmall | CoordKind::ZkLarge => {
                let mut svc = ZkService::new(kind.zk_profile().expect("zk profile"));
                // Pre-install ownership metadata (unmetered: the paper
                // fully warms up before measuring, §6.1.4).
                for (g, gran) in granules.iter().enumerate() {
                    svc.preload(&CoordRequest::InstallOwner {
                        granule: GranuleId(g as u64),
                        owner: NodeId(gran.owner),
                    });
                }
                CoordBackend::Zk(svc)
            }
            CoordKind::Fdb => {
                let mut svc = FdbService::new(kind.fdb_profile().expect("fdb profile"));
                for (g, gran) in granules.iter().enumerate() {
                    svc.preload(&CoordRequest::InstallOwner {
                        granule: GranuleId(g as u64),
                        owner: NodeId(gran.owner),
                    });
                }
                CoordBackend::Fdb(svc)
            }
        };
        let meta_hourly = match &backend {
            CoordBackend::Marlin => 0.0,
            CoordBackend::Zk(s) => s.hourly_rate(),
            CoordBackend::Fdb(s) => s.hourly_rate(),
        };

        // Heat-sketch seeding uses a *pure* fork: it consumes nothing
        // from the main stream, so every exact-path RNG trajectory is
        // unchanged whether or not the sketch is on.
        let mut sketch_rng = rng.fork(FORK_SKETCH);
        let heat = HeatTracker::new(
            granule_count as usize,
            params.heat_sketch,
            params.sketch_min_granules,
            &mut sketch_rng,
        );

        let mut sim = ClusterSim {
            cost: CostModel::new(params.node_hourly, meta_hourly, initial_nodes),
            params,
            kind,
            queue: EventQueue::new(),
            rng,
            nodes,
            granules,
            routes,
            clients: client_sims,
            active_clients: clients,
            backend,
            syslog: SharedLog::new(),
            syslog_station: CpuStation::new(1),
            member_trackers: Vec::new(),
            membership_latency_sum: 0,
            membership_period: SECOND,
            membership_origins: Vec::new(),
            membership_starts: Vec::new(),
            workers: Vec::new(),
            pending_plans: Vec::new(),
            cohorts,
            cohort_active,
            recent_commits: std::collections::VecDeque::new(),
            hist_active,
            lat_window: LatencyWindow::new(if hist_active { regions as usize } else { 0 }),
            exemplars: TailExemplars::default(),
            region_commits: vec![0; regions as usize],
            region_node_ns: vec![0.0; regions as usize],
            region_accrued_at: 0,
            heat,
            draining: Vec::new(),
            net_overlays: Vec::new(),
            overlay_seq: 0,
            lead_extra_once: 0,
            region_granules,
            metrics: RunMetrics::new(),
            cost_series: TimeSeries::new(),
            tracer: Tracer::from_env(),
            profiler: Profiler::from_env(),
            horizon,
        };
        // Kick off the client loops (staggered within the first 100 ms so
        // the closed loops don't phase-lock) and cost sampling. The
        // cohort engine instead starts one step loop per cohort, phased
        // across the step so region steps don't all land on one event.
        if sim.cohort_active {
            for r in 0..sim.cohorts.len() as u32 {
                let phase = Self::COHORT_STEP * u64::from(r + 1) / sim.cohorts.len().max(1) as u64;
                sim.queue
                    .schedule(phase, ActorId(0), Event::CohortStep { cohort: r });
            }
        } else {
            for c in 0..clients {
                let jitter = sim.rng.range(0, 100 * 1_000_000);
                sim.queue
                    .schedule(jitter, ActorId(0), Event::ClientTxn { client: c });
            }
        }
        sim.queue.schedule(SECOND, ActorId(0), Event::CostTick);
        sim.metrics.node_count.push(0, f64::from(initial_nodes));
        sim
    }

    /// Coordination backend name.
    #[must_use]
    pub fn kind(&self) -> CoordKind {
        self.kind
    }

    /// Which CPU congestion model this run's nodes use.
    #[must_use]
    pub fn cpu_model(&self) -> CpuModel {
        self.params.cpu_model
    }

    /// Which client engine this run was configured with.
    #[must_use]
    pub fn client_engine(&self) -> ClientEngine {
        self.params.client_engine
    }

    /// Whether clients actually run as flow-level cohorts: `Cohort` at
    /// or above [`SimParams::cohort_min_clients`]. Below the threshold
    /// the run takes the exact per-client path (the parity pin).
    #[must_use]
    pub fn cohort_active(&self) -> bool {
        self.cohort_active
    }

    /// Whether granule heat is tracked by the count-min sketch rather
    /// than exact counters.
    #[must_use]
    pub fn heat_sketched(&self) -> bool {
        self.heat.is_sketched()
    }

    /// Whether windowed p99 latency is derived from the log-bucketed
    /// histogram: `latency_hist` at or above
    /// [`SimParams::hist_min_clients`]. Below the threshold the exact
    /// tuple window runs (the parity pin).
    #[must_use]
    pub fn hist_active(&self) -> bool {
        self.hist_active
    }

    /// The run's slowest commits with their blame breakdowns, slowest
    /// first.
    #[must_use]
    pub fn tail_exemplars(&self) -> &[TailExemplar] {
        self.exemplars.entries()
    }

    /// Currently active clients (exact per-client state or cohort
    /// aggregate, whichever engine runs).
    #[must_use]
    pub fn active_clients(&self) -> u32 {
        self.active_clients
    }

    /// Live node count.
    #[must_use]
    pub fn live_nodes(&self) -> u32 {
        self.nodes.iter().filter(|n| n.alive).count() as u32
    }

    /// Indices of the live nodes.
    #[must_use]
    pub fn live_node_ids(&self) -> Vec<u32> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].alive)
            .collect()
    }

    /// Current granule owners (for assertions).
    #[must_use]
    pub fn owners(&self) -> Vec<u32> {
        self.granules.iter().map(|g| g.owner).collect()
    }

    /// Live node indices with the region each is placed in.
    #[must_use]
    pub fn live_nodes_by_region(&self) -> Vec<(u32, RegionId)> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].alive)
            .map(|i| (i, self.nodes[i as usize].region))
            .collect()
    }

    /// Granule ids homed in each region (the §6.5 client-locality sets).
    #[must_use]
    pub fn region_granules(&self) -> &[Vec<u64>] {
        &self.region_granules
    }

    /// Committed user transactions attributed to each client region.
    #[must_use]
    pub fn region_commits(&self) -> &[u64] {
        &self.region_commits
    }

    /// DB Cost split per region, from the per-region node-time accrual.
    #[must_use]
    pub fn region_db_cost(&self) -> Vec<f64> {
        self.region_node_ns
            .iter()
            .map(|ns| ns / (3600.0 * SECOND as f64) * self.params.node_hourly)
            .collect()
    }

    /// The coordination-op counters accumulated so far (they live in
    /// [`RunMetrics`] with the rest of the run instruments).
    #[must_use]
    pub fn coordination(&self) -> CoordOps {
        self.metrics.coord
    }

    /// The coordination-op counters with the accrued Meta Cost dollars
    /// attributed across them (sums back to `cost.meta_cost()`; exactly
    /// 0 for Marlin).
    #[must_use]
    pub fn coordination_breakdown(&self) -> CoordBreakdown {
        self.cost.attribute_meta(self.metrics.coord)
    }

    /// Record a fault-injection marker in the trace (the runner calls
    /// this when the driver injects a crash).
    pub fn trace_fault(&mut self, at: Nanos, node: u32) {
        if self.tracer.is_enabled() {
            self.tracer
                .instant_args("fault", "crash", at, [("node", i64::from(node)), ("", 0)]);
        }
    }

    /// One-way penalty a hop pays when sent over a partitioned link: long
    /// enough that cross-region coordination visibly stalls, short enough
    /// that clients keep retrying and the run completes.
    pub const PARTITION_ONE_WAY: Nanos = 5 * SECOND;

    /// Inject a network-latency overlay on `region` at `now`, healing at
    /// the absolute time `until`: every affected one-way hop pays `extra`
    /// additional latency. With `cross_only` the overlay hits only
    /// cross-region hops (a partition); otherwise it hits every hop
    /// touching the region (a latency spike, meaningful even in
    /// single-region runs).
    ///
    /// The overlay is pure arithmetic — it draws no randomness and costs
    /// nothing while no overlay is active, so runs that never inject one
    /// keep bit-identical event streams.
    pub fn inject_latency_overlay(
        &mut self,
        now: Nanos,
        region: u16,
        extra: Nanos,
        cross_only: bool,
        until: Nanos,
    ) {
        let token = self.overlay_seq;
        self.overlay_seq += 1;
        self.net_overlays.push((token, region, extra, cross_only));
        self.queue.schedule_at(
            until.max(now),
            ActorId(0),
            Event::EndNetworkOverlay { token },
        );
        if self.tracer.is_enabled() {
            let kind = if cross_only {
                "region_partition"
            } else {
                "latency_spike"
            };
            self.tracer.instant_args(
                "fault",
                kind,
                now,
                [
                    ("region", i64::from(region)),
                    ("extra_ms", (extra / 1_000_000) as i64),
                ],
            );
        }
    }

    /// Add a one-shot `extra` to the provisioning lead of the *next*
    /// scale-out order — the injected "cloud control plane is slow today"
    /// fault. Consumed by the next `schedule_scale_out_in`; zero effect
    /// on runs that never inject it.
    pub fn jitter_provision_lead(&mut self, now: Nanos, extra: Nanos) {
        self.lead_extra_once += extra;
        if self.tracer.is_enabled() {
            self.tracer.instant_args(
                "fault",
                "lead_jitter",
                now,
                [("extra_ms", (extra / 1_000_000) as i64), ("", 0)],
            );
        }
    }

    /// The extra one-way latency active overlays impose on an `a → b` hop.
    fn overlay_penalty(&self, a: RegionId, b: RegionId) -> Nanos {
        if self.net_overlays.is_empty() {
            return 0;
        }
        let mut extra = 0;
        for &(_, region, pen, cross_only) in &self.net_overlays {
            let touches = a.0 == region || b.0 == region;
            if touches && (!cross_only || a != b) {
                extra += pen;
            }
        }
        extra
    }

    /// Turn on the virtual-time tracer with room for `capacity` events
    /// (tests enable tracing explicitly instead of mutating the
    /// process-wide `MARLIN_TRACE` environment).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::enabled(capacity);
    }

    /// Turn on the wall-time self-profiler explicitly.
    pub fn enable_profiling(&mut self) {
        self.profiler = Profiler::enabled();
    }

    /// The tracer (export via [`Tracer::to_chrome_json`]).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Is either telemetry instrument (tracer/profiler) live?
    #[must_use]
    pub fn telemetry_active(&self) -> bool {
        self.tracer.is_enabled() || self.profiler.is_enabled()
    }

    /// The profiler's numbers so far.
    #[must_use]
    pub fn profile_summary(&self) -> ProfileSummary {
        self.profiler.summary()
    }

    /// Bring the per-region node-time accrual current. Must run *before*
    /// any `alive` flag flips, mirroring `CostModel::advance`.
    fn accrue_region_time(&mut self, now: Nanos) {
        let dt = now.saturating_sub(self.region_accrued_at);
        if dt > 0 {
            for n in &self.nodes {
                if n.alive {
                    self.region_node_ns[n.region.0 as usize] += dt as f64;
                }
            }
            self.region_accrued_at = now;
        }
    }

    // ---------------------------------------------------------------------
    // autoscaler hooks (observe / actuate)

    /// How many of the hottest granules an observation samples for the
    /// rebalance planner.
    const OBSERVED_HOT_GRANULES: usize = 64;

    /// Upper bound on the commit-latency window retained by the commit
    /// path (observation windows larger than this would under-count).
    const MAX_OBSERVE_WINDOW: Nanos = 60 * SECOND;

    /// Snapshot cluster health at `now` over the trailing `window`.
    ///
    /// Throughput and p99 latency come from the committed-transaction
    /// window, per-node utilization from the CPU stations, the burn rate
    /// from the §6.1.5 cost model, and granule heat from the access
    /// counters accumulated since the last observation (which this call
    /// resets).
    ///
    /// Utilization is offered load per worker-capacity in both CPU
    /// models; what differs is how it is obtained and what `queue_depth`
    /// reports:
    ///
    /// - `Analytic` — utilization is the EMA load *estimate* decayed to
    ///   `now` (smooth, unclamped), and `queue_depth` is the modeled
    ///   utilization excess beyond 1;
    /// - `PerRequest` — utilization is offered load *measured* exactly
    ///   over the trailing window, and `queue_depth` is the real queue
    ///   length per worker from the stations' waiting-time integrals
    ///   (time-averaged over the same window, averaged over live
    ///   nodes — not derived from a utilization excess). Per-region
    ///   digests get the same measured treatment: each region's queue
    ///   field is overwritten with the mean over its own live stations.
    pub fn observe(&mut self, now: Nanos, window: Nanos) -> Observation {
        debug_assert!(
            window <= Self::MAX_OBSERVE_WINDOW,
            "observation window exceeds the retained commit history"
        );
        let prof = self.profiler.start();
        let cutoff = now.saturating_sub(window);
        let window_s = (window as f64 / SECOND as f64).max(1e-9);
        let (total_weight, p99_latency) = if self.hist_active {
            let h = self.lat_window.merged(cutoff, None);
            (h.total_weight(), h.p99())
        } else {
            self.recent_commits.retain(|&(t, _, _, _)| t >= cutoff);
            let total_weight: u64 = self
                .recent_commits
                .iter()
                .map(|&(_, _, _, w)| u64::from(w))
                .sum();
            let mut lat: Vec<(Nanos, u64)> = self
                .recent_commits
                .iter()
                .map(|&(_, l, _, w)| (l, u64::from(w)))
                .collect();
            (total_weight, weighted_p99(&mut lat))
        };
        let throughput_tps = total_weight as f64 / window_s;

        // Per-node load and placement.
        let mut owned = vec![0u64; self.nodes.len()];
        for g in &self.granules {
            owned[g.owner as usize] += 1;
        }
        // Slots promised to a scheduled-but-unstarted scale-out plan:
        // capacity ordered whose provisioning lead is still running.
        // Policies read these as `pending` so they don't re-buy the same
        // shortfall every tick of the lead (always empty when
        // `provision_lead_time` is 0 — the plan starts before the next
        // observation).
        let pending: std::collections::BTreeSet<u32> = self
            .pending_plans
            .iter()
            .flat_map(|p| p.reserved_slots().iter().copied())
            .collect();
        let node_loads: Vec<NodeLoad> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeLoad {
                node: NodeId(i as u32),
                region: n.region,
                alive: n.alive,
                pending: pending.contains(&(i as u32)),
                utilization: n.cpu.observed_rho(now, window),
                owned_granules: owned[i],
            })
            .collect();
        let live: Vec<&NodeLoad> = node_loads.iter().filter(|n| n.alive).collect();
        let mean_utilization = if live.is_empty() {
            0.0
        } else {
            live.iter().map(|n| n.utilization.min(1.0)).sum::<f64>() / live.len() as f64
        };
        // Measured per-node queue lengths (per-request mode only),
        // tagged with placement so the per-region digests below reuse
        // them instead of re-integrating every station per region.
        let measured_queues: Vec<(RegionId, f64)> = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .filter_map(|n| n.cpu.observed_queue(now, window).map(|q| (n.region, q)))
            .collect();
        let queue_depth = if live.is_empty() {
            0.0
        } else if measured_queues.is_empty() {
            // Analytic fallback: the modeled excess beyond capacity.
            live.iter()
                .map(|n| (n.utilization - 1.0).max(0.0))
                .sum::<f64>()
                / live.len() as f64
        } else {
            measured_queues.iter().map(|&(_, q)| q).sum::<f64>() / measured_queues.len() as f64
        };

        // Hottest granules since the last observation; counters reset so
        // each observation sees one window's heat. The tracker's exact
        // mode reproduces the historical scan (same sort, same ties);
        // sketch mode estimates over its candidate set.
        let granule_loads: Vec<GranuleLoad> = self
            .heat
            .hottest(Self::OBSERVED_HOT_GRANULES)
            .into_iter()
            .map(|(g, hits)| GranuleLoad {
                granule: GranuleId(g as u64),
                owner: NodeId(self.granules[g].owner),
                load: f64::from(hits),
            })
            .collect();
        self.heat.reset();

        let mut obs = Observation {
            at: now,
            live_nodes: self.live_nodes(),
            throughput_tps,
            p99_latency,
            mean_utilization,
            queue_depth,
            dollars_per_hour: self.cost.hourly_rate_now(),
            node_loads,
            region_loads: Vec::new(),
            granule_loads,
        };
        // Per-region digests: utilization/queue grouped from placement,
        // then throughput, spend, and (in per-request mode) the queue
        // replaced with the exact attribution (commits are tagged with
        // the client's region; the external coordination service is
        // pinned — and billed — in region 0; queue lengths come from the
        // region's stations, not the utilization excess).
        obs.derive_region_loads();
        let meta_hourly = self.cost.meta_hourly();
        for r in &mut obs.region_loads {
            if self.hist_active {
                let h = self.lat_window.merged(cutoff, Some(r.region.0));
                r.throughput_tps = h.total_weight() as f64 / window_s;
                r.p99_latency = h.p99();
            } else {
                let mut lat: Vec<(Nanos, u64)> = self
                    .recent_commits
                    .iter()
                    .filter(|&&(_, _, creg, _)| creg == r.region.0)
                    .map(|&(_, l, _, w)| (l, u64::from(w)))
                    .collect();
                r.throughput_tps = lat.iter().map(|&(_, w)| w).sum::<u64>() as f64 / window_s;
                r.p99_latency = weighted_p99(&mut lat);
            }
            r.dollars_per_hour = f64::from(r.live_nodes) * self.params.node_hourly
                + if r.region.0 == 0 { meta_hourly } else { 0.0 };
            let region_queues: Vec<f64> = measured_queues
                .iter()
                .filter(|&&(reg, _)| reg == r.region)
                .map(|&(_, q)| q)
                .collect();
            if !region_queues.is_empty() {
                r.queue_depth = region_queues.iter().sum::<f64>() / region_queues.len() as f64;
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.instant_args(
                "control",
                "observe",
                now,
                [
                    ("live_nodes", i64::from(obs.live_nodes)),
                    ("tps", obs.throughput_tps as i64),
                ],
            );
        }
        self.profiler.record("observe", prof);
        self.profiler.record_total(prof);
        obs
    }

    /// Actuate one controller decision at virtual time `at`.
    ///
    /// Scale-outs and scale-ins reuse the same migration-plan machinery
    /// the scripted scenarios exercise; rebalance moves become a one-off
    /// migration plan after re-validating each move against current
    /// ownership (the observation the planner saw may be a control
    /// interval old).
    pub fn apply_action(&mut self, at: Nanos, action: &ScaleAction, threads_per_node: u32) {
        let prof = self.profiler.start();
        if self.tracer.is_enabled() {
            let (name, count, region) = match action {
                ScaleAction::AddNodes { count, region } => (
                    "add_nodes",
                    i64::from(*count),
                    region.map_or(-1, |r| i64::from(r.0)),
                ),
                ScaleAction::RemoveNodes { victims } => ("remove_nodes", victims.len() as i64, -1),
                ScaleAction::Rebalance { moves } => ("rebalance", moves.len() as i64, -1),
            };
            self.tracer
                .instant_args("policy", name, at, [("count", count), ("region", region)]);
        }
        self.apply_action_inner(at, action, threads_per_node);
        self.profiler.record("actuate", prof);
        self.profiler.record_total(prof);
    }

    fn apply_action_inner(&mut self, at: Nanos, action: &ScaleAction, threads_per_node: u32) {
        match action {
            ScaleAction::AddNodes { count, region } => {
                if *count > 0 {
                    self.schedule_scale_out_in(at, *count, threads_per_node, *region);
                }
            }
            ScaleAction::RemoveNodes { victims } => {
                let victims: Vec<u32> = victims
                    .iter()
                    .map(|n| n.0)
                    .filter(|&v| {
                        (v as usize) < self.nodes.len()
                            && self.nodes[v as usize].alive
                            && !self.draining.contains(&v)
                    })
                    .collect();
                if !victims.is_empty() && (victims.len() as u32) < self.live_nodes() {
                    self.schedule_scale_in(at, victims, threads_per_node);
                }
            }
            ScaleAction::Rebalance { moves } => {
                let tasks: Vec<MigrationTask> = moves
                    .iter()
                    .filter(|m| {
                        let g = m.granule.0 as usize;
                        g < self.granules.len()
                            && self.granules[g].owner == m.src.0
                            && !self.granules[g].migrating
                            && (m.dst.0 as usize) < self.nodes.len()
                            && self.nodes[m.dst.0 as usize].alive
                    })
                    .map(|m| MigrationTask {
                        granule: m.granule.0,
                        src: m.src.0,
                        dst: m.dst.0,
                    })
                    .collect();
                if tasks.is_empty() {
                    return;
                }
                // One worker thread per distinct destination.
                let mut dsts: Vec<u32> = tasks.iter().map(|t| t.dst).collect();
                dsts.sort_unstable();
                dsts.dedup();
                let mut queues: Vec<Vec<MigrationTask>> = vec![Vec::new(); dsts.len()];
                for task in tasks {
                    let d = dsts.binary_search(&task.dst).expect("dst indexed");
                    queues[d].push(task);
                }
                self.schedule_plan(at, MigrationPlan { queues }, Vec::new());
            }
        }
    }

    /// Schedule a scale-out at `at`: `new_nodes` nodes join and the plan's
    /// migrations run with `threads_per_new_node` workers per new node.
    pub fn schedule_scale_out(&mut self, at: Nanos, new_nodes: u32, threads_per_new_node: u32) {
        self.schedule_scale_out_in(at, new_nodes, threads_per_new_node, None);
    }

    /// Schedule a scale-out with an explicit placement request: the new
    /// nodes are provisioned in `region` (when given) and the rebalance
    /// plan drains only that region's members onto them.
    ///
    /// The plan *starts* — the new nodes join the membership, begin to
    /// be billed, and the migrations onto them launch — only after
    /// [`SimParams::provision_lead_time`] has elapsed past `at`: ordering
    /// capacity is not the same as having it. With the default lead of
    /// 0 the behavior (and every event timestamp) is exactly the
    /// historical instant-capacity one.
    pub fn schedule_scale_out_in(
        &mut self,
        at: Nanos,
        new_nodes: u32,
        threads_per_new_node: u32,
        region: Option<RegionId>,
    ) {
        let ready_at =
            at + self.params.provision_lead_time + std::mem::take(&mut self.lead_extra_once);
        let slots = self.allocate_join_slots(new_nodes, region);
        if self.tracer.is_enabled() {
            self.tracer.instant_args(
                "provision",
                "scale_out_ordered",
                at,
                [
                    ("count", i64::from(new_nodes)),
                    (
                        "lead_ms",
                        (self.params.provision_lead_time / 1_000_000) as i64,
                    ),
                ],
            );
        }
        self.pending_plans.push(PendingPlan::ScaleOut {
            slots,
            threads_per: threads_per_new_node,
            region,
            ordered_at: at,
        });
        let idx = self.pending_plans.len() - 1;
        self.queue
            .schedule_at(ready_at, ActorId(0), Event::StartPlan { plan_idx: idx });
    }

    /// Schedule a change of the active client count (dynamic workloads).
    pub fn schedule_client_count(&mut self, at: Nanos, count: u32) {
        self.queue
            .schedule_at(at, ActorId(0), Event::SetClients { count });
    }

    /// Schedule a change of one region's active client count (per-region
    /// load traces; clients are interleaved over regions, so region `r`'s
    /// `k`-th client is client `r + k·R`).
    pub fn schedule_region_client_count(&mut self, at: Nanos, region: u16, count: u32) {
        self.queue
            .schedule_at(at, ActorId(0), Event::SetRegionClients { region, count });
    }

    /// Apply a region's client count immediately (the t=0 step of a
    /// per-region trace, before any event has run).
    pub fn set_region_clients_now(&mut self, region: u16, count: u32) {
        self.apply_region_clients(region, count);
    }

    fn apply_region_clients(&mut self, region: u16, count: u32) {
        if self.cohort_active {
            if let Some(cohort) = self.cohorts.iter_mut().find(|c| c.region.0 == region) {
                cohort.active = count.min(cohort.members);
            }
            self.active_clients = self.cohorts.iter().map(|c| c.active).sum();
            return;
        }
        let regions = self.params.regions.regions() as u32;
        for (i, c) in self.clients.iter_mut().enumerate() {
            if c.region.0 != region {
                continue;
            }
            let index_in_region = i as u32 / regions;
            let was = c.active;
            c.active = index_in_region < count;
            if !was && c.active {
                self.queue
                    .schedule(0, ActorId(0), Event::ClientTxn { client: i as u32 });
            }
        }
        self.active_clients = self.clients.iter().filter(|c| c.active).count() as u32;
    }

    /// Schedule a scale-in at `at`: drain `victims` onto the survivors and
    /// release each victim as soon as it is empty.
    pub fn schedule_scale_in(&mut self, at: Nanos, victims: Vec<u32>, threads_per_victim: u32) {
        self.queue.schedule_at(
            at,
            ActorId(0),
            Event::StartDrain {
                victims,
                threads_per_victim,
            },
        );
    }

    /// Reserve the node slots a scale-out will activate. Released (dead)
    /// node slots are reused before fresh ones are provisioned, so
    /// repeated scale-out/in cycles — the closed-loop controller's
    /// steady diet — don't grow the node table without bound. With a
    /// `target_region`, the joining nodes are placed in that region
    /// (reused slots are re-homed — a released node is a fresh VM).
    fn allocate_join_slots(&mut self, new_nodes: u32, target_region: Option<RegionId>) -> Vec<u32> {
        let regions = self.params.regions.regions() as u16;
        // Slots already promised to a pending plan are not reusable.
        let reserved: std::collections::BTreeSet<u32> = self
            .pending_plans
            .iter()
            .flat_map(|p| p.reserved_slots().iter().copied())
            .collect();
        let mut slots: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| {
                !self.nodes[i as usize].alive
                    && !reserved.contains(&i)
                    && !self.draining.contains(&i)
            })
            .take(new_nodes as usize)
            .collect();
        if let Some(r) = target_region {
            for &slot in &slots {
                self.nodes[slot as usize].region = r;
            }
        }
        while (slots.len() as u32) < new_nodes {
            let idx = self.nodes.len() as u32;
            self.nodes.push(NodeSim {
                region: target_region.unwrap_or(RegionId(idx as u16 % regions)),
                cpu: NodeCpu::new(self.params.cpu_model, self.params.cpu_workers),
                glog: SharedLog::new(),
                tracker: LsnTracker::new(),
                append_station: CpuStation::new(1),
                alive: false, // activates when the plan starts
            });
            slots.push(idx);
        }
        slots
    }

    /// Build the balanced migration plan that moves granules from the
    /// live nodes onto the reserved `slots`, against *current* ownership.
    /// Called when the plan starts (provisioning complete), not when it
    /// was ordered: tasks built against order-time ownership go stale the
    /// moment any other migration commits during the lead, and stale
    /// tasks are skipped — leaving the join under-balanced.
    ///
    /// With a `target_region`, only that region's live members shed
    /// granules, so a hot region's scale-out never drags another region's
    /// data across the WAN.
    fn balanced_tasks_onto(
        &mut self,
        slots: &[u32],
        threads_per: u32,
        target_region: Option<RegionId>,
    ) -> MigrationPlan {
        let live: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| {
                self.nodes[i as usize].alive
                    && target_region.is_none_or(|r| self.nodes[i as usize].region == r)
            })
            .collect();
        let total = (live.len() + slots.len()) as u64;
        // Target: every pool node ends with pool_granules/total granules;
        // move the excess from each live pool member to the joining ones,
        // preferring same-region destinations (the geo setting migrates
        // within regions). The pool is the whole table for an untargeted
        // add, and the target region's owned granules for a targeted one.
        let mut tasks: Vec<MigrationTask> = Vec::new();
        let pool_granules = match target_region {
            None => self.granules.len() as u64,
            Some(_) => self
                .granules
                .iter()
                .filter(|g| live.contains(&g.owner))
                .count() as u64,
        };
        let per_node_target = pool_granules / total.max(1);
        let mut surplus: std::collections::BTreeMap<u32, Vec<u64>> =
            live.iter().map(|&i| (i, Vec::new())).collect();
        for (g, gran) in self.granules.iter().enumerate() {
            if let Some(list) = surplus.get_mut(&gran.owner) {
                list.push(g as u64);
            }
        }
        let mut next_new = 0usize;
        for (&owner, granules) in &surplus {
            let excess = (granules.len() as u64).saturating_sub(per_node_target);
            for g in granules.iter().rev().take(excess as usize) {
                // Round-robin over joining nodes in the same region if any.
                let src_region = self.nodes[owner as usize].region;
                let mut dst = None;
                for probe in 0..slots.len() {
                    let cand = (next_new + probe) % slots.len();
                    if self.nodes[slots[cand] as usize].region == src_region {
                        dst = Some(cand);
                        break;
                    }
                }
                let dst = dst.unwrap_or(next_new % slots.len());
                next_new = dst + 1;
                tasks.push(MigrationTask {
                    granule: *g,
                    src: owner,
                    dst: slots[dst],
                });
            }
        }
        // Partition tasks into per-thread queues grouped by destination.
        let threads_total = slots.len() * threads_per as usize;
        let mut queues: Vec<Vec<MigrationTask>> = vec![Vec::new(); threads_total.max(1)];
        let mut dst_cursor = vec![0usize; slots.len()];
        for task in tasks {
            let d = slots
                .iter()
                .position(|&s| s == task.dst)
                .expect("dst is a slot");
            let thread = d * threads_per as usize + dst_cursor[d] % threads_per as usize;
            dst_cursor[d] += 1;
            queues[thread].push(task);
        }
        MigrationPlan { queues }
    }

    /// Build a drain plan that empties `victims` (node indices) onto the
    /// remaining live nodes. Drains stay region-local: each victim's
    /// granules land on survivors in its own region, falling back to the
    /// full survivor set only when the drain empties the region (so the
    /// geo setting never ships a drained granule across the WAN while
    /// local capacity exists).
    #[must_use]
    pub fn drain_plan(&self, victims: &[u32], threads_per_victim: u32) -> MigrationPlan {
        let survivors: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|i| self.nodes[*i as usize].alive && !victims.contains(i))
            .collect();
        assert!(!survivors.is_empty(), "drain needs at least one survivor");
        // Per-victim destination pool: same-region survivors when any.
        let pools: Vec<Vec<u32>> = victims
            .iter()
            .map(|&v| {
                let region = self.nodes[v as usize].region;
                let local: Vec<u32> = survivors
                    .iter()
                    .copied()
                    .filter(|&s| self.nodes[s as usize].region == region)
                    .collect();
                if local.is_empty() {
                    survivors.clone()
                } else {
                    local
                }
            })
            .collect();
        let mut queues: Vec<Vec<MigrationTask>> =
            vec![Vec::new(); (victims.len() as u32 * threads_per_victim).max(1) as usize];
        let mut rr = 0usize;
        // Per-victim thread cursors: a global counter would alias with the
        // round-robin ownership pattern and starve most threads.
        let mut cursor = vec![0usize; victims.len()];
        for (g, gran) in self.granules.iter().enumerate() {
            if let Some(vi) = victims.iter().position(|v| *v == gran.owner) {
                let pool = &pools[vi];
                let dst = pool[rr % pool.len()];
                rr += 1;
                let thread =
                    vi * threads_per_victim as usize + cursor[vi] % threads_per_victim as usize;
                cursor[vi] += 1;
                queues[thread].push(MigrationTask {
                    granule: g as u64,
                    src: gran.owner,
                    dst,
                });
            }
        }
        MigrationPlan { queues }
    }

    /// Schedule a prepared plan (used by the dynamic scenario for
    /// scale-in; marks sources as draining so they release once empty).
    pub fn schedule_plan(&mut self, at: Nanos, plan: MigrationPlan, draining: Vec<u32>) {
        self.pending_plans.push(PendingPlan::Built {
            plan,
            activate: Vec::new(),
        });
        let idx = self.pending_plans.len() - 1;
        self.draining.extend(draining);
        self.queue
            .schedule_at(at, ActorId(0), Event::StartPlan { plan_idx: idx });
    }

    /// Configure the Figure 15 membership stress: `members` virtual nodes
    /// each committing one membership update every `period`.
    pub fn schedule_membership_stress(&mut self, members: u32, period: Nanos) {
        self.member_trackers = (0..members).map(|_| LsnTracker::new()).collect();
        self.membership_starts = vec![None; members as usize];
        self.membership_origins = Vec::with_capacity(members as usize);
        // Monitoring threads share the same period but are phase-spread
        // over a 500 ms window (process start skew); each keeps its phase
        // on subsequent ticks. The burst density — and with it the OCC
        // retry rate — therefore grows with the member count, which is
        // what produces the Figure 15 knee.
        let stagger = 500 * 1_000_000;
        for m in 0..members {
            let first = period + self.rng.range(0, stagger);
            self.membership_origins.push(first);
            self.queue
                .schedule_at(first, ActorId(0), Event::MembershipTick { member: m });
        }
        self.membership_period = period;
    }

    /// Run to the horizon.
    pub fn run(&mut self) {
        self.run_until(self.horizon);
        self.finish();
    }

    /// Process events up to virtual time `t` (clamped to the horizon),
    /// then stop so an external controller can observe and actuate. The
    /// closed-loop runners interleave `run_until` with
    /// [`ClusterSim::observe`] / [`ClusterSim::apply_action`].
    pub fn run_until(&mut self, t: Nanos) {
        let prof = self.profiler.start();
        let t = t.min(self.horizon);
        while self.queue.next_time().is_some_and(|next| next <= t) {
            let ev = self.queue.pop().expect("peeked event exists");
            self.dispatch(ev.at, ev.msg);
        }
        self.profiler.record_total(prof);
    }

    /// Final cost accounting once the horizon is reached.
    pub fn finish(&mut self) {
        let final_nodes = self.live_nodes();
        self.cost.advance(self.horizon, final_nodes);
        self.accrue_region_time(self.horizon);
        self.cost.sample_into(&mut self.cost_series, self.horizon);
    }

    // ---------------------------------------------------------------------
    // event handlers

    /// The profiler phase an event books under.
    fn phase_of(ev: &Event) -> &'static str {
        match ev {
            Event::ClientTxn { .. } => "event:client_txn",
            Event::CohortStep { .. } => "event:cohort_step",
            Event::MigWorker { .. } => "event:mig_worker",
            Event::WarmupDone { .. } => "event:warmup",
            Event::RouteUpdate { .. } => "event:route_update",
            Event::CostTick => "event:cost_tick",
            Event::MembershipTick { .. } => "event:membership",
            Event::SetClients { .. } | Event::SetRegionClients { .. } => "event:set_clients",
            Event::StartPlan { .. } => "event:start_plan",
            Event::StartDrain { .. } => "event:start_drain",
            Event::ReleaseDrained => "event:release_drained",
            Event::EndNetworkOverlay { .. } => "event:overlay",
        }
    }

    fn dispatch(&mut self, now: Nanos, ev: Event) {
        let prof = self.profiler.start();
        let phase = Self::phase_of(&ev);
        self.profiler.count_event();
        match ev {
            Event::ClientTxn { client } => self.handle_client_txn(now, client),
            Event::CohortStep { cohort } => self.handle_cohort_step(now, cohort),
            Event::MigWorker { worker } => self.handle_mig_worker(now, worker),
            Event::WarmupDone { granule } => {
                self.granules[granule as usize].cold_left = 0;
            }
            Event::RouteUpdate { granule } => {
                // The ownership broadcast reaching the routing tier — a
                // watch notification in service-backed deployments.
                self.metrics.coord.watch_notifications += 1;
                self.routes[granule as usize] = self.granules[granule as usize].owner;
            }
            Event::CostTick => {
                let live = self.live_nodes();
                self.cost.advance(now, live);
                self.accrue_region_time(now);
                self.cost.sample_into(&mut self.cost_series, now);
                self.metrics.node_count.push(now, f64::from(live));
                let depth = self.queue.pending() as u64;
                self.profiler.sample_depth(depth);
                self.queue.schedule(SECOND, ActorId(0), Event::CostTick);
            }
            Event::MembershipTick { member } => self.handle_membership(now, member),
            Event::SetClients { count } => {
                if self.cohort_active {
                    // The round-robin deal means the first `count`
                    // clients split over regions exactly as
                    // `interleaved_share` computes.
                    let capacity: u32 = self.cohorts.iter().map(|c| c.members).sum();
                    self.active_clients = count.min(capacity);
                    let groups = self.cohorts.len() as u32;
                    for (r, cohort) in self.cohorts.iter_mut().enumerate() {
                        cohort.active = interleaved_share(self.active_clients, groups, r as u32);
                    }
                } else {
                    self.active_clients = count.min(self.clients.len() as u32);
                    for (i, c) in self.clients.iter_mut().enumerate() {
                        let was = c.active;
                        c.active = (i as u32) < self.active_clients;
                        if !was && c.active {
                            self.queue.schedule(
                                0,
                                ActorId(0),
                                Event::ClientTxn { client: i as u32 },
                            );
                        }
                    }
                }
            }
            Event::SetRegionClients { region, count } => self.apply_region_clients(region, count),
            Event::StartPlan { plan_idx } => {
                let (plan, activate) = match std::mem::take(&mut self.pending_plans[plan_idx]) {
                    PendingPlan::Built { plan, activate } => (plan, activate),
                    // Scale-out: provisioning is complete — build the
                    // balanced task list against *current* ownership
                    // (the slots are still dead here, exactly as the
                    // order-time build saw them), then activate.
                    PendingPlan::ScaleOut {
                        slots,
                        threads_per,
                        region,
                        ordered_at,
                    } => {
                        // Order → provision → join: the lead the capacity
                        // order waited before the nodes could join.
                        self.tracer.span_args(
                            "provision",
                            "provision_lead",
                            ordered_at,
                            now,
                            [("nodes", slots.len() as i64), ("", 0)],
                        );
                        let build = self.profiler.start();
                        let plan = self.balanced_tasks_onto(&slots, threads_per, region);
                        self.profiler.record("plan:build", build);
                        (plan, slots)
                    }
                };
                if self.tracer.is_enabled() {
                    let tasks: usize = plan.queues.iter().map(Vec::len).sum();
                    self.tracer.instant_args(
                        "migration",
                        "plan_started",
                        now,
                        [("tasks", tasks as i64), ("joining", activate.len() as i64)],
                    );
                }
                // This plan's nodes join the membership now (AddNodeTxn
                // cost). Other dead slots stay released — they may belong
                // to a different pending plan or to a finished drain.
                self.accrue_region_time(now);
                for slot in activate {
                    self.nodes[slot as usize].alive = true;
                }
                let live = self.live_nodes();
                self.cost.advance(now, live);
                self.metrics.node_count.push(now, f64::from(live));
                let base = self.workers.len() as u32;
                for (i, q) in plan.queues.into_iter().enumerate() {
                    self.workers.push((q, 0));
                    self.queue.schedule(
                        0,
                        ActorId(0),
                        Event::MigWorker {
                            worker: base + i as u32,
                        },
                    );
                }
            }
            Event::StartDrain {
                victims,
                threads_per_victim,
            } => {
                let build = self.profiler.start();
                let plan = self.drain_plan(&victims, threads_per_victim);
                self.profiler.record("plan:drain", build);
                if self.tracer.is_enabled() {
                    let tasks: usize = plan.queues.iter().map(Vec::len).sum();
                    self.tracer.instant_args(
                        "migration",
                        "drain_started",
                        now,
                        [("victims", victims.len() as i64), ("tasks", tasks as i64)],
                    );
                }
                self.draining.extend(victims);
                let base = self.workers.len() as u32;
                for (i, q) in plan.queues.into_iter().enumerate() {
                    self.workers.push((q, 0));
                    self.queue.schedule(
                        0,
                        ActorId(0),
                        Event::MigWorker {
                            worker: base + i as u32,
                        },
                    );
                }
            }
            Event::ReleaseDrained => self.release_drained(now),
            Event::EndNetworkOverlay { token } => {
                self.net_overlays.retain(|&(t, ..)| t != token);
            }
        }
        self.profiler.record(phase, prof);
    }

    fn one_way(&mut self, a: RegionId, b: RegionId) -> Nanos {
        let base = if a == b {
            // Intra-region RTT/2 with 10% jitter.
            let base = self.params.intra_rtt / 2;
            base + self.rng.range(0, base / 5 + 1)
        } else {
            self.params.regions.link(a, b).sample(&mut self.rng)
        };
        base + self.overlay_penalty(a, b)
    }

    /// [`Self::one_way`] with blame attribution: the overlay surcharge
    /// (pure arithmetic, recomputed — no extra randomness) lands in
    /// `network_overlay`, the rest in `network`. RNG draws are
    /// identical to a bare `one_way` call, so instrumented paths keep
    /// bit-identical event streams.
    fn hop(&mut self, a: RegionId, b: RegionId, blame: &mut Blame) -> Nanos {
        let hop = self.one_way(a, b);
        let overlay = self.overlay_penalty(a, b);
        blame.network = blame.network.saturating_add(hop - overlay);
        blame.network_overlay = blame.network_overlay.saturating_add(overlay);
        hop
    }

    fn jittered(&mut self, base: Nanos) -> Nanos {
        let span = base / 5;
        if span == 0 {
            base
        } else {
            base - span / 2 + self.rng.range(0, span + 1)
        }
    }

    /// Storage append completion for node `n`'s log: half RTT out, station
    /// service, half RTT back. Returns `(done, service, sojourn)` so the
    /// caller can attribute the append's time: `done - at` is the full
    /// round trip (`storage_rtt + sojourn`), of which `service` is
    /// productive and `sojourn - service` is station queueing.
    fn storage_append_done(&mut self, n: usize, at: Nanos) -> (Nanos, Nanos, Nanos) {
        let service = self.jittered(self.params.append_service);
        let out = at + self.params.storage_rtt / 2;
        let sojourn = self.nodes[n].append_station.charge(out, service);
        (
            out + sojourn + self.params.storage_rtt / 2,
            service,
            sojourn,
        )
    }

    fn backoff(&mut self, strikes: u32) -> Nanos {
        let exp = self
            .params
            .backoff_base
            .saturating_mul(1 << strikes.min(16));
        let cap = exp.min(self.params.backoff_cap);
        self.rng.range(cap / 2, cap + 1)
    }

    fn handle_client_txn(&mut self, now: Nanos, client: u32) {
        let c = client as usize;
        if !self.clients[c].active {
            self.clients[c].attempt_started = None;
            self.clients[c].attempt_blame = Blame::default();
            return;
        }
        let started = *self.clients[c].attempt_started.get_or_insert(now);
        // Blame accrual for this attempt. Every virtual-time increment
        // below has a matching component add, so the components sum to
        // the attempt's duration exactly (asserted at commit).
        let mut blame = Blame::default();
        // Station queueing while ordered capacity is still provisioning
        // is the policy's lead showing up in the tail — reclassified
        // from `queue_wait` to `provision_lead` for the whole attempt.
        let lead_pending = self
            .pending_plans
            .iter()
            .any(|p| matches!(p, PendingPlan::ScaleOut { .. }));
        let template = self.clients[c].gen.next_txn();
        let (mut anchor_granule, mut touched) = self.granules_of(&template);
        // Geo deployment: clients only touch data homed in their own
        // region (§6.5). Remap each granule into the region's set; the
        // same mapping applies to per-op granules during execution. A
        // region with no initial nodes owns no granules — its clients
        // fall back to the global granule space rather than remapping
        // into an empty set (found by fuzzing: `g % 0` panicked).
        let remap = (self.region_granules.len() > 1
            && !self.region_granules[self.clients[c].region.0 as usize].is_empty())
        .then(|| {
            let local = &self.region_granules[self.clients[c].region.0 as usize];
            // marlin-lint: allow(no-hash-collections, lookup-only: built per txn, indexed by granule id, never iterated)
            let map: std::collections::HashMap<u64, u64> = touched
                .iter()
                .map(|&g| (g, local[(g % local.len() as u64) as usize]))
                .collect();
            anchor_granule = map[&anchor_granule];
            for g in &mut touched {
                *g = map[g];
            }
            touched.sort_unstable();
            touched.dedup();
            map
        });
        let ag = anchor_granule as usize;

        // Routing (stale cache + redirect, §4.2).
        let route = self.routes[ag];
        let owner = self.granules[ag].owner;
        if route != owner {
            // Misroute: one round trip to learn the redirect, abort, retry.
            // Service-backed routers refresh ownership from the external
            // coordination service (a metered read); Marlin's redirect
            // comes from the node itself (§4.2) — no coordination op.
            if !matches!(self.backend, CoordBackend::Marlin) {
                self.metrics.coord.service_reads += 1;
            }
            let rtt = 2 * self.one_way(self.clients[c].region, self.nodes[route as usize].region);
            self.routes[ag] = owner;
            self.metrics.abort(now);
            let strikes = self.clients[c].strikes;
            self.clients[c].strikes = strikes.saturating_add(1);
            let backoff = self.backoff(strikes);
            let delay = rtt + backoff;
            // The wasted redirect round trip is migration fallout (the
            // routing tier lags the ownership move); the backoff is the
            // client's own retry throttle.
            self.clients[c].attempt_blame.migration_stall = self.clients[c]
                .attempt_blame
                .migration_stall
                .saturating_add(rtt);
            self.clients[c].attempt_blame.retry_backoff = self.clients[c]
                .attempt_blame
                .retry_backoff
                .saturating_add(backoff);
            self.queue
                .schedule(delay, ActorId(0), Event::ClientTxn { client });
            return;
        }
        // NO_WAIT against in-flight migrations on any touched granule.
        if touched.iter().any(|&g| self.granules[g as usize].migrating) {
            let rtt = 2 * self.one_way(self.clients[c].region, self.nodes[owner as usize].region);
            self.metrics.abort(now);
            let strikes = self.clients[c].strikes;
            self.clients[c].strikes = strikes.saturating_add(1);
            let backoff = self.backoff(strikes);
            let delay = rtt + backoff;
            self.clients[c].attempt_blame.migration_stall = self.clients[c]
                .attempt_blame
                .migration_stall
                .saturating_add(rtt);
            self.clients[c].attempt_blame.retry_backoff = self.clients[c]
                .attempt_blame
                .retry_backoff
                .saturating_add(backoff);
            self.queue
                .schedule(delay, ActorId(0), Event::ClientTxn { client });
            return;
        }

        // Execute the interactive request loop.
        let client_region = self.clients[c].region;
        let home = owner as usize;
        let home_region = self.nodes[home].region;
        let mut t = now;
        for op in &template.ops {
            let mut g = self.granule_of_key(&template, op.key);
            if let Some(map) = &remap {
                g = map[&g];
            }
            let g = g as usize;
            let serve_node = self.granules[g].owner as usize;
            t += self.hop(client_region, home_region, &mut blame);
            if serve_node != home {
                // Multi-site access (TPC-C remote warehouse): forwarded
                // through the home node to the participant.
                t += self.hop(home_region, self.nodes[serve_node].region, &mut blame);
            }
            let service = self.jittered(self.params.req_service);
            let sojourn = self.nodes[serve_node].cpu.charge(now, t, service);
            t += sojourn;
            blame.service = blame.service.saturating_add(service);
            let wait = sojourn.saturating_sub(service);
            if lead_pending {
                blame.provision_lead = blame.provision_lead.saturating_add(wait);
            } else {
                blame.queue_wait = blame.queue_wait.saturating_add(wait);
            }
            if self.granules[g].cold_left > 0 {
                // Cold cache: GetPage@LSN from the page store.
                let fetch = self.jittered(self.params.get_page_service);
                t += self.params.storage_rtt + fetch;
                blame.network = blame.network.saturating_add(self.params.storage_rtt);
                blame.service = blame.service.saturating_add(fetch);
                self.granules[g].cold_left -= 1;
            }
            if serve_node != home {
                t += self.hop(self.nodes[serve_node].region, home_region, &mut blame);
            }
            t += self.hop(home_region, client_region, &mut blame);
        }

        // Commit: group commit wait, then the conditional append on the
        // home node's GLog — a *real* CAS against real LSN state.
        let gc_wait = self.jittered(self.params.group_commit_wait);
        t += gc_wait;
        blame.network = blame.network.saturating_add(gc_wait);
        let participants: Vec<usize> = {
            let mut p: Vec<usize> = touched
                .iter()
                .map(|&g| self.granules[g as usize].owner as usize)
                .collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        if participants.len() > 1 {
            // Two-phase commit across sites: one vote round trip.
            let vote = self.hop(home_region, self.nodes[participants[1]].region, &mut blame);
            t += 2 * vote;
            // `hop` attributed one leg; mirror the second.
            let overlay = self.overlay_penalty(home_region, self.nodes[participants[1]].region);
            blame.network = blame.network.saturating_add(vote - overlay);
            blame.network_overlay = blame.network_overlay.saturating_add(overlay);
        }
        let mut commit_done = t;
        // Service/sojourn split of the append on the critical path (the
        // slowest participant defines `commit_done`).
        let mut append_split: Option<(Nanos, Nanos)> = None;
        let mut cas_failed = false;
        for &p in &participants {
            let expected = self.nodes[p].tracker.get(LogId::GLog(NodeId(p as u32)));
            self.metrics.coord.commit_cas_attempts += 1;
            match self.nodes[p]
                .glog
                .conditional_append(vec![Bytes::new()], expected)
            {
                Ok(out) => {
                    self.nodes[p]
                        .tracker
                        .observe(LogId::GLog(NodeId(p as u32)), out.new_lsn);
                }
                Err(StorageError::LsnMismatch { current, .. }) => {
                    self.nodes[p]
                        .tracker
                        .observe(LogId::GLog(NodeId(p as u32)), current);
                    self.metrics.coord.commit_cas_retries += 1;
                    cas_failed = true;
                }
                Err(_) => cas_failed = true,
            }
            let (done, service, sojourn) = self.storage_append_done(p, t);
            if done > commit_done {
                commit_done = done;
                append_split = Some((service, sojourn));
            }
        }
        if let Some((service, sojourn)) = append_split {
            blame.network = blame.network.saturating_add(self.params.storage_rtt);
            blame.service = blame.service.saturating_add(service);
            let wait = sojourn.saturating_sub(service);
            if lead_pending {
                blame.provision_lead = blame.provision_lead.saturating_add(wait);
            } else {
                blame.queue_wait = blame.queue_wait.saturating_add(wait);
            }
        }
        if cas_failed {
            // Cross-node modification detected at commit (Figure 7 race).
            self.metrics.abort(commit_done);
            let strikes = self.clients[c].strikes;
            self.clients[c].strikes = strikes.saturating_add(1);
            let backoff = self.backoff(strikes);
            let delay = (commit_done - now) + backoff;
            // The wasted attempt keeps its component split; only the
            // backoff is the retry's own cost.
            blame.retry_backoff = blame.retry_backoff.saturating_add(backoff);
            self.clients[c].attempt_blame.add(&blame);
            self.queue
                .schedule(delay, ActorId(0), Event::ClientTxn { client });
            return;
        }
        let t_end = commit_done + self.hop(home_region, client_region, &mut blame);
        for &g in &touched {
            let gran = &mut self.granules[g as usize];
            gran.busy_until = gran.busy_until.max(t_end);
            self.heat.record(g as usize, 1);
        }
        let latency = t_end - started;
        self.metrics.commit(t_end, latency);
        // Every time increment of this attempt has a matching component
        // add (the cross-attempt sum then matches the client-perceived
        // latency, since each aborted attempt contributed exactly its
        // retry delay).
        debug_assert_eq!(
            blame.total(),
            t_end - now,
            "attempt blame must sum to the attempt's duration"
        );
        let mut txn_blame = self.clients[c].attempt_blame;
        txn_blame.add(&blame);
        self.metrics.blame_n(&txn_blame, 1);
        self.exemplars.offer(TailExemplar {
            at: t_end,
            latency,
            granule: anchor_granule,
            node: owner,
            region: client_region.0,
            weight: 1,
            blame: txn_blame,
        });
        if self.hist_active {
            self.lat_window.record(t_end, latency, client_region.0, 1);
        } else {
            self.recent_commits
                .push_back((t_end, latency, client_region.0, 1));
            self.prune_recent_commits(t_end);
        }
        self.region_commits[client_region.0 as usize] += 1;
        self.clients[c].strikes = 0;
        self.clients[c].attempt_started = None;
        self.clients[c].attempt_blame = Blame::default();
        // Closed loop: next transaction immediately after the response.
        self.queue
            .schedule_at(t_end, ActorId(0), Event::ClientTxn { client });
    }

    /// Keep the commit window bounded here, not only in observe():
    /// scripted scenarios and the figure benches never observe, and a
    /// paper-scale run commits tens of millions of transactions.
    fn prune_recent_commits(&mut self, latest: Nanos) {
        let floor = latest.saturating_sub(Self::MAX_OBSERVE_WINDOW);
        while self
            .recent_commits
            .front()
            .is_some_and(|&(t, _, _, _)| t < floor)
        {
            self.recent_commits.pop_front();
        }
    }

    /// Cohort step cadence: each cohort advances its whole client batch
    /// once per 100 ms of virtual time.
    const COHORT_STEP: Nanos = 100 * 1_000_000;

    /// Representative transaction walks priced per cohort step. Each
    /// walk runs the exact per-client timeline (same stations, same
    /// logs); the batch's remaining transactions ride the walks as
    /// weights.
    const COHORT_SAMPLES: u32 = 8;

    /// Advance one cohort by a full step: price [`COHORT_SAMPLES`]
    /// representative walks, derive the step's transaction count from
    /// the closed-loop rate (`active clients × step / mean cycle`, with
    /// a fractional carry so the long-run rate is exact), then replay
    /// each walk's outcome with its share of that count — weighted
    /// metrics, weighted heat, and bulk offered-load deposits on the
    /// stations the walk visited.
    ///
    /// [`COHORT_SAMPLES`]: Self::COHORT_SAMPLES
    fn handle_cohort_step(&mut self, now: Nanos, cohort: u32) {
        self.queue
            .schedule(Self::COHORT_STEP, ActorId(0), Event::CohortStep { cohort });
        let i = cohort as usize;
        let active = self.cohorts[i].active;
        if active == 0 {
            self.cohorts[i].carry = 0.0;
            return;
        }
        let region = self.cohorts[i].region;

        let walks: Vec<CohortWalk> = (0..Self::COHORT_SAMPLES)
            .map(|_| self.cohort_walk(now, i, region))
            .collect();
        let mean_cycle =
            (walks.iter().map(|w| w.cycle(now) as f64).sum::<f64>() / walks.len() as f64).max(1.0);
        let offered =
            f64::from(active) * (Self::COHORT_STEP as f64 / mean_cycle) + self.cohorts[i].carry;
        let txns = offered.floor();
        self.cohorts[i].carry = offered - txns;
        let txns = txns as u64;
        let base = txns / u64::from(Self::COHORT_SAMPLES);
        let rem = (txns % u64::from(Self::COHORT_SAMPLES)) as usize;

        let mut latest_commit = 0;
        for (s, walk) in walks.iter().enumerate() {
            let w = base + u64::from(s < rem);
            if w == 0 {
                continue;
            }
            match walk {
                CohortWalk::Commit {
                    t_end,
                    touched,
                    participants,
                    node_service,
                    blame,
                    anchor,
                    home,
                } => {
                    let latency = t_end - now;
                    self.metrics.commit_n(*t_end, latency, w);
                    self.metrics.coord.commit_cas_attempts += w * participants.len() as u64;
                    self.metrics.blame_n(blame, w);
                    self.exemplars.offer(TailExemplar {
                        at: *t_end,
                        latency,
                        granule: *anchor,
                        node: *home,
                        region: region.0,
                        weight: w,
                        blame: *blame,
                    });
                    // Weight entries saturate at u32::MAX per sample —
                    // ~4 billion commits in one 100 ms step is beyond
                    // any modeled scale.
                    let w32 = u32::try_from(w).unwrap_or(u32::MAX);
                    if self.hist_active {
                        self.lat_window
                            .record(*t_end, latency, region.0, u64::from(w32));
                    } else {
                        self.recent_commits
                            .push_back((*t_end, latency, region.0, w32));
                    }
                    self.region_commits[region.0 as usize] += w;
                    for &g in touched {
                        let gran = &mut self.granules[g as usize];
                        gran.busy_until = gran.busy_until.max(*t_end);
                        self.heat.record(g as usize, w32);
                    }
                    if w > 1 {
                        for &(n, svc) in node_service {
                            self.nodes[n].cpu.offer(now, svc.saturating_mul(w - 1));
                        }
                        let append = self.params.append_service;
                        for &p in participants {
                            self.nodes[p]
                                .append_station
                                .offer(now, append.saturating_mul(w - 1));
                        }
                    }
                    latest_commit = latest_commit.max(*t_end);
                }
                CohortWalk::Abort {
                    at,
                    coord_read,
                    cas_retry,
                    node_service,
                    ..
                } => {
                    self.metrics.abort_n(*at, w);
                    if *coord_read {
                        self.metrics.coord.service_reads += w;
                    }
                    if *cas_retry {
                        self.metrics.coord.commit_cas_attempts += w;
                        self.metrics.coord.commit_cas_retries += w;
                    }
                    if w > 1 {
                        for &(n, svc) in node_service {
                            self.nodes[n].cpu.offer(now, svc.saturating_mul(w - 1));
                        }
                    }
                }
            }
        }
        if latest_commit > 0 && !self.hist_active {
            self.prune_recent_commits(latest_commit);
        }
    }

    /// Price one representative transaction for a cohort: the exact
    /// per-client timeline (routing, NO_WAIT, per-op hops and CPU
    /// charges, group commit, real GLog CAS appends) without per-client
    /// state. Strikes don't exist at cohort granularity, so retry
    /// backoff uses the first-strike floor.
    fn cohort_walk(&mut self, now: Nanos, cohort: usize, region: RegionId) -> CohortWalk {
        let template = self.cohorts[cohort].gen.next_txn();
        let (mut anchor_granule, mut touched) = self.granules_of(&template);
        // Geo deployment: same remap as the exact engine (see
        // `handle_client_txn`).
        let remap = (self.region_granules.len() > 1
            && !self.region_granules[region.0 as usize].is_empty())
        .then(|| {
            let local = &self.region_granules[region.0 as usize];
            // marlin-lint: allow(no-hash-collections, lookup-only: built per walk, indexed by granule id, never iterated)
            let map: std::collections::HashMap<u64, u64> = touched
                .iter()
                .map(|&g| (g, local[(g % local.len() as u64) as usize]))
                .collect();
            anchor_granule = map[&anchor_granule];
            for g in &mut touched {
                *g = map[g];
            }
            touched.sort_unstable();
            touched.dedup();
            map
        });
        let ag = anchor_granule as usize;

        let route = self.routes[ag];
        let owner = self.granules[ag].owner;
        if route != owner {
            let rtt = 2 * self.one_way(region, self.nodes[route as usize].region);
            self.routes[ag] = owner;
            let delay = rtt + self.backoff(0);
            return CohortWalk::Abort {
                at: now,
                coord_read: !matches!(self.backend, CoordBackend::Marlin),
                cas_retry: false,
                cycle: delay,
                node_service: Vec::new(),
            };
        }
        if touched.iter().any(|&g| self.granules[g as usize].migrating) {
            let rtt = 2 * self.one_way(region, self.nodes[owner as usize].region);
            let delay = rtt + self.backoff(0);
            return CohortWalk::Abort {
                at: now,
                coord_read: false,
                cas_retry: false,
                cycle: delay,
                node_service: Vec::new(),
            };
        }

        let home = owner as usize;
        let home_region = self.nodes[home].region;
        let mut t = now;
        let mut node_service: Vec<(usize, Nanos)> = Vec::with_capacity(template.ops.len());
        // Same blame accrual as the exact path (each weighted copy of
        // the walk replays this decomposition).
        let mut blame = Blame::default();
        let lead_pending = self
            .pending_plans
            .iter()
            .any(|p| matches!(p, PendingPlan::ScaleOut { .. }));
        for op in &template.ops {
            let mut g = self.granule_of_key(&template, op.key);
            if let Some(map) = &remap {
                g = map[&g];
            }
            let g = g as usize;
            let serve_node = self.granules[g].owner as usize;
            t += self.hop(region, home_region, &mut blame);
            if serve_node != home {
                t += self.hop(home_region, self.nodes[serve_node].region, &mut blame);
            }
            let service = self.jittered(self.params.req_service);
            node_service.push((serve_node, service));
            let sojourn = self.nodes[serve_node].cpu.charge(now, t, service);
            t += sojourn;
            blame.service = blame.service.saturating_add(service);
            let wait = sojourn.saturating_sub(service);
            if lead_pending {
                blame.provision_lead = blame.provision_lead.saturating_add(wait);
            } else {
                blame.queue_wait = blame.queue_wait.saturating_add(wait);
            }
            if self.granules[g].cold_left > 0 {
                let fetch = self.jittered(self.params.get_page_service);
                t += self.params.storage_rtt + fetch;
                blame.network = blame.network.saturating_add(self.params.storage_rtt);
                blame.service = blame.service.saturating_add(fetch);
                self.granules[g].cold_left -= 1;
            }
            if serve_node != home {
                t += self.hop(self.nodes[serve_node].region, home_region, &mut blame);
            }
            t += self.hop(home_region, region, &mut blame);
        }

        let gc_wait = self.jittered(self.params.group_commit_wait);
        t += gc_wait;
        blame.network = blame.network.saturating_add(gc_wait);
        let participants: Vec<usize> = {
            let mut p: Vec<usize> = touched
                .iter()
                .map(|&g| self.granules[g as usize].owner as usize)
                .collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        if participants.len() > 1 {
            let vote = self.hop(home_region, self.nodes[participants[1]].region, &mut blame);
            t += 2 * vote;
            let overlay = self.overlay_penalty(home_region, self.nodes[participants[1]].region);
            blame.network = blame.network.saturating_add(vote - overlay);
            blame.network_overlay = blame.network_overlay.saturating_add(overlay);
        }
        let mut commit_done = t;
        let mut append_split: Option<(Nanos, Nanos)> = None;
        let mut cas_failed = false;
        for &p in &participants {
            let expected = self.nodes[p].tracker.get(LogId::GLog(NodeId(p as u32)));
            match self.nodes[p]
                .glog
                .conditional_append(vec![Bytes::new()], expected)
            {
                Ok(out) => {
                    self.nodes[p]
                        .tracker
                        .observe(LogId::GLog(NodeId(p as u32)), out.new_lsn);
                }
                Err(StorageError::LsnMismatch { current, .. }) => {
                    self.nodes[p]
                        .tracker
                        .observe(LogId::GLog(NodeId(p as u32)), current);
                    cas_failed = true;
                }
                Err(_) => cas_failed = true,
            }
            let (done, service, sojourn) = self.storage_append_done(p, t);
            if done > commit_done {
                commit_done = done;
                append_split = Some((service, sojourn));
            }
        }
        if cas_failed {
            let delay = (commit_done - now) + self.backoff(0);
            return CohortWalk::Abort {
                at: commit_done,
                coord_read: false,
                cas_retry: true,
                cycle: delay,
                node_service,
            };
        }
        if let Some((service, sojourn)) = append_split {
            blame.network = blame.network.saturating_add(self.params.storage_rtt);
            blame.service = blame.service.saturating_add(service);
            let wait = sojourn.saturating_sub(service);
            if lead_pending {
                blame.provision_lead = blame.provision_lead.saturating_add(wait);
            } else {
                blame.queue_wait = blame.queue_wait.saturating_add(wait);
            }
        }
        let t_end = commit_done + self.hop(home_region, region, &mut blame);
        debug_assert_eq!(
            blame.total(),
            t_end - now,
            "walk blame must sum to the walk's duration"
        );
        CohortWalk::Commit {
            t_end,
            touched,
            participants,
            node_service,
            blame,
            anchor: anchor_granule,
            home: owner,
        }
    }

    fn granules_of(&self, template: &TxnTemplate) -> (u64, Vec<u64>) {
        let anchor = self.granule_of_key(template, template.anchor);
        let mut touched: Vec<u64> = template
            .ops
            .iter()
            .map(|op| self.granule_of_key(template, op.key))
            .collect();
        touched.push(anchor);
        touched.sort_unstable();
        touched.dedup();
        (anchor, touched)
    }

    fn granule_of_key(&self, template: &TxnTemplate, key: u64) -> u64 {
        if template.kind == 0 {
            // YCSB: 64 keys per granule (64 KB granules of 1 KB tuples).
            (key / 64).min(self.granules.len() as u64 - 1)
        } else {
            // TPC-C: warehouse-major composite keys.
            TpccConfig::warehouse_of(key).min(self.granules.len() as u64 - 1)
        }
    }

    fn handle_mig_worker(&mut self, now: Nanos, worker: u32) {
        let w = worker as usize;
        let (ref queue_tasks, cursor) = self.workers[w];
        if cursor >= queue_tasks.len() {
            // Worker done; if a drain finished, release nodes.
            if !self.draining.is_empty() {
                self.queue.schedule(0, ActorId(0), Event::ReleaseDrained);
            }
            return;
        }
        let task = queue_tasks[cursor];
        let g = task.granule as usize;

        // Data-effectiveness + NO_WAIT lock acquisition at the source:
        // one node-to-node round trip plus CPU on both sides.
        let src = task.src as usize;
        let dst = task.dst as usize;
        let src_region = self.nodes[src].region;
        let dst_region = self.nodes[dst].region;
        let mut t = now + 2 * self.one_way(dst_region, src_region);
        let svc = self.jittered(self.params.migration_service);
        t += self.nodes[src].cpu.charge(now, t, svc);
        let svc = self.jittered(self.params.migration_service);
        t += self.nodes[dst].cpu.charge(now, t, svc);

        // Data-effectiveness re-check: plans from different control ticks
        // may overlap (a rebalance planner can propose a granule that an
        // earlier, still-running plan is about to move). The MigrationTxn
        // protocol aborts such stale tasks at the source — skip them.
        if self.granules[g].migrating || self.granules[g].owner != task.src {
            self.workers[w].1 += 1;
            self.queue
                .schedule_at(t, ActorId(0), Event::MigWorker { worker });
            return;
        }
        // NO_WAIT: an active user transaction on the granule aborts us.
        if self.granules[g].busy_until > t {
            self.metrics.migration_retries += 1;
            let retry = self.granules[g].busy_until - t + self.rng.range(0, 2_000_000);
            self.queue
                .schedule_at(t + retry, ActorId(0), Event::MigWorker { worker });
            return;
        }
        // The granule lock is held from the effectiveness check through
        // the metadata commit — the window in which user transactions
        // NO_WAIT-abort against the migration (Figure 6 step 2/4).
        self.granules[g].migrating = true;

        // Metadata commit.
        let commit_done = match &mut self.backend {
            CoordBackend::Marlin => {
                // Two prepared Append@LSN CAS ops (src + dst GLogs). Both
                // succeed here — the granule lock serializes writers — but
                // they are coordination ops all the same.
                self.metrics.coord.migration_cas_attempts += 2;
                // MarlinCommit 2PC: prepared appends on both GLogs in
                // parallel (the vote request to src rides the RPC already
                // made); decisions are asynchronous (off the latency path).
                let d_src = {
                    let expected = self.nodes[src].tracker.get(LogId::GLog(NodeId(src as u32)));
                    let out = self.nodes[src]
                        .glog
                        .conditional_append(vec![Bytes::new()], expected)
                        .expect("src GLog CAS: src is the sole writer under its lock");
                    self.nodes[src]
                        .tracker
                        .observe(LogId::GLog(NodeId(src as u32)), out.new_lsn);
                    // The VOTE-REQ/response legs to the source ride the
                    // network (Algorithm 2 line 10).
                    let vote_rtt = 2 * self.one_way(dst_region, src_region);
                    self.storage_append_done(src, t + vote_rtt / 2).0 + vote_rtt / 2
                };
                let d_dst = {
                    let expected = self.nodes[dst].tracker.get(LogId::GLog(NodeId(dst as u32)));
                    let out = self.nodes[dst]
                        .glog
                        .conditional_append(vec![Bytes::new()], expected)
                        .expect("dst GLog CAS: dst is the sole writer");
                    self.nodes[dst]
                        .tracker
                        .observe(LogId::GLog(NodeId(dst as u32)), out.new_lsn);
                    self.storage_append_done(dst, t).0
                };
                // Async decisions still consume storage bandwidth.
                let decide_at = d_src.max(d_dst);
                self.nodes[src].glog.append(vec![Bytes::new()]);
                self.nodes[dst].glog.append(vec![Bytes::new()]);
                let _ = self.storage_append_done(src, decide_at);
                let _ = self.storage_append_done(dst, decide_at);
                let n_src = self.nodes[src].glog.end_lsn();
                self.nodes[src]
                    .tracker
                    .observe(LogId::GLog(NodeId(src as u32)), n_src);
                let n_dst = self.nodes[dst].glog.end_lsn();
                self.nodes[dst]
                    .tracker
                    .observe(LogId::GLog(NodeId(dst as u32)), n_dst);
                decide_at
            }
            CoordBackend::Zk(svc) => {
                self.metrics.coord.service_writes += 1;
                let req = CoordRequest::UpdateOwner {
                    granule: GranuleId(task.granule),
                    from: NodeId(task.src),
                    to: NodeId(task.dst),
                };
                // The coordination service lives in region 0.
                let svc_region = RegionId(0);
                let to_svc = self.params.regions.link(dst_region, svc_region).mean()
                    * u64::from(svc.client_round_trips(&req))
                    * 2;
                let completion = svc.submit(t + to_svc / 2, &req, &mut self.rng);
                debug_assert_eq!(completion.reply, CoordReply::Updated);
                completion.done_at + to_svc / 2
            }
            CoordBackend::Fdb(svc) => {
                self.metrics.coord.service_writes += 1;
                let req = CoordRequest::UpdateOwner {
                    granule: GranuleId(task.granule),
                    from: NodeId(task.src),
                    to: NodeId(task.dst),
                };
                let svc_region = RegionId(0);
                let to_svc = self.params.regions.link(dst_region, svc_region).mean()
                    * u64::from(svc.client_round_trips(&req))
                    * 2;
                let completion = svc.submit(t + to_svc / 2, &req, &mut self.rng);
                debug_assert_eq!(completion.reply, CoordReply::Updated);
                completion.done_at + to_svc / 2
            }
        };

        // Ownership flips; the granule is cold at the destination until
        // the Squall-style warm-up finishes (same strategy for all
        // systems, §6.1.2).
        self.granules[g].owner = task.dst;
        self.granules[g].migrating = false;
        self.granules[g].cold_left = self.params.cold_misses_per_granule;
        self.queue.schedule_at(
            commit_done + self.params.warmup_per_granule,
            ActorId(0),
            Event::WarmupDone {
                granule: task.granule,
            },
        );
        self.queue.schedule_at(
            commit_done + self.params.route_broadcast_delay,
            ActorId(0),
            Event::RouteUpdate {
                granule: task.granule,
            },
        );
        if self.tracer.is_enabled() {
            self.tracer.span_args(
                "migration",
                "migrate",
                now,
                commit_done,
                [
                    ("granule", task.granule as i64),
                    ("dst", i64::from(task.dst)),
                ],
            );
        }
        self.metrics.migration(commit_done, commit_done - now);
        self.workers[w].1 += 1;
        self.queue
            .schedule_at(commit_done, ActorId(0), Event::MigWorker { worker });
    }

    fn release_drained(&mut self, now: Nanos) {
        let mut released = false;
        self.accrue_region_time(now);
        let draining = std::mem::take(&mut self.draining);
        let mut still = Vec::new();
        for v in draining {
            let owns_any = self.granules.iter().any(|g| g.owner == v);
            if owns_any {
                still.push(v);
            } else if self.nodes[v as usize].alive {
                self.nodes[v as usize].alive = false;
                released = true;
            }
        }
        self.draining = still;
        if released {
            let live = self.live_nodes();
            self.cost.advance(now, live);
            self.metrics.node_count.push(now, f64::from(live));
        }
    }

    fn handle_membership(&mut self, now: Nanos, member: u32) {
        // One membership update: Marlin CAS-appends to the SysLog with the
        // member's tracker (retrying through refreshes on conflicts);
        // baselines write through the service.
        let m = member as usize;
        let started = *self.membership_starts[m].get_or_insert(now);
        let done = match &mut self.backend {
            CoordBackend::Marlin => {
                let expected = self.member_trackers[m].get(LogId::SysLog);
                self.metrics.coord.membership_cas_attempts += 1;
                match self.syslog.conditional_append(vec![Bytes::new()], expected) {
                    Ok(out) => {
                        self.member_trackers[m].observe(LogId::SysLog, out.new_lsn);
                        let svc = self.jittered(self.params.append_service);
                        let arrive = now + self.params.storage_rtt / 2;
                        let station_done = arrive + self.syslog_station.charge(arrive, svc);
                        Some(station_done + self.params.storage_rtt / 2)
                    }
                    Err(StorageError::LsnMismatch { current, .. }) => {
                        // TryLog failure: refresh the MTable cache and
                        // retry after backoff (the OCC contention path of
                        // Figure 15).
                        self.member_trackers[m].observe(LogId::SysLog, current);
                        self.metrics.coord.membership_cas_retries += 1;
                        self.metrics.membership_retries += 1;
                        let retry = self.params.storage_rtt
                            + self.params.mtable_refresh
                            + self.rng.range(0, 4 * self.params.storage_rtt);
                        self.queue
                            .schedule(retry, ActorId(0), Event::MembershipTick { member });
                        None
                    }
                    Err(_) => None,
                }
            }
            CoordBackend::Zk(svc) => {
                let req = if member.is_multiple_of(2) {
                    CoordRequest::AddNode {
                        node: NodeId(10_000 + member),
                    }
                } else {
                    CoordRequest::DeleteNode {
                        node: NodeId(10_000 + member),
                    }
                };
                self.metrics.coord.service_writes += 1;
                Some(svc.submit(now, &req, &mut self.rng).done_at + self.params.intra_rtt)
            }
            CoordBackend::Fdb(svc) => {
                let req = if member.is_multiple_of(2) {
                    CoordRequest::AddNode {
                        node: NodeId(10_000 + member),
                    }
                } else {
                    CoordRequest::DeleteNode {
                        node: NodeId(10_000 + member),
                    }
                };
                self.metrics.coord.service_writes += 1;
                Some(svc.submit(now, &req, &mut self.rng).done_at + 2 * self.params.intra_rtt)
            }
        };
        if let Some(done) = done {
            self.metrics.membership_commits += 1;
            self.membership_latency_sum += done.saturating_sub(started);
            self.membership_starts[m] = None;
            // Next update one period after this one *started*.
            let next = self.membership_tick_origin(member) + self.membership_period;
            self.set_membership_tick_origin(member, next);
            self.queue
                .schedule_at(next.max(done), ActorId(0), Event::MembershipTick { member });
        }
    }

    /// Mean latency of committed membership updates.
    #[must_use]
    pub fn membership_mean_latency(&self) -> f64 {
        if self.metrics.membership_commits == 0 {
            0.0
        } else {
            self.membership_latency_sum as f64 / self.metrics.membership_commits as f64
        }
    }

    // Membership tick bookkeeping (origins per member).
    fn membership_tick_origin(&mut self, member: u32) -> Nanos {
        while self.membership_origins.len() <= member as usize {
            let p = self.membership_period;
            self.membership_origins.push(p);
        }
        self.membership_origins[member as usize]
    }

    fn set_membership_tick_origin(&mut self, member: u32, at: Nanos) {
        self.membership_origins[member as usize] = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- CpuStation (analytic EMA) boundary behavior ------------------------

    #[test]
    fn rho_at_time_zero_on_an_idle_station_is_zero() {
        let s = CpuStation::new(4);
        assert_eq!(s.rho_at(0), 0.0);
        // Still zero arbitrarily far in the future: nothing to decay.
        assert_eq!(s.rho_at(3600 * SECOND), 0.0);
    }

    #[test]
    fn rho_at_decays_to_nothing_over_a_huge_gap() {
        let mut s = CpuStation::new(1);
        // Saturate the station hard at t=0.
        for _ in 0..100 {
            s.charge(0, 10 * 1_000_000);
        }
        let rho_now = s.rho_at(0);
        assert!(rho_now > 1.0, "station must read overloaded: {rho_now}");
        // One EMA time constant halves-ish; a huge gap extinguishes it.
        assert!(s.rho_at(SECOND) < rho_now);
        let after_gap = s.rho_at(1_000 * SECOND);
        assert!(
            after_gap < 1e-12,
            "load must fully decay over a huge gap: {after_gap}"
        );
    }

    #[test]
    fn rho_at_before_the_last_arrival_reads_the_undecayed_load() {
        let mut s = CpuStation::new(1);
        s.charge(SECOND, 100 * 1_000_000);
        // Observing at an earlier instant than the last charge must not
        // decay (and must not panic on the negative gap).
        assert_eq!(s.rho_at(0), s.rho_at(SECOND));
    }

    #[test]
    fn back_to_back_arrivals_accumulate_without_decay() {
        let mut s = CpuStation::new(1);
        let svc = 50 * 1_000_000; // 50 ms on a 0.5 s EMA
        s.charge(SECOND, svc);
        let one = s.rho_at(SECOND);
        s.charge(SECOND, svc);
        let two = s.rho_at(SECOND);
        assert!((two - 2.0 * one).abs() < 1e-12, "same-instant arrivals add");
        // Each charge contributes service/TAU worker units.
        assert!((one - svc as f64 / CPU_TAU).abs() < 1e-12);
    }

    #[test]
    fn charge_grows_with_congestion_and_is_clamped_at_saturation() {
        let mut s = CpuStation::new(1);
        let svc = 20 * 1_000_000;
        let idle = s.charge(0, svc);
        assert!(idle >= svc, "sojourn includes at least the service time");
        // Pile on work at the same instant: the congestion delay grows but
        // the rho clamp (0.98) caps it at 49x the service time.
        let mut last = idle;
        for _ in 0..200 {
            last = s.charge(0, svc);
        }
        assert!(last > idle);
        assert!(last <= svc + svc * 49 + 1, "analytic delay is clamped");
    }

    // -- PerRequestStation: exact sojourn times -----------------------------

    #[test]
    fn idle_station_serves_at_the_bare_service_time() {
        let mut s = PerRequestStation::new(2);
        assert_eq!(s.charge(0, 0, 100), 100);
        assert_eq!(s.queue_len_at(0), 0);
    }

    #[test]
    fn sojourn_times_are_strictly_latency_ordered_under_backlog() {
        // One worker, three same-instant arrivals: FIFO slots give each
        // request a strictly larger sojourn than the one before it — the
        // "strictly latency-ordered" property the analytic clamp cannot
        // produce.
        let mut s = PerRequestStation::new(1);
        let sojourns: Vec<Nanos> = (0..3).map(|_| s.charge(0, 0, 100)).collect();
        assert_eq!(sojourns, vec![100, 200, 300]);
        // All three are in the system at t=0; two of them queue.
        assert_eq!(s.in_system_at(0), 3);
        assert_eq!(s.queue_len_at(0), 2);
        assert!((s.rho_at(0) - 3.0).abs() < 1e-12);
        // Queue drains as slots complete.
        assert_eq!(s.queue_len_at(150), 1);
        assert_eq!(s.in_system_at(250), 1);
        assert_eq!(s.in_system_at(300), 0);
    }

    #[test]
    fn multi_worker_station_runs_requests_in_parallel() {
        let mut s = PerRequestStation::new(4);
        let sojourns: Vec<Nanos> = (0..4).map(|_| s.charge(0, 0, 100)).collect();
        assert_eq!(sojourns, vec![100; 4], "4 workers absorb 4 requests");
        assert_eq!(s.queue_len_at(0), 0);
        // The fifth waits for the first free worker.
        assert_eq!(s.charge(0, 0, 100), 200);
        assert_eq!(s.queue_len_at(50), 1);
    }

    #[test]
    fn early_arrivals_fill_gaps_before_far_future_bookings() {
        // The out-of-order offer pattern the flow-level simulator
        // produces: one event books CPU far in the future, a later event
        // offers work now. The early request must not serialize behind
        // the future booking (work conservation across interleaved
        // offers).
        let mut s = PerRequestStation::new(1);
        assert_eq!(s.charge(0, 1_000_000, 100), 100, "future booking");
        assert_eq!(s.charge(0, 0, 100), 100, "early arrival fills the gap");
        // A request too large for the remaining gap (100 µs before the
        // future booking) waits for that booking to clear instead.
        assert_eq!(s.charge(0, 900_000, 200_000), 100_100 + 200_000);
    }

    #[test]
    fn pruning_drops_only_bookings_wholly_in_the_past() {
        let mut s = PerRequestStation::new(1);
        s.charge(0, 0, 100);
        s.charge(0, 200, 100);
        // Advance the event clock past the first booking: it is pruned,
        // the live one is kept and still visible to queries.
        s.charge(150, 150, 10);
        assert_eq!(s.in_system_at(250), 1);
        let total: usize = s.workers.iter().map(Vec::len).sum();
        assert_eq!(total, 2, "dead booking pruned, live ones kept");
    }

    #[test]
    fn future_bookings_are_invisible_to_observations() {
        let mut s = PerRequestStation::new(2);
        s.charge(0, 5_000, 100);
        assert_eq!(s.in_system_at(0), 0, "not yet arrived");
        assert_eq!(s.rho_at(0), 0.0);
        assert_eq!(s.in_system_at(5_000), 1);
    }

    #[test]
    fn windowed_offered_load_and_queue_are_measured_exactly() {
        let mut s = PerRequestStation::new(1);
        // One 100 ms demand arriving at t=0: a window holding exactly
        // that much capacity reads offered load 1 (edge buckets are
        // prorated, so the denominator is the true window length); a
        // 1 s window reads 10%.
        s.charge(0, 0, BUCKET);
        assert!((s.rho_windowed(BUCKET, BUCKET) - 1.0).abs() < 1e-12);
        let tenth = s.rho_windowed(10 * BUCKET, 10 * BUCKET);
        assert!((tenth - 0.1).abs() < 1e-12, "{tenth}");
        // No second request yet → nothing ever waited.
        assert_eq!(s.queue_windowed(10 * BUCKET, 10 * BUCKET), 0.0);
        // A second same-instant request doubles the offered work and
        // waits a full bucket for the first to finish: offered stays
        // 2×BUCKET of demand over 2×BUCKET of capacity, and the
        // waiting-time integral reads half a request queued on average
        // over [0, 2×BUCKET].
        s.charge(0, 0, BUCKET);
        let rho = s.rho_windowed(2 * BUCKET, 2 * BUCKET);
        assert!((rho - 1.0).abs() < 1e-12, "{rho}");
        let queue = s.queue_windowed(2 * BUCKET, 2 * BUCKET);
        assert!((queue - 0.5).abs() < 1e-12, "{queue}");
        // An idle future window reads zero on both signals.
        assert_eq!(s.rho_windowed(100 * BUCKET, 10 * BUCKET), 0.0);
        assert_eq!(s.queue_windowed(100 * BUCKET, 10 * BUCKET), 0.0);
    }

    #[test]
    fn per_request_sojourns_grow_without_the_analytic_clamp() {
        // Under the same sustained overload, the analytic station's
        // per-request delay saturates at 49x service while the
        // per-request station's sojourn keeps growing with the real
        // backlog — the reason PerRequest p99s respond to queue build-up
        // first.
        let svc: Nanos = 1_000_000;
        let mut analytic = CpuStation::new(1);
        let mut exact = PerRequestStation::new(1);
        let mut last_analytic = 0;
        let mut last_exact = 0;
        for _ in 0..200 {
            last_analytic = analytic.charge(0, svc);
            last_exact = exact.charge(0, 0, svc);
        }
        assert!(last_analytic <= 50 * svc, "analytic is clamped");
        assert_eq!(last_exact, 200 * svc, "exact sojourn tracks the queue");
    }
}
