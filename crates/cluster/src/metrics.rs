//! Measurement state collected during a run, feeding every figure.

use marlin_sim::{Histogram, Nanos, RateSeries, Summary, TimeSeries, SECOND};
use marlin_telemetry::CoordOps;

/// All instruments for one simulated run.
#[derive(Debug)]
pub struct RunMetrics {
    /// Committed user transactions per time bucket (Figures 9, 11, 14c).
    pub user_commits: RateSeries,
    /// User aborts (NO_WAIT conflicts, misroutes, commit conflicts) per
    /// bucket (abort-ratio panels).
    pub user_aborts: RateSeries,
    /// Committed user transaction latency (Figure 14d).
    pub user_latency: Histogram,
    /// Latency of committed transactions bucketed over time (for the
    /// real-time latency panel).
    pub latency_over_time: TimeSeries,
    /// Migration transaction completions per bucket (Figures 8, 14a).
    pub migrations: RateSeries,
    /// Migration transaction latency (Figure 10a).
    pub migration_latency: Histogram,
    /// Migration aborts/retries (contention with user transactions).
    pub migration_retries: u64,
    /// Membership updates committed (Figure 15).
    pub membership_commits: u64,
    /// Membership update CAS retries (the OCC contention signal).
    pub membership_retries: u64,
    /// Live node count over time (cost accounting, Figure 14b).
    pub node_count: TimeSeries,
    /// First and last migration completion (reconfiguration window).
    pub migration_window: Option<(Nanos, Nanos)>,
    /// Coordination-op counters: what the scalar Meta Cost is made of
    /// (Append@LSN CAS traffic for Marlin, service writes/reads for the
    /// ZK/FDB baselines, route-watch notifications for all).
    pub coord: CoordOps,
}

impl RunMetrics {
    /// Fresh instruments with one-second buckets.
    #[must_use]
    pub fn new() -> Self {
        RunMetrics::with_bucket(SECOND)
    }

    /// Fresh instruments with a custom bucket width.
    #[must_use]
    pub fn with_bucket(bucket: Nanos) -> Self {
        RunMetrics {
            user_commits: RateSeries::new(bucket),
            user_aborts: RateSeries::new(bucket),
            user_latency: Histogram::new(),
            latency_over_time: TimeSeries::new(),
            migrations: RateSeries::new(bucket),
            migration_latency: Histogram::new(),
            migration_retries: 0,
            membership_commits: 0,
            membership_retries: 0,
            node_count: TimeSeries::new(),
            migration_window: None,
            coord: CoordOps::default(),
        }
    }

    /// Record a committed user transaction.
    pub fn commit(&mut self, at: Nanos, latency: Nanos) {
        self.commit_n(at, latency, 1);
    }

    /// Record `n` committed user transactions sharing one timeline.
    ///
    /// Exactly `n` repetitions of [`RunMetrics::commit`] — the cohort
    /// engine's bulk path for a batch of clients advanced as one flow.
    pub fn commit_n(&mut self, at: Nanos, latency: Nanos, n: u64) {
        self.user_commits.record_n(at, n);
        self.user_latency.record_n(latency, n);
    }

    /// Record a user abort.
    pub fn abort(&mut self, at: Nanos) {
        self.abort_n(at, 1);
    }

    /// Record `n` user aborts at one instant (cohort bulk path).
    pub fn abort_n(&mut self, at: Nanos, n: u64) {
        self.user_aborts.record_n(at, n);
    }

    /// Record a completed migration.
    pub fn migration(&mut self, at: Nanos, latency: Nanos) {
        self.migrations.record(at);
        self.migration_latency.record(latency);
        self.migration_window = Some(match self.migration_window {
            None => (at, at),
            Some((first, last)) => (first.min(at), last.max(at)),
        });
    }

    /// Duration of the reconfiguration (first to last migration commit).
    #[must_use]
    pub fn migration_duration(&self) -> Nanos {
        match self.migration_window {
            Some((first, last)) => last - first,
            None => 0,
        }
    }

    /// Total committed user transactions.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.user_commits.total()
    }

    /// Abort ratio over the whole run.
    #[must_use]
    pub fn abort_ratio(&self) -> f64 {
        let commits = self.user_commits.total();
        let aborts = self.user_aborts.total();
        if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (commits + aborts) as f64
        }
    }

    /// Abort ratio within one time bucket.
    #[must_use]
    pub fn abort_ratio_at(&self, t: Nanos) -> f64 {
        let c = self.user_commits.rate_at(t);
        let a = self.user_aborts.rate_at(t);
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }

    /// Migration latency summary.
    #[must_use]
    pub fn migration_summary(&self) -> Summary {
        self.migration_latency.summary()
    }

    /// Mean migration throughput over the reconfiguration window
    /// (migrations per second).
    #[must_use]
    pub fn migration_throughput(&self) -> f64 {
        let total = self.migrations.total();
        let dur = self.migration_duration();
        if dur == 0 {
            0.0
        } else {
            total as f64 / (dur as f64 / SECOND as f64)
        }
    }
}

impl Default for RunMetrics {
    fn default() -> Self {
        RunMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_accounting() {
        let mut m = RunMetrics::new();
        m.commit(SECOND, 10 * 1_000_000);
        m.commit(SECOND + 1, 20 * 1_000_000);
        m.abort(SECOND + 2);
        assert_eq!(m.total_commits(), 2);
        assert!((m.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.abort_ratio_at(SECOND) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.abort_ratio_at(10 * SECOND), 0.0);
    }

    #[test]
    fn bulk_commit_equals_repeated_commit() {
        let mut a = RunMetrics::new();
        let mut b = RunMetrics::new();
        for _ in 0..7 {
            a.commit(SECOND, 10 * 1_000_000);
        }
        for _ in 0..3 {
            a.abort(SECOND + 1);
        }
        b.commit_n(SECOND, 10 * 1_000_000, 7);
        b.abort_n(SECOND + 1, 3);
        assert_eq!(a.total_commits(), b.total_commits());
        assert_eq!(a.user_latency.count(), b.user_latency.count());
        assert!((a.user_latency.mean() - b.user_latency.mean()).abs() < 1e-9);
        assert!((a.abort_ratio() - b.abort_ratio()).abs() < 1e-12);
    }

    #[test]
    fn migration_window_tracks_extremes() {
        let mut m = RunMetrics::new();
        assert_eq!(m.migration_duration(), 0);
        m.migration(5 * SECOND, 1_000_000);
        m.migration(2 * SECOND, 1_000_000);
        m.migration(9 * SECOND, 1_000_000);
        assert_eq!(m.migration_window, Some((2 * SECOND, 9 * SECOND)));
        assert_eq!(m.migration_duration(), 7 * SECOND);
        let tput = m.migration_throughput();
        assert!((tput - 3.0 / 7.0).abs() < 1e-9);
    }
}
