//! Measurement state collected during a run, feeding every figure.

use marlin_sim::{Histogram, Nanos, RateSeries, Summary, TimeSeries, SECOND};
use marlin_telemetry::CoordOps;

/// Where a committed transaction's sojourn went: the tail-latency
/// attribution record. Every nanosecond between a transaction's start
/// and its commit acknowledgement lands in exactly one component, so
/// the components sum to the commit latency (the instrumentation sites
/// in `ClusterSim` maintain that invariant; the cohort engine's
/// sampled walks carry the same decomposition per weighted walk).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Blame {
    /// Time queued behind other requests at CPU and append stations
    /// (sojourn minus service).
    pub queue_wait: Nanos,
    /// Productive service time: CPU request processing, page fetch
    /// service, storage append service.
    pub service: Nanos,
    /// Base network time: intra/cross-region hops, storage round trips,
    /// group-commit batching wait.
    pub network: Nanos,
    /// The migration-overlay surcharge on network hops (warm-up
    /// interference windows) — separated from `network` so overlay
    /// pressure is visible in the tail.
    pub network_overlay: Nanos,
    /// Time lost to migration-induced aborts: NO_WAIT conflicts against
    /// migration locks and the misroute window after an ownership move.
    pub migration_stall: Nanos,
    /// Queue wait accrued while a scale-out was ordered but its nodes
    /// had not yet joined (the provisioning lead): backlog the policy
    /// already paid for but capacity hasn't absorbed.
    pub provision_lead: Nanos,
    /// Client-side exponential backoff between abort and retry.
    pub retry_backoff: Nanos,
}

impl Blame {
    /// Sum of all components (equals the commit latency for a committed
    /// transaction's accumulated blame).
    #[must_use]
    pub fn total(&self) -> Nanos {
        self.queue_wait
            .saturating_add(self.service)
            .saturating_add(self.network)
            .saturating_add(self.network_overlay)
            .saturating_add(self.migration_stall)
            .saturating_add(self.provision_lead)
            .saturating_add(self.retry_backoff)
    }

    /// Accumulate another record, component-wise and saturating.
    pub fn add(&mut self, other: &Blame) {
        self.add_weighted(other, 1);
    }

    /// Accumulate `weight` copies of another record (the cohort
    /// engine's bulk path), component-wise and saturating.
    pub fn add_weighted(&mut self, other: &Blame, weight: u64) {
        self.queue_wait = self
            .queue_wait
            .saturating_add(other.queue_wait.saturating_mul(weight));
        self.service = self
            .service
            .saturating_add(other.service.saturating_mul(weight));
        self.network = self
            .network
            .saturating_add(other.network.saturating_mul(weight));
        self.network_overlay = self
            .network_overlay
            .saturating_add(other.network_overlay.saturating_mul(weight));
        self.migration_stall = self
            .migration_stall
            .saturating_add(other.migration_stall.saturating_mul(weight));
        self.provision_lead = self
            .provision_lead
            .saturating_add(other.provision_lead.saturating_mul(weight));
        self.retry_backoff = self
            .retry_backoff
            .saturating_add(other.retry_backoff.saturating_mul(weight));
    }
}

/// One of the run's slowest commits, with its blame breakdown — the
/// "why did p99 breach at tick T" record carried in the report JSON.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TailExemplar {
    /// Commit time (virtual ns).
    pub at: Nanos,
    /// Commit latency (virtual ns).
    pub latency: Nanos,
    /// The transaction's anchor granule (its first access).
    pub granule: u64,
    /// The home node that served the transaction.
    pub node: u32,
    /// The client's region.
    pub region: u16,
    /// Commits sharing this timeline (1 on the exact path; the cohort
    /// walk weight on the aggregate path).
    pub weight: u64,
    /// Where the latency went.
    pub blame: Blame,
}

/// Deterministic top-K table of the slowest commits.
///
/// Ordering is total: latency descending, then commit time ascending,
/// then anchor granule ascending — so the table is identical for a
/// fixed (scenario, seed) regardless of offer batching.
#[derive(Clone, Debug)]
pub struct TailExemplars {
    k: usize,
    entries: Vec<TailExemplar>,
}

impl TailExemplars {
    /// The report's exemplar-table size.
    pub const DEFAULT_K: usize = 8;

    /// An empty table keeping the `k` slowest offers.
    #[must_use]
    pub fn new(k: usize) -> Self {
        TailExemplars {
            k,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// Offer a commit; it is kept iff it ranks among the `k` slowest
    /// seen so far.
    pub fn offer(&mut self, e: TailExemplar) {
        if self.k == 0 {
            return;
        }
        let rank = |x: &TailExemplar| {
            (
                core::cmp::Reverse(x.latency),
                x.at,
                x.granule,
                x.node,
                x.region,
            )
        };
        let pos = self.entries.partition_point(|have| rank(have) <= rank(&e));
        if pos >= self.k {
            return;
        }
        self.entries.insert(pos, e);
        self.entries.truncate(self.k);
    }

    /// The kept exemplars, slowest first.
    #[must_use]
    pub fn entries(&self) -> &[TailExemplar] {
        &self.entries
    }
}

impl Default for TailExemplars {
    fn default() -> Self {
        TailExemplars::new(Self::DEFAULT_K)
    }
}

/// All instruments for one simulated run.
#[derive(Debug)]
pub struct RunMetrics {
    /// Committed user transactions per time bucket (Figures 9, 11, 14c).
    pub user_commits: RateSeries,
    /// User aborts (NO_WAIT conflicts, misroutes, commit conflicts) per
    /// bucket (abort-ratio panels).
    pub user_aborts: RateSeries,
    /// Committed user transaction latency (Figure 14d).
    pub user_latency: Histogram,
    /// Latency of committed transactions bucketed over time (for the
    /// real-time latency panel).
    pub latency_over_time: TimeSeries,
    /// Migration transaction completions per bucket (Figures 8, 14a).
    pub migrations: RateSeries,
    /// Migration transaction latency (Figure 10a).
    pub migration_latency: Histogram,
    /// Migration aborts/retries (contention with user transactions).
    pub migration_retries: u64,
    /// Membership updates committed (Figure 15).
    pub membership_commits: u64,
    /// Membership update CAS retries (the OCC contention signal).
    pub membership_retries: u64,
    /// Live node count over time (cost accounting, Figure 14b).
    pub node_count: TimeSeries,
    /// First and last migration completion (reconfiguration window).
    pub migration_window: Option<(Nanos, Nanos)>,
    /// Coordination-op counters: what the scalar Meta Cost is made of
    /// (Append@LSN CAS traffic for Marlin, service writes/reads for the
    /// ZK/FDB baselines, route-watch notifications for all).
    pub coord: CoordOps,
    /// Cumulative commit-latency blame across all committed user
    /// transactions (each commit's decomposition summed, weighted by
    /// cohort walk weight on the aggregate path).
    pub blame: Blame,
}

impl RunMetrics {
    /// Fresh instruments with one-second buckets.
    #[must_use]
    pub fn new() -> Self {
        RunMetrics::with_bucket(SECOND)
    }

    /// Fresh instruments with a custom bucket width.
    #[must_use]
    pub fn with_bucket(bucket: Nanos) -> Self {
        RunMetrics {
            user_commits: RateSeries::new(bucket),
            user_aborts: RateSeries::new(bucket),
            user_latency: Histogram::new(),
            latency_over_time: TimeSeries::new(),
            migrations: RateSeries::new(bucket),
            migration_latency: Histogram::new(),
            migration_retries: 0,
            membership_commits: 0,
            membership_retries: 0,
            node_count: TimeSeries::new(),
            migration_window: None,
            coord: CoordOps::default(),
            blame: Blame::default(),
        }
    }

    /// Accumulate a committed transaction's blame decomposition,
    /// weighted (the cohort engine's bulk path passes the walk weight).
    pub fn blame_n(&mut self, blame: &Blame, n: u64) {
        self.blame.add_weighted(blame, n);
    }

    /// Record a committed user transaction.
    pub fn commit(&mut self, at: Nanos, latency: Nanos) {
        self.commit_n(at, latency, 1);
    }

    /// Record `n` committed user transactions sharing one timeline.
    ///
    /// Exactly `n` repetitions of [`RunMetrics::commit`] — the cohort
    /// engine's bulk path for a batch of clients advanced as one flow.
    pub fn commit_n(&mut self, at: Nanos, latency: Nanos, n: u64) {
        self.user_commits.record_n(at, n);
        self.user_latency.record_n(latency, n);
    }

    /// Record a user abort.
    pub fn abort(&mut self, at: Nanos) {
        self.abort_n(at, 1);
    }

    /// Record `n` user aborts at one instant (cohort bulk path).
    pub fn abort_n(&mut self, at: Nanos, n: u64) {
        self.user_aborts.record_n(at, n);
    }

    /// Record a completed migration.
    pub fn migration(&mut self, at: Nanos, latency: Nanos) {
        self.migrations.record(at);
        self.migration_latency.record(latency);
        self.migration_window = Some(match self.migration_window {
            None => (at, at),
            Some((first, last)) => (first.min(at), last.max(at)),
        });
    }

    /// Duration of the reconfiguration (first to last migration commit).
    #[must_use]
    pub fn migration_duration(&self) -> Nanos {
        match self.migration_window {
            Some((first, last)) => last - first,
            None => 0,
        }
    }

    /// Total committed user transactions.
    #[must_use]
    pub fn total_commits(&self) -> u64 {
        self.user_commits.total()
    }

    /// Abort ratio over the whole run.
    #[must_use]
    pub fn abort_ratio(&self) -> f64 {
        let commits = self.user_commits.total();
        let aborts = self.user_aborts.total();
        if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (commits + aborts) as f64
        }
    }

    /// Abort ratio within one time bucket.
    #[must_use]
    pub fn abort_ratio_at(&self, t: Nanos) -> f64 {
        let c = self.user_commits.rate_at(t);
        let a = self.user_aborts.rate_at(t);
        if c + a == 0.0 {
            0.0
        } else {
            a / (c + a)
        }
    }

    /// Migration latency summary.
    #[must_use]
    pub fn migration_summary(&self) -> Summary {
        self.migration_latency.summary()
    }

    /// Mean migration throughput over the reconfiguration window
    /// (migrations per second).
    #[must_use]
    pub fn migration_throughput(&self) -> f64 {
        let total = self.migrations.total();
        let dur = self.migration_duration();
        if dur == 0 {
            0.0
        } else {
            total as f64 / (dur as f64 / SECOND as f64)
        }
    }
}

impl Default for RunMetrics {
    fn default() -> Self {
        RunMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_abort_accounting() {
        let mut m = RunMetrics::new();
        m.commit(SECOND, 10 * 1_000_000);
        m.commit(SECOND + 1, 20 * 1_000_000);
        m.abort(SECOND + 2);
        assert_eq!(m.total_commits(), 2);
        assert!((m.abort_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.abort_ratio_at(SECOND) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.abort_ratio_at(10 * SECOND), 0.0);
    }

    #[test]
    fn bulk_commit_equals_repeated_commit() {
        let mut a = RunMetrics::new();
        let mut b = RunMetrics::new();
        for _ in 0..7 {
            a.commit(SECOND, 10 * 1_000_000);
        }
        for _ in 0..3 {
            a.abort(SECOND + 1);
        }
        b.commit_n(SECOND, 10 * 1_000_000, 7);
        b.abort_n(SECOND + 1, 3);
        assert_eq!(a.total_commits(), b.total_commits());
        assert_eq!(a.user_latency.count(), b.user_latency.count());
        assert!((a.user_latency.mean() - b.user_latency.mean()).abs() < 1e-9);
        assert!((a.abort_ratio() - b.abort_ratio()).abs() < 1e-12);
    }

    #[test]
    fn blame_components_sum_and_accumulate() {
        let b = Blame {
            queue_wait: 10,
            service: 20,
            network: 30,
            network_overlay: 5,
            migration_stall: 7,
            provision_lead: 3,
            retry_backoff: 25,
        };
        assert_eq!(b.total(), 100);
        let mut acc = Blame::default();
        acc.add(&b);
        acc.add_weighted(&b, 3);
        assert_eq!(acc.total(), 400);
        assert_eq!(acc.queue_wait, 40);
        let mut m = RunMetrics::new();
        m.blame_n(&b, 2);
        assert_eq!(m.blame.total(), 200);
    }

    #[test]
    fn exemplar_table_keeps_the_k_slowest_in_total_order() {
        let mk = |latency: Nanos, at: Nanos, granule: u64| TailExemplar {
            at,
            latency,
            granule,
            node: 0,
            region: 0,
            weight: 1,
            blame: Blame::default(),
        };
        let mut t = TailExemplars::new(3);
        for &(l, at, g) in &[
            (50, 9, 1),
            (90, 5, 2),
            (10, 1, 3),
            (90, 2, 4),
            (70, 3, 5),
            (90, 2, 1),
        ] {
            t.offer(mk(l, at, g));
        }
        let got: Vec<(Nanos, Nanos, u64)> = t
            .entries()
            .iter()
            .map(|e| (e.latency, e.at, e.granule))
            .collect();
        // Latency desc, then at asc, then granule asc.
        assert_eq!(got, vec![(90, 2, 1), (90, 2, 4), (90, 5, 2)]);
        // Offer order must not matter: re-offer in reverse.
        let mut r = TailExemplars::new(3);
        for &(l, at, g) in &[
            (90, 2, 1),
            (70, 3, 5),
            (90, 2, 4),
            (10, 1, 3),
            (90, 5, 2),
            (50, 9, 1),
        ] {
            r.offer(mk(l, at, g));
        }
        assert_eq!(t.entries(), r.entries());
    }

    #[test]
    fn migration_window_tracks_extremes() {
        let mut m = RunMetrics::new();
        assert_eq!(m.migration_duration(), 0);
        m.migration(5 * SECOND, 1_000_000);
        m.migration(2 * SECOND, 1_000_000);
        m.migration(9 * SECOND, 1_000_000);
        assert_eq!(m.migration_window, Some((2 * SECOND, 9 * SECOND)));
        assert_eq!(m.migration_duration(), 7 * SECOND);
        let tput = m.migration_throughput();
        assert!((tput - 3.0 / 7.0).abs() < 1e-9);
    }
}
