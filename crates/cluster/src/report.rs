//! Plain-text rendering of experiment results (the bench mains print the
//! same rows/series the paper's figures plot).

use marlin_sim::{Nanos, RateSeries, TimeSeries, SECOND};

/// Render a rate series as `t_seconds  value` rows, downsampled to at most
/// `max_rows` rows.
#[must_use]
pub fn render_rate_series(name: &str, series: &RateSeries, max_rows: usize) -> String {
    let points: Vec<(f64, f64)> = series.per_second().collect();
    render_points(name, &points, max_rows)
}

/// Render a `(time, value)` series.
#[must_use]
pub fn render_time_series(name: &str, series: &TimeSeries, max_rows: usize) -> String {
    let points: Vec<(f64, f64)> = series
        .points()
        .iter()
        .map(|&(t, v)| (t as f64 / SECOND as f64, v))
        .collect();
    render_points(name, &points, max_rows)
}

fn render_points(name: &str, points: &[(f64, f64)], max_rows: usize) -> String {
    let mut out = format!("# {name}\n");
    let stride = (points.len() / max_rows.max(1)).max(1);
    for (i, (t, v)) in points.iter().enumerate() {
        if i % stride == 0 {
            out.push_str(&format!("{t:8.1}s  {v:12.1}\n"));
        }
    }
    out
}

/// Format a duration in seconds with one decimal.
#[must_use]
pub fn secs(d: Nanos) -> String {
    format!("{:.1}s", d as f64 / SECOND as f64)
}

/// Format a ratio as `x.xx×`.
#[must_use]
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "∞".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

/// A fixed-width table builder for paper-style result tables.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["system", "duration", "cost"]);
        t.row(&["Marlin".into(), "12.0s".into(), "$0.10".into()]);
        t.row(&["S-ZK".into(), "31.5s".into(), "$0.16".into()]);
        let r = t.render();
        assert!(r.contains("Marlin"));
        assert!(r.contains("S-ZK"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(4.4, 2.0), "2.20x");
        assert_eq!(ratio(1.0, 0.0), "∞");
    }

    #[test]
    fn rate_series_rendering_downsamples() {
        let mut s = RateSeries::new(SECOND);
        for i in 0..100 {
            s.record(i * SECOND);
        }
        let text = render_rate_series("tput", &s, 10);
        assert!(text.lines().count() <= 12);
        assert!(text.starts_with("# tput"));
    }
}
