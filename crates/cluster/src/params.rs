//! Calibrated simulator constants.
//!
//! Each constant is tied to the paper's testbed (§6.1.1): compute nodes
//! are Standard D4s v3 (4 vCPU, 16 GB, 2 Gbps) in Azure West US 2; the
//! storage account is standard general-purpose v2 with Append Blobs; the
//! client runs interactive transactions over gRPC. Absolute values are
//! calibrated so the *shapes* of the paper's figures reproduce (who wins,
//! scaling trends, crossover points); EXPERIMENTS.md records the measured
//! ratios next to the paper's.

use marlin_baselines::{FdbProfile, ZkProfile};
use marlin_sim::{Nanos, RegionMatrix, MICROSECOND, MILLISECOND};

/// Which coordination mechanism the cluster uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordKind {
    /// Marlin: coordination through the database's own logs (no service).
    Marlin,
    /// ZooKeeper ensemble on D4s v3 hardware.
    ZkSmall,
    /// ZooKeeper ensemble on D8s v3 hardware.
    ZkLarge,
    /// FoundationDB cluster on D4s v3-comparable hardware.
    Fdb,
}

impl CoordKind {
    /// Display name used in reports (matches the paper's legends).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CoordKind::Marlin => "Marlin",
            CoordKind::ZkSmall => "S-ZK",
            CoordKind::ZkLarge => "L-ZK",
            CoordKind::Fdb => "FDB",
        }
    }

    /// All four systems in the paper's plotting order.
    #[must_use]
    pub fn all() -> [CoordKind; 4] {
        [
            CoordKind::Marlin,
            CoordKind::ZkSmall,
            CoordKind::ZkLarge,
            CoordKind::Fdb,
        ]
    }

    /// The three systems of Figures 8/9/11/14 (no FDB).
    #[must_use]
    pub fn zk_comparison() -> [CoordKind; 3] {
        [CoordKind::Marlin, CoordKind::ZkSmall, CoordKind::ZkLarge]
    }

    /// The baseline profile behind this kind, if external.
    #[must_use]
    pub fn zk_profile(self) -> Option<ZkProfile> {
        match self {
            CoordKind::ZkSmall => Some(ZkProfile::small()),
            CoordKind::ZkLarge => Some(ZkProfile::large()),
            _ => None,
        }
    }

    /// FDB profile, if this kind is FDB.
    #[must_use]
    pub fn fdb_profile(self) -> Option<FdbProfile> {
        matches!(self, CoordKind::Fdb).then(FdbProfile::paper_default)
    }
}

/// Which CPU congestion model each simulated node runs.
///
/// The simulator executes a transaction's whole timeline in one event,
/// so CPU demands reach a node's station out of chronological order.
/// Two models handle that, with different fidelity/cost trade-offs:
///
/// - [`CpuModel::Analytic`] (the default) — the historical EMA station:
///   each request is charged its service time plus an M/M/c-style
///   congestion delay derived from an exponentially-averaged utilization
///   estimate. Fast, smooth, and bit-identical to every decision log
///   produced before this enum existed — but latency is an
///   *approximation*: the congestion factor is clamped below saturation,
///   so p99s under a sustained overload flatten instead of growing with
///   the real backlog.
/// - [`CpuModel::PerRequest`] — a true per-request queueing station:
///   every request books a concrete service slot on a concrete worker
///   (earliest-fit over per-worker reservation calendars), and its
///   latency is the *exact sojourn time* — waiting plus service. Queue
///   build-up appears in p99s immediately and without a ceiling, which
///   is what makes scaling-policy comparisons around latency SLOs
///   credible (the Marlin §6 tail-latency claims, the autoscaler's
///   `p99_ceiling` escape hatch). Costs O(in-flight bookings) per charge
///   instead of O(1).
///
/// Use `Analytic` for cheap sweeps and anywhere historical decision-log
/// parity matters; use `PerRequest` when the experiment's subject is
/// latency under load (tail-latency figures, latency-triggered scaling).
/// See `docs/ARCHITECTURE.md` for the full guidance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CpuModel {
    /// Analytic EMA congestion model (historical behavior, O(1) per
    /// request, approximate latency).
    #[default]
    Analytic,
    /// Per-request queueing station (exact sojourn times, real queue
    /// lengths in observations).
    PerRequest,
}

impl CpuModel {
    /// Stable lowercase name used in reports and JSON artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CpuModel::Analytic => "analytic",
            CpuModel::PerRequest => "per-request",
        }
    }

    /// Both models, in comparison order (the model-comparison preset).
    #[must_use]
    pub fn all() -> [CpuModel; 2] {
        [CpuModel::Analytic, CpuModel::PerRequest]
    }
}

/// How simulated clients are advanced by `ClusterSim`.
///
/// The simulator's historical hot loop schedules one `ClientTxn` event
/// per client per transaction, which is exact but caps throughput at a
/// few hundred thousand clients. The cohort engine replaces that loop
/// with flow-level batching at large scale:
///
/// - [`ClientEngine::Exact`] (the default) — one event per client
///   transaction. Every decision log and report digest produced before
///   this enum existed came from this path; it remains the oracle.
/// - [`ClientEngine::Cohort`] — clients sharing a region are advanced as
///   one cohort. Below [`SimParams::cohort_min_clients`] peak clients
///   the engine is *parity-pinned*: it routes through the literal exact
///   path (same events, same RNG draws), so §6-preset decision logs are
///   bit-identical under either engine. At or above the threshold a
///   flow-level engine takes over: each cohort advances in fixed virtual
///   steps, samples a handful of representative transaction walks with
///   the cohort's own forked [`DetRng`](marlin_sim::DetRng) stream, and
///   offers the remaining aggregate demand to the CPU stations in bulk.
///   Route/ownership changes are picked up by the per-step resampling,
///   so demand redistributes on the next step after any migration.
///
/// Use `Exact` whenever historical parity matters; use `Cohort` for
/// `million_clients`-scale scenarios where per-client events dominate
/// wall time. See `docs/ARCHITECTURE.md` ("Scale engine").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClientEngine {
    /// One event per client transaction (historical behavior, exact).
    #[default]
    Exact,
    /// Flow-level cohort batching above `cohort_min_clients`; the exact
    /// path below it (parity-pinned).
    Cohort,
}

impl ClientEngine {
    /// Stable lowercase name used in reports and repro artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClientEngine::Exact => "exact",
            ClientEngine::Cohort => "cohort",
        }
    }

    /// Both engines, in comparison order (exact first: it is the oracle).
    #[must_use]
    pub fn all() -> [ClientEngine; 2] {
        [ClientEngine::Exact, ClientEngine::Cohort]
    }
}

/// All tunable constants of the simulated testbed.
#[derive(Clone, Debug)]
pub struct SimParams {
    // -- network -----------------------------------------------------------
    /// Intra-region round trip between any two VMs (Azure same-AZ TCP/gRPC
    /// round trip including serialization: ~1.5-3 ms at the message sizes
    /// of interactive OLTP; calibrated 3 ms so 800 closed-loop clients
    /// saturate 8 nodes near the paper's pre-scale-out throughput).
    pub intra_rtt: Nanos,
    /// Round trip to the storage service for one append/page read.
    pub storage_rtt: Nanos,
    /// Cross-region one-way latencies (geo scenarios); single region by
    /// default.
    pub regions: RegionMatrix,

    // -- compute node (Standard D4s v3: 4 vCPU) -----------------------------
    /// Worker threads per node serving requests.
    pub cpu_workers: usize,
    /// How each node's CPU congestion is modeled (see [`CpuModel`]).
    pub cpu_model: CpuModel,
    /// CPU service time per user request (parse, index, lock, buffer).
    pub req_service: Nanos,
    /// CPU service time per migration step at src/dst.
    pub migration_service: Nanos,
    /// Mean extra wait introduced by group commit batching (half the
    /// paper's batch window).
    pub group_commit_wait: Nanos,

    // -- storage service -----------------------------------------------------
    /// Storage-side service time per log append operation (batched group
    /// commits count as one operation).
    pub append_service: Nanos,
    /// GetPage@LSN service time on a cache miss (page store lookup).
    pub get_page_service: Nanos,

    // -- data / cache ----------------------------------------------------------
    /// Cold-granule accesses that miss before the granule is warm when no
    /// proactive warm-up has completed (pages per granule).
    pub cold_misses_per_granule: u32,
    /// Time to warm one migrated granule via the Squall-style scan (64 KB
    /// over a shared 2 Gbps NIC, plus request overhead).
    pub warmup_per_granule: Nanos,

    // -- client behavior ----------------------------------------------------------
    /// Requests per YCSB transaction (paper: 16).
    pub reqs_per_txn: usize,
    /// Exponential backoff floor after an abort.
    pub backoff_base: Nanos,
    /// Backoff cap (paper: 100 ms).
    pub backoff_cap: Nanos,
    /// Delay until a migrated granule's new owner appears in the routing
    /// tier via the periodic ownership broadcast (§4.2). Misrouted
    /// requests in this window abort with a redirect.
    pub route_broadcast_delay: Nanos,

    // -- membership ---------------------------------------------------------------
    /// Cost of refreshing the MTable cache after a SysLog CAS failure
    /// (read the log suffix from storage).
    pub mtable_refresh: Nanos,

    // -- provisioning ------------------------------------------------------------
    /// Wall-clock (virtual) time between an `AddNodes` actuation and the
    /// moment the new nodes join the membership and begin accepting
    /// load: VM allocation, boot, engine start (a D4s v3 lands in tens
    /// of seconds on Azure). Applies to scale-*outs* only — drains act
    /// on nodes that already exist.
    ///
    /// Default 0 (instant capacity, the historical behavior — every
    /// pre-existing decision log stays bit-identical). A non-zero lead
    /// is what makes prediction matter: a reactive policy that scales
    /// on the breach eats the whole lead as queue build-up, while a
    /// [`PredictivePolicy`](marlin_autoscaler::PredictivePolicy) orders
    /// capacity `lead` ahead so it lands as the demand does.
    pub provision_lead_time: Nanos,

    // -- cost (§6.1.5) ---------------------------------------------------------------
    /// Hourly price of one compute node (Standard D4s v3, $0.192/h).
    pub node_hourly: f64,

    // -- scale engine (docs/ARCHITECTURE.md, "Scale engine") ----------------------
    /// How simulated clients are advanced (see [`ClientEngine`]).
    pub client_engine: ClientEngine,
    /// Peak client count at which [`ClientEngine::Cohort`] switches from
    /// the parity-pinned exact path to flow-level batching. Decided once
    /// at construction from the scenario's peak client count. Tests
    /// lower it to force the aggregate path at small scale.
    pub cohort_min_clients: u32,
    /// Track granule heat with a deterministic count-min sketch instead
    /// of the exact per-granule vector. Only engaged when the granule
    /// count is at least [`SimParams::sketch_min_granules`]; below that
    /// the exact vector is used regardless (sketch overhead would exceed
    /// the vector it replaces). Default off: every historical decision
    /// log was produced by the exact counter.
    pub heat_sketch: bool,
    /// Granule count below which `heat_sketch` falls back to the exact
    /// vector.
    pub sketch_min_granules: usize,
    /// Derive windowed p99 latency from a log-bucketed histogram
    /// ([`marlin_telemetry::LatencyHist`]) instead of the exact
    /// per-commit tuple window. Only engaged when the peak client count
    /// is at least [`SimParams::hist_min_clients`]; below that the exact
    /// tuple window is used regardless, so decision logs stay
    /// bit-identical (the same parity discipline as `heat_sketch` and
    /// the cohort engine). Default off: every historical decision log
    /// was produced by the exact tuple derivation.
    pub latency_hist: bool,
    /// Peak client count below which `latency_hist` falls back to the
    /// exact tuple window.
    pub hist_min_clients: u32,

    /// RNG seed for the run.
    pub seed: u64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            intra_rtt: 3 * MILLISECOND,
            storage_rtt: 800 * MICROSECOND,
            // Diagonal = intra_rtt/2 so the coordination-service path sees
            // the same one-way latency as any other intra-region hop.
            regions: RegionMatrix::single(1_500 * MICROSECOND),
            cpu_workers: 4,
            cpu_model: CpuModel::default(),
            req_service: 180 * MICROSECOND,
            migration_service: 60 * MICROSECOND,
            group_commit_wait: 500 * MICROSECOND,
            append_service: 25 * MICROSECOND,
            get_page_service: 150 * MICROSECOND,
            cold_misses_per_granule: 4,
            warmup_per_granule: 400 * MICROSECOND,
            reqs_per_txn: 16,
            backoff_base: MILLISECOND,
            backoff_cap: 100 * MILLISECOND,
            route_broadcast_delay: 200 * MILLISECOND,
            mtable_refresh: 900 * MICROSECOND,
            provision_lead_time: 0,
            node_hourly: 0.192,
            client_engine: ClientEngine::default(),
            cohort_min_clients: 10_000,
            heat_sketch: false,
            sketch_min_granules: 4_096,
            latency_hist: false,
            hist_min_clients: 10_000,
            seed: 42,
        }
    }
}

impl SimParams {
    /// Parameters for the four-region geo deployment of §6.5.
    #[must_use]
    pub fn geo() -> Self {
        SimParams {
            regions: RegionMatrix::paper_geo(),
            ..SimParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(CoordKind::Marlin.name(), "Marlin");
        assert_eq!(CoordKind::ZkSmall.name(), "S-ZK");
        assert_eq!(CoordKind::ZkLarge.name(), "L-ZK");
        assert_eq!(CoordKind::Fdb.name(), "FDB");
    }

    #[test]
    fn profiles_exist_only_for_matching_kinds() {
        assert!(CoordKind::Marlin.zk_profile().is_none());
        assert!(CoordKind::ZkSmall.zk_profile().is_some());
        assert!(CoordKind::ZkLarge.zk_profile().is_some());
        assert!(CoordKind::Fdb.zk_profile().is_none());
        assert!(CoordKind::Fdb.fdb_profile().is_some());
        assert!(CoordKind::ZkSmall.fdb_profile().is_none());
    }

    #[test]
    fn default_params_are_sane() {
        let p = SimParams::default();
        assert!(p.intra_rtt > p.storage_rtt / 4);
        assert!(p.backoff_cap >= p.backoff_base);
        assert_eq!(p.regions.regions(), 1);
        assert_eq!(SimParams::geo().regions.regions(), 4);
        // Instant capacity by default: every historical decision log was
        // produced without a provisioning delay, and the parity suites
        // pin those logs bit-for-bit.
        assert_eq!(p.provision_lead_time, 0);
    }

    #[test]
    fn client_engine_defaults_to_exact_for_decision_log_parity() {
        // The default must stay `Exact` with the sketch off: every
        // historical decision log and fuzz digest was produced by the
        // per-client event loop over the exact heat vector.
        let p = SimParams::default();
        assert_eq!(p.client_engine, ClientEngine::Exact);
        assert!(!p.heat_sketch);
        assert_eq!(ClientEngine::Exact.name(), "exact");
        assert_eq!(ClientEngine::Cohort.name(), "cohort");
        assert_eq!(
            ClientEngine::all(),
            [ClientEngine::Exact, ClientEngine::Cohort]
        );
        // The activation threshold must sit above every §6 preset's peak
        // client count (max 2 000) so `Cohort` stays parity-pinned there.
        assert!(p.cohort_min_clients > 2_000);
        // Same discipline for the latency histogram: off by default, and
        // its threshold above every §6 preset's peak client count.
        assert!(!p.latency_hist);
        assert!(p.hist_min_clients > 2_000);
    }

    #[test]
    fn cpu_model_defaults_to_analytic_for_decision_log_parity() {
        // The default must stay `Analytic`: every historical decision log
        // (and the runner-parity pins) was produced by the EMA station.
        assert_eq!(SimParams::default().cpu_model, CpuModel::Analytic);
        assert_eq!(CpuModel::Analytic.name(), "analytic");
        assert_eq!(CpuModel::PerRequest.name(), "per-request");
        assert_eq!(CpuModel::all(), [CpuModel::Analytic, CpuModel::PerRequest]);
    }
}
