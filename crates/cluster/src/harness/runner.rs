//! The [`Runner`] trait: the one surface every execution backend exposes
//! to the generic experiment driver.
//!
//! A runner owns a cluster-under-test and a clock. The driver never
//! touches backend-specific machinery — it advances time, observes,
//! actuates controller decisions, and injects faults through this trait
//! alone, which is what lets the same [`Scenario`](crate::harness::Scenario)
//! execute unchanged on the synchronous `LocalCluster` (real
//! reconfiguration transactions, invariants checked after every step) and
//! on the discrete-event `ClusterSim` (queueing, cold caches, migration
//! contention).

use crate::metrics::{Blame, TailExemplar};
use marlin_autoscaler::{Observation, ScaleAction};
use marlin_common::{NodeId, RegionId};
use marlin_sim::{Nanos, Summary};
use marlin_telemetry::{CoordBreakdown, MetricsSeries, ProfileSummary};

/// A fault the driver can inject mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The node dies abruptly. `LocalCluster` runs the full §4.4.2
    /// recovery (kill → `RecoveryMigrTxn` onto the dead node's GLog →
    /// `DeleteNodeTxn`); the simulator models the recovery storm as an
    /// immediate drain of the victim onto the survivors.
    Crash(NodeId),
    /// Every network hop touching `region` (including intra-region hops)
    /// takes `extra` additional one-way latency until the absolute
    /// virtual time `until`. Models a degraded AZ or an overloaded
    /// inter-region link. Only the simulator has a network model; the
    /// synchronous runtime records the fault as a traced no-op.
    RegionLatencySpike {
        /// The degraded region.
        region: RegionId,
        /// Extra one-way latency per hop, ns.
        extra: Nanos,
        /// Absolute virtual time the degradation heals.
        until: Nanos,
    },
    /// Cross-region traffic to/from `region` is effectively severed
    /// until the absolute virtual time `until`: such hops take a
    /// multi-second penalty so in-flight coordination stalls but the
    /// simulation keeps making progress. Intra-region traffic is
    /// unaffected. A traced no-op on the synchronous runtime.
    RegionPartition {
        /// The partitioned region.
        region: RegionId,
        /// Absolute virtual time the partition heals.
        until: Nanos,
    },
    /// The next provisioning order (scale-out) takes `extra` additional
    /// lead time before its nodes come up — a one-shot "the cloud
    /// control plane is slow today" jitter. A traced no-op on the
    /// synchronous runtime, which provisions instantly.
    ProvisionLeadJitter {
        /// Extra lead time added to the next scale-out, ns.
        extra: Nanos,
    },
}

/// One region's slice of the end-of-run totals: where the nodes ended
/// up, how much work the region's clients committed, and what the
/// region's share of the compute bill was (§6.5's per-region split).
#[derive(Clone, Debug, PartialEq)]
pub struct RegionBreakdown {
    /// The region.
    pub region: u16,
    /// Live members placed in the region at the end of the run.
    pub live_nodes: u32,
    /// Their node ids (the placement report).
    pub nodes: Vec<u32>,
    /// Committed user transactions attributed to the region's clients
    /// (0 where the runner has no load generator).
    pub commits: u64,
    /// Region share of DB Cost, $.
    pub db_cost: f64,
}

/// End-of-run totals every runner can produce.
///
/// Counters a runner cannot measure are zero (e.g. the synchronous
/// runtime has no load generator, so its commit counters stay at zero
/// while its migration and cost accounting are real).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Live member count at the end of the run.
    pub live_nodes: u32,
    /// Committed user transactions.
    pub commits: u64,
    /// Aborts over (commits + aborts).
    pub abort_ratio: f64,
    /// Mean committed-transaction latency, ns.
    pub mean_latency: f64,
    /// p99 committed-transaction latency.
    pub p99_latency: Nanos,
    /// Completed granule migrations.
    pub migrations: u64,
    /// First-to-last migration commit (the paper's migration duration).
    pub migration_duration: Nanos,
    /// Migrations per second over that window.
    pub migration_throughput: f64,
    /// MigrationTxn latency stats (Figure 10a).
    pub migration_latency: Summary,
    /// Committed membership updates (Figure 15).
    pub membership_commits: u64,
    /// Membership CAS retries (the OCC contention signal).
    pub membership_retries: u64,
    /// Mean membership-update latency, ns.
    pub membership_mean_latency: f64,
    /// Compute spend, $ (§6.1.5 DB Cost).
    pub db_cost: f64,
    /// Coordination-service spend, $ (§6.1.5 Meta Cost; 0 for Marlin).
    pub meta_cost: f64,
    /// What the Meta Cost scalar is made of: per-subsystem coordination-op
    /// counts with the dollars attributed across them (sums back to
    /// `meta_cost`; all-zero dollars for Marlin).
    pub coordination: CoordBreakdown,
    /// DB + Meta.
    pub total_cost: f64,
    /// Cost per million committed user transactions.
    pub cost_per_mtxn: f64,
    /// Live node count over time (exact, from the runner's own series).
    pub node_count: Vec<(Nanos, f64)>,
    /// Per-region node/throughput/cost split (one entry per region the
    /// runner placed nodes in; a single entry for region 0 otherwise).
    pub region_breakdown: Vec<RegionBreakdown>,
    /// Cumulative commit-latency attribution across every committed user
    /// transaction: where the run's latency went, component by component
    /// (all-zero where the runner has no load generator).
    pub blame: Blame,
    /// The run's slowest commits with their blame breakdowns, slowest
    /// first (empty where the runner has no load generator).
    pub tail_exemplars: Vec<TailExemplar>,
}

impl MetricsSnapshot {
    /// The breakdown entry for `region`, if any.
    #[must_use]
    pub fn region(&self, region: u16) -> Option<&RegionBreakdown> {
        self.region_breakdown.iter().find(|r| r.region == region)
    }

    /// Peak live node count over the run.
    #[must_use]
    pub fn peak_nodes(&self) -> u32 {
        self.node_count
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max) as u32
    }

    /// When the node count first returned to `base` after `after` — the
    /// scale-in release lag the paper reports (12 s for Marlin vs
    /// 45 s/32 s for S-ZK/L-ZK in §6.6).
    #[must_use]
    pub fn release_lag(&self, base: u32, after: Nanos) -> Option<Nanos> {
        self.node_count
            .iter()
            .find(|&&(t, v)| t >= after && v <= f64::from(base))
            .map(|&(t, _)| t - after)
    }
}

/// Observability numbers a runner attaches to its report when telemetry
/// was on for the run. `None` (and an omitted JSON key) otherwise, so
/// telemetry-off reports stay bit-identical to historical ones — the
/// profiler's wall-clock numbers measure the host, not the model, and
/// must never leak into the deterministic surface by default.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySection {
    /// Trace events currently buffered (post ring-overwrite).
    pub trace_events: usize,
    /// Events the ring buffer overwrote (0 unless the run outgrew it).
    pub trace_dropped: u64,
    /// Wall-time self-profile (all zero when only tracing was on).
    pub profile: ProfileSummary,
    /// Virtual nanoseconds the run covered.
    pub virtual_nanos: Nanos,
}

impl TelemetrySection {
    /// Virtual seconds simulated per wall second — the sim's speedup
    /// factor (0 when no wall time was recorded).
    #[must_use]
    pub fn virtual_per_wall(&self) -> f64 {
        if self.profile.total_wall_nanos == 0 {
            0.0
        } else {
            self.virtual_nanos as f64 / self.profile.total_wall_nanos as f64
        }
    }
}

/// One execution backend for [`run`](crate::harness::run).
pub trait Runner {
    /// Short name for reports ("cluster-sim", "local-cluster").
    fn name(&self) -> &'static str;

    /// Current virtual (or logical) time.
    fn now(&self) -> Nanos;

    /// Advance the clock by `dt`, processing everything scheduled within.
    fn advance(&mut self, dt: Nanos);

    /// Snapshot cluster health over the trailing `window`.
    fn observe(&mut self, window: Nanos) -> Observation;

    /// Apply one scale action at the current time.
    fn actuate(&mut self, action: &ScaleAction);

    /// Inject a fault at the current time.
    fn inject(&mut self, fault: &Fault);

    /// Final bookkeeping once the horizon is reached (cost settlement).
    fn finish(&mut self);

    /// End-of-run totals.
    fn metrics(&self) -> MetricsSnapshot;

    /// Append this backend's vitals to the current tick row of the run's
    /// metrics recorder. The driver opens the row (one per control tick,
    /// after `observe`) and appends its own SLO series afterwards; the
    /// default emits nothing. Implementations must emit a deterministic
    /// point set — static names, fixed order, values derived only from
    /// virtual-time state — so the exported timeline is byte-identical
    /// for a fixed (Scenario, seed).
    fn metrics_tick(&mut self, _at: Nanos, _series: &mut MetricsSeries) {}

    /// Telemetry numbers for the report, when tracing/profiling was on
    /// for the run (`None` otherwise — the JSON key is then omitted).
    fn telemetry(&self) -> Option<TelemetrySection> {
        None
    }

    /// The run's Chrome trace-event JSON, when tracing was on (the
    /// driver writes it to the `MARLIN_TRACE` path after `finish`).
    fn trace_json(&self) -> Option<String> {
        None
    }
}
