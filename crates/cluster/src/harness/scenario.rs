//! The declarative [`Scenario`]: everything one experiment run needs, in
//! one value.
//!
//! A scenario names a workload, a client-count trace, a coordination
//! backend, an optional scaling policy (closed-loop runs) or a scripted
//! action schedule (the paper's fixed-timestamp reconfigurations), faults
//! to inject, and the control/observation cadence. The same value drives
//! either runner through [`run`](crate::harness::run); every figure of
//! §6 is one preset constructor below instead of a bespoke driver file.

use crate::harness::runner::Fault;
use crate::params::{ClientEngine, CoordKind, CpuModel, SimParams};
use crate::sim::Workload;
use marlin_autoscaler::{
    LinearTrendForecaster, PredictiveConfig, PredictivePolicy, ReactiveConfig, ReactivePolicy,
    RebalanceConfig, RegionalPolicy, ScaleAction, ScalingPolicy,
};
use marlin_common::{NodeId, RegionId};
use marlin_sim::{Nanos, RegionMatrix, SECOND};
use marlin_workload::LoadTrace;

/// Default node-capacity units one closed-loop client offers (calibrated
/// against the simulator: ~160 clients saturate two 4-vCPU nodes). The
/// synchronous runtime uses it to synthesize load from the client trace.
pub const OFFERED_PER_CLIENT: f64 = 0.012;

/// A declarative experiment: workload, backend, policy/script, faults,
/// and cadence. Built with the fluent methods, executed by
/// [`run`](crate::harness::run).
pub struct Scenario {
    /// Name for reports and JSON artifacts.
    pub name: String,
    /// Coordination backend under test.
    pub backend: CoordKind,
    /// The client workload.
    pub workload: Workload,
    /// Exogenous demand in active clients over time.
    pub trace: LoadTrace,
    /// Per-region demand for geo scenarios: one trace per region (region
    /// `r`'s clients only touch data homed in region `r`, §6.5). Empty =
    /// single demand signal (`trace`) spread over all regions. When
    /// non-empty, its length must equal `params.regions.regions()` and
    /// `trace` is ignored by the runners.
    pub region_traces: Vec<LoadTrace>,
    /// Nodes at t=0.
    pub initial_nodes: u32,
    /// How often the driver observes (and the controller decides).
    pub control_interval: Nanos,
    /// Trailing window each observation summarizes.
    pub observe_window: Nanos,
    /// End of simulated time.
    pub horizon: Nanos,
    /// Migration worker threads per new/drained node.
    pub threads_per_node: u32,
    /// Node-capacity units one client offers (synchronous runtime only).
    pub offered_per_client: f64,
    /// Simulator constants (including the seed; both runners are
    /// deterministic functions of the scenario).
    pub params: SimParams,
    /// The scaling policy, if this is a closed-loop run.
    pub policy: Option<Box<dyn ScalingPolicy>>,
    /// Hot-granule rebalancing on steady-state ticks.
    pub planner: Option<RebalanceConfig>,
    /// Scripted scale actions at fixed times (the paper's §6.2–§6.6
    /// fixed-timestamp reconfigurations).
    pub script: Vec<(Nanos, ScaleAction)>,
    /// Faults to inject at fixed times.
    pub faults: Vec<(Nanos, Fault)>,
    /// Membership stress (Figure 15): `(members, period)` — virtual nodes
    /// each committing one membership update per period.
    pub membership_stress: Option<(u32, Nanos)>,
}

impl Scenario {
    /// A blank scenario: Marlin backend, 1000-granule uniform YCSB, no
    /// clients, two nodes, 1 s control interval over a 30 s horizon.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            backend: CoordKind::Marlin,
            workload: Workload::ycsb(1_000),
            trace: LoadTrace::constant(0),
            region_traces: Vec::new(),
            initial_nodes: 2,
            control_interval: SECOND,
            observe_window: 2 * SECOND,
            horizon: 30 * SECOND,
            threads_per_node: 4,
            offered_per_client: OFFERED_PER_CLIENT,
            params: SimParams::default(),
            policy: None,
            planner: None,
            script: Vec::new(),
            faults: Vec::new(),
            membership_stress: None,
        }
    }

    // -- builder knobs ------------------------------------------------------

    /// Set the coordination backend.
    #[must_use]
    pub fn backend(mut self, kind: CoordKind) -> Self {
        self.backend = kind;
        self
    }

    /// Set the client workload.
    #[must_use]
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Set the client-count trace.
    #[must_use]
    pub fn trace(mut self, trace: LoadTrace) -> Self {
        self.trace = trace;
        self
    }

    /// Set one client-count trace per region (geo scenarios; the vector
    /// length must match the region count of `params.regions`).
    #[must_use]
    pub fn region_traces(mut self, traces: Vec<LoadTrace>) -> Self {
        self.region_traces = traces;
        self
    }

    /// Set the initial node count.
    #[must_use]
    pub fn initial_nodes(mut self, nodes: u32) -> Self {
        self.initial_nodes = nodes;
        self
    }

    /// Install a scaling policy (turns the run closed-loop).
    #[must_use]
    pub fn policy(mut self, policy: Box<dyn ScalingPolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Enable the hot-granule rebalance planner on steady-state ticks.
    #[must_use]
    pub fn planner(mut self, cfg: RebalanceConfig) -> Self {
        self.planner = Some(cfg);
        self
    }

    /// Script one scale action at a fixed time.
    ///
    /// The script is kept sorted by time as it is built (stable: actions
    /// scheduled for the same instant keep their call order), so an
    /// out-of-order `.action()` chain cannot make the driver's timeline
    /// regress — a regressing milestone would silently fire late at
    /// "now" through the driver's saturating clock advance.
    #[must_use]
    pub fn action(mut self, at: Nanos, action: ScaleAction) -> Self {
        let pos = self.script.partition_point(|&(t, _)| t <= at);
        self.script.insert(pos, (at, action));
        self
    }

    /// Set the faults to inject.
    #[must_use]
    pub fn faults(mut self, faults: Vec<(Nanos, Fault)>) -> Self {
        self.faults = faults;
        self
    }

    /// Set the horizon.
    #[must_use]
    pub fn duration(mut self, horizon: Nanos) -> Self {
        self.horizon = horizon;
        self
    }

    /// Set the control interval (must be positive).
    #[must_use]
    pub fn control_interval(mut self, interval: Nanos) -> Self {
        assert!(interval > 0, "control interval must be positive");
        self.control_interval = interval;
        self
    }

    /// Set the observation window.
    #[must_use]
    pub fn observe_window(mut self, window: Nanos) -> Self {
        self.observe_window = window;
        self
    }

    /// Set migration worker threads per new/drained node.
    #[must_use]
    pub fn threads_per_node(mut self, threads: u32) -> Self {
        self.threads_per_node = threads;
        self
    }

    /// Set node-capacity units per client (synchronous runtime).
    #[must_use]
    pub fn offered_per_client(mut self, per: f64) -> Self {
        self.offered_per_client = per;
        self
    }

    /// Replace the simulator constants.
    #[must_use]
    pub fn params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }

    /// Select the CPU congestion model ([`CpuModel::Analytic`] EMA vs
    /// [`CpuModel::PerRequest`] exact queueing). Only the simulator
    /// prices CPU — `LocalRunner` synthesizes observations — but the
    /// choice is recorded in the [`RunReport`](crate::harness::RunReport)
    /// either way so artifacts say which model produced their numbers.
    #[must_use]
    pub fn cpu_model(mut self, model: CpuModel) -> Self {
        self.params.cpu_model = model;
        self
    }

    /// Select the client engine ([`ClientEngine::Exact`] one event per
    /// client vs [`ClientEngine::Cohort`] flow-level batching; simulator
    /// only). The cohort engine activates only at or above
    /// [`SimParams::cohort_min_clients`] — below the threshold a
    /// `Cohort` run takes the exact per-client path and is bit-identical
    /// to `Exact`.
    #[must_use]
    pub fn client_engine(mut self, engine: ClientEngine) -> Self {
        self.params.client_engine = engine;
        self
    }

    /// Override the cohort-activation threshold (parity tests force the
    /// aggregate path at small scale by passing 0).
    #[must_use]
    pub fn cohort_min_clients(mut self, min: u32) -> Self {
        self.params.cohort_min_clients = min;
        self
    }

    /// Toggle the count-min heat sketch (simulator only; granule heat
    /// falls back to exact counters below
    /// [`SimParams::sketch_min_granules`]).
    #[must_use]
    pub fn heat_sketch(mut self, on: bool) -> Self {
        self.params.heat_sketch = on;
        self
    }

    /// Toggle the log-bucketed latency histogram for windowed p99
    /// derivation (simulator only; falls back to the exact tuple window
    /// below [`SimParams::hist_min_clients`] peak clients, so decision
    /// logs stay bit-identical there).
    #[must_use]
    pub fn latency_hist(mut self, on: bool) -> Self {
        self.params.latency_hist = on;
        self
    }

    /// Override the histogram-activation threshold (tests force the
    /// bucketed path at small scale by passing 0).
    #[must_use]
    pub fn hist_min_clients(mut self, min: u32) -> Self {
        self.params.hist_min_clients = min;
        self
    }

    /// Set the deterministic seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.params.seed = seed;
        self
    }

    /// Set the provisioning lead time: how long an `AddNodes` actuation
    /// takes before the new nodes join and accept load (simulator only —
    /// `LocalRunner` actuates synchronously — but recorded in the params
    /// either way). Default 0 = the historical instant capacity.
    #[must_use]
    pub fn provision_lead_time(mut self, lead: Nanos) -> Self {
        self.params.provision_lead_time = lead;
        self
    }

    /// Enable the Figure 15 membership stress: `members` virtual nodes,
    /// one update per `period` each.
    #[must_use]
    pub fn membership_stress(mut self, members: u32, period: Nanos) -> Self {
        self.membership_stress = Some((members, period));
        self
    }

    /// The default reactive controller policy for these bounds, stepping
    /// by the initial node count with a 3-interval cooldown (the closed
    /// -loop presets' configuration).
    #[must_use]
    pub fn reactive_policy(&self, min_nodes: u32, max_nodes: u32) -> Box<dyn ScalingPolicy> {
        Box::new(ReactivePolicy::new(ReactiveConfig {
            step_nodes: self.initial_nodes,
            cooldown: 3 * self.control_interval,
            ..ReactiveConfig::paper_default(min_nodes, max_nodes)
        }))
    }

    /// The region-aware controller: one independent reactive policy per
    /// region of `params.regions`, each sizing its region between
    /// `min_nodes` and `max_nodes` with a `min_nodes` step and a
    /// 3-interval cooldown. Region 0 — where the external coordination
    /// services are pinned (§6.5) — is floored at `min_nodes` so a drain
    /// can never strand the co-located service quorum.
    #[must_use]
    pub fn regional_reactive_policy(
        &self,
        min_nodes: u32,
        max_nodes: u32,
    ) -> Box<dyn ScalingPolicy> {
        let regions = self.params.regions.regions() as u16;
        let cooldown = 3 * self.control_interval;
        Box::new(
            RegionalPolicy::new(regions, |_| {
                Box::new(ReactivePolicy::new(ReactiveConfig {
                    step_nodes: min_nodes.max(1),
                    cooldown,
                    ..ReactiveConfig::paper_default(min_nodes, max_nodes)
                }))
            })
            .with_coordination_floor(RegionId(0), min_nodes),
        )
    }

    /// The SLO ceiling the predictive presets (and their reactive
    /// baselines) arm the p99 escape hatch with — same value as the
    /// CPU-model comparison preset.
    pub const PRESET_P99_CEILING: Nanos = 150 * marlin_sim::MILLISECOND;

    /// The reactive controller policy with the p99 escape hatch armed —
    /// the fair baseline for latency-SLO comparisons (the plain
    /// [`Scenario::reactive_policy`] cannot see a breach at all when
    /// utilization is gated by saturation). Also the fallback the
    /// predictive constructors wrap, so a predictive run degraded by its
    /// error guard behaves exactly like this baseline.
    #[must_use]
    pub fn slo_reactive_policy(
        &self,
        min_nodes: u32,
        max_nodes: u32,
        p99_ceiling: Nanos,
    ) -> Box<dyn ScalingPolicy> {
        Box::new(ReactivePolicy::new(ReactiveConfig {
            step_nodes: min_nodes.max(1),
            cooldown: 3 * self.control_interval,
            p99_ceiling: Some(p99_ceiling),
            ..ReactiveConfig::paper_default(min_nodes, max_nodes)
        }))
    }

    /// The proactive controller policy for these bounds: a linear-trend
    /// forecaster sizing the cluster for demand one provisioning lead
    /// plus one control interval ahead, guarded by rolling-MAPE and
    /// distress fallbacks onto the SLO-armed reactive configuration
    /// ([`Scenario::slo_reactive_policy`]). The lead is read from
    /// `params.provision_lead_time` — set it (and any CPU model) on the
    /// builder *before* asking for the policy: the forecast horizon is
    /// captured at construction, so overriding the lead on a scenario
    /// that already carries a predictive policy leaves that policy
    /// sized for the stale lead (rebuild the policy after the override,
    /// as the `predictive_vs_reactive` bench's lead sweep does).
    #[must_use]
    pub fn predictive_policy(&self, min_nodes: u32, max_nodes: u32) -> Box<dyn ScalingPolicy> {
        let lead = self.params.provision_lead_time + self.control_interval;
        Box::new(PredictivePolicy::new(
            PredictiveConfig {
                cooldown: 3 * self.control_interval,
                ..PredictiveConfig::paper_default(lead, min_nodes, max_nodes)
            },
            Box::new(LinearTrendForecaster::new(5)),
            self.slo_reactive_policy(min_nodes, max_nodes, Self::PRESET_P99_CEILING),
        ))
    }

    /// The region-aware proactive controller: one independent
    /// [`PredictivePolicy`] per region of `params.regions` (each with its
    /// own forecaster over its region's demand signal and its own
    /// reactive fallback), coordination region floored at `min_nodes`
    /// like [`Scenario::regional_reactive_policy`].
    #[must_use]
    pub fn regional_predictive_policy(
        &self,
        min_nodes: u32,
        max_nodes: u32,
    ) -> Box<dyn ScalingPolicy> {
        let regions = self.params.regions.regions() as u16;
        let cooldown = 3 * self.control_interval;
        let lead = self.params.provision_lead_time + self.control_interval;
        Box::new(
            RegionalPolicy::new(regions, |_| {
                Box::new(PredictivePolicy::new(
                    PredictiveConfig {
                        cooldown,
                        ..PredictiveConfig::paper_default(lead, min_nodes, max_nodes)
                    },
                    Box::new(LinearTrendForecaster::new(5)),
                    self.slo_reactive_policy(min_nodes, max_nodes, Self::PRESET_P99_CEILING),
                ))
            })
            .with_coordination_floor(RegionId(0), min_nodes),
        )
    }

    // -- paper presets ------------------------------------------------------

    /// The Figure 8/9 configuration: YCSB, 800 clients, 8→16 nodes at
    /// t=10 s, ~100K granule migrations. `granule_scale` shrinks the
    /// granule count for quick runs (1 = full).
    #[must_use]
    pub fn ycsb_scale_out(kind: CoordKind, granule_scale: u64) -> Self {
        Scenario::new("ycsb-so8-16")
            .backend(kind)
            .workload(Workload::ycsb(200_000 / granule_scale))
            .trace(LoadTrace::constant(800))
            .initial_nodes(8)
            .threads_per_node(7)
            .duration(50 * SECOND)
            .action(10 * SECOND, ScaleAction::add(8))
    }

    /// The Figure 11 configuration: TPC-C, 1600 warehouses per server, 80
    /// migration threads per new node, warehouse-sized (~1 MB) granules.
    #[must_use]
    pub fn tpcc_scale_out(kind: CoordKind, granule_scale: u64) -> Self {
        // Warehouse granules do substantially more per-migration work
        // (locking a whole warehouse, initiating a 1 MB scan), which is
        // what bounds Marlin's TPC-C migration rate in Figure 11.
        let params = SimParams {
            migration_service: 2_000_000, // 2 ms per side
            ..SimParams::default()
        };
        Scenario::new("tpcc-so8-16")
            .backend(kind)
            .workload(Workload::tpcc(12_800 / granule_scale))
            .trace(LoadTrace::constant(800))
            .initial_nodes(8)
            .threads_per_node(80)
            .params(params)
            .duration(30 * SECOND)
            .action(10 * SECOND, ScaleAction::add(8))
    }

    /// One Figure 12 sweep point (SO1-2 / SO2-4 / SO4-8 / SO8-16):
    /// clients, table size, and migration concurrency scale together
    /// (§6.4).
    #[must_use]
    pub fn sweep_point(kind: CoordKind, initial_nodes: u32, granule_scale: u64) -> Self {
        let granules = u64::from(initial_nodes) * 25_000 / granule_scale;
        Scenario::new(format!("so{}-{}", initial_nodes, 2 * initial_nodes))
            .backend(kind)
            .workload(Workload::ycsb(granules))
            .trace(LoadTrace::constant(100 * initial_nodes))
            .initial_nodes(initial_nodes)
            .threads_per_node(7)
            .duration(120 * SECOND)
            .action(5 * SECOND, ScaleAction::add(initial_nodes))
    }

    /// Geo-distributed variant (§6.5): four regions, the external
    /// coordination service pinned in region 0 (US West). The horizon
    /// stretches so baselines paying cross-region round trips per
    /// metadata commit still finish their storms in-window.
    ///
    /// Only the region matrix is replaced: every other `SimParams` knob —
    /// and the seed — set earlier in the builder chain survives (`.geo()`
    /// used to rebuild `params` from scratch, silently discarding any
    /// customization made before it).
    #[must_use]
    pub fn geo(mut self) -> Self {
        self.params.regions = RegionMatrix::paper_geo();
        self.horizon = 400 * SECOND;
        self.threads_per_node = 16;
        self.name.push_str("-geo");
        self
    }

    /// The Figure 14 dynamic workload: 400→800→400 clients with scripted
    /// 8→16→8 scaling at the burst edges (20 s / 80 s).
    #[must_use]
    pub fn dynamic_burst(kind: CoordKind, granule_scale: u64) -> Self {
        Scenario::new("dynamic-burst")
            .backend(kind)
            .workload(Workload::ycsb(200_000 / granule_scale))
            .trace(LoadTrace::paper_burst())
            .initial_nodes(8)
            .threads_per_node(16)
            .duration(120 * SECOND)
            .action(20 * SECOND, ScaleAction::add(8))
            .action(
                80 * SECOND,
                ScaleAction::RemoveNodes {
                    victims: (8..16).map(NodeId).collect(),
                },
            )
    }

    /// The Figure 15 MTable stress: `members` virtual nodes, one
    /// membership update per `period` each, no user workload.
    #[must_use]
    pub fn membership(kind: CoordKind, members: u32, period: Nanos, horizon: Nanos) -> Self {
        Scenario::new(format!("membership-{members}"))
            .backend(kind)
            .workload(Workload::ycsb(16))
            .initial_nodes(1)
            .duration(horizon)
            .membership_stress(members, period)
    }

    /// The §6.6 burst at paper scale driven closed-loop: 400→800→400
    /// clients, the cluster free to move between 8 and 16 nodes under the
    /// reactive policy.
    #[must_use]
    pub fn autoscale_spike(kind: CoordKind, granule_scale: u64) -> Self {
        let s = Scenario::new("autoscale-spike")
            .backend(kind)
            .workload(Workload::ycsb(200_000 / granule_scale))
            .trace(LoadTrace::paper_burst())
            .initial_nodes(8)
            .threads_per_node(16)
            .control_interval(2 * SECOND)
            .observe_window(4 * SECOND)
            .duration(120 * SECOND);
        let policy = s.reactive_policy(8, 16);
        s.policy(policy)
    }

    /// A two-cycle diurnal curve between 4 and 12 nodes' worth of demand,
    /// driven closed-loop. The curve is [`LoadTrace::paper_diurnal`] —
    /// the same trace the predictive preset rides, so forecaster claims
    /// are measured against the exact demand the reactive baseline saw.
    #[must_use]
    pub fn autoscale_diurnal(kind: CoordKind, granules: u64) -> Self {
        let trace = LoadTrace::paper_diurnal();
        let horizon = 240 * SECOND;
        let s = Scenario::new("autoscale-diurnal")
            .backend(kind)
            .workload(Workload::ycsb(granules))
            .trace(trace)
            .initial_nodes(4)
            .threads_per_node(8)
            .control_interval(2 * SECOND)
            .observe_window(4 * SECOND)
            .duration(horizon);
        let policy = s.reactive_policy(4, 12);
        s.policy(policy)
    }

    /// The CPU-model comparison: the §6.6 autoscale spike (400→800→400
    /// clients, 8–16 nodes) under one of the two [`CpuModel`]s, with the
    /// reactive policy's p99 escape hatch armed (150 ms ceiling).
    ///
    /// Run it once per [`CpuModel::all`] and diff the decision logs and
    /// p99 series: under `Analytic` the EMA clamp caps per-request delay,
    /// so the spike's tail latency flattens and the escape hatch rarely
    /// fires; under `PerRequest` the same seed and trace produce exact
    /// sojourn times, so p99 tracks the real queue build-up immediately
    /// — the latency-accurate station behavior Marlin's §6 tail-latency
    /// results depend on. `MARLIN_SCALE`-style `granule_scale` shrinks
    /// the table for quick runs (1 = paper scale).
    #[must_use]
    pub fn cpu_model_comparison(kind: CoordKind, granule_scale: u64, model: CpuModel) -> Self {
        // Derive from the §6.6 preset so retuning `autoscale_spike` can
        // never silently break comparability; only the CPU model, the
        // name, and the policy (same bounds, p99 hatch armed) differ.
        let mut s = Scenario::autoscale_spike(kind, granule_scale).cpu_model(model);
        s.name = format!("cpu-model-{}", model.name());
        let policy = Box::new(ReactivePolicy::new(ReactiveConfig {
            step_nodes: s.initial_nodes,
            cooldown: 3 * s.control_interval,
            p99_ceiling: Some(150 * marlin_sim::MILLISECOND),
            ..ReactiveConfig::paper_default(s.initial_nodes, 2 * s.initial_nodes)
        }));
        s.policy(policy)
    }

    /// The §6.5 setup as a *live control loop* instead of a static
    /// latency overlay: four regions with two nodes each, per-region
    /// demand, and the region-aware controller free to size every region
    /// between 2 and 4 nodes. Region 1 (East Asia) spikes to 2× its base
    /// demand while the others idle — the controller must answer with
    /// `AddNodes` into region 1 only, then drain region 1 back with
    /// region-local victims once the spike passes. Region 0 hosts the
    /// external coordination service for baseline backends and is floored
    /// at 2 nodes.
    ///
    /// `granules` is the absolute table size (LocalRunner scenarios pass
    /// tens of granules, simulator scenarios thousands). Spike edges sit
    /// 4 s before a control tick so the simulator's EMA utilization fully
    /// converges before the decisive observation (the same discipline as
    /// the runner-parity scenario).
    #[must_use]
    pub fn geo_autoscale(kind: CoordKind, granules: u64) -> Self {
        let idle = LoadTrace::constant(40);
        let hot = LoadTrace::spike(100, 200, 26 * SECOND, 86 * SECOND);
        let mut s = Scenario::new("geo-autoscale")
            .backend(kind)
            .workload(Workload::ycsb(granules))
            .initial_nodes(8)
            .control_interval(5 * SECOND)
            .observe_window(4 * SECOND)
            .geo()
            .region_traces(vec![idle.clone(), hot, idle.clone(), idle])
            .duration(120 * SECOND)
            .threads_per_node(8);
        s.name = "geo-autoscale".into(); // .geo() suffixes; keep the preset name
        let policy = s.regional_reactive_policy(2, 4);
        s.policy(policy)
    }

    /// The Zipfian-heat rebalance scenario: skewed YCSB access (hot
    /// granules concentrated on the first node's contiguous block), a
    /// hold policy, and the rebalance planner migrating heat off the
    /// loaded node without changing the member count.
    #[must_use]
    pub fn zipfian_rebalance(kind: CoordKind, granules: u64, theta: f64) -> Self {
        Scenario::new("zipfian-rebalance")
            .backend(kind)
            .workload(Workload::ycsb_zipfian(granules, theta))
            .trace(LoadTrace::constant(60))
            .initial_nodes(3)
            .threads_per_node(4)
            .control_interval(2 * SECOND)
            .observe_window(2 * SECOND)
            .duration(40 * SECOND)
            .policy(Box::new(marlin_autoscaler::HoldPolicy))
            .planner(RebalanceConfig::default())
    }

    /// The predictive diurnal run: the exact `autoscale_diurnal` curve
    /// ([`LoadTrace::paper_diurnal`]) with capacity no longer free —
    /// `AddNodes` takes a 10 s provisioning lead — under the per-request
    /// CPU model (p99s track real queue build-up, so an SLO comparison
    /// means something) and the trend-forecasting
    /// [`PredictivePolicy`] sizing for demand one lead ahead.
    ///
    /// For the reactive twin of the same run — the A/B every
    /// predictive claim is measured against — swap only the policy:
    /// `scenario.slo_reactive_policy(4, 12, Scenario::PRESET_P99_CEILING)`
    /// on an otherwise identical builder chain
    /// (`examples/predictive_vs_reactive.rs` does exactly this).
    #[must_use]
    pub fn predictive_diurnal(kind: CoordKind, granules: u64) -> Self {
        let mut s = Scenario::autoscale_diurnal(kind, granules)
            .cpu_model(CpuModel::PerRequest)
            .provision_lead_time(10 * SECOND);
        s.name = "predictive-diurnal".into();
        let policy = s.predictive_policy(4, 12);
        s.policy(policy)
    }

    /// The predictive geo run: the §6.5 four-region deployment with a
    /// *forecastable* regional surge — region 1's demand ramps 100→200
    /// clients over 40 s (a staircase with slope, not a step; cloud
    /// demand grows, it rarely teleports) while the other regions idle —
    /// under a 10 s provisioning lead and the per-region
    /// [`PredictivePolicy`] composition
    /// ([`Scenario::regional_predictive_policy`]). The controller must
    /// order region-1 capacity *while the ramp is still climbing*, so
    /// the nodes land before the region's p99 breaches; calm regions
    /// must see zero adds.
    #[must_use]
    pub fn predictive_geo(kind: CoordKind, granules: u64) -> Self {
        let idle = LoadTrace::constant(40);
        let hot = LoadTrace::ramp(100, 200, 26 * SECOND, 66 * SECOND, 8);
        let mut s = Scenario::new("predictive-geo")
            .backend(kind)
            .workload(Workload::ycsb(granules))
            .initial_nodes(8)
            .control_interval(5 * SECOND)
            .observe_window(4 * SECOND)
            .geo()
            .cpu_model(CpuModel::PerRequest)
            .provision_lead_time(10 * SECOND)
            .region_traces(vec![idle.clone(), hot, idle.clone(), idle])
            .duration(120 * SECOND)
            .threads_per_node(8);
        s.name = "predictive-geo".into(); // .geo() suffixes; keep the preset name
        let policy = s.regional_predictive_policy(2, 4);
        s.policy(policy)
    }

    /// The scale-engine showcase: one million closed-loop clients over a
    /// Zipfian-skewed table, run by the cohort client engine with the
    /// count-min heat sketch and a hold-policy + rebalance-planner loop,
    /// so the full observation surface — weighted throughput and p99,
    /// sketched hot granules — sits on the hot path. `scale` divides the
    /// client and granule counts for quick runs (1 = the full million).
    ///
    /// The same scenario with [`ClientEngine::Exact`] is the oracle the
    /// cohort engine's throughput advantage is measured against
    /// (`benches/million_clients.rs` probes it for a wall-time slice and
    /// reports virtual-seconds-per-wall-second for both engines).
    #[must_use]
    pub fn million_clients(scale: u64) -> Self {
        let scale = scale.max(1);
        Scenario::new("million-clients")
            .workload(Workload::ycsb_zipfian(200_000 / scale, 0.9))
            .trace(LoadTrace::constant((1_000_000 / scale) as u32))
            .initial_nodes(16)
            .threads_per_node(8)
            .control_interval(5 * SECOND)
            .observe_window(4 * SECOND)
            .duration(60 * SECOND)
            .client_engine(ClientEngine::Cohort)
            .heat_sketch(true)
            .latency_hist(true)
            .policy(Box::new(marlin_autoscaler::HoldPolicy))
            .planner(RebalanceConfig::default())
    }

    // -- serialization ------------------------------------------------------

    /// A one-line JSON description of everything the scenario will do:
    /// workload, backend, sizes, trace steps, scripted actions, and
    /// faults. Policies are trait objects and are described by presence
    /// only — a repro file regenerates them from the recorded generation
    /// choices, not from this manifest. Used by the fuzzer to embed a
    /// human-readable summary in repro artifacts.
    #[must_use]
    pub fn manifest_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"name\":\"");
        out.push_str(&self.name);
        out.push_str("\",\"backend\":\"");
        out.push_str(match self.backend {
            CoordKind::Marlin => "marlin",
            CoordKind::ZkSmall => "zk-small",
            CoordKind::ZkLarge => "zk-large",
            CoordKind::Fdb => "fdb",
        });
        out.push_str("\",\"granules\":");
        out.push_str(&self.workload.granule_count().to_string());
        out.push_str(",\"initial_nodes\":");
        out.push_str(&self.initial_nodes.to_string());
        out.push_str(",\"regions\":");
        out.push_str(&self.params.regions.regions().to_string());
        out.push_str(",\"horizon_ms\":");
        out.push_str(&(self.horizon / 1_000_000).to_string());
        out.push_str(",\"control_interval_ms\":");
        out.push_str(&(self.control_interval / 1_000_000).to_string());
        out.push_str(",\"provision_lead_ms\":");
        out.push_str(&(self.params.provision_lead_time / 1_000_000).to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.params.seed.to_string());
        out.push_str(",\"policy\":");
        out.push_str(if self.policy.is_some() {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"trace\":[");
        for (i, &(t, c)) in self.trace.changes().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", t / 1_000_000, c));
        }
        out.push_str("],\"script\":[");
        for (i, (t, a)) in self.script.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let desc = match a {
                ScaleAction::AddNodes { count, region } => match region {
                    Some(r) => format!("add {count} @r{}", r.0),
                    None => format!("add {count}"),
                },
                ScaleAction::RemoveNodes { victims } => format!("remove {}", victims.len()),
                ScaleAction::Rebalance { moves } => format!("rebalance {}", moves.len()),
            };
            out.push_str(&format!("[{},\"{}\"]", t / 1_000_000, desc));
        }
        out.push_str("],\"faults\":[");
        for (i, (t, f)) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let desc = match f {
                Fault::Crash(n) => format!("crash n{}", n.0),
                Fault::RegionLatencySpike {
                    region,
                    extra,
                    until,
                } => format!(
                    "latency_spike r{} +{}ms until {}ms",
                    region.0,
                    extra / 1_000_000,
                    until / 1_000_000
                ),
                Fault::RegionPartition { region, until } => {
                    format!("partition r{} until {}ms", region.0, until / 1_000_000)
                }
                Fault::ProvisionLeadJitter { extra } => {
                    format!("lead_jitter +{}ms", extra / 1_000_000)
                }
            };
            out.push_str(&format!("[{},\"{}\"]", t / 1_000_000, desc));
        }
        out.push_str("]}");
        out
    }
}

/// Membership updates expected over a stress run (bursts fully inside
/// the horizon).
#[must_use]
pub fn expected_membership_updates(members: u32, period: Nanos, horizon: Nanos) -> u64 {
    u64::from(members) * (horizon / period)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_knob() {
        let s = Scenario::new("t")
            .backend(CoordKind::Fdb)
            .workload(Workload::tpcc(10))
            .trace(LoadTrace::constant(5))
            .initial_nodes(3)
            .control_interval(2 * SECOND)
            .observe_window(3 * SECOND)
            .duration(9 * SECOND)
            .threads_per_node(2)
            .seed(7)
            .provision_lead_time(7 * SECOND)
            .action(SECOND, ScaleAction::add(1))
            .faults(vec![(2 * SECOND, Fault::Crash(NodeId(1)))]);
        assert_eq!(s.backend, CoordKind::Fdb);
        assert_eq!(s.initial_nodes, 3);
        assert_eq!(s.params.seed, 7);
        assert_eq!(s.params.provision_lead_time, 7 * SECOND);
        assert_eq!(s.script.len(), 1);
        assert_eq!(s.faults.len(), 1);
        assert_eq!(s.horizon, 9 * SECOND);
    }

    #[test]
    fn presets_match_the_paper_shapes() {
        let so = Scenario::ycsb_scale_out(CoordKind::ZkSmall, 10);
        assert_eq!(so.workload.granule_count(), 20_000);
        assert_eq!(so.script.len(), 1);
        let dynamic = Scenario::dynamic_burst(CoordKind::Marlin, 10);
        assert_eq!(dynamic.script.len(), 2);
        assert_eq!(dynamic.trace.peak(), 800);
        let auto = Scenario::autoscale_spike(CoordKind::Marlin, 10);
        assert!(auto.policy.is_some() && auto.script.is_empty());
        let geo = Scenario::sweep_point(CoordKind::Fdb, 4, 10).geo();
        assert_eq!(geo.params.regions.regions(), 4);
        assert_eq!(geo.horizon, 400 * SECOND);
    }

    #[test]
    fn expected_updates_counts_full_bursts() {
        assert_eq!(expected_membership_updates(8, 15 * SECOND, 50 * SECOND), 24);
    }

    #[test]
    fn geo_merges_params_instead_of_clobbering() {
        // Regression: `.geo()` used to rebuild `params` from
        // `SimParams::geo()` keeping only the seed, silently discarding
        // any customization made earlier in the builder chain.
        let custom = SimParams {
            migration_service: 123_456,
            cpu_workers: 9,
            ..SimParams::default()
        };
        let s = Scenario::new("t").params(custom).seed(7).geo();
        assert_eq!(s.params.regions.regions(), 4, "geo regions installed");
        assert_eq!(s.params.migration_service, 123_456, "customization kept");
        assert_eq!(s.params.cpu_workers, 9, "customization kept");
        assert_eq!(s.params.seed, 7, "seed kept");
        // Builder order must not matter for the surviving knobs.
        let custom = SimParams {
            migration_service: 123_456,
            ..SimParams::default()
        };
        let before = Scenario::new("t").params(custom.clone()).geo();
        let after = Scenario::new("t").geo().params(SimParams {
            regions: marlin_sim::RegionMatrix::paper_geo(),
            ..custom
        });
        assert_eq!(
            before.params.migration_service,
            after.params.migration_service
        );
    }

    #[test]
    fn out_of_order_actions_are_sorted_at_build() {
        // Regression: an out-of-order scripted action used to reach the
        // driver behind the clock and silently fire late at "now".
        let s = Scenario::new("t")
            .action(10 * SECOND, ScaleAction::add(1))
            .action(5 * SECOND, ScaleAction::add(2))
            .action(10 * SECOND, ScaleAction::add(3));
        let times: Vec<Nanos> = s.script.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![5 * SECOND, 10 * SECOND, 10 * SECOND]);
        // Stable for equal timestamps: call order preserved.
        assert_eq!(s.script[1].1, ScaleAction::add(1));
        assert_eq!(s.script[2].1, ScaleAction::add(3));
    }

    #[test]
    fn cpu_model_comparison_presets_differ_only_in_the_model() {
        let analytic = Scenario::cpu_model_comparison(CoordKind::Marlin, 10, CpuModel::Analytic);
        let per_req = Scenario::cpu_model_comparison(CoordKind::Marlin, 10, CpuModel::PerRequest);
        assert_eq!(analytic.name, "cpu-model-analytic");
        assert_eq!(per_req.name, "cpu-model-per-request");
        assert_eq!(analytic.params.cpu_model, CpuModel::Analytic);
        assert_eq!(per_req.params.cpu_model, CpuModel::PerRequest);
        // Everything else matches, so the logs are comparable.
        assert_eq!(analytic.initial_nodes, per_req.initial_nodes);
        assert_eq!(analytic.horizon, per_req.horizon);
        assert_eq!(analytic.params.seed, per_req.params.seed);
        assert_eq!(analytic.trace.peak(), per_req.trace.peak());
        assert!(analytic.policy.is_some() && per_req.policy.is_some());
        // The builder knob reaches params for hand-rolled scenarios too.
        let s = Scenario::new("t").cpu_model(CpuModel::PerRequest);
        assert_eq!(s.params.cpu_model, CpuModel::PerRequest);
    }

    #[test]
    fn predictive_presets_carry_lead_time_and_share_the_reactive_curves() {
        let d = Scenario::predictive_diurnal(CoordKind::Marlin, 2_000);
        assert_eq!(d.name, "predictive-diurnal");
        assert_eq!(d.params.provision_lead_time, 10 * SECOND);
        assert_eq!(d.params.cpu_model, CpuModel::PerRequest);
        assert!(d.policy.is_some() && d.script.is_empty());
        // One source of truth for the curve: the predictive run rides the
        // exact trace the reactive preset rides.
        let reactive = Scenario::autoscale_diurnal(CoordKind::Marlin, 2_000);
        assert_eq!(d.trace, reactive.trace);
        assert_eq!(d.trace, LoadTrace::paper_diurnal());
        assert_eq!(d.horizon, reactive.horizon);
        assert_eq!(d.params.seed, reactive.params.seed);

        let g = Scenario::predictive_geo(CoordKind::Marlin, 1_600);
        assert_eq!(g.name, "predictive-geo");
        assert_eq!(g.params.regions.regions(), 4);
        assert_eq!(g.region_traces.len(), 4);
        assert_eq!(g.params.provision_lead_time, 10 * SECOND);
        assert_eq!(g.region_traces[1].peak(), 200, "region 1 ramps 2x");
        assert_eq!(g.region_traces[0].peak(), 40, "the others idle");
        // The surge is a ramp (forecastable slope), not a step.
        assert!(g.region_traces[1].changes().len() > 3);
    }

    #[test]
    fn burst_presets_share_one_trace_source() {
        // Regression for the preset duplication: dynamic_burst,
        // autoscale_spike, and the model-comparison preset derived from
        // it must ride literally the same curve.
        let burst = LoadTrace::paper_burst();
        assert_eq!(Scenario::dynamic_burst(CoordKind::Marlin, 10).trace, burst);
        assert_eq!(
            Scenario::autoscale_spike(CoordKind::Marlin, 10).trace,
            burst
        );
        assert_eq!(
            Scenario::cpu_model_comparison(CoordKind::Marlin, 10, CpuModel::PerRequest).trace,
            burst
        );
    }

    #[test]
    fn million_clients_preset_pins_the_scale_engine() {
        let s = Scenario::million_clients(1);
        assert_eq!(s.name, "million-clients");
        assert_eq!(s.trace.peak(), 1_000_000);
        assert_eq!(s.workload.granule_count(), 200_000);
        assert_eq!(s.params.client_engine, ClientEngine::Cohort);
        assert!(s.params.heat_sketch);
        assert!(s.params.latency_hist, "p99 comes from the histogram");
        assert!(s.policy.is_some() && s.planner.is_some());
        // Scaled-down runs stay above the cohort threshold, so the
        // engine under test is the one the bench measures.
        let scaled = Scenario::million_clients(10);
        assert_eq!(scaled.trace.peak(), 100_000);
        assert!(scaled.trace.peak() >= scaled.params.cohort_min_clients);
        assert!(scaled.trace.peak() >= scaled.params.hist_min_clients);
        // The builder knobs reach params for hand-rolled scenarios too.
        let s = Scenario::new("t")
            .client_engine(ClientEngine::Cohort)
            .cohort_min_clients(0)
            .heat_sketch(true)
            .latency_hist(true)
            .hist_min_clients(0);
        assert_eq!(s.params.client_engine, ClientEngine::Cohort);
        assert_eq!(s.params.cohort_min_clients, 0);
        assert!(s.params.heat_sketch);
        assert!(s.params.latency_hist);
        assert_eq!(s.params.hist_min_clients, 0);
    }

    #[test]
    fn geo_autoscale_is_region_aware() {
        let s = Scenario::geo_autoscale(CoordKind::Marlin, 1_600);
        assert_eq!(s.name, "geo-autoscale");
        assert_eq!(s.params.regions.regions(), 4);
        assert_eq!(s.region_traces.len(), 4);
        assert_eq!(s.region_traces[1].peak(), 200, "region 1 spikes 2x");
        assert_eq!(s.region_traces[0].peak(), 40, "the others idle");
        assert!(s.policy.is_some() && s.script.is_empty());
    }
}
