//! [`Runner`] over the discrete-event [`ClusterSim`]: the performance
//! runner, where decisions play out against queueing, cold caches, and
//! migration contention in virtual time.

use crate::harness::runner::{Fault, MetricsSnapshot, Runner};
use crate::harness::scenario::Scenario;
use crate::sim::ClusterSim;
use marlin_autoscaler::{Observation, ScaleAction};
use marlin_sim::Nanos;

/// The simulator wrapped as a [`Runner`].
pub struct SimRunner {
    sim: ClusterSim,
    now: Nanos,
    horizon: Nanos,
    threads_per_node: u32,
}

impl SimRunner {
    /// Build the simulated cluster a scenario describes: workload,
    /// backend, initial nodes, client generators provisioned for the
    /// trace's peak, the trace's client-count changes pre-installed, and
    /// the membership stress if the scenario asks for it.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let mut sim = ClusterSim::new(
            scenario.params.clone(),
            scenario.backend,
            &scenario.workload,
            scenario.initial_nodes,
            scenario.trace.peak(),
            scenario.horizon,
        );
        for &(t, clients) in scenario.trace.changes() {
            sim.schedule_client_count(t, clients);
        }
        if let Some((members, period)) = scenario.membership_stress {
            sim.schedule_membership_stress(members, period);
        }
        SimRunner {
            sim,
            now: 0,
            horizon: scenario.horizon,
            threads_per_node: scenario.threads_per_node,
        }
    }

    /// The underlying simulator (for series rendering in bench mains).
    #[must_use]
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }
}

impl Runner for SimRunner {
    fn name(&self) -> &'static str {
        "cluster-sim"
    }

    fn now(&self) -> Nanos {
        self.now
    }

    fn advance(&mut self, dt: Nanos) {
        self.now = (self.now + dt).min(self.horizon);
        self.sim.run_until(self.now);
    }

    fn observe(&mut self, window: Nanos) -> Observation {
        self.sim.observe(self.now, window)
    }

    fn actuate(&mut self, action: &ScaleAction) {
        self.sim
            .apply_action(self.now, action, self.threads_per_node);
    }

    fn inject(&mut self, fault: &Fault) {
        match fault {
            // The recovery storm is modeled as an immediate drain of the
            // victim onto the survivors at migration speed.
            Fault::Crash(node) => {
                let alive = self.sim.live_node_ids();
                if alive.contains(&node.0) && alive.len() > 1 {
                    self.sim
                        .schedule_scale_in(self.now, vec![node.0], self.threads_per_node);
                }
            }
        }
    }

    fn finish(&mut self) {
        self.sim.run_until(self.horizon);
        self.sim.finish();
    }

    fn metrics(&self) -> MetricsSnapshot {
        let m = &self.sim.metrics;
        MetricsSnapshot {
            live_nodes: self.sim.live_nodes(),
            commits: m.total_commits(),
            abort_ratio: m.abort_ratio(),
            mean_latency: m.user_latency.mean(),
            p99_latency: m.user_latency.quantile(0.99),
            migrations: m.migrations.total(),
            migration_duration: m.migration_duration(),
            migration_throughput: m.migration_throughput(),
            migration_latency: m.migration_summary(),
            membership_commits: m.membership_commits,
            membership_retries: m.membership_retries,
            membership_mean_latency: self.sim.membership_mean_latency(),
            db_cost: self.sim.cost.db_cost(),
            meta_cost: self.sim.cost.meta_cost(),
            total_cost: self.sim.cost.total_cost(),
            cost_per_mtxn: self.sim.cost.per_million_txns(m.total_commits()),
            node_count: m.node_count.points().to_vec(),
        }
    }
}
