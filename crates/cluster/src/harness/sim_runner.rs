//! [`Runner`] over the discrete-event [`ClusterSim`]: the performance
//! runner, where decisions play out against queueing, cold caches, and
//! migration contention in virtual time.

use crate::harness::runner::{Fault, MetricsSnapshot, RegionBreakdown, Runner, TelemetrySection};
use crate::harness::scenario::Scenario;
use crate::sim::ClusterSim;
use marlin_autoscaler::{Observation, ScaleAction};
use marlin_sim::Nanos;
use marlin_telemetry::MetricsSeries;
use marlin_workload::LoadTrace;

/// The simulator wrapped as a [`Runner`].
pub struct SimRunner {
    sim: ClusterSim,
    now: Nanos,
    horizon: Nanos,
    threads_per_node: u32,
}

impl SimRunner {
    /// Build the simulated cluster a scenario describes: workload,
    /// backend, initial nodes, client generators provisioned for the
    /// trace's peak, the trace's client-count changes pre-installed, and
    /// the membership stress if the scenario asks for it.
    ///
    /// Geo scenarios with per-region traces provision one client block
    /// per region (clients are interleaved over regions, so every region
    /// can reach the hottest region's peak) and pre-install each region's
    /// client-count changes independently.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let regions = scenario.params.regions.regions() as u32;
        let clients = if scenario.region_traces.is_empty() {
            scenario.trace.peak()
        } else {
            assert_eq!(
                scenario.region_traces.len(),
                regions as usize,
                "one region trace per region"
            );
            let max_peak = scenario
                .region_traces
                .iter()
                .map(LoadTrace::peak)
                .max()
                .unwrap_or(0);
            regions * max_peak
        };
        let mut sim = ClusterSim::new(
            scenario.params.clone(),
            scenario.backend,
            &scenario.workload,
            scenario.initial_nodes,
            clients,
            scenario.horizon,
        );
        if scenario.region_traces.is_empty() {
            for &(t, clients) in scenario.trace.changes() {
                sim.schedule_client_count(t, clients);
            }
        } else {
            for (r, trace) in scenario.region_traces.iter().enumerate() {
                sim.set_region_clients_now(r as u16, trace.clients_at(0));
                for &(t, count) in trace.changes() {
                    if t > 0 {
                        sim.schedule_region_client_count(t, r as u16, count);
                    }
                }
            }
        }
        if let Some((members, period)) = scenario.membership_stress {
            sim.schedule_membership_stress(members, period);
        }
        SimRunner {
            sim,
            now: 0,
            horizon: scenario.horizon,
            threads_per_node: scenario.threads_per_node,
        }
    }

    /// The underlying simulator (for series rendering in bench mains).
    #[must_use]
    pub fn sim(&self) -> &ClusterSim {
        &self.sim
    }

    /// Mutable access to the simulator (tests enable telemetry through
    /// this instead of mutating process-wide environment variables).
    pub fn sim_mut(&mut self) -> &mut ClusterSim {
        &mut self.sim
    }
}

impl Runner for SimRunner {
    fn name(&self) -> &'static str {
        "cluster-sim"
    }

    fn now(&self) -> Nanos {
        self.now
    }

    fn advance(&mut self, dt: Nanos) {
        self.now = (self.now + dt).min(self.horizon);
        self.sim.run_until(self.now);
    }

    fn observe(&mut self, window: Nanos) -> Observation {
        self.sim.observe(self.now, window)
    }

    fn actuate(&mut self, action: &ScaleAction) {
        self.sim
            .apply_action(self.now, action, self.threads_per_node);
    }

    fn inject(&mut self, fault: &Fault) {
        match fault {
            // The recovery storm is modeled as an immediate drain of the
            // victim onto the survivors at migration speed.
            Fault::Crash(node) => {
                self.sim.trace_fault(self.now, node.0);
                let alive = self.sim.live_node_ids();
                if alive.contains(&node.0) && alive.len() > 1 {
                    self.sim
                        .schedule_scale_in(self.now, vec![node.0], self.threads_per_node);
                }
            }
            Fault::RegionLatencySpike {
                region,
                extra,
                until,
            } => {
                self.sim
                    .inject_latency_overlay(self.now, region.0, *extra, false, *until);
            }
            Fault::RegionPartition { region, until } => {
                self.sim.inject_latency_overlay(
                    self.now,
                    region.0,
                    ClusterSim::PARTITION_ONE_WAY,
                    true,
                    *until,
                );
            }
            Fault::ProvisionLeadJitter { extra } => {
                self.sim.jitter_provision_lead(self.now, *extra);
            }
        }
    }

    fn finish(&mut self) {
        self.sim.run_until(self.horizon);
        self.sim.finish();
    }

    fn metrics(&self) -> MetricsSnapshot {
        let m = &self.sim.metrics;
        let region_commits = self.sim.region_commits();
        let region_cost = self.sim.region_db_cost();
        let placements = self.sim.live_nodes_by_region();
        let region_breakdown = (0..region_commits.len())
            .map(|r| {
                let nodes: Vec<u32> = placements
                    .iter()
                    .filter(|&&(_, region)| region.0 as usize == r)
                    .map(|&(n, _)| n)
                    .collect();
                RegionBreakdown {
                    region: r as u16,
                    live_nodes: nodes.len() as u32,
                    nodes,
                    commits: region_commits[r],
                    db_cost: region_cost[r],
                }
            })
            .collect();
        MetricsSnapshot {
            live_nodes: self.sim.live_nodes(),
            commits: m.total_commits(),
            abort_ratio: m.abort_ratio(),
            mean_latency: m.user_latency.mean(),
            p99_latency: m.user_latency.quantile(0.99),
            migrations: m.migrations.total(),
            migration_duration: m.migration_duration(),
            migration_throughput: m.migration_throughput(),
            migration_latency: m.migration_summary(),
            membership_commits: m.membership_commits,
            membership_retries: m.membership_retries,
            membership_mean_latency: self.sim.membership_mean_latency(),
            db_cost: self.sim.cost.db_cost(),
            meta_cost: self.sim.cost.meta_cost(),
            coordination: self.sim.coordination_breakdown(),
            total_cost: self.sim.cost.total_cost(),
            cost_per_mtxn: self.sim.cost.per_million_txns(m.total_commits()),
            node_count: m.node_count.points().to_vec(),
            region_breakdown,
            blame: m.blame,
            tail_exemplars: self.sim.tail_exemplars().to_vec(),
        }
    }

    fn metrics_tick(&mut self, _at: Nanos, series: &mut MetricsSeries) {
        if !series.is_enabled() {
            return;
        }
        let m = &self.sim.metrics;
        series.counter("commits", m.total_commits());
        series.counter("aborts", m.user_aborts.total());
        series.counter("migrations", m.migrations.total());
        series.counter("migration_retries", m.migration_retries);
        series.counter("membership_commits", m.membership_commits);
        series.counter("live_nodes", u64::from(self.sim.live_nodes()));
        // The cumulative blame decomposition: the per-tick delta of each
        // component is where that tick's commit latency went.
        series.counter("blame_queue_wait_ns", m.blame.queue_wait);
        series.counter("blame_service_ns", m.blame.service);
        series.counter("blame_network_ns", m.blame.network);
        series.counter("blame_network_overlay_ns", m.blame.network_overlay);
        series.counter("blame_migration_stall_ns", m.blame.migration_stall);
        series.counter("blame_provision_lead_ns", m.blame.provision_lead);
        series.counter("blame_retry_backoff_ns", m.blame.retry_backoff);
        for (r, &commits) in self.sim.region_commits().iter().enumerate() {
            series.counter_region("commits", r as u16, commits);
        }
    }

    fn telemetry(&self) -> Option<TelemetrySection> {
        if !self.sim.telemetry_active() {
            return None;
        }
        Some(TelemetrySection {
            trace_events: self.sim.tracer().len(),
            trace_dropped: self.sim.tracer().dropped(),
            profile: self.sim.profile_summary(),
            virtual_nanos: self.now,
        })
    }

    fn trace_json(&self) -> Option<String> {
        if self.sim.tracer().is_enabled() {
            Some(self.sim.tracer().to_chrome_json())
        } else {
            None
        }
    }
}
