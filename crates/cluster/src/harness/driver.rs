//! The one experiment loop: `run(scenario, runner) -> RunReport`.
//!
//! The driver merges the scenario's scripted actions and faults with the
//! control-tick grid, advances the runner milestone by milestone, and at
//! every control tick observes the cluster and — if the scenario carries
//! a policy — lets the controller decide and actuate through the runner.
//! Every tick and scripted event lands in the report's decision log with
//! an observation digest and the measured actuation latency, so each
//! run's figure data and its controller trace come from the same place,
//! on either runner.

use crate::harness::report::{
    DecisionRecord, DecisionSource, ForecastAccuracy, ObservationDigest, RunReport,
};
use crate::harness::runner::{Fault, Runner};
use crate::harness::scenario::Scenario;
use marlin_autoscaler::{Actuator, Controller, GranuleMove, RebalancePlanner, ScaleAction};
use marlin_common::{NodeId, RegionId};
use marlin_sim::Nanos;
use marlin_telemetry::MetricsSeries;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Completed-run counter for this process: suffixes the per-run
/// `MARLIN_TRACE` / `MARLIN_METRICS` artifacts so a multi-run bench
/// keeps every run's file instead of only the survivor of last-wins.
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Bridges the controller's [`Actuator`] calls onto a [`Runner`],
/// timing each actuation.
struct RunnerActuator<'a> {
    runner: &'a mut dyn Runner,
    micros: u64,
}

impl RunnerActuator<'_> {
    fn timed(&mut self, action: &ScaleAction) {
        let start = Instant::now();
        self.runner.actuate(action);
        self.micros += start.elapsed().as_micros() as u64;
    }
}

impl Actuator for RunnerActuator<'_> {
    fn add_nodes(&mut self, _at: Nanos, count: u32, region: Option<RegionId>) {
        self.timed(&ScaleAction::AddNodes { count, region });
    }

    fn remove_nodes(&mut self, _at: Nanos, victims: &[NodeId]) {
        self.timed(&ScaleAction::RemoveNodes {
            victims: victims.to_vec(),
        });
    }

    fn rebalance(&mut self, _at: Nanos, moves: &[GranuleMove]) {
        self.timed(&ScaleAction::Rebalance {
            moves: moves.to_vec(),
        });
    }
}

enum Milestone {
    Script(ScaleAction),
    Fault(Fault),
    Tick(u64),
}

/// Execute `scenario` on `runner` to the horizon and assemble the
/// unified report. This is the single entry point every example, bench,
/// and integration test drives — §6.1.3's four scenario families are
/// [`Scenario`] presets, not separate driver functions.
///
/// Artifact export is environment-driven: `MARLIN_TRACE` writes the
/// Chrome trace and `MARLIN_METRICS` the per-tick metrics timeline (see
/// [`run_with_series`] for tests that want the timeline in-process).
pub fn run(scenario: Scenario, runner: &mut dyn Runner) -> RunReport {
    let mut series = MetricsSeries::from_env();
    let report = run_with_series(scenario, runner, &mut series);
    // Per-run suffixed artifacts plus the bare path (= the final run):
    // a multi-run bench keeps every run's file and the bare path stays
    // self-consistent instead of interleaving virtual clocks.
    let run_index = RUN_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    maybe_write_trace(runner, run_index);
    maybe_write_metrics(&series, run_index);
    report
}

/// [`run`], recording the per-tick metrics timeline into a
/// caller-supplied [`MetricsSeries`] instead of the `MARLIN_METRICS`
/// environment knob (and writing no artifacts). Once per control tick
/// the driver opens a row, emits the observation digest's vitals, lets
/// the runner append its own counters, and — when the scenario's policy
/// is armed with a p99 ceiling — appends the SLO error-budget and
/// burn-rate series derived from it.
pub fn run_with_series(
    scenario: Scenario,
    runner: &mut dyn Runner,
    series: &mut MetricsSeries,
) -> RunReport {
    let Scenario {
        name,
        backend,
        control_interval,
        observe_window,
        horizon,
        policy,
        planner,
        script,
        faults,
        params,
        ..
    } = scenario;

    let mut controller = policy.map(|p| {
        let c = Controller::new(p);
        match planner {
            Some(cfg) => c.with_planner(RebalancePlanner::new(cfg)),
            None => c,
        }
    });
    let policy_name = controller.as_ref().map(|c| c.policy_name().to_string());
    // The SLO the timeline's error-budget/burn-rate series derive from:
    // the policy's armed p99 ceiling, delegated through decorators.
    let slo_ceiling = controller.as_ref().and_then(Controller::p99_ceiling);
    let mut slo_breach_ticks = 0u64;

    // Timeline: scripted events and control ticks, time-ordered; events
    // sort before the tick sharing their timestamp (a scripted scale-out
    // is visible to the observation taken at the same instant). Events
    // scheduled past the horizon never fire — the run ends first.
    let mut milestones: Vec<(Nanos, u8, Milestone)> = Vec::new();
    for (at, action) in script {
        if at <= horizon {
            milestones.push((at, 0, Milestone::Script(action)));
        }
    }
    for (at, fault) in faults {
        if at <= horizon {
            milestones.push((at, 0, Milestone::Fault(fault)));
        }
    }
    let mut tick = 0u64;
    let mut at = control_interval;
    while at <= horizon {
        tick += 1;
        milestones.push((at, 1, Milestone::Tick(tick)));
        at += control_interval;
    }
    milestones.sort_by_key(|&(at, pri, _)| (at, pri));

    let mut log: Vec<DecisionRecord> = Vec::with_capacity(milestones.len());
    for (at, _, milestone) in milestones {
        // The timeline is sorted above and `Scenario::action` keeps the
        // script time-ordered, so milestones can never fall behind the
        // runner's clock — a violation would silently fire the event late
        // at "now" through the saturating subtraction below.
        debug_assert!(
            at >= runner.now(),
            "milestone at {at} is behind the runner clock {}",
            runner.now()
        );
        runner.advance(at.saturating_sub(runner.now()));
        match milestone {
            Milestone::Script(action) => {
                let digest = ObservationDigest::from(&runner.observe(observe_window));
                let start = Instant::now();
                runner.actuate(&action);
                log.push(DecisionRecord {
                    tick: 0,
                    at,
                    source: DecisionSource::Script,
                    observation: digest,
                    action: Some(action),
                    forecasts: Vec::new(),
                    actuation_micros: start.elapsed().as_micros() as u64,
                });
            }
            Milestone::Fault(fault) => {
                let digest = ObservationDigest::from(&runner.observe(observe_window));
                let start = Instant::now();
                runner.inject(&fault);
                log.push(DecisionRecord {
                    tick: 0,
                    at,
                    source: DecisionSource::Fault,
                    observation: digest,
                    action: None,
                    forecasts: Vec::new(),
                    actuation_micros: start.elapsed().as_micros() as u64,
                });
            }
            Milestone::Tick(tick) => {
                let obs = runner.observe(observe_window);
                let digest = ObservationDigest::from(&obs);
                if series.is_enabled() {
                    series.tick(at);
                    series.gauge("throughput_tps", obs.throughput_tps);
                    series.counter("p99_latency_ns", obs.p99_latency);
                    series.gauge("mean_utilization", obs.mean_utilization);
                    series.gauge("queue_depth", obs.queue_depth);
                    series.gauge("dollars_per_hour", obs.dollars_per_hour);
                    for r in &obs.region_loads {
                        series.counter_region("p99_latency_ns", r.region.0, r.p99_latency);
                        series.gauge_region("throughput_tps", r.region.0, r.throughput_tps);
                    }
                    runner.metrics_tick(at, series);
                    if let Some(ceiling) = slo_ceiling {
                        if obs.p99_latency > ceiling {
                            slo_breach_ticks += 1;
                        }
                        // Burn rate: how hard the tick spends the SLO
                        // (1.0 = exactly at the ceiling). Error budget:
                        // the fraction of ticks so far that stayed under.
                        series.gauge("slo_burn_rate", obs.p99_latency as f64 / ceiling as f64);
                        series.gauge(
                            "slo_error_budget",
                            1.0 - slo_breach_ticks as f64 / tick as f64,
                        );
                    }
                }
                let (source, action, forecasts, actuation_micros) = match &mut controller {
                    Some(c) => {
                        let mut actuator = RunnerActuator { runner, micros: 0 };
                        let action = c.tick(&obs, &mut actuator);
                        // A forecasting policy's snapshot of this tick —
                        // what it believed demand would be `lead` ahead —
                        // rides in the record next to what happened.
                        (
                            DecisionSource::Policy,
                            action,
                            c.forecasts(),
                            actuator.micros,
                        )
                    }
                    None => (DecisionSource::Sample, None, Vec::new(), 0),
                };
                log.push(DecisionRecord {
                    tick,
                    at,
                    source,
                    observation: digest,
                    action,
                    forecasts,
                    actuation_micros,
                });
            }
        }
    }
    runner.advance(horizon.saturating_sub(runner.now()));
    runner.finish();

    let forecast = ForecastAccuracy::from_log(&log);
    RunReport {
        scenario: name,
        backend: backend.name().to_string(),
        runner: runner.name().to_string(),
        policy: policy_name,
        cpu_model: params.cpu_model.name().to_string(),
        seed: params.seed,
        horizon,
        log,
        forecast,
        metrics: runner.metrics(),
        telemetry: runner.telemetry(),
    }
}

/// `<stem>.run<N>.<ext>` next to `path` (or `<path>.run<N>` when there
/// is no extension): the per-run artifact name for run number `n`.
fn run_suffixed(path: &str, n: u64) -> String {
    match path.rsplit_once('.') {
        // Only treat the final dot as an extension separator when it is
        // inside the file name, not a parent directory component.
        Some((stem, ext)) if !ext.contains('/') && !stem.ends_with('/') && !stem.is_empty() => {
            format!("{stem}.run{n}.{ext}")
        }
        _ => format!("{path}.run{n}"),
    }
}

/// If `MARLIN_TRACE` is set and the runner traced the run, write the
/// Chrome trace-event JSON there (load it at `ui.perfetto.dev` or
/// `chrome://tracing`). Each finished run writes a `.run<N>`-suffixed
/// file *and* overwrites the bare path, so a multi-run bench keeps
/// every run's trace while the bare path holds the final run — one
/// self-consistent virtual clock, never an interleaving.
fn maybe_write_trace(runner: &dyn Runner, run_index: u64) {
    let Ok(path) = std::env::var("MARLIN_TRACE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Some(json) = runner.trace_json() else {
        return;
    };
    let per_run = run_suffixed(&path, run_index);
    if let Err(e) = std::fs::write(&per_run, &json) {
        eprintln!("MARLIN_TRACE: cannot write {per_run}: {e}");
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote trace to {path}"),
        Err(e) => eprintln!("MARLIN_TRACE: cannot write {path}: {e}"),
    }
}

/// If `MARLIN_METRICS` is set and the run recorded a timeline, write it
/// there — same per-run + bare-path discipline as the trace artifact.
fn maybe_write_metrics(series: &MetricsSeries, run_index: u64) {
    if !series.is_enabled() {
        return;
    }
    let Ok(path) = std::env::var("MARLIN_METRICS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let json = series.to_json();
    let per_run = run_suffixed(&path, run_index);
    if let Err(e) = std::fs::write(&per_run, &json) {
        eprintln!("MARLIN_METRICS: cannot write {per_run}: {e}");
    }
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote metrics timeline to {path}"),
        Err(e) => eprintln!("MARLIN_METRICS: cannot write {path}: {e}"),
    }
}
