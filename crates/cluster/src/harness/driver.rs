//! The one experiment loop: `run(scenario, runner) -> RunReport`.
//!
//! The driver merges the scenario's scripted actions and faults with the
//! control-tick grid, advances the runner milestone by milestone, and at
//! every control tick observes the cluster and — if the scenario carries
//! a policy — lets the controller decide and actuate through the runner.
//! Every tick and scripted event lands in the report's decision log with
//! an observation digest and the measured actuation latency, so each
//! run's figure data and its controller trace come from the same place,
//! on either runner.

use crate::harness::report::{
    DecisionRecord, DecisionSource, ForecastAccuracy, ObservationDigest, RunReport,
};
use crate::harness::runner::{Fault, Runner};
use crate::harness::scenario::Scenario;
use marlin_autoscaler::{Actuator, Controller, GranuleMove, RebalancePlanner, ScaleAction};
use marlin_common::{NodeId, RegionId};
use marlin_sim::Nanos;
use std::time::Instant;

/// Bridges the controller's [`Actuator`] calls onto a [`Runner`],
/// timing each actuation.
struct RunnerActuator<'a> {
    runner: &'a mut dyn Runner,
    micros: u64,
}

impl RunnerActuator<'_> {
    fn timed(&mut self, action: &ScaleAction) {
        let start = Instant::now();
        self.runner.actuate(action);
        self.micros += start.elapsed().as_micros() as u64;
    }
}

impl Actuator for RunnerActuator<'_> {
    fn add_nodes(&mut self, _at: Nanos, count: u32, region: Option<RegionId>) {
        self.timed(&ScaleAction::AddNodes { count, region });
    }

    fn remove_nodes(&mut self, _at: Nanos, victims: &[NodeId]) {
        self.timed(&ScaleAction::RemoveNodes {
            victims: victims.to_vec(),
        });
    }

    fn rebalance(&mut self, _at: Nanos, moves: &[GranuleMove]) {
        self.timed(&ScaleAction::Rebalance {
            moves: moves.to_vec(),
        });
    }
}

enum Milestone {
    Script(ScaleAction),
    Fault(Fault),
    Tick(u64),
}

/// Execute `scenario` on `runner` to the horizon and assemble the
/// unified report. This is the single entry point every example, bench,
/// and integration test drives — §6.1.3's four scenario families are
/// [`Scenario`] presets, not separate driver functions.
pub fn run(scenario: Scenario, runner: &mut dyn Runner) -> RunReport {
    let Scenario {
        name,
        backend,
        control_interval,
        observe_window,
        horizon,
        policy,
        planner,
        script,
        faults,
        params,
        ..
    } = scenario;

    let mut controller = policy.map(|p| {
        let c = Controller::new(p);
        match planner {
            Some(cfg) => c.with_planner(RebalancePlanner::new(cfg)),
            None => c,
        }
    });
    let policy_name = controller.as_ref().map(|c| c.policy_name().to_string());

    // Timeline: scripted events and control ticks, time-ordered; events
    // sort before the tick sharing their timestamp (a scripted scale-out
    // is visible to the observation taken at the same instant). Events
    // scheduled past the horizon never fire — the run ends first.
    let mut milestones: Vec<(Nanos, u8, Milestone)> = Vec::new();
    for (at, action) in script {
        if at <= horizon {
            milestones.push((at, 0, Milestone::Script(action)));
        }
    }
    for (at, fault) in faults {
        if at <= horizon {
            milestones.push((at, 0, Milestone::Fault(fault)));
        }
    }
    let mut tick = 0u64;
    let mut at = control_interval;
    while at <= horizon {
        tick += 1;
        milestones.push((at, 1, Milestone::Tick(tick)));
        at += control_interval;
    }
    milestones.sort_by_key(|&(at, pri, _)| (at, pri));

    let mut log: Vec<DecisionRecord> = Vec::with_capacity(milestones.len());
    for (at, _, milestone) in milestones {
        // The timeline is sorted above and `Scenario::action` keeps the
        // script time-ordered, so milestones can never fall behind the
        // runner's clock — a violation would silently fire the event late
        // at "now" through the saturating subtraction below.
        debug_assert!(
            at >= runner.now(),
            "milestone at {at} is behind the runner clock {}",
            runner.now()
        );
        runner.advance(at.saturating_sub(runner.now()));
        match milestone {
            Milestone::Script(action) => {
                let digest = ObservationDigest::from(&runner.observe(observe_window));
                let start = Instant::now();
                runner.actuate(&action);
                log.push(DecisionRecord {
                    tick: 0,
                    at,
                    source: DecisionSource::Script,
                    observation: digest,
                    action: Some(action),
                    forecasts: Vec::new(),
                    actuation_micros: start.elapsed().as_micros() as u64,
                });
            }
            Milestone::Fault(fault) => {
                let digest = ObservationDigest::from(&runner.observe(observe_window));
                let start = Instant::now();
                runner.inject(&fault);
                log.push(DecisionRecord {
                    tick: 0,
                    at,
                    source: DecisionSource::Fault,
                    observation: digest,
                    action: None,
                    forecasts: Vec::new(),
                    actuation_micros: start.elapsed().as_micros() as u64,
                });
            }
            Milestone::Tick(tick) => {
                let obs = runner.observe(observe_window);
                let digest = ObservationDigest::from(&obs);
                let (source, action, forecasts, actuation_micros) = match &mut controller {
                    Some(c) => {
                        let mut actuator = RunnerActuator { runner, micros: 0 };
                        let action = c.tick(&obs, &mut actuator);
                        // A forecasting policy's snapshot of this tick —
                        // what it believed demand would be `lead` ahead —
                        // rides in the record next to what happened.
                        (
                            DecisionSource::Policy,
                            action,
                            c.forecasts(),
                            actuator.micros,
                        )
                    }
                    None => (DecisionSource::Sample, None, Vec::new(), 0),
                };
                log.push(DecisionRecord {
                    tick,
                    at,
                    source,
                    observation: digest,
                    action,
                    forecasts,
                    actuation_micros,
                });
            }
        }
    }
    runner.advance(horizon.saturating_sub(runner.now()));
    runner.finish();
    maybe_write_trace(runner);

    let forecast = ForecastAccuracy::from_log(&log);
    RunReport {
        scenario: name,
        backend: backend.name().to_string(),
        runner: runner.name().to_string(),
        policy: policy_name,
        cpu_model: params.cpu_model.name().to_string(),
        seed: params.seed,
        horizon,
        log,
        forecast,
        metrics: runner.metrics(),
        telemetry: runner.telemetry(),
    }
}

/// If `MARLIN_TRACE` is set and the runner traced the run, write the
/// Chrome trace-event JSON there (load it at `ui.perfetto.dev` or
/// `chrome://tracing`). Each finished run overwrites the file — in a
/// multi-run bench the artifact holds the *last* run, which keeps every
/// trace self-consistent instead of interleaving virtual clocks.
fn maybe_write_trace(runner: &dyn Runner) {
    let Ok(path) = std::env::var("MARLIN_TRACE") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Some(json) = runner.trace_json() else {
        return;
    };
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote trace to {path}"),
        Err(e) => eprintln!("MARLIN_TRACE: cannot write {path}: {e}"),
    }
}
