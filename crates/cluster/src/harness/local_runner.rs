//! [`Runner`] over the synchronous `LocalCluster`: the safety runner,
//! where every actuation executes real reconfiguration transactions
//! (`AddNodeTxn`, `MigrationTxn`, `DeleteNodeTxn`, `RecoveryMigrTxn`)
//! through the sans-io drivers and the I0–I4 invariants are asserted
//! after every step.
//!
//! The runtime has no load generator, so observations are synthesized:
//! the scenario's client trace becomes offered load (node-capacity units
//! per client), spread over granules by the workload's access
//! distribution — uniform by default, Zipfian-weighted when the scenario
//! uses skewed YCSB. That makes skew *visible* to policies and the
//! rebalance planner exactly as the simulator's sampled heat counters
//! would report it, while every resulting migration is a real protocol
//! execution.
//!
//! Geo scenarios carry one trace per region: each region's demand lands
//! only on the granules homed there (§6.5 clients touch local data), so
//! a regional spike shows up as utilization on that region's members and
//! region-targeted `AddNodes` place real members into the hot region.

use crate::harness::runner::{Fault, MetricsSnapshot, RegionBreakdown, Runner, TelemetrySection};
use crate::harness::scenario::Scenario;
use crate::metrics::Blame;
use crate::sim::Workload;
use marlin_autoscaler::{Actuator, InvariantViolation, LocalHarness, Observation, ScaleAction};
use marlin_common::{GranuleId, LogId, NodeId, RegionId};
use marlin_sim::{Histogram, Nanos, SECOND};
use marlin_telemetry::{CoordOps, MetricsSeries, ProfileSummary, Tracer, DEFAULT_TRACE_CAPACITY};
use marlin_workload::LoadTrace;
use std::collections::BTreeMap;

/// The synchronous runtime wrapped as a [`Runner`].
pub struct LocalRunner {
    harness: LocalHarness,
    now: Nanos,
    trace: LoadTrace,
    /// One trace per region when the scenario is geo (empty otherwise).
    region_traces: Vec<LoadTrace>,
    /// Placement domains (1 outside geo scenarios).
    regions: u16,
    offered_per_client: f64,
    /// `Some(theta)` when the workload is Zipfian-skewed YCSB.
    zipf_theta: Option<f64>,
    /// Live node count over (logical) time, mirroring the simulator's
    /// exact series.
    node_count: Vec<(Nanos, f64)>,
    /// Node-nanoseconds accrued, for DB Cost accounting.
    node_time: f64,
    /// Node-nanoseconds accrued per region (the per-region cost split).
    region_node_time: Vec<f64>,
    /// MigrationTxns executed (counted by ownership diff per actuation).
    migrations: u64,
    /// Real coordination ops, counted by diffing the storage service's
    /// per-log `Append@LSN` counters around every reconfiguration
    /// transaction (the same registry the simulator fills).
    coord: CoordOps,
    /// Logical-time tracer (enabled by `MARLIN_TRACE`, or explicitly).
    tracer: Tracer,
    /// Every I0–I4 violation found after an actuation or fault, as
    /// values: the run keeps going and harnesses (the scenario fuzzer)
    /// inspect [`violations`](LocalRunner::violations) afterwards
    /// instead of catching a panic mid-run.
    violations: Vec<InvariantViolation>,
}

impl LocalRunner {
    /// Bootstrap the cluster a scenario describes. The scenario's granule
    /// count becomes real granules, so local scenarios should stay at
    /// hundreds-to-thousands of granules (the simulator covers paper
    /// scale).
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        assert!(
            scenario.backend == crate::params::CoordKind::Marlin,
            "LocalCluster runs the Marlin protocol itself; baselines are simulator-only"
        );
        let regions = scenario.params.regions.regions() as u16;
        if !scenario.region_traces.is_empty() {
            assert_eq!(
                scenario.region_traces.len(),
                regions as usize,
                "one region trace per region"
            );
        }
        let granules = scenario.workload.granule_count();
        let harness =
            LocalHarness::bootstrap(scenario.initial_nodes, granules).with_regions(regions);
        let zipf_theta = match &scenario.workload {
            Workload::Ycsb { zipfian, .. } => *zipfian,
            Workload::Tpcc { .. } => None,
        };
        let mut runner = LocalRunner {
            harness,
            now: 0,
            trace: scenario.trace.clone(),
            region_traces: scenario.region_traces.clone(),
            regions,
            offered_per_client: scenario.offered_per_client,
            zipf_theta,
            node_count: Vec::new(),
            node_time: 0.0,
            region_node_time: vec![0.0; regions as usize],
            migrations: 0,
            coord: CoordOps::default(),
            tracer: Tracer::from_env(),
            violations: Vec::new(),
        };
        runner.record_node_count();
        runner
    }

    /// The wrapped harness (cluster access for assertions and walkthroughs).
    #[must_use]
    pub fn harness(&self) -> &LocalHarness {
        &self.harness
    }

    fn record_node_count(&mut self) {
        self.node_count
            .push((self.now, self.harness.members().len() as f64));
    }

    fn ownership(&self) -> BTreeMap<GranuleId, NodeId> {
        self.harness
            .members()
            .iter()
            .flat_map(|&m| {
                self.harness
                    .cluster
                    .node(m)
                    .marlin
                    .owned_granules()
                    .into_iter()
                    .map(move |g| (g, m))
            })
            .collect()
    }

    /// Granule owners as a map (for tests asserting heat moved).
    #[must_use]
    pub fn owners(&self) -> BTreeMap<GranuleId, NodeId> {
        self.ownership()
    }

    /// Offered load per region at the current time, in node-capacity
    /// units: the per-region traces when the scenario carries them, else
    /// the global trace split by each region's granule-weight share
    /// (which `LocalHarness::observe_with` performs internally).
    fn offered_by_region(&self) -> Option<Vec<f64>> {
        if self.region_traces.is_empty() {
            return None;
        }
        Some(
            self.region_traces
                .iter()
                .map(|t| f64::from(t.clients_at(self.now)) * self.offered_per_client)
                .collect(),
        )
    }

    fn offered_now(&self) -> f64 {
        f64::from(self.trace.clients_at(self.now)) * self.offered_per_client
    }

    /// Turn on the tracer explicitly (tests prefer this over mutating the
    /// process-wide `MARLIN_TRACE` environment).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled(DEFAULT_TRACE_CAPACITY);
    }

    /// The coordination ops counted so far.
    #[must_use]
    pub fn coordination(&self) -> CoordOps {
        self.coord
    }

    /// Every invariant violation the run surfaced so far (empty on a
    /// healthy run). The runner checks I0–I4 after every actuation and
    /// fault but *collects* violations instead of panicking, so a
    /// fuzzing harness can finish the run, report the violation with its
    /// seed, and shrink the scenario.
    #[must_use]
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Run the invariant checks at the current time and collect any
    /// violations.
    fn check_invariants(&mut self) {
        if let Err(mut found) = self.harness.check_invariants(self.now) {
            self.violations.append(&mut found);
        }
    }

    /// Totals of the storage service's `Append@LSN` counters, split
    /// SysLog vs GLogs: `(sys_attempts, sys_failures, glog_attempts,
    /// glog_failures)`.
    fn cas_totals(&self) -> (u64, u64, u64, u64) {
        let storage = self.harness.cluster.storage();
        let mut totals = (0, 0, 0, 0);
        for id in storage.log_ids() {
            let Ok(stats) = storage.stats(id) else {
                continue;
            };
            match id {
                LogId::SysLog => {
                    totals.0 += stats.cas_attempts;
                    totals.1 += stats.cas_failures;
                }
                LogId::GLog(_) => {
                    totals.2 += stats.cas_attempts;
                    totals.3 += stats.cas_failures;
                }
                // Data WALs carry user-commit appends; the runner has no
                // load generator, so reconfiguration never touches them.
                LogId::DataWal(_) => {}
            }
        }
        totals
    }

    /// Book the `Append@LSN` traffic one reconfiguration step generated:
    /// SysLog CAS → membership counters, GLog CAS → migration counters.
    /// (The synchronous runtime runs the Marlin protocol only, so there
    /// is never service traffic to attribute.)
    fn account_cas(&mut self, before: (u64, u64, u64, u64)) {
        let after = self.cas_totals();
        self.coord.membership_cas_attempts += after.0 - before.0;
        self.coord.membership_cas_retries += after.1 - before.1;
        self.coord.migration_cas_attempts += after.2 - before.2;
        self.coord.migration_cas_retries += after.3 - before.3;
    }
}

impl Runner for LocalRunner {
    fn name(&self) -> &'static str {
        "local-cluster"
    }

    fn now(&self) -> Nanos {
        self.now
    }

    fn advance(&mut self, dt: Nanos) {
        // Integrate node-time piecewise over the trace's step boundaries
        // only as far as membership is concerned — membership changes
        // happen at actuation points, so the current member count holds
        // for the whole step.
        self.node_time += self.harness.members().len() as f64 * dt as f64;
        for &m in self.harness.members() {
            self.region_node_time[self.harness.region_of(m).0 as usize] += dt as f64;
        }
        self.now += dt;
    }

    fn observe(&mut self, _window: Nanos) -> Observation {
        let weight: Box<dyn Fn(GranuleId) -> f64> = match self.zipf_theta {
            Some(theta) => Box::new(move |g: GranuleId| 1.0 / ((g.0 + 1) as f64).powf(theta)),
            None => Box::new(|_| 1.0),
        };
        match self.offered_by_region() {
            Some(per_region) => self.harness.observe_regions(self.now, &per_region, weight),
            None => self
                .harness
                .observe_with(self.now, self.offered_now(), weight),
        }
    }

    fn actuate(&mut self, action: &ScaleAction) {
        let before = self.ownership();
        let cas_before = self.cas_totals();
        if self.tracer.is_enabled() {
            let (name, n): (&'static str, i64) = match action {
                ScaleAction::AddNodes { count, .. } => ("add_nodes", i64::from(*count)),
                ScaleAction::RemoveNodes { victims } => ("remove_nodes", victims.len() as i64),
                ScaleAction::Rebalance { moves } => ("rebalance", moves.len() as i64),
            };
            self.tracer
                .instant_args("policy", name, self.now, [("count", n), ("", 0)]);
        }
        match action {
            ScaleAction::AddNodes { count, region } => {
                self.harness.add_nodes(self.now, *count, *region);
            }
            ScaleAction::RemoveNodes { victims } => {
                // Mirror the simulator's guard: drop victims that are not
                // current members and refuse a removal that would empty the
                // membership. Fuzzed scripts routinely name stale or
                // wholesale victim sets; the harness itself asserts on an
                // empty survivor set, so filter before delegating.
                let members = self.harness.members();
                let victims: Vec<_> = victims
                    .iter()
                    .copied()
                    .filter(|v| members.contains(v))
                    .collect();
                if !victims.is_empty() && victims.len() < members.len() {
                    self.harness.remove_nodes(self.now, &victims);
                }
            }
            ScaleAction::Rebalance { moves } => self.harness.rebalance(self.now, moves),
        }
        self.account_cas(cas_before);
        // Every actuation must leave the cluster with exclusive granule
        // ownership — the I0–I4 safety net, checked on every step.
        // Violations are collected, not panicked on (see `violations`).
        self.check_invariants();
        let after = self.ownership();
        self.migrations += before
            .iter()
            .filter(|(g, owner)| after.get(g).is_some_and(|now| now != *owner))
            .count() as u64;
        self.record_node_count();
    }

    fn inject(&mut self, fault: &Fault) {
        match fault {
            Fault::Crash(node) => {
                let before = self.ownership();
                let cas_before = self.cas_totals();
                if self.tracer.is_enabled() {
                    self.tracer.instant_args(
                        "fault",
                        "crash",
                        self.now,
                        [("node", i64::from(node.0)), ("", 0)],
                    );
                }
                self.harness.crash(*node);
                self.account_cas(cas_before);
                self.check_invariants();
                let after = self.ownership();
                self.migrations += before
                    .iter()
                    .filter(|(g, owner)| after.get(g).is_some_and(|now| now != *owner))
                    .count() as u64;
                self.record_node_count();
            }
            // The synchronous runtime has no network or provisioning
            // model: region degradations and lead jitter are traced
            // no-ops here (the invariants are still checked, so a fuzzed
            // schedule exercises the same control flow on both runners).
            Fault::RegionLatencySpike { region, extra, .. } => {
                if self.tracer.is_enabled() {
                    self.tracer.instant_args(
                        "fault",
                        "latency_spike",
                        self.now,
                        [
                            ("region", i64::from(region.0)),
                            ("extra_ms", (extra / 1_000_000) as i64),
                        ],
                    );
                }
                self.check_invariants();
            }
            Fault::RegionPartition { region, .. } => {
                if self.tracer.is_enabled() {
                    self.tracer.instant_args(
                        "fault",
                        "region_partition",
                        self.now,
                        [("region", i64::from(region.0)), ("", 0)],
                    );
                }
                self.check_invariants();
            }
            Fault::ProvisionLeadJitter { extra } => {
                if self.tracer.is_enabled() {
                    self.tracer.instant_args(
                        "fault",
                        "lead_jitter",
                        self.now,
                        [("extra_ms", (extra / 1_000_000) as i64), ("", 0)],
                    );
                }
            }
        }
    }

    fn finish(&mut self) {
        self.record_node_count();
    }

    fn metrics(&self) -> MetricsSnapshot {
        let node_hours = self.node_time / (3600.0 * SECOND as f64);
        let db_cost = node_hours * self.harness.node_hourly;
        let region_breakdown = (0..self.regions)
            .map(|r| {
                let nodes: Vec<u32> = self
                    .harness
                    .members()
                    .iter()
                    .filter(|&&m| self.harness.region_of(m) == RegionId(r))
                    .map(|m| m.0)
                    .collect();
                RegionBreakdown {
                    region: r,
                    live_nodes: nodes.len() as u32,
                    nodes,
                    commits: 0,
                    db_cost: self.region_node_time[r as usize] / (3600.0 * SECOND as f64)
                        * self.harness.node_hourly,
                }
            })
            .collect();
        // The synchronous runtime runs the Marlin protocol itself, so the
        // coordination registry carries real Append@LSN counts and the
        // attributed Meta Cost is exactly zero by construction — no more
        // hard-coded scalar.
        let coordination = marlin_telemetry::CoordBreakdown::attribute(self.coord, 0.0);
        let meta_cost = coordination.meta_dollars();
        MetricsSnapshot {
            live_nodes: self.harness.members().len() as u32,
            commits: 0,
            abort_ratio: 0.0,
            mean_latency: 0.0,
            p99_latency: 0,
            migrations: self.migrations,
            migration_duration: 0,
            migration_throughput: 0.0,
            migration_latency: Histogram::new().summary(),
            membership_commits: 0,
            membership_retries: self.coord.membership_cas_retries,
            membership_mean_latency: 0.0,
            db_cost,
            meta_cost,
            coordination,
            total_cost: db_cost + meta_cost,
            cost_per_mtxn: 0.0,
            node_count: self.node_count.clone(),
            region_breakdown,
            // No load generator: no commits to attribute.
            blame: Blame::default(),
            tail_exemplars: Vec::new(),
        }
    }

    fn metrics_tick(&mut self, _at: Nanos, series: &mut MetricsSeries) {
        if !series.is_enabled() {
            return;
        }
        series.counter("live_nodes", self.harness.members().len() as u64);
        series.counter("migrations", self.migrations);
        series.counter(
            "membership_cas_attempts",
            self.coord.membership_cas_attempts,
        );
        series.counter("membership_cas_retries", self.coord.membership_cas_retries);
        series.counter("migration_cas_attempts", self.coord.migration_cas_attempts);
        series.counter("invariant_violations", self.violations.len() as u64);
    }

    fn telemetry(&self) -> Option<TelemetrySection> {
        if !self.tracer.is_enabled() {
            return None;
        }
        Some(TelemetrySection {
            trace_events: self.tracer.len(),
            trace_dropped: self.tracer.dropped(),
            // The synchronous runtime has no event loop to self-profile.
            profile: ProfileSummary::default(),
            virtual_nanos: self.now,
        })
    }

    fn trace_json(&self) -> Option<String> {
        if self.tracer.is_enabled() {
            Some(self.tracer.to_chrome_json())
        } else {
            None
        }
    }
}
