//! The unified [`RunReport`]: one result shape for every scenario on
//! every runner.
//!
//! The report carries the full controller decision log — one
//! [`DecisionRecord`] per control tick and per scripted event, each with
//! an observation digest (windowed throughput/p99, per-node CPU, $/hr
//! burn), the chosen [`ScaleAction`] if any, and the measured actuation
//! latency — plus the end-of-run [`MetricsSnapshot`] (including Meta
//! Cost). Reports serialize to JSON without external dependencies; set
//! `MARLIN_REPORT_JSON=<path>` and every bench target writes its reports
//! there as a machine-readable artifact.

use crate::harness::runner::MetricsSnapshot;
use marlin_autoscaler::{Observation, RegionLoad, ScaleAction};
use marlin_sim::Nanos;

/// What produced a log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionSource {
    /// A controller tick (the policy decided; `action` may be `None`).
    Policy,
    /// A scripted scale action from the scenario.
    Script,
    /// An injected fault.
    Fault,
    /// A plain observation sample (scripted runs without a policy).
    Sample,
}

impl DecisionSource {
    fn as_str(self) -> &'static str {
        match self {
            DecisionSource::Policy => "policy",
            DecisionSource::Script => "script",
            DecisionSource::Fault => "fault",
            DecisionSource::Sample => "sample",
        }
    }
}

/// The observation summary attached to every log entry — the windowed
/// series behind each figure, sampled at the control cadence.
#[derive(Clone, Debug)]
pub struct ObservationDigest {
    /// Live member count.
    pub live_nodes: u32,
    /// Committed user transactions per second over the window.
    pub throughput_tps: f64,
    /// p99 commit latency over the window.
    pub p99_latency: Nanos,
    /// Mean CPU utilization across live nodes.
    pub mean_utilization: f64,
    /// Mean offered work beyond capacity (queue build-up).
    pub queue_depth: f64,
    /// Current burn rate, $/hour.
    pub dollars_per_hour: f64,
    /// Per-node CPU utilization `(node id, rho)`.
    pub node_utilization: Vec<(u32, f64)>,
    /// Per-region digests (node counts, utilization, throughput, and
    /// spend split by placement) — the §6.5 per-region series.
    pub regions: Vec<RegionLoad>,
}

impl From<&Observation> for ObservationDigest {
    fn from(obs: &Observation) -> Self {
        ObservationDigest {
            live_nodes: obs.live_nodes,
            throughput_tps: obs.throughput_tps,
            p99_latency: obs.p99_latency,
            mean_utilization: obs.mean_utilization,
            queue_depth: obs.queue_depth,
            dollars_per_hour: obs.dollars_per_hour,
            node_utilization: obs
                .node_loads
                .iter()
                .filter(|n| n.alive)
                .map(|n| (n.node.0, n.utilization))
                .collect(),
            regions: obs.region_loads.clone(),
        }
    }
}

/// One entry of the decision log.
#[derive(Clone, Debug)]
pub struct DecisionRecord {
    /// Control tick index (0 for scripted events between ticks).
    pub tick: u64,
    /// Virtual time of the entry.
    pub at: Nanos,
    /// What produced it.
    pub source: DecisionSource,
    /// Cluster health at the decision instant.
    pub observation: ObservationDigest,
    /// The action taken, if any.
    pub action: Option<ScaleAction>,
    /// Wall-clock time spent actuating (real protocol execution on the
    /// synchronous runtime; scheduling cost in the simulator).
    pub actuation_micros: u64,
}

/// The unified result of one scenario run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend legend name ("Marlin", "S-ZK", ...).
    pub backend: String,
    /// Runner name ("cluster-sim", "local-cluster").
    pub runner: String,
    /// Policy name, if the run was closed-loop.
    pub policy: Option<String>,
    /// Which CPU congestion model produced the latency/utilization
    /// numbers ("analytic" or "per-request"; meaningful on the
    /// simulator — `LocalRunner` synthesizes observations, but the
    /// scenario's choice is recorded either way).
    pub cpu_model: String,
    /// The deterministic seed the run used.
    pub seed: u64,
    /// End of simulated time.
    pub horizon: Nanos,
    /// The full decision log (every control tick + scripted event).
    pub log: Vec<DecisionRecord>,
    /// End-of-run totals.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Entries where an action was actually taken, in order.
    #[must_use]
    pub fn actions(&self) -> Vec<&DecisionRecord> {
        self.log.iter().filter(|r| r.action.is_some()).collect()
    }

    /// Scale actions (adds/removes, not rebalances) taken by the policy.
    #[must_use]
    pub fn scale_action_count(&self) -> usize {
        self.log
            .iter()
            .filter(|r| r.source == DecisionSource::Policy)
            .filter(|r| {
                matches!(
                    r.action,
                    Some(ScaleAction::AddNodes { .. } | ScaleAction::RemoveNodes { .. })
                )
            })
            .count()
    }

    /// Virtual time of the first action satisfying `pred` at or after
    /// `t`.
    #[must_use]
    pub fn first_action_at(&self, t: Nanos, pred: impl Fn(&ScaleAction) -> bool) -> Option<Nanos> {
        self.log
            .iter()
            .filter(|r| r.at >= t)
            .find(|r| r.action.as_ref().is_some_and(&pred))
            .map(|r| r.at)
    }

    /// Peak live node count over the run.
    #[must_use]
    pub fn peak_nodes(&self) -> u32 {
        self.metrics.peak_nodes()
    }

    /// Scale-in release lag after `after` (see
    /// [`MetricsSnapshot::release_lag`]).
    #[must_use]
    pub fn release_lag(&self, base: u32, after: Nanos) -> Option<Nanos> {
        self.metrics.release_lag(base, after)
    }

    /// The compact `(tick, action)` signature of the policy's decisions —
    /// what the runner-parity test compares across backends.
    #[must_use]
    pub fn decision_signature(&self) -> Vec<(u64, String)> {
        self.log
            .iter()
            .filter(|r| r.source == DecisionSource::Policy)
            .filter_map(|r| r.action.as_ref().map(|a| (r.tick, action_signature(a))))
            .collect()
    }

    /// Serialize the report (log and metrics included) to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.log.len());
        out.push('{');
        field(&mut out, "scenario", &json_str(&self.scenario));
        field(&mut out, "backend", &json_str(&self.backend));
        field(&mut out, "runner", &json_str(&self.runner));
        let policy = match &self.policy {
            Some(p) => json_str(p),
            None => "null".into(),
        };
        field(&mut out, "policy", &policy);
        field(&mut out, "cpu_model", &json_str(&self.cpu_model));
        field(&mut out, "seed", &self.seed.to_string());
        field(&mut out, "horizon_ns", &self.horizon.to_string());
        let log: Vec<String> = self.log.iter().map(record_json).collect();
        field(&mut out, "log", &format!("[{}]", log.join(",")));
        out.push_str("\"metrics\":");
        out.push_str(&metrics_json(&self.metrics));
        out.push('}');
        out
    }
}

/// A short, comparison-friendly label of an action ("add+8",
/// "add+2@r1" for a region-targeted scale-out, "remove-2",
/// "rebalance*5").
#[must_use]
pub fn action_signature(action: &ScaleAction) -> String {
    match action {
        ScaleAction::AddNodes {
            count,
            region: Some(r),
        } => format!("add+{count}@r{}", r.0),
        ScaleAction::AddNodes {
            count,
            region: None,
        } => format!("add+{count}"),
        ScaleAction::RemoveNodes { victims } => format!("remove-{}", victims.len()),
        ScaleAction::Rebalance { moves } => format!("rebalance*{}", moves.len()),
    }
}

/// If `MARLIN_REPORT_JSON` is set, write `reports` there as a JSON array
/// and return the path. Every bench target calls this so figure runs
/// leave machine-readable artifacts including the decision logs.
///
/// Reports *accumulate*: if the file already holds an array written by
/// this function (e.g. an earlier target of a `cargo bench` sweep), the
/// new reports are appended to it. Delete the file to start fresh.
pub fn maybe_write_json(reports: &[RunReport]) -> Option<String> {
    let path = std::env::var("MARLIN_REPORT_JSON")
        .ok()
        .filter(|p| !p.is_empty())?;
    let body = reports
        .iter()
        .map(RunReport::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    // Splice into an existing array (our own writer's format) so a
    // multi-target bench run keeps every figure's reports.
    let doc = match std::fs::read_to_string(&path) {
        Ok(existing) => match existing.trim_end().strip_suffix(']') {
            Some(head) if head.trim() == "[" => format!("[{body}]\n"),
            Some(head) => format!("{head},\n{body}]\n"),
            None => format!("[{body}]\n"),
        },
        Err(_) => format!("[{body}]\n"),
    };
    match std::fs::write(&path, doc) {
        Ok(()) => {
            println!("wrote {} RunReport(s) to {path}", reports.len());
            Some(path)
        }
        Err(e) => {
            eprintln!("MARLIN_REPORT_JSON: cannot write {path}: {e}");
            None
        }
    }
}

// -- JSON plumbing (no serde in the offline build) --------------------------

fn field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
    out.push(',');
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_pairs_u32(pairs: &[(u32, f64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|&(k, v)| format!("[{k},{}]", json_f64(v)))
        .collect();
    format!("[{}]", cells.join(","))
}

fn json_pairs_nanos(pairs: &[(Nanos, f64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|&(t, v)| format!("[{t},{}]", json_f64(v)))
        .collect();
    format!("[{}]", cells.join(","))
}

fn action_json(action: &ScaleAction) -> String {
    match action {
        ScaleAction::AddNodes { count, region } => {
            let region = region.map_or("null".into(), |r| r.0.to_string());
            format!("{{\"kind\":\"add_nodes\",\"count\":{count},\"region\":{region}}}")
        }
        ScaleAction::RemoveNodes { victims } => {
            let ids: Vec<String> = victims.iter().map(|n| n.0.to_string()).collect();
            format!(
                "{{\"kind\":\"remove_nodes\",\"victims\":[{}]}}",
                ids.join(",")
            )
        }
        ScaleAction::Rebalance { moves } => {
            let cells: Vec<String> = moves
                .iter()
                .map(|m| format!("[{},{},{}]", m.granule.0, m.src.0, m.dst.0))
                .collect();
            format!("{{\"kind\":\"rebalance\",\"moves\":[{}]}}", cells.join(","))
        }
    }
}

fn region_loads_json(regions: &[RegionLoad]) -> String {
    let cells: Vec<String> = regions
        .iter()
        .map(|r| {
            format!(
                "{{\"region\":{},\"live_nodes\":{},\"mean_utilization\":{},\
                 \"queue_depth\":{},\"p99_latency_ns\":{},\"throughput_tps\":{},\
                 \"dollars_per_hour\":{}}}",
                r.region.0,
                r.live_nodes,
                json_f64(r.mean_utilization),
                json_f64(r.queue_depth),
                r.p99_latency,
                json_f64(r.throughput_tps),
                json_f64(r.dollars_per_hour),
            )
        })
        .collect();
    format!("[{}]", cells.join(","))
}

fn record_json(r: &DecisionRecord) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    field(&mut out, "tick", &r.tick.to_string());
    field(&mut out, "at_ns", &r.at.to_string());
    field(&mut out, "source", &json_str(r.source.as_str()));
    let o = &r.observation;
    let obs = format!(
        "{{\"live_nodes\":{},\"throughput_tps\":{},\"p99_latency_ns\":{},\
         \"mean_utilization\":{},\"queue_depth\":{},\"dollars_per_hour\":{},\
         \"node_utilization\":{},\"regions\":{}}}",
        o.live_nodes,
        json_f64(o.throughput_tps),
        o.p99_latency,
        json_f64(o.mean_utilization),
        json_f64(o.queue_depth),
        json_f64(o.dollars_per_hour),
        json_pairs_u32(&o.node_utilization),
        region_loads_json(&o.regions),
    );
    field(&mut out, "observation", &obs);
    let action = match &r.action {
        Some(a) => action_json(a),
        None => "null".into(),
    };
    field(&mut out, "action", &action);
    out.push_str("\"actuation_micros\":");
    out.push_str(&r.actuation_micros.to_string());
    out.push('}');
    out
}

fn metrics_json(m: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    field(&mut out, "live_nodes", &m.live_nodes.to_string());
    field(&mut out, "commits", &m.commits.to_string());
    field(&mut out, "abort_ratio", &json_f64(m.abort_ratio));
    field(&mut out, "mean_latency_ns", &json_f64(m.mean_latency));
    field(&mut out, "p99_latency_ns", &m.p99_latency.to_string());
    field(&mut out, "migrations", &m.migrations.to_string());
    field(
        &mut out,
        "migration_duration_ns",
        &m.migration_duration.to_string(),
    );
    field(
        &mut out,
        "migration_throughput",
        &json_f64(m.migration_throughput),
    );
    field(
        &mut out,
        "migration_latency_mean_ns",
        &json_f64(m.migration_latency.mean),
    );
    field(
        &mut out,
        "migration_latency_p99_ns",
        &m.migration_latency.p99.to_string(),
    );
    field(
        &mut out,
        "membership_commits",
        &m.membership_commits.to_string(),
    );
    field(
        &mut out,
        "membership_retries",
        &m.membership_retries.to_string(),
    );
    field(
        &mut out,
        "membership_mean_latency_ns",
        &json_f64(m.membership_mean_latency),
    );
    field(&mut out, "db_cost", &json_f64(m.db_cost));
    field(&mut out, "meta_cost", &json_f64(m.meta_cost));
    field(&mut out, "total_cost", &json_f64(m.total_cost));
    field(&mut out, "cost_per_mtxn", &json_f64(m.cost_per_mtxn));
    let regions: Vec<String> = m
        .region_breakdown
        .iter()
        .map(|r| {
            let nodes: Vec<String> = r.nodes.iter().map(u32::to_string).collect();
            format!(
                "{{\"region\":{},\"live_nodes\":{},\"nodes\":[{}],\
                 \"commits\":{},\"db_cost\":{}}}",
                r.region,
                r.live_nodes,
                nodes.join(","),
                r.commits,
                json_f64(r.db_cost),
            )
        })
        .collect();
    field(
        &mut out,
        "region_breakdown",
        &format!("[{}]", regions.join(",")),
    );
    out.push_str("\"node_count\":");
    out.push_str(&json_pairs_nanos(&m.node_count));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::runner::RegionBreakdown;
    use marlin_common::{NodeId, RegionId};
    use marlin_sim::Summary;

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            live_nodes: 4,
            commits: 100,
            abort_ratio: 0.01,
            mean_latency: 1.0e6,
            p99_latency: 5_000_000,
            migrations: 7,
            migration_duration: 2_000_000_000,
            migration_throughput: 3.5,
            migration_latency: Summary {
                count: 7,
                mean: 1.5e6,
                p50: 1_000_000,
                p99: 2_000_000,
                max: 3_000_000,
            },
            membership_commits: 0,
            membership_retries: 0,
            membership_mean_latency: 0.0,
            db_cost: 0.12,
            meta_cost: 0.0,
            total_cost: 0.12,
            cost_per_mtxn: 1.2,
            node_count: vec![(0, 2.0), (1_000_000_000, 4.0), (2_000_000_000, 2.0)],
            region_breakdown: vec![
                RegionBreakdown {
                    region: 0,
                    live_nodes: 2,
                    nodes: vec![0, 2],
                    commits: 60,
                    db_cost: 0.08,
                },
                RegionBreakdown {
                    region: 1,
                    live_nodes: 2,
                    nodes: vec![1, 3],
                    commits: 40,
                    db_cost: 0.04,
                },
            ],
        }
    }

    fn report() -> RunReport {
        RunReport {
            scenario: "unit \"quoted\"".into(),
            backend: "Marlin".into(),
            runner: "cluster-sim".into(),
            policy: Some("reactive".into()),
            cpu_model: "analytic".into(),
            seed: 42,
            horizon: 3_000_000_000,
            log: vec![DecisionRecord {
                tick: 1,
                at: 1_000_000_000,
                source: DecisionSource::Policy,
                observation: ObservationDigest {
                    live_nodes: 2,
                    throughput_tps: 120.5,
                    p99_latency: 9_000_000,
                    mean_utilization: 0.9,
                    queue_depth: 0.0,
                    dollars_per_hour: 0.384,
                    node_utilization: vec![(0, 0.92), (1, 0.88)],
                    regions: vec![RegionLoad {
                        region: RegionId(0),
                        live_nodes: 2,
                        mean_utilization: 0.9,
                        queue_depth: 0.0,
                        p99_latency: 9_000_000,
                        throughput_tps: 120.5,
                        dollars_per_hour: 0.384,
                    }],
                },
                action: Some(ScaleAction::RemoveNodes {
                    victims: vec![NodeId(3)],
                }),
                actuation_micros: 12,
            }],
            metrics: snapshot(),
        }
    }

    #[test]
    fn json_round_trip_contains_the_decision_log() {
        let j = report().to_json();
        assert!(j.contains("\"scenario\":\"unit \\\"quoted\\\"\""));
        assert!(j.contains("\"cpu_model\":\"analytic\""));
        assert!(j.contains("\"kind\":\"remove_nodes\""));
        assert!(j.contains("\"victims\":[3]"));
        assert!(j.contains("\"node_utilization\":[[0,0.92],[1,0.88]]"));
        assert!(j.contains("\"meta_cost\":0"));
        // The per-region split rides in both the digest and the metrics.
        assert!(j.contains("\"regions\":[{\"region\":0,\"live_nodes\":2,"));
        assert!(j.contains(
            "\"region_breakdown\":[{\"region\":0,\"live_nodes\":2,\"nodes\":[0,2],\
             \"commits\":60,\"db_cost\":0.08}"
        ));
        assert!(j.contains("\"node_count\":[[0,2],[1000000000,4],[2000000000,2]]"));
        // Structural sanity: balanced braces/brackets.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn peak_and_release_lag_come_from_the_node_series() {
        let r = report();
        assert_eq!(r.peak_nodes(), 4);
        assert_eq!(r.release_lag(2, 1_500_000_000), Some(500_000_000));
        assert_eq!(r.release_lag(1, 0), None);
    }

    #[test]
    fn action_signatures_carry_the_target_region() {
        assert_eq!(action_signature(&ScaleAction::add(2)), "add+2");
        assert_eq!(
            action_signature(&ScaleAction::add_in(2, RegionId(1))),
            "add+2@r1"
        );
        assert!(action_json(&ScaleAction::add_in(2, RegionId(1))).contains("\"region\":1"));
        assert!(action_json(&ScaleAction::add(2)).contains("\"region\":null"));
    }

    #[test]
    fn decision_signature_labels_policy_actions() {
        let r = report();
        assert_eq!(r.decision_signature(), vec![(1, "remove-1".to_string())]);
        assert_eq!(r.scale_action_count(), 1);
        assert_eq!(
            r.first_action_at(0, |a| matches!(a, ScaleAction::RemoveNodes { .. })),
            Some(1_000_000_000)
        );
    }
}
