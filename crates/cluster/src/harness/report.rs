//! The unified [`RunReport`]: one result shape for every scenario on
//! every runner.
//!
//! The report carries the full controller decision log — one
//! [`DecisionRecord`] per control tick and per scripted event, each with
//! an observation digest (windowed throughput/p99, per-node CPU, $/hr
//! burn), the chosen [`ScaleAction`] if any, and the measured actuation
//! latency — plus the end-of-run [`MetricsSnapshot`] (including Meta
//! Cost). Reports serialize to JSON without external dependencies; set
//! `MARLIN_REPORT_JSON=<path>` and every bench target writes its reports
//! there as a machine-readable artifact.

use crate::harness::runner::{MetricsSnapshot, TelemetrySection};
use marlin_autoscaler::{ForecastSample, Observation, RegionLoad, ScaleAction};
use marlin_sim::Nanos;
use marlin_telemetry::CoordBreakdown;

/// What produced a log entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionSource {
    /// A controller tick (the policy decided; `action` may be `None`).
    Policy,
    /// A scripted scale action from the scenario.
    Script,
    /// An injected fault.
    Fault,
    /// A plain observation sample (scripted runs without a policy).
    Sample,
}

impl DecisionSource {
    fn as_str(self) -> &'static str {
        match self {
            DecisionSource::Policy => "policy",
            DecisionSource::Script => "script",
            DecisionSource::Fault => "fault",
            DecisionSource::Sample => "sample",
        }
    }
}

/// The observation summary attached to every log entry — the windowed
/// series behind each figure, sampled at the control cadence.
#[derive(Clone, Debug)]
pub struct ObservationDigest {
    /// Live member count.
    pub live_nodes: u32,
    /// Committed user transactions per second over the window.
    pub throughput_tps: f64,
    /// p99 commit latency over the window.
    pub p99_latency: Nanos,
    /// Mean CPU utilization across live nodes.
    pub mean_utilization: f64,
    /// Mean offered work beyond capacity (queue build-up).
    pub queue_depth: f64,
    /// Current burn rate, $/hour.
    pub dollars_per_hour: f64,
    /// Per-node CPU utilization `(node id, rho)`.
    pub node_utilization: Vec<(u32, f64)>,
    /// Per-region digests (node counts, utilization, throughput, and
    /// spend split by placement) — the §6.5 per-region series.
    pub regions: Vec<RegionLoad>,
}

impl From<&Observation> for ObservationDigest {
    fn from(obs: &Observation) -> Self {
        ObservationDigest {
            live_nodes: obs.live_nodes,
            throughput_tps: obs.throughput_tps,
            p99_latency: obs.p99_latency,
            mean_utilization: obs.mean_utilization,
            queue_depth: obs.queue_depth,
            dollars_per_hour: obs.dollars_per_hour,
            node_utilization: obs
                .node_loads
                .iter()
                .filter(|n| n.alive)
                .map(|n| (n.node.0, n.utilization))
                .collect(),
            regions: obs.region_loads.clone(),
        }
    }
}

/// One entry of the decision log.
#[derive(Clone, Debug)]
pub struct DecisionRecord {
    /// Control tick index (0 for scripted events between ticks).
    pub tick: u64,
    /// Virtual time of the entry.
    pub at: Nanos,
    /// What produced it.
    pub source: DecisionSource,
    /// Cluster health at the decision instant.
    pub observation: ObservationDigest,
    /// The action taken, if any.
    pub action: Option<ScaleAction>,
    /// Forecast-vs-actual snapshots behind this decision — one per
    /// forecasting (sub-)policy (per region under regional composition);
    /// empty for non-forecasting policies, scripted events, and faults.
    pub forecasts: Vec<ForecastSample>,
    /// Wall-clock time spent actuating (real protocol execution on the
    /// synchronous runtime; scheduling cost in the simulator).
    pub actuation_micros: u64,
}

/// End-of-run forecast accuracy: every prediction in the decision log,
/// matured against the actual demand its region later reported.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ForecastAccuracy {
    /// Predictions that matured inside the horizon.
    pub samples: u64,
    /// Mean absolute percentage error over them (0 = perfect).
    pub mape: f64,
    /// Signed mean relative error (positive = over-forecasting).
    pub bias: f64,
    /// Decision ticks on which the policy fell back to its inner
    /// reactive policy (model cold or error above the guard).
    pub fallback_ticks: u64,
}

impl ForecastAccuracy {
    /// Score every forecast in `log` against the actual demand later
    /// recorded for the same region, matching each prediction's due time
    /// to the first record at or past it that carries that region's
    /// sample. `None` when the log carries no forecasts (the run was not
    /// predictive).
    #[must_use]
    pub fn from_log(log: &[DecisionRecord]) -> Option<ForecastAccuracy> {
        // Per-region actual-demand series, in log order.
        let mut pending: Vec<(Option<u16>, Nanos, f64)> = Vec::new();
        let mut fallback_ticks = 0u64;
        let (mut n, mut abs_sum, mut signed_sum) = (0u64, 0.0f64, 0.0f64);
        let mut any = false;
        for record in log {
            for sample in &record.forecasts {
                any = true;
                // Distress ticks report a demand known to be gated
                // artificially low (the policy froze its own tracker for
                // exactly this reason) — scoring predictions against it
                // would inflate the end-of-run MAPE with samples the
                // design says must not count. The predictions stay
                // pending and mature on the first healthy sample.
                if sample.distressed {
                    continue;
                }
                let region = sample.region.map(|r| r.0);
                // Mature every prediction for this region that is due,
                // with the same relative-error floor the in-policy
                // tracker applies.
                let mut i = 0;
                while i < pending.len() {
                    let (p_region, due, predicted) = pending[i];
                    if p_region == region && due <= sample.at {
                        pending.swap_remove(i);
                        let err = marlin_autoscaler::relative_error(predicted, sample.demand);
                        n += 1;
                        abs_sum += err.abs();
                        signed_sum += err;
                    } else {
                        i += 1;
                    }
                }
                if sample.predicted.is_finite() {
                    pending.push((region, sample.at + sample.lead, sample.predicted));
                }
            }
            if record.forecasts.iter().any(|s| s.fallback) {
                fallback_ticks += 1;
            }
        }
        any.then_some(ForecastAccuracy {
            samples: n,
            mape: if n > 0 { abs_sum / n as f64 } else { f64::NAN },
            bias: if n > 0 {
                signed_sum / n as f64
            } else {
                f64::NAN
            },
            fallback_ticks,
        })
    }
}

/// The unified result of one scenario run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend legend name ("Marlin", "S-ZK", ...).
    pub backend: String,
    /// Runner name ("cluster-sim", "local-cluster").
    pub runner: String,
    /// Policy name, if the run was closed-loop.
    pub policy: Option<String>,
    /// Which CPU congestion model produced the latency/utilization
    /// numbers ("analytic" or "per-request"; meaningful on the
    /// simulator — `LocalRunner` synthesizes observations, but the
    /// scenario's choice is recorded either way).
    pub cpu_model: String,
    /// The deterministic seed the run used.
    pub seed: u64,
    /// End of simulated time.
    pub horizon: Nanos,
    /// The full decision log (every control tick + scripted event).
    pub log: Vec<DecisionRecord>,
    /// Forecast accuracy over the run (`None` unless the policy
    /// forecasts): matured MAPE/bias plus how many ticks fell back to
    /// reactive behavior.
    pub forecast: Option<ForecastAccuracy>,
    /// End-of-run totals.
    pub metrics: MetricsSnapshot,
    /// Observability numbers, present only when telemetry was enabled
    /// for the run. `None` keeps the JSON key out entirely, so
    /// telemetry-off reports stay bit-identical to historical ones (the
    /// profiler's wall-clock numbers are host-dependent).
    pub telemetry: Option<TelemetrySection>,
}

impl RunReport {
    /// Entries where an action was actually taken, in order.
    #[must_use]
    pub fn actions(&self) -> Vec<&DecisionRecord> {
        self.log.iter().filter(|r| r.action.is_some()).collect()
    }

    /// Scale actions (adds/removes, not rebalances) taken by the policy.
    #[must_use]
    pub fn scale_action_count(&self) -> usize {
        self.log
            .iter()
            .filter(|r| r.source == DecisionSource::Policy)
            .filter(|r| {
                matches!(
                    r.action,
                    Some(ScaleAction::AddNodes { .. } | ScaleAction::RemoveNodes { .. })
                )
            })
            .count()
    }

    /// Virtual time of the first action satisfying `pred` at or after
    /// `t`.
    #[must_use]
    pub fn first_action_at(&self, t: Nanos, pred: impl Fn(&ScaleAction) -> bool) -> Option<Nanos> {
        self.log
            .iter()
            .filter(|r| r.at >= t)
            .find(|r| r.action.as_ref().is_some_and(&pred))
            .map(|r| r.at)
    }

    /// Peak live node count over the run.
    #[must_use]
    pub fn peak_nodes(&self) -> u32 {
        self.metrics.peak_nodes()
    }

    /// Scale-in release lag after `after` (see
    /// [`MetricsSnapshot::release_lag`]).
    #[must_use]
    pub fn release_lag(&self, base: u32, after: Nanos) -> Option<Nanos> {
        self.metrics.release_lag(base, after)
    }

    /// Policy decision ticks whose observed p99 exceeded `ceiling` — the
    /// SLO-violation count the predictive-vs-reactive comparison tables
    /// report.
    #[must_use]
    pub fn slo_violation_ticks(&self, ceiling: Nanos) -> usize {
        self.log
            .iter()
            .filter(|r| r.source == DecisionSource::Policy)
            .filter(|r| r.observation.p99_latency > ceiling)
            .count()
    }

    /// Node-seconds of capacity held over the run, integrated from the
    /// exact node-count series — the "node cost" axis of the
    /// SLO-violations-vs-cost frontier.
    #[must_use]
    pub fn node_seconds(&self) -> f64 {
        let series = &self.metrics.node_count;
        let mut total = 0.0;
        for w in series.windows(2) {
            total += w[0].1 * (w[1].0 - w[0].0) as f64;
        }
        if let Some(&(t, v)) = series.last() {
            total += v * self.horizon.saturating_sub(t) as f64;
        }
        total / marlin_sim::SECOND as f64
    }

    /// The compact `(tick, action)` signature of the policy's decisions —
    /// what the runner-parity test compares across backends.
    #[must_use]
    pub fn decision_signature(&self) -> Vec<(u64, String)> {
        self.log
            .iter()
            .filter(|r| r.source == DecisionSource::Policy)
            .filter_map(|r| r.action.as_ref().map(|a| (r.tick, action_signature(a))))
            .collect()
    }

    /// Serialize the report (log and metrics included) to JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 256 * self.log.len());
        out.push('{');
        field(&mut out, "scenario", &json_str(&self.scenario));
        field(&mut out, "backend", &json_str(&self.backend));
        field(&mut out, "runner", &json_str(&self.runner));
        let policy = match &self.policy {
            Some(p) => json_str(p),
            None => "null".into(),
        };
        field(&mut out, "policy", &policy);
        field(&mut out, "cpu_model", &json_str(&self.cpu_model));
        field(&mut out, "seed", &self.seed.to_string());
        field(&mut out, "horizon_ns", &self.horizon.to_string());
        let accuracy = match &self.forecast {
            Some(f) => format!(
                "{{\"samples\":{},\"mape\":{},\"bias\":{},\"fallback_ticks\":{}}}",
                f.samples,
                json_f64(f.mape),
                json_f64(f.bias),
                f.fallback_ticks
            ),
            None => "null".into(),
        };
        field(&mut out, "forecast_accuracy", &accuracy);
        let log: Vec<String> = self.log.iter().map(record_json).collect();
        field(&mut out, "log", &format!("[{}]", log.join(",")));
        if let Some(t) = &self.telemetry {
            field(&mut out, "telemetry", &telemetry_json(t));
        }
        out.push_str("\"metrics\":");
        out.push_str(&metrics_json(&self.metrics));
        out.push('}');
        out
    }
}

/// A short, comparison-friendly label of an action ("add+8",
/// "add+2@r1" for a region-targeted scale-out, "remove-2",
/// "rebalance*5").
#[must_use]
pub fn action_signature(action: &ScaleAction) -> String {
    match action {
        ScaleAction::AddNodes {
            count,
            region: Some(r),
        } => format!("add+{count}@r{}", r.0),
        ScaleAction::AddNodes {
            count,
            region: None,
        } => format!("add+{count}"),
        ScaleAction::RemoveNodes { victims } => format!("remove-{}", victims.len()),
        ScaleAction::Rebalance { moves } => format!("rebalance*{}", moves.len()),
    }
}

/// If `MARLIN_REPORT_JSON` is set, write `reports` there as a JSON array
/// and return the path. Every bench target calls this so figure runs
/// leave machine-readable artifacts including the decision logs.
///
/// Reports *accumulate*: if the file already holds an array written by
/// this function (e.g. an earlier target of a `cargo bench` sweep), the
/// new reports are appended to it. Delete the file to start fresh.
pub fn maybe_write_json(reports: &[RunReport]) -> Option<String> {
    let path = std::env::var("MARLIN_REPORT_JSON")
        .ok()
        .filter(|p| !p.is_empty())?;
    let body = reports
        .iter()
        .map(RunReport::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    // Splice into an existing array (our own writer's format) so a
    // multi-target bench run keeps every figure's reports.
    let doc = match std::fs::read_to_string(&path) {
        Ok(existing) => match existing.trim_end().strip_suffix(']') {
            Some(head) if head.trim() == "[" => format!("[{body}]\n"),
            Some(head) => format!("{head},\n{body}]\n"),
            None => format!("[{body}]\n"),
        },
        Err(_) => format!("[{body}]\n"),
    };
    match std::fs::write(&path, doc) {
        Ok(()) => {
            println!("wrote {} RunReport(s) to {path}", reports.len());
            Some(path)
        }
        Err(e) => {
            eprintln!("MARLIN_REPORT_JSON: cannot write {path}: {e}");
            None
        }
    }
}

// -- JSON plumbing (no serde in the offline build) --------------------------

fn field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
    out.push(',');
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

fn json_pairs_u32(pairs: &[(u32, f64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|&(k, v)| format!("[{k},{}]", json_f64(v)))
        .collect();
    format!("[{}]", cells.join(","))
}

fn json_pairs_nanos(pairs: &[(Nanos, f64)]) -> String {
    let cells: Vec<String> = pairs
        .iter()
        .map(|&(t, v)| format!("[{t},{}]", json_f64(v)))
        .collect();
    format!("[{}]", cells.join(","))
}

fn action_json(action: &ScaleAction) -> String {
    match action {
        ScaleAction::AddNodes { count, region } => {
            let region = region.map_or("null".into(), |r| r.0.to_string());
            format!("{{\"kind\":\"add_nodes\",\"count\":{count},\"region\":{region}}}")
        }
        ScaleAction::RemoveNodes { victims } => {
            let ids: Vec<String> = victims.iter().map(|n| n.0.to_string()).collect();
            format!(
                "{{\"kind\":\"remove_nodes\",\"victims\":[{}]}}",
                ids.join(",")
            )
        }
        ScaleAction::Rebalance { moves } => {
            let cells: Vec<String> = moves
                .iter()
                .map(|m| format!("[{},{},{}]", m.granule.0, m.src.0, m.dst.0))
                .collect();
            format!("{{\"kind\":\"rebalance\",\"moves\":[{}]}}", cells.join(","))
        }
    }
}

fn forecast_json(s: &ForecastSample) -> String {
    let region = s.region.map_or("null".into(), |r| r.0.to_string());
    format!(
        "{{\"region\":{region},\"demand\":{},\"predicted\":{},\"lead_ns\":{},\
         \"rolling_mape\":{},\"bias\":{},\"fallback\":{},\"distressed\":{}}}",
        json_f64(s.demand),
        json_f64(s.predicted),
        s.lead,
        json_f64(s.rolling_mape),
        json_f64(s.bias),
        s.fallback,
        s.distressed,
    )
}

fn region_loads_json(regions: &[RegionLoad]) -> String {
    let cells: Vec<String> = regions
        .iter()
        .map(|r| {
            format!(
                "{{\"region\":{},\"live_nodes\":{},\"mean_utilization\":{},\
                 \"queue_depth\":{},\"p99_latency_ns\":{},\"throughput_tps\":{},\
                 \"dollars_per_hour\":{}}}",
                r.region.0,
                r.live_nodes,
                json_f64(r.mean_utilization),
                json_f64(r.queue_depth),
                r.p99_latency,
                json_f64(r.throughput_tps),
                json_f64(r.dollars_per_hour),
            )
        })
        .collect();
    format!("[{}]", cells.join(","))
}

fn record_json(r: &DecisionRecord) -> String {
    let mut out = String::with_capacity(256);
    out.push('{');
    field(&mut out, "tick", &r.tick.to_string());
    field(&mut out, "at_ns", &r.at.to_string());
    field(&mut out, "source", &json_str(r.source.as_str()));
    let o = &r.observation;
    let obs = format!(
        "{{\"live_nodes\":{},\"throughput_tps\":{},\"p99_latency_ns\":{},\
         \"mean_utilization\":{},\"queue_depth\":{},\"dollars_per_hour\":{},\
         \"node_utilization\":{},\"regions\":{}}}",
        o.live_nodes,
        json_f64(o.throughput_tps),
        o.p99_latency,
        json_f64(o.mean_utilization),
        json_f64(o.queue_depth),
        json_f64(o.dollars_per_hour),
        json_pairs_u32(&o.node_utilization),
        region_loads_json(&o.regions),
    );
    field(&mut out, "observation", &obs);
    let action = match &r.action {
        Some(a) => action_json(a),
        None => "null".into(),
    };
    field(&mut out, "action", &action);
    if !r.forecasts.is_empty() {
        let cells: Vec<String> = r.forecasts.iter().map(forecast_json).collect();
        field(&mut out, "forecasts", &format!("[{}]", cells.join(",")));
    }
    out.push_str("\"actuation_micros\":");
    out.push_str(&r.actuation_micros.to_string());
    out.push('}');
    out
}

fn metrics_json(m: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(512);
    out.push('{');
    field(&mut out, "live_nodes", &m.live_nodes.to_string());
    field(&mut out, "commits", &m.commits.to_string());
    field(&mut out, "abort_ratio", &json_f64(m.abort_ratio));
    field(&mut out, "mean_latency_ns", &json_f64(m.mean_latency));
    field(&mut out, "p99_latency_ns", &m.p99_latency.to_string());
    field(&mut out, "migrations", &m.migrations.to_string());
    field(
        &mut out,
        "migration_duration_ns",
        &m.migration_duration.to_string(),
    );
    field(
        &mut out,
        "migration_throughput",
        &json_f64(m.migration_throughput),
    );
    field(
        &mut out,
        "migration_latency_mean_ns",
        &json_f64(m.migration_latency.mean),
    );
    field(
        &mut out,
        "migration_latency_p99_ns",
        &m.migration_latency.p99.to_string(),
    );
    field(
        &mut out,
        "membership_commits",
        &m.membership_commits.to_string(),
    );
    field(
        &mut out,
        "membership_retries",
        &m.membership_retries.to_string(),
    );
    field(
        &mut out,
        "membership_mean_latency_ns",
        &json_f64(m.membership_mean_latency),
    );
    field(&mut out, "db_cost", &json_f64(m.db_cost));
    field(&mut out, "meta_cost", &json_f64(m.meta_cost));
    field(
        &mut out,
        "coordination",
        &coordination_json(&m.coordination),
    );
    field(&mut out, "total_cost", &json_f64(m.total_cost));
    field(&mut out, "cost_per_mtxn", &json_f64(m.cost_per_mtxn));
    let regions: Vec<String> = m
        .region_breakdown
        .iter()
        .map(|r| {
            let nodes: Vec<String> = r.nodes.iter().map(u32::to_string).collect();
            format!(
                "{{\"region\":{},\"live_nodes\":{},\"nodes\":[{}],\
                 \"commits\":{},\"db_cost\":{}}}",
                r.region,
                r.live_nodes,
                nodes.join(","),
                r.commits,
                json_f64(r.db_cost),
            )
        })
        .collect();
    field(
        &mut out,
        "region_breakdown",
        &format!("[{}]", regions.join(",")),
    );
    field(&mut out, "blame", &blame_json(&m.blame));
    let exemplars: Vec<String> = m.tail_exemplars.iter().map(exemplar_json).collect();
    field(
        &mut out,
        "tail_exemplars",
        &format!("[{}]", exemplars.join(",")),
    );
    out.push_str("\"node_count\":");
    out.push_str(&json_pairs_nanos(&m.node_count));
    out.push('}');
    out
}

fn blame_json(b: &crate::metrics::Blame) -> String {
    format!(
        "{{\"queue_wait_ns\":{},\"service_ns\":{},\"network_ns\":{},\
         \"network_overlay_ns\":{},\"migration_stall_ns\":{},\
         \"provision_lead_ns\":{},\"retry_backoff_ns\":{}}}",
        b.queue_wait,
        b.service,
        b.network,
        b.network_overlay,
        b.migration_stall,
        b.provision_lead,
        b.retry_backoff,
    )
}

fn exemplar_json(e: &crate::metrics::TailExemplar) -> String {
    format!(
        "{{\"at_ns\":{},\"latency_ns\":{},\"granule\":{},\"node\":{},\
         \"region\":{},\"weight\":{},\"blame\":{}}}",
        e.at,
        e.latency,
        e.granule,
        e.node,
        e.region,
        e.weight,
        blame_json(&e.blame),
    )
}

fn coordination_json(c: &CoordBreakdown) -> String {
    let o = &c.ops;
    format!(
        "{{\"commit_cas_attempts\":{},\"commit_cas_retries\":{},\
         \"migration_cas_attempts\":{},\"migration_cas_retries\":{},\
         \"membership_cas_attempts\":{},\"membership_cas_retries\":{},\
         \"service_writes\":{},\"service_reads\":{},\
         \"watch_notifications\":{},\"write_dollars\":{},\
         \"read_dollars\":{},\"uptime_dollars\":{},\"meta_dollars\":{}}}",
        o.commit_cas_attempts,
        o.commit_cas_retries,
        o.migration_cas_attempts,
        o.migration_cas_retries,
        o.membership_cas_attempts,
        o.membership_cas_retries,
        o.service_writes,
        o.service_reads,
        o.watch_notifications,
        json_f64(c.write_dollars),
        json_f64(c.read_dollars),
        json_f64(c.uptime_dollars),
        json_f64(c.meta_dollars()),
    )
}

fn telemetry_json(t: &TelemetrySection) -> String {
    let phases: Vec<String> = t
        .profile
        .phases
        .iter()
        .map(|p| {
            format!(
                "{{\"name\":{},\"wall_ns\":{},\"calls\":{}}}",
                json_str(p.name),
                p.wall_nanos,
                p.calls
            )
        })
        .collect();
    format!(
        "{{\"trace_events\":{},\"trace_dropped\":{},\"virtual_ns\":{},\
         \"wall_ns\":{},\"virtual_per_wall\":{},\"events\":{},\
         \"queue_depth_mean\":{},\"queue_depth_max\":{},\"phases\":[{}]}}",
        t.trace_events,
        t.trace_dropped,
        t.virtual_nanos,
        t.profile.total_wall_nanos,
        json_f64(t.virtual_per_wall()),
        t.profile.events,
        json_f64(t.profile.queue_depth_mean),
        t.profile.queue_depth_max,
        phases.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::runner::RegionBreakdown;
    use marlin_common::{NodeId, RegionId};
    use marlin_sim::Summary;

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            live_nodes: 4,
            commits: 100,
            abort_ratio: 0.01,
            mean_latency: 1.0e6,
            p99_latency: 5_000_000,
            migrations: 7,
            migration_duration: 2_000_000_000,
            migration_throughput: 3.5,
            migration_latency: Summary {
                count: 7,
                mean: 1.5e6,
                p50: 1_000_000,
                p99: 2_000_000,
                max: 3_000_000,
            },
            membership_commits: 0,
            membership_retries: 0,
            membership_mean_latency: 0.0,
            db_cost: 0.12,
            meta_cost: 0.0,
            coordination: CoordBreakdown::attribute(
                marlin_telemetry::CoordOps {
                    commit_cas_attempts: 100,
                    commit_cas_retries: 3,
                    migration_cas_attempts: 14,
                    ..marlin_telemetry::CoordOps::default()
                },
                0.0,
            ),
            total_cost: 0.12,
            cost_per_mtxn: 1.2,
            node_count: vec![(0, 2.0), (1_000_000_000, 4.0), (2_000_000_000, 2.0)],
            region_breakdown: vec![
                RegionBreakdown {
                    region: 0,
                    live_nodes: 2,
                    nodes: vec![0, 2],
                    commits: 60,
                    db_cost: 0.08,
                },
                RegionBreakdown {
                    region: 1,
                    live_nodes: 2,
                    nodes: vec![1, 3],
                    commits: 40,
                    db_cost: 0.04,
                },
            ],
            blame: crate::metrics::Blame {
                queue_wait: 10,
                service: 20,
                network: 30,
                network_overlay: 4,
                migration_stall: 5,
                provision_lead: 6,
                retry_backoff: 25,
            },
            tail_exemplars: vec![crate::metrics::TailExemplar {
                at: 2_500_000_000,
                latency: 5_000_000,
                granule: 42,
                node: 1,
                region: 0,
                weight: 1,
                blame: crate::metrics::Blame {
                    queue_wait: 1_000_000,
                    service: 4_000_000,
                    ..crate::metrics::Blame::default()
                },
            }],
        }
    }

    fn report() -> RunReport {
        RunReport {
            scenario: "unit \"quoted\"".into(),
            backend: "Marlin".into(),
            runner: "cluster-sim".into(),
            policy: Some("reactive".into()),
            cpu_model: "analytic".into(),
            seed: 42,
            horizon: 3_000_000_000,
            log: vec![DecisionRecord {
                tick: 1,
                at: 1_000_000_000,
                source: DecisionSource::Policy,
                observation: ObservationDigest {
                    live_nodes: 2,
                    throughput_tps: 120.5,
                    p99_latency: 9_000_000,
                    mean_utilization: 0.9,
                    queue_depth: 0.0,
                    dollars_per_hour: 0.384,
                    node_utilization: vec![(0, 0.92), (1, 0.88)],
                    regions: vec![RegionLoad {
                        region: RegionId(0),
                        live_nodes: 2,
                        mean_utilization: 0.9,
                        queue_depth: 0.0,
                        p99_latency: 9_000_000,
                        throughput_tps: 120.5,
                        dollars_per_hour: 0.384,
                    }],
                },
                action: Some(ScaleAction::RemoveNodes {
                    victims: vec![NodeId(3)],
                }),
                forecasts: Vec::new(),
                actuation_micros: 12,
            }],
            forecast: None,
            metrics: snapshot(),
            telemetry: None,
        }
    }

    /// A two-tick predictive log: a perfect prediction issued at t=1s
    /// maturing at t=2s, plus one cold fallback tick.
    fn forecast_log() -> Vec<DecisionRecord> {
        let record = |tick: u64, at: Nanos, sample: ForecastSample| DecisionRecord {
            tick,
            at,
            source: DecisionSource::Policy,
            observation: report().log[0].observation.clone(),
            action: None,
            forecasts: vec![sample],
            actuation_micros: 0,
        };
        vec![
            record(
                1,
                1_000_000_000,
                ForecastSample {
                    region: None,
                    at: 1_000_000_000,
                    demand: 4.0,
                    predicted: 6.0,
                    lead: 1_000_000_000,
                    rolling_mape: f64::NAN,
                    bias: f64::NAN,
                    fallback: true,
                    distressed: false,
                },
            ),
            record(
                2,
                2_000_000_000,
                ForecastSample {
                    region: None,
                    at: 2_000_000_000,
                    demand: 4.0,
                    predicted: 4.0,
                    lead: 1_000_000_000,
                    rolling_mape: 0.5,
                    bias: 0.5,
                    fallback: false,
                    distressed: false,
                },
            ),
        ]
    }

    #[test]
    fn json_round_trip_contains_the_decision_log() {
        let j = report().to_json();
        assert!(j.contains("\"scenario\":\"unit \\\"quoted\\\"\""));
        assert!(j.contains("\"cpu_model\":\"analytic\""));
        assert!(j.contains("\"kind\":\"remove_nodes\""));
        assert!(j.contains("\"victims\":[3]"));
        assert!(j.contains("\"node_utilization\":[[0,0.92],[1,0.88]]"));
        assert!(j.contains("\"meta_cost\":0"));
        // The per-region split rides in both the digest and the metrics.
        assert!(j.contains("\"regions\":[{\"region\":0,\"live_nodes\":2,"));
        assert!(j.contains(
            "\"region_breakdown\":[{\"region\":0,\"live_nodes\":2,\"nodes\":[0,2],\
             \"commits\":60,\"db_cost\":0.08}"
        ));
        assert!(j.contains("\"node_count\":[[0,2],[1000000000,4],[2000000000,2]]"));
        // The attribution section sits between region_breakdown and
        // node_count: cumulative blame plus the slowest-commit exemplars.
        assert!(j.contains(
            "\"blame\":{\"queue_wait_ns\":10,\"service_ns\":20,\"network_ns\":30,\
             \"network_overlay_ns\":4,\"migration_stall_ns\":5,\
             \"provision_lead_ns\":6,\"retry_backoff_ns\":25}"
        ));
        assert!(j.contains(
            "\"tail_exemplars\":[{\"at_ns\":2500000000,\"latency_ns\":5000000,\
             \"granule\":42,\"node\":1,\"region\":0,\"weight\":1,\
             \"blame\":{\"queue_wait_ns\":1000000,\"service_ns\":4000000,"
        ));
        // Structural sanity: balanced braces/brackets.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn coordination_breakdown_round_trips_through_metrics_json() {
        let j = report().to_json();
        // The coordination object rides inside metrics, raw counters and
        // attributed dollars alike (all-zero dollars here: Marlin).
        assert!(j.contains(
            "\"coordination\":{\"commit_cas_attempts\":100,\"commit_cas_retries\":3,\
             \"migration_cas_attempts\":14,\"migration_cas_retries\":0,\
             \"membership_cas_attempts\":0,\"membership_cas_retries\":0,\
             \"service_writes\":0,\"service_reads\":0,\"watch_notifications\":0,\
             \"write_dollars\":0,\"read_dollars\":0,\"uptime_dollars\":0,\
             \"meta_dollars\":0}"
        ));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn telemetry_section_is_omitted_when_none_and_escaped_when_present() {
        // Telemetry off: the key must not exist at all, keeping the JSON
        // bit-identical to pre-telemetry reports.
        let j = report().to_json();
        assert!(!j.contains("\"telemetry\""));

        let mut r = report();
        r.telemetry = Some(TelemetrySection {
            trace_events: 12,
            trace_dropped: 0,
            profile: marlin_telemetry::ProfileSummary {
                phases: vec![marlin_telemetry::PhaseStat {
                    // Phase names are static today, but the serializer
                    // must escape regardless.
                    name: "event:\"odd\"\nname",
                    wall_nanos: 1_000,
                    calls: 2,
                }],
                total_wall_nanos: 2_000_000,
                events: 40,
                queue_depth_mean: 3.5,
                queue_depth_max: 9,
            },
            virtual_nanos: 3_000_000_000,
        });
        let j = r.to_json();
        assert!(j.contains("\"telemetry\":{\"trace_events\":12,\"trace_dropped\":0,"));
        assert!(j.contains("\"virtual_ns\":3000000000,\"wall_ns\":2000000"));
        // 3e9 virtual ns over 2e6 wall ns = 1500x real time.
        assert!(j.contains("\"virtual_per_wall\":1500,"));
        assert!(j.contains("\"queue_depth_mean\":3.5,\"queue_depth_max\":9"));
        assert!(j.contains("{\"name\":\"event:\\\"odd\\\"\\nname\",\"wall_ns\":1000,\"calls\":2}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn empty_phase_list_serializes_as_an_empty_array() {
        let mut r = report();
        r.telemetry = Some(TelemetrySection {
            trace_events: 0,
            trace_dropped: 0,
            profile: marlin_telemetry::ProfileSummary::default(),
            virtual_nanos: 0,
        });
        let j = r.to_json();
        assert!(j.contains("\"phases\":[]"));
        // No wall time recorded → speedup reports 0, not NaN/null.
        assert!(j.contains("\"virtual_per_wall\":0,"));
    }

    #[test]
    fn peak_and_release_lag_come_from_the_node_series() {
        let r = report();
        assert_eq!(r.peak_nodes(), 4);
        assert_eq!(r.release_lag(2, 1_500_000_000), Some(500_000_000));
        assert_eq!(r.release_lag(1, 0), None);
    }

    #[test]
    fn action_signatures_carry_the_target_region() {
        assert_eq!(action_signature(&ScaleAction::add(2)), "add+2");
        assert_eq!(
            action_signature(&ScaleAction::add_in(2, RegionId(1))),
            "add+2@r1"
        );
        assert!(action_json(&ScaleAction::add_in(2, RegionId(1))).contains("\"region\":1"));
        assert!(action_json(&ScaleAction::add(2)).contains("\"region\":null"));
    }

    #[test]
    fn forecast_accuracy_matures_predictions_against_later_demand() {
        assert_eq!(
            ForecastAccuracy::from_log(&report().log),
            None,
            "a non-predictive log has no accuracy to report"
        );
        let acc = ForecastAccuracy::from_log(&forecast_log()).expect("forecasts present");
        // One matured prediction (6.0 predicted for t=2s vs 4.0 actual):
        // relative error (6-4)/4 = 0.5; one fallback tick.
        assert_eq!(acc.samples, 1);
        assert!((acc.mape - 0.5).abs() < 1e-12);
        assert!((acc.bias - 0.5).abs() < 1e-12);
        assert_eq!(acc.fallback_ticks, 1);
    }

    #[test]
    fn distressed_samples_never_mature_predictions() {
        // The policy freezes its own tracker on distress ticks because
        // the measured demand is gated artificially low; the end-of-run
        // scorer must mirror that, holding the prediction pending until
        // the first healthy sample.
        let mut log = forecast_log();
        log[1].forecasts[0].distressed = true;
        log[1].forecasts[0].demand = 0.5; // gated reading
        let acc = ForecastAccuracy::from_log(&log).expect("forecasts present");
        assert_eq!(
            acc.samples, 0,
            "the only due sample was distressed — nothing matures"
        );
        assert!(acc.mape.is_nan());
        // A later healthy sample matures it against the real demand.
        let mut healthy = log[1].clone();
        healthy.at = 3_000_000_000;
        healthy.forecasts[0].at = 3_000_000_000;
        healthy.forecasts[0].distressed = false;
        healthy.forecasts[0].demand = 4.0;
        log.push(healthy);
        let acc = ForecastAccuracy::from_log(&log).expect("forecasts present");
        assert_eq!(acc.samples, 1);
        assert!(
            (acc.mape - 0.5).abs() < 1e-12,
            "scored against 4.0, not 0.5"
        );
    }

    #[test]
    fn forecasts_serialize_into_record_and_report_json() {
        let mut r = report();
        r.log = forecast_log();
        r.forecast = ForecastAccuracy::from_log(&r.log);
        let j = r.to_json();
        assert!(j.contains(
            "\"forecast_accuracy\":{\"samples\":1,\"mape\":0.5,\"bias\":0.5,\"fallback_ticks\":1}"
        ));
        assert!(j.contains("\"forecasts\":[{\"region\":null,\"demand\":4,\"predicted\":6,\"lead_ns\":1000000000,\"rolling_mape\":null,\"bias\":null,\"fallback\":true,\"distressed\":false}]"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Non-predictive reports keep a null accuracy and omit per-record
        // forecast arrays entirely.
        let j = report().to_json();
        assert!(j.contains("\"forecast_accuracy\":null"));
        assert!(!j.contains("\"forecasts\":["));
    }

    #[test]
    fn slo_violations_and_node_seconds_read_the_log_and_series() {
        let r = report();
        // The single policy tick observed p99 = 9 ms.
        assert_eq!(r.slo_violation_ticks(8_000_000), 1);
        assert_eq!(r.slo_violation_ticks(10_000_000), 0);
        // node_count: 2 nodes for 1 s, 4 for 1 s, 2 for the last 1 s of
        // the 3 s horizon → 8 node-seconds.
        assert!((r.node_seconds() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn decision_signature_labels_policy_actions() {
        let r = report();
        assert_eq!(r.decision_signature(), vec![(1, "remove-1".to_string())]);
        assert_eq!(r.scale_action_count(), 1);
        assert_eq!(
            r.first_action_at(0, |a| matches!(a, ScaleAction::RemoveNodes { .. })),
            Some(1_000_000_000)
        );
    }
}
