//! The unified experiment harness: one `Runner`/`Scenario`/`RunReport`
//! API across both execution backends.
//!
//! The paper's evaluation (§6.1.3) runs the same logical scenarios
//! against every coordination backend. This module makes that literal:
//!
//! - a [`Scenario`] is a declarative value — workload ([`Workload`],
//!   including Zipfian-skewed YCSB), client [`LoadTrace`], backend
//!   ([`CoordKind`]), an optional [`ScalingPolicy`] (closed-loop) or a
//!   scripted action schedule (the paper's fixed-timestamp
//!   reconfigurations), faults, and the control cadence — with one
//!   preset constructor per §6 figure;
//! - a [`Runner`] is an execution backend: [`SimRunner`] wraps the
//!   discrete-event [`ClusterSim`](crate::sim::ClusterSim)
//!   (performance: queueing, cold caches, migration contention),
//!   [`LocalRunner`] wraps the synchronous
//!   `LocalCluster` (safety: real reconfiguration transactions with
//!   I0–I4 asserted after every step);
//! - [`run`] is the only driver: it advances the runner, observes every
//!   control interval, lets the controller decide, applies scripted
//!   events, and assembles a [`RunReport`] — windowed throughput/p99,
//!   per-node CPU, $/hr burn, Meta Cost, and the **full controller
//!   decision log** (tick, observation digest, chosen action, actuation
//!   latency), serializable to JSON (`MARLIN_REPORT_JSON=<path>`).
//!
//! ```
//! use marlin_cluster::harness::{run, Scenario, SimRunner};
//! use marlin_cluster::params::CoordKind;
//!
//! let scenario = Scenario::ycsb_scale_out(CoordKind::Marlin, 1_000);
//! let mut runner = SimRunner::new(&scenario);
//! let report = run(scenario, &mut runner);
//! assert!(report.metrics.migrations > 0);
//! ```
//!
//! [`Workload`]: crate::sim::Workload
//! [`LoadTrace`]: marlin_workload::LoadTrace
//! [`CoordKind`]: crate::params::CoordKind
//! [`ScalingPolicy`]: marlin_autoscaler::ScalingPolicy

pub mod driver;
pub mod local_runner;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod sim_runner;

pub use driver::{run, run_with_series};
pub use local_runner::LocalRunner;
pub use report::{
    action_signature, maybe_write_json, DecisionRecord, DecisionSource, ForecastAccuracy,
    ObservationDigest, RunReport,
};
pub use runner::{Fault, MetricsSnapshot, RegionBreakdown, Runner, TelemetrySection};
pub use scenario::{expected_membership_updates, Scenario, OFFERED_PER_CLIENT};
pub use sim_runner::SimRunner;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CoordKind;
    use crate::sim::Workload;
    use marlin_autoscaler::ScaleAction;
    use marlin_common::NodeId;
    use marlin_sim::{MILLISECOND, SECOND};
    use marlin_workload::LoadTrace;

    fn small_scale_out(kind: CoordKind, granules: u64, threads: u32, horizon: u64) -> Scenario {
        Scenario::new("small-scale-out")
            .backend(kind)
            .workload(Workload::ycsb(granules))
            .trace(LoadTrace::constant(40))
            .initial_nodes(2)
            .threads_per_node(threads)
            .duration(horizon * SECOND)
            .action(2 * SECOND, ScaleAction::add(2))
    }

    /// The old `scale_out` smoke test: every granule ends on the right
    /// node, all migrations complete, the system commits throughout.
    #[test]
    fn small_scale_out_completes_and_balances() {
        let scenario = small_scale_out(CoordKind::Marlin, 800, 4, 20);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.metrics.live_nodes, 4);
        // Half the granules moved (2→4 nodes).
        assert_eq!(report.metrics.migrations, 400);
        assert!(
            report.metrics.commits > 1_000,
            "commits {}",
            report.metrics.commits
        );
        assert!(report.metrics.migration_duration > 0);
        let owners = runner.sim().owners();
        for n in 0..4u32 {
            let owned = owners.iter().filter(|&&o| o == n).count();
            assert!((150..=250).contains(&owned), "node {n} owns {owned}");
        }
        assert_eq!(report.metrics.meta_cost, 0.0, "Marlin has no Meta Cost");
        // The scripted action landed in the decision log.
        assert_eq!(report.actions().len(), 1);
        assert_eq!(
            report
                .log
                .iter()
                .filter(|r| r.source == DecisionSource::Script)
                .count(),
            1
        );
    }

    /// The old headline comparison: Marlin's migration storm finishes
    /// faster than S-ZK's and costs less per transaction.
    #[test]
    fn marlin_beats_szk_on_duration_and_cost() {
        let run_kind = |kind| {
            let scenario = small_scale_out(kind, 2_000, 24, 30);
            let mut runner = SimRunner::new(&scenario);
            run(scenario, &mut runner).metrics
        };
        let marlin = run_kind(CoordKind::Marlin);
        let szk = run_kind(CoordKind::ZkSmall);
        assert!(
            marlin.migration_duration < szk.migration_duration,
            "Marlin {:?} must beat S-ZK {:?}",
            marlin.migration_duration,
            szk.migration_duration
        );
        assert!(marlin.cost_per_mtxn < szk.cost_per_mtxn);
        assert!(marlin.meta_cost == 0.0 && szk.meta_cost > 0.0);
    }

    /// Runs are bit-for-bit reproducible for a fixed seed — including
    /// the decision log.
    #[test]
    fn determinism_under_fixed_seed() {
        let go = || {
            let scenario =
                small_scale_out(CoordKind::Marlin, 400, 2, 10).trace(LoadTrace::constant(10));
            let mut runner = SimRunner::new(&scenario);
            run(scenario, &mut runner)
        };
        let a = go();
        let b = go();
        assert_eq!(a.metrics.commits, b.metrics.commits);
        assert_eq!(a.metrics.migration_duration, b.metrics.migration_duration);
        assert_eq!(a.metrics.abort_ratio, b.metrics.abort_ratio);
        assert_eq!(a.decision_signature(), b.decision_signature());
        assert_eq!(a.metrics.node_count, b.metrics.node_count);
        // Everything but the wall-clock actuation timing is bit-identical.
        let strip = |r: &RunReport| {
            let mut r = r.clone();
            r.log.iter_mut().for_each(|e| e.actuation_micros = 0);
            r.to_json()
        };
        assert_eq!(strip(&a), strip(&b));
    }

    /// The old `dynamic` cycle: burst → scale-out, calm → scale-in, the
    /// added nodes released once drained.
    #[test]
    fn dynamic_cycle_scales_out_and_back_in() {
        let scenario = Scenario::new("dynamic-small")
            .backend(CoordKind::Marlin)
            .workload(Workload::ycsb(1_000))
            .trace(LoadTrace::spike(10, 20, 5 * SECOND, 15 * SECOND))
            .initial_nodes(2)
            .threads_per_node(4)
            .duration(40 * SECOND)
            .action(5 * SECOND, ScaleAction::add(2))
            .action(
                15 * SECOND,
                ScaleAction::RemoveNodes {
                    victims: vec![NodeId(2), NodeId(3)],
                },
            );
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.peak_nodes(), 4);
        assert_eq!(
            report.metrics.live_nodes, 2,
            "victims must be drained and released"
        );
        let lag = report
            .release_lag(2, 15 * SECOND)
            .expect("release lag observed");
        assert!(lag > 0);
        assert!(runner.sim().owners().iter().all(|&o| o < 2));
        // Both reconfigurations' migrations happened: out (500) + back (500).
        assert_eq!(report.metrics.migrations, 1_000);
    }

    /// The old ordering check: slower coordination releases nodes later.
    #[test]
    fn slower_coordination_releases_nodes_later() {
        let lag = |kind| {
            let scenario = Scenario::new("dynamic-lag")
                .backend(kind)
                .workload(Workload::ycsb(20_000))
                .trace(LoadTrace::spike(10, 20, 5 * SECOND, 25 * SECOND))
                .initial_nodes(2)
                .threads_per_node(24)
                .duration(90 * SECOND)
                .action(5 * SECOND, ScaleAction::add(2))
                .action(
                    25 * SECOND,
                    ScaleAction::RemoveNodes {
                        victims: vec![NodeId(2), NodeId(3)],
                    },
                );
            let mut runner = SimRunner::new(&scenario);
            run(scenario, &mut runner).release_lag(2, 25 * SECOND)
        };
        let marlin = lag(CoordKind::Marlin).expect("marlin releases");
        let szk = lag(CoordKind::ZkSmall).expect("szk releases");
        assert!(
            marlin < szk,
            "Marlin release lag ({marlin}ns) must beat S-ZK ({szk}ns)"
        );
    }

    /// The old membership stress checks, through the unified API.
    #[test]
    fn membership_stress_matches_offered_load_and_shows_the_occ_knee() {
        let (period, horizon) = (15 * SECOND, 50 * SECOND);
        let stress = |kind, members| {
            let scenario = Scenario::membership(kind, members, period, horizon);
            let mut runner = SimRunner::new(&scenario);
            run(scenario, &mut runner).metrics
        };
        // Low contention: every burst inside the horizon commits fully.
        let quiet = stress(CoordKind::Marlin, 8);
        assert_eq!(
            quiet.membership_commits,
            expected_membership_updates(8, period, horizon)
        );
        assert!(
            quiet.membership_mean_latency < (50 * MILLISECOND) as f64,
            "latency {}",
            quiet.membership_mean_latency
        );
        // High contention: OCC retries and latency degrade (Figure 15).
        let stormy = stress(CoordKind::Marlin, 512);
        assert!(
            stormy.membership_retries > quiet.membership_retries.max(1) * 10,
            "retries {} vs {}",
            stormy.membership_retries,
            quiet.membership_retries
        );
        assert!(stormy.membership_mean_latency > quiet.membership_mean_latency);
        // ZK serializes without client retries.
        let zk = stress(CoordKind::ZkSmall, 256);
        assert_eq!(zk.membership_retries, 0);
        assert_eq!(
            zk.membership_commits,
            expected_membership_updates(256, period, horizon)
        );
    }

    fn small_spike(kind: CoordKind) -> Scenario {
        // ~0.012 node-capacity per closed-loop client: 8 clients idle
        // along at ~5% utilization, 160 saturate two 4-vCPU nodes
        // (≈96%), so the spike crosses the 80% watermark.
        let s = Scenario::new("autoscale-small")
            .backend(kind)
            .workload(Workload::ycsb(2_000))
            .trace(LoadTrace::spike(8, 160, 10 * SECOND, 40 * SECOND))
            .initial_nodes(2)
            .threads_per_node(4)
            .control_interval(2 * SECOND)
            .observe_window(4 * SECOND)
            .duration(70 * SECOND);
        let policy = s.reactive_policy(2, 4);
        s.policy(policy)
    }

    /// The old closed-loop autoscale test: the controller — not a script
    /// — rides the spike out and back.
    #[test]
    fn controller_scales_out_on_the_spike_and_back_in() {
        let scenario = small_spike(CoordKind::Marlin);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.peak_nodes(), 4, "the spike must reach max_nodes");
        assert_eq!(
            report.metrics.live_nodes, 2,
            "calm must drain back to min_nodes"
        );
        assert!(
            report.scale_action_count() >= 2,
            "at least one scale-out and one scale-in: {:?}",
            report.decision_signature()
        );
        let live = runner.sim().live_node_ids();
        assert!(
            runner.sim().owners().iter().all(|o| live.contains(o)),
            "granules drained to survivors"
        );
        assert!(
            report.metrics.migrations > 0,
            "scaling really migrated granules"
        );
    }

    #[test]
    fn quiet_load_never_triggers_scaling() {
        let scenario = small_spike(CoordKind::Marlin)
            .trace(LoadTrace::constant(8))
            .duration(30 * SECOND);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.metrics.live_nodes, 2);
        assert_eq!(
            report.scale_action_count(),
            0,
            "steady low load must not flap: {:?}",
            report.decision_signature()
        );
    }

    #[test]
    fn diurnal_cycles_scale_out_and_in_repeatedly() {
        let period = 60 * SECOND;
        let s = Scenario::new("diurnal-small")
            .backend(CoordKind::Marlin)
            .workload(Workload::ycsb(2_000))
            .trace(LoadTrace::diurnal(8, 160, period, 2 * period, 8))
            .initial_nodes(2)
            .threads_per_node(4)
            .control_interval(2 * SECOND)
            .observe_window(4 * SECOND)
            .duration(2 * period);
        let policy = s.reactive_policy(2, 4);
        let scenario = s.policy(policy);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert!(report.peak_nodes() > 2);
        let sig = report.decision_signature();
        let outs = sig.iter().filter(|(_, a)| a.starts_with("add")).count();
        let ins = sig.iter().filter(|(_, a)| a.starts_with("remove")).count();
        assert!(
            outs >= 2,
            "two diurnal peaks → two scale-outs, got {outs}: {sig:?}"
        );
        assert!(ins >= 2, "two troughs → two scale-ins, got {ins}: {sig:?}");
    }

    /// Fault injection drains the crashed node onto survivors (sim side).
    #[test]
    fn crash_fault_drains_the_victim_in_the_simulator() {
        let scenario = Scenario::new("crash-sim")
            .backend(CoordKind::Marlin)
            .workload(Workload::ycsb(600))
            .trace(LoadTrace::constant(10))
            .initial_nodes(3)
            .threads_per_node(4)
            .duration(20 * SECOND)
            .faults(vec![(5 * SECOND, Fault::Crash(NodeId(1)))]);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.metrics.live_nodes, 2);
        assert!(runner.sim().owners().iter().all(|&o| o != 1));
        assert_eq!(
            report
                .log
                .iter()
                .filter(|r| r.source == DecisionSource::Fault)
                .count(),
            1
        );
    }

    /// The same scenario value drives the synchronous runtime: real
    /// reconfiguration transactions, invariants asserted on every step.
    #[test]
    fn local_runner_executes_the_closed_loop_with_invariants() {
        let s = Scenario::new("local-spike")
            .workload(Workload::ycsb(24))
            .trace(LoadTrace::spike(8, 160, 4 * SECOND, 14 * SECOND))
            .initial_nodes(2)
            .control_interval(2 * SECOND)
            .duration(26 * SECOND);
        let policy = s.reactive_policy(2, 4);
        let scenario = s.policy(policy);
        let mut runner = LocalRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.peak_nodes(), 4, "{:?}", report.decision_signature());
        assert_eq!(report.metrics.live_nodes, 2);
        assert!(report.metrics.migrations > 0);
        assert!(report.metrics.db_cost > 0.0);
        // Invariants are checked after every actuation and surfaced as
        // values: a healthy closed loop collects none.
        assert!(runner.violations().is_empty(), "{:?}", runner.violations());
    }

    /// Events scripted past the horizon never fire — on either the
    /// event timeline or the final metrics.
    #[test]
    fn events_past_the_horizon_are_dropped() {
        let scenario = Scenario::new("past-horizon")
            .workload(Workload::ycsb(200))
            .trace(LoadTrace::constant(4))
            .initial_nodes(2)
            .duration(10 * SECOND)
            .action(15 * SECOND, ScaleAction::add(2))
            .faults(vec![(20 * SECOND, Fault::Crash(NodeId(0)))]);
        let mut runner = SimRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert!(report.actions().is_empty(), "{:?}", report.actions());
        assert_eq!(report.metrics.live_nodes, 2);
        assert_eq!(report.metrics.migrations, 0);
    }

    /// Crashing the last member (or a non-member) is a no-op on both
    /// runners — the declarative value must not panic one world and
    /// silently succeed in the other.
    #[test]
    fn crash_of_the_last_member_is_a_noop_on_both_runners() {
        let scenario = || {
            Scenario::new("crash-last")
                .workload(Workload::ycsb(8))
                .trace(LoadTrace::constant(2))
                .initial_nodes(1)
                .duration(6 * SECOND)
                .faults(vec![
                    (2 * SECOND, Fault::Crash(NodeId(0))),
                    (3 * SECOND, Fault::Crash(NodeId(9))),
                ])
        };
        let s = scenario();
        let mut local = LocalRunner::new(&s);
        assert_eq!(run(s, &mut local).metrics.live_nodes, 1);
        let s = scenario();
        let mut sim = SimRunner::new(&s);
        assert_eq!(run(s, &mut sim).metrics.live_nodes, 1);
    }

    /// Crash injection on the synchronous runtime runs the full §4.4.2
    /// recovery and keeps every invariant.
    #[test]
    fn crash_fault_recovers_on_the_local_cluster() {
        let scenario = Scenario::new("crash-local")
            .workload(Workload::ycsb(12))
            .trace(LoadTrace::constant(8))
            .initial_nodes(3)
            .duration(10 * SECOND)
            .faults(vec![(5 * SECOND, Fault::Crash(NodeId(1)))]);
        let mut runner = LocalRunner::new(&scenario);
        let report = run(scenario, &mut runner);
        assert_eq!(report.metrics.live_nodes, 2);
        assert!(
            !runner.owners().values().any(|&o| o == NodeId(1)),
            "the dead node's granules were recovered"
        );
        assert!(
            report.metrics.migrations >= 4,
            "orphans migrated in recovery"
        );
    }
}
