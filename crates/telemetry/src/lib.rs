//! Deterministic observability for the Marlin reproduction.
//!
//! Three instruments, each independently switchable and zero-overhead
//! when off:
//!
//! - [`Tracer`] — a structured tracer recording virtual-time-stamped
//!   spans and instants into a preallocated ring buffer, exported as
//!   Chrome trace-event JSON (loadable in Perfetto / `chrome://tracing`).
//!   Enabled by setting `MARLIN_TRACE=<path>`. Because every timestamp
//!   is *virtual* time, the trace for a fixed scenario + seed is
//!   byte-identical across runs and machines.
//! - [`CoordOps`] / [`CoordBreakdown`] — the coordination-op accounting
//!   registry: the paper's scalar Meta Cost (§6.1.5) broken into
//!   per-subsystem counters (Append@LSN CAS attempts/retries, external
//!   coordination-service reads/writes, watch notifications), with the
//!   meta-cost dollars attributed across them. Always on — the counters
//!   are plain integer increments.
//! - [`Profiler`] — the sim self-profiler: wall-clock time per subsystem
//!   phase, event-queue depth stats, and virtual-seconds-per-wall-second.
//!   Enabled by setting `MARLIN_BENCH_JSON=<dir>`; its numbers are
//!   intentionally *not* deterministic (they measure the host), so the
//!   report layer omits them unless profiling was requested.
//! - [`BenchReport`] — the `BENCH_<target>.json` perf-trajectory
//!   artifact each bench target emits under `MARLIN_BENCH_JSON=<dir>`,
//!   so successive PRs can pin speedups against a recorded baseline.
//! - [`MetricsSeries`] — the per-tick metrics timeline (counters and
//!   gauges, optionally region-labelled, ring-buffered). Enabled by
//!   setting `MARLIN_METRICS=<path>`; virtual timestamps make the
//!   exported timeline byte-identical per (scenario, seed).
//! - [`LatencyHist`] — a deterministic log-bucketed latency histogram
//!   (mergeable, ≤ 1/32 relative error, exact below a small-count
//!   threshold) backing p99 derivation at cohort scale.
//!
//! The crate is dependency-free and knows nothing about the simulator;
//! the cluster crate owns the instrumentation points.

#![warn(missing_docs)]

mod bench_json;
mod coord;
mod hist;
mod profile;
mod series;
mod trace;

pub use bench_json::{BenchReport, BenchSection};
pub use coord::{CoordBreakdown, CoordOps};
pub use hist::LatencyHist;
pub use profile::{PhaseStat, ProfileSummary, Profiler};
pub use series::{MetricPoint, MetricsSeries, PointValue, TickRow, DEFAULT_METRICS_TICKS};
pub use trace::{TraceEvent, TracePhase, Tracer, DEFAULT_TRACE_CAPACITY};

/// Virtual nanoseconds (mirrors `marlin_sim::Nanos`; redefined here so
/// the telemetry crate stays dependency-free).
pub type Nanos = u64;

/// Minimal JSON string escaping shared by the exporters (mirrors the
/// report writer's escaping rules; no serde in the offline build).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats print as-is; NaN/inf become `null` (JSON has neither).
#[must_use]
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Format integer nanoseconds as decimal microseconds (`ts`/`dur` in the
/// Chrome trace-event format) without going through floating point, so
/// the exported trace is bit-stable: `1234567 ns` → `"1234.567"`.
#[must_use]
pub fn nanos_as_micros(ns: Nanos) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_formatting_is_integer_only() {
        assert_eq!(nanos_as_micros(0), "0.000");
        assert_eq!(nanos_as_micros(999), "0.999");
        assert_eq!(nanos_as_micros(1_000), "1.000");
        assert_eq!(nanos_as_micros(1_234_567), "1234.567");
    }

    #[test]
    fn escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
