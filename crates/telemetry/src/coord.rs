//! Coordination-op accounting: the per-subsystem counters behind the
//! paper's Meta Cost scalar (§6.1.5), for Marlin and the external-service
//! baselines alike.

/// Raw coordination-op counters, split by subsystem.
///
/// Marlin coordinates through the database's own logs, so its ops land in
/// the `*_cas_*` counters (Append@LSN conditional appends on GLogs and the
/// SysLog) and its external-service counters stay zero. The ZK/FDB
/// baselines route reconfiguration metadata through the external service,
/// so their ops land in `service_writes`/`service_reads` instead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoordOps {
    /// Append@LSN CAS attempts on user-commit GLogs (one per commit
    /// participant; the data-plane WAL append every backend performs).
    pub commit_cas_attempts: u64,
    /// Of those, attempts rejected with an LSN mismatch (OCC conflicts —
    /// the Figure 15 contention signal on the data plane).
    pub commit_cas_retries: u64,
    /// Append@LSN CAS attempts for migration metadata commits (Marlin's
    /// MigrationTxn writes the source and destination GLogs).
    pub migration_cas_attempts: u64,
    /// Migration CAS attempts rejected with an LSN mismatch.
    pub migration_cas_retries: u64,
    /// Append@LSN CAS attempts on the SysLog for membership updates
    /// (AddNode/DeleteNode).
    pub membership_cas_attempts: u64,
    /// Membership CAS attempts rejected with an LSN mismatch.
    pub membership_cas_retries: u64,
    /// Writes submitted to the external coordination service
    /// (ownership installs/updates, membership changes; 0 for Marlin).
    pub service_writes: u64,
    /// Reads served by the external coordination service (router
    /// ownership refreshes after a misroute; 0 for Marlin, whose redirects
    /// come from the nodes themselves, §4.2).
    pub service_reads: u64,
    /// Ownership-change notifications delivered to the routing tier
    /// (Marlin: node broadcast; baselines: service watches).
    pub watch_notifications: u64,
}

impl CoordOps {
    /// All CAS attempts across subsystems.
    #[must_use]
    pub fn total_cas_attempts(&self) -> u64 {
        self.commit_cas_attempts + self.migration_cas_attempts + self.membership_cas_attempts
    }

    /// All CAS retries across subsystems.
    #[must_use]
    pub fn total_cas_retries(&self) -> u64 {
        self.commit_cas_retries + self.migration_cas_retries + self.membership_cas_retries
    }

    /// Ops that touched the external coordination service.
    #[must_use]
    pub fn service_ops(&self) -> u64 {
        self.service_writes + self.service_reads
    }

    /// Every counted op.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total_cas_attempts() + self.service_ops() + self.watch_notifications
    }

    /// Fold another registry's counts into this one.
    pub fn merge(&mut self, other: &CoordOps) {
        self.commit_cas_attempts += other.commit_cas_attempts;
        self.commit_cas_retries += other.commit_cas_retries;
        self.migration_cas_attempts += other.migration_cas_attempts;
        self.migration_cas_retries += other.migration_cas_retries;
        self.membership_cas_attempts += other.membership_cas_attempts;
        self.membership_cas_retries += other.membership_cas_retries;
        self.service_writes += other.service_writes;
        self.service_reads += other.service_reads;
        self.watch_notifications += other.watch_notifications;
    }
}

/// The op counters plus the Meta Cost dollars attributed across them.
///
/// The external service bills by uptime, not per op, so the attribution
/// splits the accrued meta dollars proportionally over the write/read op
/// mix and books the remainder as uptime (idle service time). The three
/// dollar parts always sum back to the legacy `meta_cost` scalar — and to
/// exactly 0 for Marlin, which runs no external service.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoordBreakdown {
    /// The raw counters.
    pub ops: CoordOps,
    /// Meta dollars attributed to service writes.
    pub write_dollars: f64,
    /// Meta dollars attributed to service reads.
    pub read_dollars: f64,
    /// Residual meta dollars: service uptime not covered by ops.
    pub uptime_dollars: f64,
}

impl CoordBreakdown {
    /// Attribute `meta_cost` dollars over the op mix in `ops`.
    ///
    /// When the service saw no ops (Marlin, or an idle baseline), the
    /// whole amount books as uptime. The residual form (`uptime = meta −
    /// write − read`) keeps [`CoordBreakdown::meta_dollars`] equal to the
    /// input to within floating-point rounding.
    #[must_use]
    pub fn attribute(ops: CoordOps, meta_cost: f64) -> Self {
        let service_ops = ops.service_ops();
        let (write_dollars, read_dollars) = if service_ops == 0 || meta_cost == 0.0 {
            (0.0, 0.0)
        } else {
            // Half of the bill is op-attributed, half stays uptime — the
            // service is provisioned for peak, not average, op rate.
            let attributable = meta_cost * 0.5;
            let per_op = attributable / service_ops as f64;
            (
                per_op * ops.service_writes as f64,
                per_op * ops.service_reads as f64,
            )
        };
        CoordBreakdown {
            ops,
            write_dollars,
            read_dollars,
            uptime_dollars: meta_cost - write_dollars - read_dollars,
        }
    }

    /// The attributed dollars, summed back to the Meta Cost scalar.
    #[must_use]
    pub fn meta_dollars(&self) -> f64 {
        self.write_dollars + self.read_dollars + self.uptime_dollars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> CoordOps {
        CoordOps {
            commit_cas_attempts: 100,
            commit_cas_retries: 3,
            migration_cas_attempts: 20,
            migration_cas_retries: 1,
            membership_cas_attempts: 5,
            membership_cas_retries: 2,
            service_writes: 30,
            service_reads: 10,
            watch_notifications: 8,
        }
    }

    #[test]
    fn totals_and_merge_add_up() {
        let mut a = ops();
        assert_eq!(a.total_cas_attempts(), 125);
        assert_eq!(a.total_cas_retries(), 6);
        assert_eq!(a.service_ops(), 40);
        assert_eq!(a.total(), 125 + 40 + 8);
        a.merge(&ops());
        assert_eq!(a.total(), 2 * (125 + 40 + 8));
    }

    #[test]
    fn marlin_attribution_is_exactly_zero() {
        let b = CoordBreakdown::attribute(
            CoordOps {
                service_writes: 0,
                service_reads: 0,
                ..ops()
            },
            0.0,
        );
        assert_eq!(b.write_dollars, 0.0);
        assert_eq!(b.read_dollars, 0.0);
        assert_eq!(b.uptime_dollars, 0.0);
        assert_eq!(b.meta_dollars(), 0.0);
    }

    #[test]
    fn baseline_attribution_sums_back_to_meta_cost() {
        let meta = 0.597;
        let b = CoordBreakdown::attribute(ops(), meta);
        assert!(b.write_dollars > 0.0 && b.read_dollars > 0.0);
        // writes:reads = 30:10 over the op-attributed half.
        assert!((b.write_dollars / b.read_dollars - 3.0).abs() < 1e-9);
        assert!((b.meta_dollars() - meta).abs() < 1e-12);
    }

    #[test]
    fn idle_service_books_everything_as_uptime() {
        let b = CoordBreakdown::attribute(CoordOps::default(), 1.25);
        assert_eq!(b.write_dollars, 0.0);
        assert_eq!(b.read_dollars, 0.0);
        assert!((b.uptime_dollars - 1.25).abs() < 1e-12);
    }
}
