//! `BENCH_<target>.json`: the perf-trajectory artifact each bench target
//! emits when `MARLIN_BENCH_JSON=<dir>` is set, so successive PRs can
//! compare wall-time and virtual-throughput against a recorded baseline.

use crate::profile::ProfileSummary;
use crate::{json_escape, json_f64};

/// One measured section of a bench target — typically one scenario run.
#[derive(Clone, Debug, Default)]
pub struct BenchSection {
    /// Section label (scenario + backend, or a microbench name).
    pub name: String,
    /// Wall-clock nanoseconds the section took.
    pub wall_nanos: u64,
    /// Virtual nanoseconds simulated (0 for non-sim sections).
    pub virtual_nanos: u64,
    /// Whether the section ran under a *wall-clock budget* (a probe
    /// that covers as much virtual time as the budget allows), making
    /// `virtual_nanos` wall-dependent. Comparators must then gate the
    /// virtual-per-wall *rate*, never the virtual total.
    pub wall_bounded: bool,
    /// Profiler numbers, when the section ran a profiled sim.
    pub profile: Option<ProfileSummary>,
    /// Free-form scalar results (`("overhead_pct", 0.4)`, ...).
    pub values: Vec<(String, f64)>,
}

impl BenchSection {
    /// Virtual-seconds simulated per wall-second — the sim's speedup
    /// over real time (0 when nothing was simulated or measured).
    #[must_use]
    pub fn virtual_per_wall(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.virtual_nanos as f64 / self.wall_nanos as f64
        }
    }
}

/// The whole artifact: one per bench target per run.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Bench target name (`autoscale_closed_loop`, ...); becomes the
    /// `BENCH_<target>.json` filename.
    pub target: String,
    /// The `MARLIN_SCALE` the run used.
    pub scale: u64,
    /// Measured sections in run order.
    pub sections: Vec<BenchSection>,
}

impl BenchReport {
    /// An empty report for `target` at `scale`.
    #[must_use]
    pub fn new(target: &str, scale: u64) -> Self {
        BenchReport {
            target: target.to_string(),
            scale,
            sections: Vec::new(),
        }
    }

    /// Serialize to JSON (hand-rolled; no serde in the offline build).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512 + 256 * self.sections.len());
        out.push_str("{\"target\":");
        out.push_str(&json_escape(&self.target));
        out.push_str(&format!(",\"scale\":{}", self.scale));
        out.push_str(",\"sections\":[");
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_escape(&s.name));
            out.push_str(&format!(
                ",\"wall_ns\":{},\"virtual_ns\":{},\"virtual_per_wall\":{}",
                s.wall_nanos,
                s.virtual_nanos,
                json_f64(s.virtual_per_wall())
            ));
            if s.wall_bounded {
                out.push_str(",\"wall_bounded\":true");
            }
            if let Some(p) = &s.profile {
                out.push_str(&format!(
                    ",\"profile\":{{\"total_wall_ns\":{},\"events\":{},\
                     \"queue_depth_mean\":{},\"queue_depth_max\":{},\"phases\":[",
                    p.total_wall_nanos,
                    p.events,
                    json_f64(p.queue_depth_mean),
                    p.queue_depth_max
                ));
                for (j, ph) in p.phases.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":{},\"wall_ns\":{},\"calls\":{}}}",
                        json_escape(ph.name),
                        ph.wall_nanos,
                        ph.calls
                    ));
                }
                out.push_str("]}");
            }
            if !s.values.is_empty() {
                out.push_str(",\"values\":{");
                for (j, (k, v)) in s.values.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_escape(k));
                    out.push(':');
                    out.push_str(&json_f64(*v));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// If `MARLIN_BENCH_JSON=<dir>` is set, write the artifact there as
    /// `BENCH_<target>.json` (creating the directory) and return the
    /// path. Silent no-op otherwise, so bench targets call this
    /// unconditionally.
    pub fn maybe_write(&self) -> Option<String> {
        let dir = std::env::var("MARLIN_BENCH_JSON")
            .ok()
            .filter(|d| !d.is_empty())?;
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("MARLIN_BENCH_JSON: cannot create {dir}: {e}");
            return None;
        }
        let path = format!("{dir}/BENCH_{}.json", self.target);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => {
                println!("wrote perf trajectory to {path}");
                Some(path)
            }
            Err(e) => {
                eprintln!("MARLIN_BENCH_JSON: cannot write {path}: {e}");
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseStat;

    #[test]
    fn bench_json_is_wellformed() {
        let mut r = BenchReport::new("micro \"quoted\"", 100);
        r.sections.push(BenchSection {
            name: "ycsb/Marlin".into(),
            wall_nanos: 2_000_000,
            virtual_nanos: 4_000_000,
            wall_bounded: false,
            profile: Some(ProfileSummary {
                phases: vec![PhaseStat {
                    name: "event:client_txn",
                    wall_nanos: 1_500_000,
                    calls: 42,
                }],
                total_wall_nanos: 1_900_000,
                events: 43,
                queue_depth_mean: 3.5,
                queue_depth_max: 9,
            }),
            values: vec![("overhead_pct".into(), 0.4)],
        });
        let j = r.to_json();
        assert!(j.contains("\"target\":\"micro \\\"quoted\\\"\""));
        assert!(j.contains("\"virtual_per_wall\":2"));
        assert!(j.contains(
            "\"phases\":[{\"name\":\"event:client_txn\",\"wall_ns\":1500000,\"calls\":42}]"
        ));
        assert!(j.contains("\"values\":{\"overhead_pct\":0.4}"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sections_without_profile_omit_the_key() {
        let mut r = BenchReport::new("t", 1);
        r.sections.push(BenchSection {
            name: "plain".into(),
            wall_nanos: 10,
            ..BenchSection::default()
        });
        let j = r.to_json();
        assert!(!j.contains("\"profile\""));
        assert!(!j.contains("\"values\""));
        assert!(j.contains("\"virtual_per_wall\":0"));
    }
}
