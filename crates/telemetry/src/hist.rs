//! [`LatencyHist`]: a deterministic log-bucketed latency histogram.
//!
//! The exact observation path keeps one `(latency, weight)` tuple per
//! committed transaction in the observation window and derives p99 by
//! sorting — exact, but linear in commits, which does not survive
//! million-client cohort scale. The histogram replaces that derivation
//! with the same parity discipline as the count-min heat sketch:
//!
//! - **Exact below a small-count threshold.** Until
//!   [`LatencyHist::EXACT_CAPACITY`] recorded samples, values are kept
//!   as literal `(value, weight)` tuples and [`LatencyHist::p99`]
//!   replays the exact engine's weighted-p99 rule (`sort_unstable`,
//!   first sample whose cumulative weight exceeds
//!   `(total - 1) * 99 / 100`) — bit-identical to the tuple path.
//! - **Log-bucketed above it.** Values spill into log-linear buckets:
//!   values below 32 are exact (one bucket per value); above, each
//!   power-of-two octave is split into 32 sub-buckets, so every bucket's
//!   width is at most 1/32 (3.125%) of its lower bound. Quantiles
//!   report the bucket's lower bound — a deterministic *underestimate*
//!   of the exact quantile by at most that relative error:
//!   `exact >= hist && exact - hist <= hist / 32`.
//!
//! Histograms merge by bucket addition (exact tuples concatenate while
//! both sides fit), so windowed observation can keep one small histogram
//! per time slot and merge slots on demand. Everything is integer
//! arithmetic over deterministic inputs: no RNG, no wall clock, no
//! iteration-order dependence.

use crate::Nanos;

/// Sub-buckets per power-of-two octave. Bucket width is at most
/// `lower_bound / SUBBUCKETS`, which bounds the quantile underestimate
/// to a 1/32 (3.125%) relative error.
const SUBBUCKETS: u64 = 32;
/// log2 of [`SUBBUCKETS`].
const SUBBUCKET_BITS: u32 = 5;
/// Octaves above the exact range (values are u64, so 64 - 5 = 59
/// octaves starting at 2^5), plus the exact 0..32 range.
const BUCKETS: usize = (SUBBUCKETS as usize) + 59 * (SUBBUCKETS as usize);

/// A mergeable log-bucketed latency histogram with a documented
/// relative-error bound and an exact small-count mode (see the module
/// docs for the parity discipline).
#[derive(Clone, Debug)]
pub struct LatencyHist {
    /// Exact `(value, weight)` tuples while the sample count is small;
    /// `None` once spilled into buckets.
    exact: Option<Vec<(Nanos, u64)>>,
    /// Log-linear bucket weights (allocated on spill).
    buckets: Vec<u64>,
    /// Total recorded weight.
    total: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHist {
    /// Recorded samples kept as exact tuples before spilling to buckets.
    /// Below this count the histogram's p99 is bit-identical to the
    /// exact tuple derivation.
    pub const EXACT_CAPACITY: usize = 128;

    /// The documented relative-error denominator: bucketed quantiles
    /// underestimate the exact quantile by at most `value / 32`.
    pub const RELATIVE_ERROR_DENOM: u64 = SUBBUCKETS;

    /// An empty histogram in exact mode.
    #[must_use]
    pub fn new() -> Self {
        LatencyHist {
            exact: Some(Vec::new()),
            buckets: Vec::new(),
            total: 0,
        }
    }

    /// Whether the histogram still holds exact tuples (p99 is then
    /// bit-identical to the exact derivation).
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.exact.is_some()
    }

    /// Total recorded weight.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Record one sample of weight 1.
    pub fn record(&mut self, value: Nanos) {
        self.record_n(value, 1);
    }

    /// Record one sample with an aggregate weight (the cohort engine's
    /// weighted walks). Zero-weight records are ignored.
    pub fn record_n(&mut self, value: Nanos, weight: u64) {
        if weight == 0 {
            return;
        }
        self.total = self.total.saturating_add(weight);
        if let Some(tuples) = &mut self.exact {
            if tuples.len() < Self::EXACT_CAPACITY {
                tuples.push((value, weight));
                return;
            }
            self.spill();
        }
        self.buckets[bucket_index(value)] += weight;
    }

    /// Merge another histogram into this one. Exact tuples concatenate
    /// while the combined count fits the exact capacity; otherwise both
    /// sides land in buckets.
    pub fn merge(&mut self, other: &LatencyHist) {
        if other.total == 0 {
            return;
        }
        self.total = self.total.saturating_add(other.total);
        match (&mut self.exact, &other.exact) {
            (Some(mine), Some(theirs)) if mine.len() + theirs.len() <= Self::EXACT_CAPACITY => {
                mine.extend_from_slice(theirs);
                return;
            }
            _ => {}
        }
        self.spill();
        match &other.exact {
            Some(theirs) => {
                for &(v, w) in theirs {
                    self.buckets[bucket_index(v)] += w;
                }
            }
            None => {
                for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                    *mine += theirs;
                }
            }
        }
    }

    /// Reset to an empty exact-mode histogram, keeping allocations.
    pub fn clear(&mut self) {
        self.total = 0;
        match &mut self.exact {
            Some(tuples) => tuples.clear(),
            None => self.exact = Some(Vec::new()),
        }
        self.buckets.fill(0);
    }

    /// The weighted p99. In exact mode this replays the exact engine's
    /// rule bit-for-bit (lexicographic tuple sort, first sample whose
    /// cumulative weight exceeds `(total - 1) * 99 / 100`); in bucketed
    /// mode it returns the lower bound of the bucket holding that
    /// sample — an underestimate by at most `p99 / 32`.
    #[must_use]
    pub fn p99(&self) -> Nanos {
        if self.total == 0 {
            return 0;
        }
        let target = self.total.saturating_sub(1) * 99 / 100;
        match &self.exact {
            Some(tuples) => {
                let mut lat = tuples.clone();
                lat.sort_unstable();
                let mut cum = 0u64;
                for &(l, w) in &lat {
                    cum += w;
                    if cum > target {
                        return l;
                    }
                }
                lat.last().map_or(0, |&(l, _)| l)
            }
            None => {
                let mut cum = 0u64;
                let mut last_nonempty = 0;
                for (i, &w) in self.buckets.iter().enumerate() {
                    if w == 0 {
                        continue;
                    }
                    cum += w;
                    last_nonempty = i;
                    if cum > target {
                        return bucket_lower_bound(i);
                    }
                }
                bucket_lower_bound(last_nonempty)
            }
        }
    }

    /// Move the exact tuples into buckets (no-op if already bucketed).
    fn spill(&mut self) {
        let Some(tuples) = self.exact.take() else {
            return;
        };
        if self.buckets.is_empty() {
            self.buckets = vec![0u64; BUCKETS];
        }
        for (v, w) in tuples {
            self.buckets[bucket_index(v)] += w;
        }
    }
}

/// Bucket index of a value: exact below [`SUBBUCKETS`], log-linear
/// above (32 sub-buckets per power-of-two octave).
fn bucket_index(v: Nanos) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // >= SUBBUCKET_BITS
    let sub = (v - (1u64 << octave)) >> (octave - SUBBUCKET_BITS);
    (SUBBUCKETS as usize)
        + ((octave - SUBBUCKET_BITS) as usize) * (SUBBUCKETS as usize)
        + sub as usize
}

/// Smallest value mapping to bucket `i` (what quantiles report).
fn bucket_lower_bound(i: usize) -> Nanos {
    let i = i as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let octave = SUBBUCKET_BITS + ((i - SUBBUCKETS) / SUBBUCKETS) as u32;
    let sub = (i - SUBBUCKETS) % SUBBUCKETS;
    (1u64 << octave) + (sub << (octave - SUBBUCKET_BITS))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact engine's rule, verbatim, as the oracle.
    fn exact_weighted_p99(lat: &mut [(Nanos, u64)]) -> Nanos {
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        let total: u64 = lat.iter().map(|&(_, w)| w).sum();
        let target = total.saturating_sub(1) * 99 / 100;
        let mut cum = 0u64;
        for &(l, w) in lat.iter() {
            cum += w;
            if cum > target {
                return l;
            }
        }
        lat.last().map_or(0, |&(l, _)| l)
    }

    #[test]
    fn bucket_bounds_round_trip() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX / 2] {
            let i = bucket_index(v);
            let lo = bucket_lower_bound(i);
            assert!(lo <= v, "lower bound {lo} must not exceed {v}");
            assert_eq!(bucket_index(lo), i, "lower bound stays in bucket");
            // Relative error bound: v - lo <= lo / 32 for v >= 32 (exact
            // below), which is the documented quantile guarantee.
            if v >= SUBBUCKETS {
                assert!(v - lo <= lo / SUBBUCKETS, "{v} vs {lo}");
            } else {
                assert_eq!(lo, v);
            }
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain((0..54).map(|s| 1u64 << s)) {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(i >= prev || v < 4096, "monotone over the scan");
            if v < 4096 {
                prev = i;
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_mode_is_bit_identical_to_the_tuple_rule() {
        // Deterministic pseudo-random tuples, below the spill threshold.
        let mut h = LatencyHist::new();
        let mut tuples: Vec<(Nanos, u64)> = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..100 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 50_000_000;
            let w = 1 + (x >> 32) % 7;
            tuples.push((v, w));
            h.record_n(v, w);
        }
        assert!(h.is_exact());
        assert_eq!(h.p99(), exact_weighted_p99(&mut tuples));
        assert_eq!(h.total_weight(), tuples.iter().map(|&(_, w)| w).sum());
    }

    #[test]
    fn bucketed_p99_underestimates_within_the_documented_bound() {
        let mut h = LatencyHist::new();
        let mut tuples: Vec<(Nanos, u64)> = Vec::new();
        let mut x = 42u64;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = 1_000_000 + x % 300_000_000; // 1 ms .. 301 ms
            tuples.push((v, 1));
            h.record(v);
        }
        assert!(!h.is_exact(), "10k samples must have spilled");
        let exact = exact_weighted_p99(&mut tuples);
        let approx = h.p99();
        assert!(approx <= exact, "bucketed p99 underestimates");
        assert!(
            exact - approx <= approx / LatencyHist::RELATIVE_ERROR_DENOM,
            "error {} exceeds {}/32",
            exact - approx,
            approx
        );
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut parts: Vec<LatencyHist> = (0..4).map(|_| LatencyHist::new()).collect();
        let mut whole = LatencyHist::new();
        let mut x = 7u64;
        for i in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x % 100_000_000;
            parts[(i % 4) as usize].record(v);
            whole.record(v);
        }
        let mut merged = LatencyHist::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.total_weight(), whole.total_weight());
        assert_eq!(merged.p99(), whole.p99());
    }

    #[test]
    fn merge_of_small_exact_parts_stays_exact() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        for v in 0..40u64 {
            a.record(v * 1000);
            b.record(v * 977);
        }
        let mut m = LatencyHist::new();
        m.merge(&a);
        m.merge(&b);
        assert!(m.is_exact(), "80 tuples fit the exact capacity");
        let mut tuples: Vec<(Nanos, u64)> = (0..40u64)
            .flat_map(|v| [(v * 1000, 1), (v * 977, 1)])
            .collect();
        assert_eq!(m.p99(), exact_weighted_p99(&mut tuples));
    }

    #[test]
    fn empty_and_clear_behave_like_the_tuple_path() {
        let mut h = LatencyHist::new();
        assert_eq!(h.p99(), 0, "empty matches the tuple rule's 0");
        assert!(h.is_empty());
        for _ in 0..(LatencyHist::EXACT_CAPACITY + 10) {
            h.record(1_000_000);
        }
        assert!(!h.is_exact());
        h.clear();
        assert!(h.is_empty() && h.is_exact());
        assert_eq!(h.p99(), 0);
        h.record(5);
        assert_eq!(h.p99(), 5);
    }
}
