//! The structured tracer: virtual-time spans and instants in a
//! preallocated ring buffer, exported as Chrome trace-event JSON.

use crate::{json_escape, nanos_as_micros, Nanos};

/// Default ring capacity when `MARLIN_TRACE` enables tracing without an
/// explicit `MARLIN_TRACE_EVENTS` override (~256k events, a few MB).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// How an event renders in the trace viewer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span (`ph:"X"`): has a duration.
    Span,
    /// A point-in-time marker (`ph:"i"`).
    Instant,
}

/// One recorded event. Fixed-size (names are `&'static str`) so the ring
/// buffer allocates once up front and recording never touches the heap.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Category (Perfetto lets you filter on it): "migration",
    /// "membership", "policy", "provision", ...
    pub cat: &'static str,
    /// Event name.
    pub name: &'static str,
    /// Span or instant.
    pub phase: TracePhase,
    /// Virtual start time, ns.
    pub start: Nanos,
    /// Virtual duration, ns (0 for instants).
    pub dur: Nanos,
    /// Up to two integer arguments; a key of `""` means unused.
    pub args: [(&'static str, i64); 2],
}

const NO_ARGS: [(&str, i64); 2] = [("", 0), ("", 0)];

/// Ring-buffered trace recorder.
///
/// Disabled tracers record nothing and allocate nothing; the per-call
/// cost is one branch. Enabled tracers overwrite the oldest events once
/// the ring fills (the dropped count is reported), so a bounded memory
/// footprint holds for arbitrarily long runs.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Total events ever recorded (≥ `buf.len()` after wrap).
    recorded: u64,
}

impl Tracer {
    /// A tracer that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            buf: Vec::new(),
            capacity: 0,
            head: 0,
            recorded: 0,
        }
    }

    /// An enabled tracer with room for `capacity` events, preallocated.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Tracer {
            enabled: true,
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Enabled iff `MARLIN_TRACE` is set (to the export path); ring
    /// capacity from `MARLIN_TRACE_EVENTS` when present.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MARLIN_TRACE") {
            Ok(p) if !p.is_empty() => {
                let capacity = std::env::var("MARLIN_TRACE_EVENTS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_TRACE_CAPACITY);
                Tracer::enabled(capacity)
            }
            _ => Tracer::disabled(),
        }
    }

    /// Is the tracer recording? Callers building non-trivial arguments
    /// should gate on this first.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a complete span `[start, end)` (no-op when disabled).
    #[inline]
    pub fn span(&mut self, cat: &'static str, name: &'static str, start: Nanos, end: Nanos) {
        self.span_args(cat, name, start, end, NO_ARGS);
    }

    /// Record a complete span with arguments.
    #[inline]
    pub fn span_args(
        &mut self,
        cat: &'static str,
        name: &'static str,
        start: Nanos,
        end: Nanos,
        args: [(&'static str, i64); 2],
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            cat,
            name,
            phase: TracePhase::Span,
            start,
            dur: end.saturating_sub(start),
            args,
        });
    }

    /// Record an instant marker (no-op when disabled).
    #[inline]
    pub fn instant(&mut self, cat: &'static str, name: &'static str, at: Nanos) {
        self.instant_args(cat, name, at, NO_ARGS);
    }

    /// Record an instant marker with arguments.
    #[inline]
    pub fn instant_args(
        &mut self,
        cat: &'static str,
        name: &'static str,
        at: Nanos,
        args: [(&'static str, i64); 2],
    ) {
        if !self.enabled {
            return;
        }
        self.push(TraceEvent {
            cat,
            name,
            phase: TracePhase::Instant,
            start: at,
            dur: 0,
            args,
        });
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Events currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or the tracer is disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded, including overwritten ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to ring overwrite.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Events in recording order (oldest surviving first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }

    /// Export as a Chrome trace-event JSON document (the
    /// `{"traceEvents":[...]}` object form Perfetto and
    /// `chrome://tracing` load directly). Timestamps are virtual time
    /// rendered as microseconds, so the document is byte-identical for a
    /// fixed scenario + seed.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + 128 * self.buf.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, ev) in self.events().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_escape(ev.name));
            out.push_str(",\"cat\":");
            out.push_str(&json_escape(ev.cat));
            match ev.phase {
                TracePhase::Span => {
                    out.push_str(",\"ph\":\"X\",\"ts\":");
                    out.push_str(&nanos_as_micros(ev.start));
                    out.push_str(",\"dur\":");
                    out.push_str(&nanos_as_micros(ev.dur));
                }
                TracePhase::Instant => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"g\",\"ts\":");
                    out.push_str(&nanos_as_micros(ev.start));
                }
            }
            out.push_str(",\"pid\":1,\"tid\":1");
            let used: Vec<&(&'static str, i64)> =
                ev.args.iter().filter(|(k, _)| !k.is_empty()).collect();
            if !used.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in used.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_escape(k));
                    out.push(':');
                    out.push_str(&v.to_string());
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_allocates() {
        let mut t = Tracer::disabled();
        t.span("cat", "ev", 0, 10);
        t.instant("cat", "mark", 5);
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.buf.capacity(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = Tracer::enabled(3);
        for i in 0..5u64 {
            t.instant("c", "e", i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        let order: Vec<Nanos> = t.events().map(|e| e.start).collect();
        assert_eq!(order, vec![2, 3, 4], "oldest surviving first");
    }

    #[test]
    fn overflow_keeps_recorded_monotone_and_dropped_exact() {
        let mut t = Tracer::enabled(4);
        let mut prev = t.recorded();
        for i in 0..25u64 {
            if i % 2 == 0 {
                t.span("c", "s", i, i + 1);
            } else {
                t.instant("c", "m", i);
            }
            assert!(t.recorded() > prev, "recorded() must grow on every record");
            prev = t.recorded();
            assert_eq!(
                t.dropped(),
                t.recorded() - t.len() as u64,
                "dropped() is exactly the overwritten count"
            );
        }
        assert_eq!(t.recorded(), 25);
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 21);
    }

    #[test]
    fn chrome_export_stays_valid_json_after_the_ring_wraps() {
        let mut t = Tracer::enabled(3);
        for i in 0..10u64 {
            t.span_args(
                "cat",
                "ev",
                i * 100,
                i * 100 + 50,
                [("i", i as i64), ("", 0)],
            );
        }
        assert!(t.dropped() > 0, "the ring must have wrapped");
        let j = t.to_chrome_json();
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(j.ends_with("]}\n"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        // Exactly the three surviving events, oldest first, comma-separated.
        assert_eq!(j.matches("\"name\":\"ev\"").count(), 3);
        assert!(j.contains("\"ts\":0.700"));
        assert!(j.contains("\"ts\":0.900"));
        assert!(!j.contains(",,"), "no empty elements from the wrap seam");
    }

    #[test]
    fn chrome_export_is_wellformed_and_deterministic() {
        let make = || {
            let mut t = Tracer::enabled(16);
            t.span_args(
                "migration",
                "migrate",
                1_000,
                2_500,
                [("granule", 7), ("", 0)],
            );
            t.instant("membership", "commit", 3_000);
            t.to_chrome_json()
        };
        let j = make();
        assert_eq!(j, make(), "byte-identical across runs");
        assert!(j.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":1.500"));
        assert!(j.contains("\"args\":{\"granule\":7}"));
        assert!(j.contains("\"ph\":\"i\",\"s\":\"g\",\"ts\":3.000"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
