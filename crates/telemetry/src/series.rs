//! [`MetricsSeries`]: the per-tick metrics time-series recorder.
//!
//! Where the [`crate::Tracer`] answers "what happened when", the series
//! recorder answers "how did the run's vitals evolve": once per control
//! tick the harness opens a row and the runner + driver append named
//! points — counters (integers, cumulative), gauges (floats, sampled) —
//! optionally labelled with a region. Rows live in a ring buffer like
//! the trace ring, so memory stays bounded for arbitrarily long runs
//! and the dropped-row count is reported in the export.
//!
//! All timestamps are virtual time, names are `&'static str`, and
//! floats are only ever derived from deterministic simulator state, so
//! the exported `MARLIN_METRICS` timeline is byte-identical for a fixed
//! (Scenario, seed) across runs, machines, and runners.

use crate::{json_escape, json_f64, Nanos};

/// Default ring capacity (rows) when `MARLIN_METRICS` enables the
/// recorder without an explicit `MARLIN_METRICS_TICKS` override. §6
/// preset runs take a few hundred ticks; 16k rows covers long sweeps.
pub const DEFAULT_METRICS_TICKS: usize = 1 << 14;

/// A recorded point value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PointValue {
    /// A cumulative integer counter sample.
    Int(u64),
    /// A sampled float gauge.
    Float(f64),
}

/// One named point within a tick row.
#[derive(Clone, Debug)]
pub struct MetricPoint {
    /// Static metric name (e.g. `"commits"`, `"slo_burn_rate"`).
    pub name: &'static str,
    /// Optional region label.
    pub region: Option<u16>,
    /// The sampled value.
    pub value: PointValue,
}

/// One tick's worth of points.
#[derive(Clone, Debug, Default)]
pub struct TickRow {
    /// Virtual timestamp of the tick, ns.
    pub at: Nanos,
    /// Points appended during the tick, in append order.
    pub points: Vec<MetricPoint>,
}

/// Ring-buffered per-tick metrics recorder.
///
/// Disabled recorders record nothing and allocate nothing; every
/// recording call is one branch. Enabled recorders overwrite the oldest
/// rows once the ring fills, reporting the dropped count.
#[derive(Debug)]
pub struct MetricsSeries {
    enabled: bool,
    rows: Vec<TickRow>,
    capacity: usize,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Total rows ever opened (≥ `rows.len()` after wrap).
    recorded: u64,
}

impl MetricsSeries {
    /// A recorder that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsSeries {
            enabled: false,
            rows: Vec::new(),
            capacity: 0,
            head: 0,
            recorded: 0,
        }
    }

    /// An enabled recorder with room for `capacity` tick rows.
    #[must_use]
    pub fn enabled(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MetricsSeries {
            enabled: true,
            rows: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Enabled iff `MARLIN_METRICS` is set (to the export path); ring
    /// capacity from `MARLIN_METRICS_TICKS` when present.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MARLIN_METRICS") {
            Ok(p) if !p.is_empty() => {
                let capacity = std::env::var("MARLIN_METRICS_TICKS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_METRICS_TICKS);
                MetricsSeries::enabled(capacity)
            }
            _ => MetricsSeries::disabled(),
        }
    }

    /// Is the recorder recording? Callers deriving non-trivial values
    /// should gate on this first.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a new tick row at virtual time `at`; subsequent point calls
    /// append to it. No-op when disabled.
    pub fn tick(&mut self, at: Nanos) {
        if !self.enabled {
            return;
        }
        let row = TickRow {
            at,
            points: Vec::new(),
        };
        if self.rows.len() < self.capacity {
            self.rows.push(row);
        } else {
            self.rows[self.head] = row;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Append an integer counter point to the current tick row.
    #[inline]
    pub fn counter(&mut self, name: &'static str, value: u64) {
        self.push(name, None, PointValue::Int(value));
    }

    /// Append a region-labelled integer counter point.
    #[inline]
    pub fn counter_region(&mut self, name: &'static str, region: u16, value: u64) {
        self.push(name, Some(region), PointValue::Int(value));
    }

    /// Append a float gauge point to the current tick row.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, value: f64) {
        self.push(name, None, PointValue::Float(value));
    }

    /// Append a region-labelled float gauge point.
    #[inline]
    pub fn gauge_region(&mut self, name: &'static str, region: u16, value: f64) {
        self.push(name, Some(region), PointValue::Float(value));
    }

    fn push(&mut self, name: &'static str, region: Option<u16>, value: PointValue) {
        if !self.enabled {
            return;
        }
        // The current row is the one most recently written: the last
        // pushed slot while filling, the slot before `head` once wrapped.
        let idx = if self.rows.len() < self.capacity {
            match self.rows.len().checked_sub(1) {
                Some(i) => i,
                None => return, // no tick opened yet: drop the point
            }
        } else {
            (self.head + self.capacity - 1) % self.capacity
        };
        self.rows[idx].points.push(MetricPoint {
            name,
            region,
            value,
        });
    }

    /// Rows currently held in the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been recorded (or the recorder is disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total tick rows ever opened, including overwritten ones.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Rows lost to ring overwrite.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded - self.rows.len() as u64
    }

    /// Rows in recording order (oldest surviving first).
    pub fn rows(&self) -> impl Iterator<Item = &TickRow> {
        self.rows[self.head..]
            .iter()
            .chain(self.rows[..self.head].iter())
    }

    /// Export the timeline as a JSON document. Virtual timestamps and
    /// deterministic values make the document byte-identical for a
    /// fixed (Scenario, seed).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 256 * self.rows.len());
        out.push_str("{\"ticks\":");
        out.push_str(&self.recorded.to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped().to_string());
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"at_ns\":");
            out.push_str(&row.at.to_string());
            out.push_str(",\"points\":[");
            for (j, p) in row.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"name\":");
                out.push_str(&json_escape(p.name));
                if let Some(r) = p.region {
                    out.push_str(",\"region\":");
                    out.push_str(&r.to_string());
                }
                out.push_str(",\"value\":");
                match p.value {
                    PointValue::Int(v) => out.push_str(&v.to_string()),
                    PointValue::Float(v) => out.push_str(&json_f64(v)),
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_series_records_nothing_and_never_allocates() {
        let mut s = MetricsSeries::disabled();
        s.tick(0);
        s.counter("commits", 7);
        s.gauge("p99_ms", 1.5);
        assert!(s.is_empty());
        assert_eq!(s.recorded(), 0);
        assert_eq!(s.rows.capacity(), 0);
    }

    #[test]
    fn points_before_the_first_tick_are_dropped_not_panicked() {
        let mut s = MetricsSeries::enabled(4);
        s.counter("orphan", 1);
        assert!(s.is_empty());
        s.tick(1_000);
        s.counter("commits", 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows().next().map(|r| r.points.len()), Some(1));
    }

    #[test]
    fn ring_overwrites_oldest_rows_and_counts_drops() {
        let mut s = MetricsSeries::enabled(3);
        for i in 0..5u64 {
            s.tick(i * 1_000);
            s.counter("commits", i);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.recorded(), 5);
        assert_eq!(s.dropped(), 2);
        let order: Vec<Nanos> = s.rows().map(|r| r.at).collect();
        assert_eq!(order, vec![2_000, 3_000, 4_000], "oldest surviving first");
        // Points keep landing on the newest row after the wrap.
        let last_points: Vec<u64> = s
            .rows()
            .last()
            .map(|r| {
                r.points
                    .iter()
                    .map(|p| match p.value {
                        PointValue::Int(v) => v,
                        PointValue::Float(_) => 0,
                    })
                    .collect()
            })
            .unwrap_or_default();
        assert_eq!(last_points, vec![4]);
    }

    #[test]
    fn json_export_is_wellformed_and_deterministic() {
        let make = || {
            let mut s = MetricsSeries::enabled(8);
            s.tick(5_000_000_000);
            s.counter("commits", 1234);
            s.gauge("slo_burn_rate", 0.75);
            s.counter_region("region_commits", 1, 617);
            s.to_json()
        };
        let j = make();
        assert_eq!(j, make(), "byte-identical across runs");
        assert!(j.starts_with("{\"ticks\":1,\"dropped\":0,\"rows\":["));
        assert!(j.contains("\"at_ns\":5000000000"));
        assert!(j.contains("{\"name\":\"commits\",\"value\":1234}"));
        assert!(j.contains("{\"name\":\"slo_burn_rate\",\"value\":0.75}"));
        assert!(j.contains("{\"name\":\"region_commits\",\"region\":1,\"value\":617}"));
        assert!(j.ends_with("]}\n"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn nonfinite_gauges_export_as_null() {
        let mut s = MetricsSeries::enabled(2);
        s.tick(0);
        s.gauge("ratio", f64::NAN);
        assert!(s.to_json().contains("{\"name\":\"ratio\",\"value\":null}"));
    }
}
