//! The sim self-profiler: wall-clock time per subsystem phase, event-queue
//! depth stats, and virtual-seconds-per-wall-second.

use std::time::Instant;

/// Accumulated wall time for one named phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name ("event:client_txn", "observe", "plan:build", ...).
    pub name: &'static str,
    /// Total wall-clock nanoseconds spent in the phase.
    pub wall_nanos: u64,
    /// Times the phase ran.
    pub calls: u64,
}

/// The profiler's end-of-run numbers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSummary {
    /// Per-phase wall time, sorted by name for a stable rendering.
    pub phases: Vec<PhaseStat>,
    /// Total wall nanoseconds across top-level measured sections (phases
    /// can nest, so this is tracked separately and is not their sum).
    pub total_wall_nanos: u64,
    /// Events dispatched while profiling.
    pub events: u64,
    /// Mean event-queue depth over the 1 Hz samples.
    pub queue_depth_mean: f64,
    /// Maximum sampled event-queue depth.
    pub queue_depth_max: u64,
}

impl ProfileSummary {
    /// The stat recorded under `name`, if that phase ever ran — e.g.
    /// `"event:cohort_step"` to see what the cohort scale engine cost.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Wall-clock profiler. Disabled profilers never call `Instant::now`,
/// so the hot path pays one branch per instrumentation point.
#[derive(Debug)]
pub struct Profiler {
    enabled: bool,
    phases: Vec<(u64, u64)>,
    names: Vec<&'static str>,
    total_wall: u64,
    events: u64,
    depth_sum: u128,
    depth_max: u64,
    depth_samples: u64,
}

impl Profiler {
    /// A profiler that measures nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Profiler {
            enabled: false,
            phases: Vec::new(),
            names: Vec::new(),
            total_wall: 0,
            events: 0,
            depth_sum: 0,
            depth_max: 0,
            depth_samples: 0,
        }
    }

    /// A live profiler.
    #[must_use]
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            ..Profiler::disabled()
        }
    }

    /// Enabled iff `MARLIN_BENCH_JSON` is set (the bench perf-trajectory
    /// artifacts are the consumer of the profile numbers).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("MARLIN_BENCH_JSON") {
            Ok(d) if !d.is_empty() => Profiler::enabled(),
            _ => Profiler::disabled(),
        }
    }

    /// Is the profiler measuring?
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Start timing a section; `None` when disabled. Pair with
    /// [`Profiler::record`] or [`Profiler::record_total`].
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Book the elapsed time since `started` under `name`. No-op when
    /// `started` is `None`.
    #[inline]
    pub fn record(&mut self, name: &'static str, started: Option<Instant>) {
        let Some(t0) = started else { return };
        let dt = t0.elapsed().as_nanos() as u64;
        match self.names.iter().position(|&n| n == name) {
            Some(i) => {
                self.phases[i].0 += dt;
                self.phases[i].1 += 1;
            }
            None => {
                self.names.push(name);
                self.phases.push((dt, 1));
            }
        }
    }

    /// Book the elapsed time since `started` into the top-level total
    /// only (for outer sections whose interior is already phase-timed).
    #[inline]
    pub fn record_total(&mut self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.total_wall += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Count one dispatched event.
    #[inline]
    pub fn count_event(&mut self) {
        if self.enabled {
            self.events += 1;
        }
    }

    /// Record one event-queue depth sample.
    #[inline]
    pub fn sample_depth(&mut self, depth: u64) {
        if !self.enabled {
            return;
        }
        self.depth_sum += u128::from(depth);
        self.depth_max = self.depth_max.max(depth);
        self.depth_samples += 1;
    }

    /// Snapshot the accumulated numbers.
    #[must_use]
    pub fn summary(&self) -> ProfileSummary {
        let mut phases: Vec<PhaseStat> = self
            .names
            .iter()
            .zip(&self.phases)
            .map(|(&name, &(wall_nanos, calls))| PhaseStat {
                name,
                wall_nanos,
                calls,
            })
            .collect();
        phases.sort_by_key(|p| p.name);
        ProfileSummary {
            phases,
            total_wall_nanos: self.total_wall,
            events: self.events,
            queue_depth_mean: if self.depth_samples == 0 {
                0.0
            } else {
                self.depth_sum as f64 / self.depth_samples as f64
            },
            queue_depth_max: self.depth_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut p = Profiler::disabled();
        assert!(p.start().is_none());
        p.record("x", p.start());
        p.sample_depth(10);
        let s = p.summary();
        assert!(s.phases.is_empty());
        assert_eq!(s.events, 0);
        assert_eq!(s.queue_depth_max, 0);
    }

    #[test]
    fn phases_accumulate_and_sort_by_name() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            let t = p.start();
            p.record("b_phase", t);
            p.count_event();
        }
        let t = p.start();
        p.record("a_phase", t);
        p.count_event();
        p.record_total(p.start());
        p.sample_depth(4);
        p.sample_depth(8);
        let s = p.summary();
        assert_eq!(s.events, 4);
        assert_eq!(
            s.phases
                .iter()
                .map(|p| (p.name, p.calls))
                .collect::<Vec<_>>(),
            vec![("a_phase", 1), ("b_phase", 3)]
        );
        assert!((s.queue_depth_mean - 6.0).abs() < 1e-9);
        assert_eq!(s.queue_depth_max, 8);
        assert_eq!(s.phase("b_phase").map(|p| p.calls), Some(3));
        assert!(s.phase("missing").is_none());
    }
}
