//! The coordination-service interface shared by the baselines.
//!
//! The testbed issues the same logical operations to every coordination
//! backend: ownership reads and compare-and-set updates (migration
//! metadata), membership changes, and full scans (routing). Marlin itself
//! needs no such service — its equivalents run through MarlinCommit on
//! the database's own logs — so this trait is implemented only by the
//! external baselines.

use marlin_common::{GranuleId, NodeId};
use marlin_sim::{DetRng, Nanos};

/// A logical coordination request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordRequest {
    /// Read a granule's owner.
    GetOwner { granule: GranuleId },
    /// Compare-and-set a granule's owner (the migration metadata commit).
    /// Fails if the current owner is not `from`.
    UpdateOwner {
        granule: GranuleId,
        from: NodeId,
        to: NodeId,
    },
    /// Install a granule's initial owner (bootstrap; unconditional).
    InstallOwner { granule: GranuleId, owner: NodeId },
    /// Register a node.
    AddNode { node: NodeId },
    /// Deregister a node.
    DeleteNode { node: NodeId },
    /// Full ownership scan (router refresh).
    Scan,
}

impl CoordRequest {
    /// Whether the request mutates coordination state (write path).
    #[must_use]
    pub fn is_write(&self) -> bool {
        !matches!(self, CoordRequest::GetOwner { .. } | CoordRequest::Scan)
    }
}

/// A reply to a coordination request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordReply {
    Owner(Option<NodeId>),
    Updated,
    /// CAS failure: the actual current owner.
    Conflict {
        actual: Option<NodeId>,
    },
    MembershipOk,
    /// Add of an existing node / delete of a missing node.
    MembershipConflict,
    /// Scan result: the full ownership map.
    ScanResult(Vec<(GranuleId, NodeId)>),
}

/// A request's completion: when it finishes inside the service, plus the
/// reply. (Client↔service network time is priced by the harness on top,
/// using [`CoordinationService::client_round_trips`].)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    pub done_at: Nanos,
    pub reply: CoordReply,
}

/// A converged coordination service with bounded capacity.
pub trait CoordinationService {
    /// Submit a request arriving at the service at `now`.
    fn submit(&mut self, now: Nanos, req: &CoordRequest, rng: &mut DetRng) -> Completion;

    /// Apply a request to the service state without consuming service
    /// capacity — bootstrap preloading (the paper warms up the system
    /// before measurement, §6.1.4).
    fn preload(&mut self, req: &CoordRequest) -> CoordReply;

    /// Client→service round trips this request needs (1 for ZooKeeper's
    /// single submit, more for FDB's GetReadVersion + commit pipeline).
    /// The harness multiplies by the client-to-service-region RTT —
    /// the dominating term in geo-distributed deployments (§6.5).
    fn client_round_trips(&self, req: &CoordRequest) -> u32;

    /// VMs the service occupies (3 for both baselines).
    fn vm_count(&self) -> u32;

    /// Hourly cost of the service cluster in dollars (Meta Cost, §6.1.5).
    fn hourly_rate(&self) -> f64;

    /// Display name for reports.
    fn name(&self) -> &'static str;
}

/// Shared functional state for both baselines: versioned ownership and
/// membership maps with CAS semantics.
#[derive(Clone, Debug, Default)]
pub struct CoordState {
    owners: std::collections::BTreeMap<GranuleId, NodeId>,
    members: std::collections::BTreeSet<NodeId>,
    /// Write version (ZooKeeper zxid / FDB commit version analogue).
    version: u64,
}

impl CoordState {
    /// Apply a request to the state, producing the reply.
    pub fn apply(&mut self, req: &CoordRequest) -> CoordReply {
        match req {
            CoordRequest::GetOwner { granule } => {
                CoordReply::Owner(self.owners.get(granule).copied())
            }
            CoordRequest::UpdateOwner { granule, from, to } => match self.owners.get_mut(granule) {
                Some(owner) if owner == from => {
                    *owner = *to;
                    self.version += 1;
                    CoordReply::Updated
                }
                actual => CoordReply::Conflict {
                    actual: actual.map(|o| *o),
                },
            },
            CoordRequest::InstallOwner { granule, owner } => {
                self.owners.insert(*granule, *owner);
                self.version += 1;
                CoordReply::Updated
            }
            CoordRequest::AddNode { node } => {
                if self.members.insert(*node) {
                    self.version += 1;
                    CoordReply::MembershipOk
                } else {
                    CoordReply::MembershipConflict
                }
            }
            CoordRequest::DeleteNode { node } => {
                if self.members.remove(node) {
                    self.version += 1;
                    CoordReply::MembershipOk
                } else {
                    CoordReply::MembershipConflict
                }
            }
            CoordRequest::Scan => {
                CoordReply::ScanResult(self.owners.iter().map(|(g, n)| (*g, *n)).collect())
            }
        }
    }

    /// Current write version.
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of registered members.
    #[must_use]
    pub fn member_count(&self) -> usize {
        self.members.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_update_semantics() {
        let mut s = CoordState::default();
        s.apply(&CoordRequest::InstallOwner {
            granule: GranuleId(1),
            owner: NodeId(0),
        });
        // Correct expectation: succeeds.
        assert_eq!(
            s.apply(&CoordRequest::UpdateOwner {
                granule: GranuleId(1),
                from: NodeId(0),
                to: NodeId(2),
            }),
            CoordReply::Updated
        );
        // Stale expectation: conflict with the actual owner.
        assert_eq!(
            s.apply(&CoordRequest::UpdateOwner {
                granule: GranuleId(1),
                from: NodeId(0),
                to: NodeId(3),
            }),
            CoordReply::Conflict {
                actual: Some(NodeId(2))
            }
        );
        // Unknown granule: conflict with None.
        assert_eq!(
            s.apply(&CoordRequest::UpdateOwner {
                granule: GranuleId(9),
                from: NodeId(0),
                to: NodeId(1),
            }),
            CoordReply::Conflict { actual: None }
        );
    }

    #[test]
    fn membership_semantics() {
        let mut s = CoordState::default();
        assert_eq!(
            s.apply(&CoordRequest::AddNode { node: NodeId(1) }),
            CoordReply::MembershipOk
        );
        assert_eq!(
            s.apply(&CoordRequest::AddNode { node: NodeId(1) }),
            CoordReply::MembershipConflict
        );
        assert_eq!(
            s.apply(&CoordRequest::DeleteNode { node: NodeId(1) }),
            CoordReply::MembershipOk
        );
        assert_eq!(
            s.apply(&CoordRequest::DeleteNode { node: NodeId(1) }),
            CoordReply::MembershipConflict
        );
    }

    #[test]
    fn versions_advance_only_on_writes() {
        let mut s = CoordState::default();
        let v0 = s.version();
        s.apply(&CoordRequest::GetOwner {
            granule: GranuleId(1),
        });
        s.apply(&CoordRequest::Scan);
        assert_eq!(s.version(), v0);
        s.apply(&CoordRequest::InstallOwner {
            granule: GranuleId(1),
            owner: NodeId(0),
        });
        assert_eq!(s.version(), v0 + 1);
    }

    #[test]
    fn scan_returns_full_map() {
        let mut s = CoordState::default();
        for g in 0..5u64 {
            s.apply(&CoordRequest::InstallOwner {
                granule: GranuleId(g),
                owner: NodeId((g % 2) as u32),
            });
        }
        let CoordReply::ScanResult(entries) = s.apply(&CoordRequest::Scan) else {
            panic!("scan must return entries")
        };
        assert_eq!(entries.len(), 5);
    }
}
