//! ZooKeeper-style single-master coordination service.
//!
//! Model of the paper's S-ZK / L-ZK baselines (§6.1.2): a three-node
//! ensemble (one leader, two followers). Every **write** is serialized
//! through the leader — request processing, proposal, ZAB quorum round,
//! commit — so write throughput is bounded by one node's service rate no
//! matter how large the coordinated database grows. That single-writer
//! funnel is precisely the scalability wall Figures 8/12c show. **Reads**
//! can be served by any replica (ZooKeeper's default consistency), so the
//! read path has 3× the parallelism.
//!
//! The two hardware profiles differ only in capacity, mirroring D4s v3
//! (4 vCPU / 2 Gbps) vs D8s v3 (8 vCPU / 4 Gbps): L-ZK's service times
//! are half of S-ZK's, and its cluster costs roughly twice as much.

use crate::coordinator::{Completion, CoordRequest, CoordState, CoordinationService};
use marlin_sim::{DetRng, LatencyModel, Nanos, QueueServer, MICROSECOND, MILLISECOND};

/// Hardware/capacity profile of a ZooKeeper ensemble.
#[derive(Clone, Copy, Debug)]
pub struct ZkProfile {
    /// Leader CPU+disk time per write (proposal, log append, commit).
    pub write_service: Nanos,
    /// Replica CPU time per read.
    pub read_service: Nanos,
    /// Intra-ensemble quorum round-trip (leader → follower ack).
    pub quorum_rtt: Nanos,
    /// Per-entry serialization cost of a full scan.
    pub scan_per_entry: Nanos,
    /// Hourly cost of the 3-VM ensemble (Meta Cost).
    pub hourly_rate: f64,
    /// Display name.
    pub name: &'static str,
}

impl ZkProfile {
    /// S-ZK: 3 × Standard D4s v3 (4 vCPU, 16 GB, 2 Gbps), $0.597/h
    /// (§6.2). Effective write capacity ≈ 2.9k ops/s: each update is a
    /// ~1 KB znode write through request processing, proposal
    /// serialization, log fsync, and snapshotting on 4 vCPUs — calibrated
    /// to the migration-storm throughput ratios of Figure 8.
    #[must_use]
    pub fn small() -> Self {
        ZkProfile {
            write_service: 350 * MICROSECOND,
            read_service: 100 * MICROSECOND,
            quorum_rtt: MILLISECOND,
            scan_per_entry: 300, // ns per entry streamed out
            hourly_rate: 0.597,
            name: "S-ZK",
        }
    }

    /// L-ZK: 3 × Standard D8s v3 (8 vCPU, 32 GB, 4 Gbps), $1.173/h.
    /// Better CPU and double the NIC, but single-leader serialization and
    /// the quorum round compress the hardware advantage (the paper's L-ZK
    /// gains ~1.2× over S-ZK on migration throughput, Figure 8).
    #[must_use]
    pub fn large() -> Self {
        ZkProfile {
            write_service: 290 * MICROSECOND,
            read_service: 70 * MICROSECOND,
            quorum_rtt: MILLISECOND,
            scan_per_entry: 150,
            hourly_rate: 1.173,
            name: "L-ZK",
        }
    }
}

/// The simulated ensemble.
#[derive(Clone, Debug)]
pub struct ZkService {
    profile: ZkProfile,
    state: CoordState,
    /// The leader's single-threaded request pipeline.
    leader: QueueServer,
    /// Read replicas (leader + 2 followers serve reads).
    readers: QueueServer,
    /// Jitter on service times (scheduling noise).
    jitter: LatencyModel,
    writes: u64,
    reads: u64,
}

impl ZkService {
    /// Create an ensemble with the given profile.
    #[must_use]
    pub fn new(profile: ZkProfile) -> Self {
        ZkService {
            profile,
            state: CoordState::default(),
            leader: QueueServer::new(1),
            readers: QueueServer::new(3),
            jitter: LatencyModel::with_jitter(0, 0.0),
            writes: 0,
            reads: 0,
        }
    }

    /// The functional coordination state (for assertions in tests).
    #[must_use]
    pub fn state(&self) -> &CoordState {
        &self.state
    }

    /// `(writes, reads)` served so far.
    #[must_use]
    pub fn ops(&self) -> (u64, u64) {
        (self.writes, self.reads)
    }

    fn jittered(&self, base: Nanos, rng: &mut DetRng) -> Nanos {
        let _ = &self.jitter;
        // ±10% uniform service-time noise.
        let span = base / 5;
        if span == 0 {
            base
        } else {
            base - span / 2 + rng.range(0, span + 1)
        }
    }
}

impl CoordinationService for ZkService {
    fn submit(&mut self, now: Nanos, req: &CoordRequest, rng: &mut DetRng) -> Completion {
        let reply = self.state.apply(req);
        let done_at = if req.is_write() {
            self.writes += 1;
            let service = self.jittered(self.profile.write_service, rng);
            // Leader pipeline, then the ZAB quorum round before the ack.
            self.leader.offer(now, service) + self.profile.quorum_rtt
        } else {
            self.reads += 1;
            let mut service = self.jittered(self.profile.read_service, rng);
            if matches!(req, CoordRequest::Scan) {
                if let crate::coordinator::CoordReply::ScanResult(entries) = &reply {
                    service += entries.len() as Nanos * self.profile.scan_per_entry;
                }
            }
            self.readers.offer(now, service)
        };
        Completion { done_at, reply }
    }

    fn preload(&mut self, req: &CoordRequest) -> crate::coordinator::CoordReply {
        self.state.apply(req)
    }

    fn client_round_trips(&self, _req: &CoordRequest) -> u32 {
        1 // single submit/reply to the ensemble
    }

    fn vm_count(&self) -> u32 {
        3
    }

    fn hourly_rate(&self) -> f64 {
        self.profile.hourly_rate
    }

    fn name(&self) -> &'static str {
        self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::CoordReply;
    use marlin_common::{GranuleId, NodeId};
    use marlin_sim::SECOND;

    fn install(svc: &mut ZkService, granules: u64, rng: &mut DetRng) {
        for g in 0..granules {
            svc.submit(
                0,
                &CoordRequest::InstallOwner {
                    granule: GranuleId(g),
                    owner: NodeId(0),
                },
                rng,
            );
        }
    }

    #[test]
    fn writes_serialize_through_the_leader() {
        let mut svc = ZkService::new(ZkProfile::small());
        let mut rng = DetRng::seed(1);
        install(&mut svc, 1, &mut rng);
        // Offer a burst of 1000 CAS updates at t=0; completions must be
        // spaced by at least the leader service time (single server).
        let mut completions = Vec::new();
        for i in 0..1000u64 {
            let from = NodeId((i % 2) as u32);
            let to = NodeId(((i + 1) % 2) as u32);
            let c = svc.submit(
                0,
                &CoordRequest::UpdateOwner {
                    granule: GranuleId(0),
                    from,
                    to,
                },
                &mut rng,
            );
            assert_eq!(c.reply, CoordReply::Updated);
            completions.push(c.done_at);
        }
        let span = completions.last().unwrap() - completions.first().unwrap();
        let per_op = span as f64 / 999.0;
        // ~350µs ± jitter.
        assert!(
            (300_000.0..400_000.0).contains(&per_op),
            "per-op {per_op}ns"
        );
    }

    #[test]
    fn large_profile_is_faster_but_not_double() {
        let mut rng = DetRng::seed(2);
        let measure = |profile: ZkProfile, rng: &mut DetRng| {
            let mut svc = ZkService::new(profile);
            install(&mut svc, 1, rng);
            let mut last = 0;
            for i in 0..500u64 {
                let from = NodeId((i % 2) as u32);
                let to = NodeId(((i + 1) % 2) as u32);
                last = svc
                    .submit(
                        0,
                        &CoordRequest::UpdateOwner {
                            granule: GranuleId(0),
                            from,
                            to,
                        },
                        rng,
                    )
                    .done_at;
            }
            last
        };
        let small = measure(ZkProfile::small(), &mut rng);
        let large = measure(ZkProfile::large(), &mut rng);
        let ratio = small as f64 / large as f64;
        assert!((1.1..1.6).contains(&ratio), "S/L completion ratio {ratio}");
    }

    #[test]
    fn reads_have_more_parallelism_than_writes() {
        let mut svc = ZkService::new(ZkProfile::small());
        let mut rng = DetRng::seed(3);
        install(&mut svc, 4, &mut rng);
        let mut write_last = 0;
        let mut read_last = 0;
        for i in 0..300u64 {
            let from = NodeId((i % 2) as u32);
            let to = NodeId(((i + 1) % 2) as u32);
            write_last = svc
                .submit(
                    0,
                    &CoordRequest::UpdateOwner {
                        granule: GranuleId(0),
                        from,
                        to,
                    },
                    &mut rng,
                )
                .done_at;
        }
        for _ in 0..300u64 {
            read_last = svc
                .submit(
                    0,
                    &CoordRequest::GetOwner {
                        granule: GranuleId(1),
                    },
                    &mut rng,
                )
                .done_at;
        }
        assert!(
            read_last < write_last,
            "reads must clear faster than writes"
        );
    }

    #[test]
    fn quorum_rtt_floors_write_latency() {
        let mut svc = ZkService::new(ZkProfile::small());
        let mut rng = DetRng::seed(4);
        let c = svc.submit(
            5 * SECOND,
            &CoordRequest::InstallOwner {
                granule: GranuleId(0),
                owner: NodeId(0),
            },
            &mut rng,
        );
        assert!(
            c.done_at >= 5 * SECOND + MILLISECOND,
            "ZAB round floors latency"
        );
    }

    #[test]
    fn scan_cost_scales_with_map_size() {
        let mut rng = DetRng::seed(5);
        let mut small = ZkService::new(ZkProfile::small());
        install(&mut small, 100, &mut rng);
        let mut big = ZkService::new(ZkProfile::small());
        install(&mut big, 100_000, &mut rng);
        let t_small = small.submit(SECOND, &CoordRequest::Scan, &mut rng).done_at - SECOND;
        let t_big = big.submit(SECOND, &CoordRequest::Scan, &mut rng).done_at - SECOND;
        assert!(t_big > 10 * t_small, "scan must scale with entries");
    }
}
