//! Converged coordination baselines (§6.1.2).
//!
//! The paper compares Marlin against two external coordination services:
//!
//! - **ZooKeeper** (S-ZK on D4s v3 hardware, L-ZK on D8s v3) — a
//!   single-master configuration store: every write funnels through one
//!   leader, is sequenced by a ZAB quorum round over three replicas, and
//!   is bounded by the leader's service rate. [`zk::ZkService`].
//! - **FoundationDB** 7.3.63 — a distributed transactional KV store used
//!   as the metadata service by Snowflake-style systems: better internal
//!   parallelism than ZooKeeper (sharded storage, pipelined commit) but
//!   fixed resources and a multi-round-trip commit path (GetReadVersion +
//!   commit), which is what hurts it in geo-distributed deployments
//!   (§6.5). [`fdb::FdbService`].
//!
//! Both services are *functional* models: they maintain real ownership and
//! membership state with compare-and-set versioning (a migration's
//! metadata update really does fail if the granule moved), while their
//! **timing** comes from queueing stations calibrated to the relative
//! capacities of the paper's hardware profiles. The discrete-event harness
//! in `marlin-cluster` prices client round trips and regional latencies on
//! top.

pub mod coordinator;
pub mod fdb;
pub mod zk;

pub use coordinator::{Completion, CoordReply, CoordRequest, CoordinationService};
pub use fdb::{FdbProfile, FdbService};
pub use zk::{ZkProfile, ZkService};
