//! FoundationDB-style distributed transactional coordination service.
//!
//! Model of the paper's FDB baseline (§6.1.2): FoundationDB 7.3.63 on
//! three nodes, each running one transaction process, one storage process,
//! and one stateless process, with triple replication and dynamic
//! key-prefix sharding.
//!
//! The model captures the three properties the evaluation turns on:
//!
//! 1. **Internal parallelism** — storage is sharded, and the commit
//!    pipeline (proxy → resolver → tlog) is pipelined, so FDB sustains
//!    higher metadata-update throughput than a ZooKeeper leader (shorter
//!    migration durations in Figure 12a).
//! 2. **Fixed provisioning** — capacity does not grow with the coordinated
//!    database; throughput gains diminish at scale (Figure 12c) and the
//!    3-VM cluster is a standing Meta Cost (up to 2.1× cost vs Marlin).
//! 3. **Multi-round-trip commits** — every transaction needs
//!    `GetReadVersion` and then a commit round; in geo-distributed
//!    deployments each is a cross-region round trip, which is why FDB's
//!    migration durations blow up to 9.5× Marlin's (Figure 13, §6.5).

use crate::coordinator::{Completion, CoordRequest, CoordState, CoordinationService};
use marlin_sim::{DetRng, Nanos, QueueServer, MICROSECOND, MILLISECOND};

/// Capacity profile of the FDB cluster.
#[derive(Clone, Copy, Debug)]
pub struct FdbProfile {
    /// Proxy service per GetReadVersion batch slot.
    pub grv_service: Nanos,
    /// Resolver conflict-check time per transaction.
    pub resolver_service: Nanos,
    /// Transaction-log fsync/replication time per commit.
    pub tlog_service: Nanos,
    /// Storage-server read time.
    pub read_service: Nanos,
    /// Per-entry cost of a full range scan.
    pub scan_per_entry: Nanos,
    /// Intra-cluster replication round.
    pub replication_rtt: Nanos,
    /// Number of storage shard servers.
    pub shards: usize,
    /// Hourly cost of the 3-VM cluster.
    pub hourly_rate: f64,
}

impl FdbProfile {
    /// The paper's deployment: hardware comparable to S-ZK (3 × D4s v3,
    /// $0.597/h), triple replication, dynamic sharding.
    #[must_use]
    pub fn paper_default() -> Self {
        FdbProfile {
            grv_service: 30 * MICROSECOND,
            // The serial resolver stage caps commits near 5.2k/s — above
            // the ZooKeeper leader, below Marlin's partitioned path at the
            // SO8-16 scale (Figure 12c's ordering).
            resolver_service: 190 * MICROSECOND,
            tlog_service: 160 * MICROSECOND,
            read_service: 80 * MICROSECOND,
            scan_per_entry: 250,
            replication_rtt: MILLISECOND,
            shards: 3,
            hourly_rate: 0.597,
        }
    }
}

/// The simulated FDB cluster.
#[derive(Clone, Debug)]
pub struct FdbService {
    profile: FdbProfile,
    state: CoordState,
    proxy: QueueServer,
    resolver: QueueServer,
    tlog: QueueServer,
    shards: Vec<QueueServer>,
    commits: u64,
    reads: u64,
}

impl FdbService {
    /// Create a cluster with the given profile.
    #[must_use]
    pub fn new(profile: FdbProfile) -> Self {
        FdbService {
            state: CoordState::default(),
            proxy: QueueServer::new(1),
            resolver: QueueServer::new(1),
            tlog: QueueServer::new(1),
            shards: (0..profile.shards).map(|_| QueueServer::new(1)).collect(),
            profile,
            commits: 0,
            reads: 0,
        }
    }

    /// The functional coordination state.
    #[must_use]
    pub fn state(&self) -> &CoordState {
        &self.state
    }

    /// `(commits, reads)` served.
    #[must_use]
    pub fn ops(&self) -> (u64, u64) {
        (self.commits, self.reads)
    }

    fn shard_of(&self, key: u64) -> usize {
        // Dynamic sharding by key prefix, modeled as a stable hash split
        // (Fibonacci hashing; the high bits are well mixed).
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards.len()
    }

    fn jittered(base: Nanos, rng: &mut DetRng) -> Nanos {
        let span = base / 5;
        if span == 0 {
            base
        } else {
            base - span / 2 + rng.range(0, span + 1)
        }
    }
}

impl CoordinationService for FdbService {
    fn submit(&mut self, now: Nanos, req: &CoordRequest, rng: &mut DetRng) -> Completion {
        let reply = self.state.apply(req);
        let grv_done = self
            .proxy
            .offer(now, Self::jittered(self.profile.grv_service, rng));
        let done_at = match req {
            CoordRequest::GetOwner { granule } => {
                self.reads += 1;
                let shard = self.shard_of(granule.0);
                self.shards[shard].offer(grv_done, Self::jittered(self.profile.read_service, rng))
            }
            CoordRequest::Scan => {
                self.reads += 1;
                // A scan fans out to all shards; completion is the slowest.
                let entries = match &reply {
                    crate::coordinator::CoordReply::ScanResult(e) => e.len(),
                    _ => 0,
                };
                let per_shard = Self::jittered(self.profile.read_service, rng)
                    + (entries as Nanos / self.shards.len().max(1) as Nanos)
                        * self.profile.scan_per_entry;
                let mut done = grv_done;
                for shard in &mut self.shards {
                    done = done.max(shard.offer(grv_done, per_shard));
                }
                done
            }
            _ => {
                // Write path: resolver conflict check, tlog append, then
                // the replication round before the commit version is
                // handed back.
                self.commits += 1;
                let resolved = self
                    .resolver
                    .offer(grv_done, Self::jittered(self.profile.resolver_service, rng));
                let logged = self
                    .tlog
                    .offer(resolved, Self::jittered(self.profile.tlog_service, rng));
                logged + self.profile.replication_rtt
            }
        };
        Completion { done_at, reply }
    }

    fn preload(&mut self, req: &CoordRequest) -> crate::coordinator::CoordReply {
        self.state.apply(req)
    }

    fn client_round_trips(&self, _req: &CoordRequest) -> u32 {
        // GetReadVersion is one client round trip; the read or commit is
        // another (§6.5: "each migration triggers a metadata update in
        // FDB, requiring multiple cross-region round trips"). Reads and
        // writes both pay exactly these two.
        2
    }

    fn vm_count(&self) -> u32 {
        3
    }

    fn hourly_rate(&self) -> f64 {
        self.profile.hourly_rate
    }

    fn name(&self) -> &'static str {
        "FDB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::CoordReply;
    use crate::zk::{ZkProfile, ZkService};
    use marlin_common::{GranuleId, NodeId};

    fn install(svc: &mut FdbService, granules: u64, rng: &mut DetRng) {
        for g in 0..granules {
            svc.submit(
                0,
                &CoordRequest::InstallOwner {
                    granule: GranuleId(g),
                    owner: NodeId(0),
                },
                rng,
            );
        }
    }

    #[test]
    fn cas_semantics_shared_with_zk() {
        let mut svc = FdbService::new(FdbProfile::paper_default());
        let mut rng = DetRng::seed(1);
        install(&mut svc, 1, &mut rng);
        let c = svc.submit(
            0,
            &CoordRequest::UpdateOwner {
                granule: GranuleId(0),
                from: NodeId(0),
                to: NodeId(1),
            },
            &mut rng,
        );
        assert_eq!(c.reply, CoordReply::Updated);
        let c = svc.submit(
            0,
            &CoordRequest::UpdateOwner {
                granule: GranuleId(0),
                from: NodeId(0),
                to: NodeId(2),
            },
            &mut rng,
        );
        assert_eq!(
            c.reply,
            CoordReply::Conflict {
                actual: Some(NodeId(1))
            }
        );
    }

    #[test]
    fn fdb_sustains_higher_write_throughput_than_szk() {
        // The Figure 12 relationship: FDB's pipelined commit beats the
        // ZooKeeper leader under a migration storm.
        let mut rng = DetRng::seed(2);
        let n = 2_000u64;

        let mut fdb = FdbService::new(FdbProfile::paper_default());
        install(&mut fdb, n, &mut rng);
        let mut fdb_last = 0;
        for g in 0..n {
            fdb_last = fdb
                .submit(
                    0,
                    &CoordRequest::UpdateOwner {
                        granule: GranuleId(g),
                        from: NodeId(0),
                        to: NodeId(1),
                    },
                    &mut rng,
                )
                .done_at;
        }

        let mut zk = ZkService::new(ZkProfile::small());
        let mut zk_last = 0;
        for g in 0..n {
            zk.submit(
                0,
                &CoordRequest::InstallOwner {
                    granule: GranuleId(g),
                    owner: NodeId(0),
                },
                &mut rng,
            );
        }
        for g in 0..n {
            zk_last = zk
                .submit(
                    0,
                    &CoordRequest::UpdateOwner {
                        granule: GranuleId(g),
                        from: NodeId(0),
                        to: NodeId(1),
                    },
                    &mut rng,
                )
                .done_at;
        }
        assert!(
            fdb_last < zk_last,
            "FDB ({fdb_last}ns) must finish the storm before S-ZK ({zk_last}ns)"
        );
    }

    #[test]
    fn fdb_needs_more_client_round_trips_than_zk() {
        let fdb = FdbService::new(FdbProfile::paper_default());
        let zk = ZkService::new(ZkProfile::small());
        let req = CoordRequest::UpdateOwner {
            granule: GranuleId(0),
            from: NodeId(0),
            to: NodeId(1),
        };
        assert!(fdb.client_round_trips(&req) > zk.client_round_trips(&req));
    }

    #[test]
    fn reads_spread_across_shards() {
        // The same read storm finishes sooner with 3 shards than with 1.
        let run = |shards: usize, seed: u64| {
            let mut profile = FdbProfile::paper_default();
            profile.shards = shards;
            let mut svc = FdbService::new(profile);
            let mut rng = DetRng::seed(seed);
            install(&mut svc, 300, &mut rng);
            let mut last = 0;
            for g in 0..300u64 {
                last = last.max(
                    svc.submit(
                        0,
                        &CoordRequest::GetOwner {
                            granule: GranuleId(g),
                        },
                        &mut rng,
                    )
                    .done_at,
                );
            }
            last
        };
        let sharded = run(3, 3);
        let single = run(1, 3);
        assert!(
            sharded < single,
            "3 shards ({sharded}ns) must beat 1 shard ({single}ns)"
        );
    }
}
