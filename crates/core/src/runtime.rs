//! The synchronous in-process cluster runtime.
//!
//! [`LocalCluster`] is the functional reference implementation of the full
//! system: it wires per-node coordination state ([`MarlinNode`]), the
//! engine's lock table and row store, and the disaggregated
//! [`StorageService`], and it fulfills protocol-driver [`Effect`]s
//! immediately (RPCs become function calls, appends hit the in-memory
//! storage service). Unit tests, integration tests, and the examples run
//! against it; the discrete-event simulator in `marlin-cluster` drives the
//! *same* drivers with virtual-time delays.
//!
//! What the runtime implements end-to-end:
//!
//! - bootstrap (SysLog membership + GLog granule installs + row loads);
//! - user transactions with the Algorithm 1 ownership guard, 2PL `NO_WAIT`
//!   locks, and one-phase MarlinCommit on the node's own GLog (which
//!   doubles as its data WAL — the Figure 7 detection mechanism);
//! - all five reconfiguration transactions with retry-on-conflict loops;
//! - live migration with Squall-style row warm-up (src → dst shipping);
//! - failover: kill/revive, recovery migration committing to the dead
//!   node's GLog, row recovery from the shared page store, and the
//!   Cornus-style termination protocol for in-doubt transactions.

use crate::drivers::{
    AddNodeDriver, CommitDriver, CommitOutcome, DeleteNodeDriver, Effect, Input, MigrationDriver,
    Participant, RecoveryMigrDriver, ScanGTableDriver, Updates,
};
use crate::gtable::{materialize, GTablePartition, GranuleMeta};
use crate::node::MarlinNode;
use crate::records::GRecord;
use bytes::Bytes;
use marlin_common::{
    ClusterConfig, CoordError, GranuleId, GranuleLayout, LogId, Lsn, NodeId, StorageError, TableId,
    TxnError, TxnId,
};
use marlin_engine::recovery::recover_granule_from_pages;
use marlin_engine::{
    DataStore, Granule, LockMode, LockTable, LockTarget, RowWrite, TxnUpdateRecord,
};
use marlin_storage::{encode_page_updates, StorageService};
use std::collections::{BTreeMap, VecDeque};

/// How many times reconfiguration wrappers retry after a commit conflict
/// (each retry refreshes the stale cache first).
const MAX_RETRIES: usize = 16;

/// Per-node runtime state.
pub struct NodeRuntime {
    /// Coordination state (system-table caches, tracker).
    pub marlin: MarlinNode,
    /// 2PL NO_WAIT lock table.
    pub locks: LockTable,
    /// Materialized rows of owned granules.
    pub data: DataStore,
    /// Whether the node responds to RPCs (false = crashed/slow).
    pub alive: bool,
}

impl NodeRuntime {
    fn new(id: NodeId) -> Self {
        NodeRuntime {
            marlin: MarlinNode::new(id),
            locks: LockTable::new(),
            data: DataStore::new(),
            alive: true,
        }
    }
}

/// The synchronous cluster: storage + nodes + table layouts.
pub struct LocalCluster {
    storage: StorageService,
    nodes: BTreeMap<NodeId, NodeRuntime>,
    layouts: BTreeMap<TableId, GranuleLayout>,
    page_bytes: u64,
}

impl LocalCluster {
    /// An empty cluster over fresh storage.
    #[must_use]
    pub fn new(layouts: Vec<GranuleLayout>, page_bytes: u64) -> Self {
        let mut map = BTreeMap::new();
        for l in layouts {
            map.insert(l.table, l);
        }
        LocalCluster {
            storage: StorageService::new(),
            nodes: BTreeMap::new(),
            layouts: map,
            page_bytes,
        }
    }

    /// Bootstrap a cluster: add the initial nodes through real
    /// `AddNodeTxn`s and install the initial granule assignment through
    /// GLog `Install` records (one batched append per node).
    #[must_use]
    pub fn bootstrap(cfg: &ClusterConfig) -> Self {
        let mut cluster = LocalCluster::new(cfg.tables.clone(), cfg.page_bytes);
        for &node in &cfg.initial_nodes {
            cluster
                .add_node(node, format!("10.0.0.{}", node.0))
                .expect("bootstrap add_node cannot conflict");
        }
        // Group the initial assignment per owner and install.
        let mut per_node: BTreeMap<NodeId, Vec<(TableId, GranuleId)>> = BTreeMap::new();
        for (table, granule, owner) in cfg.initial_assignment() {
            per_node.entry(owner).or_default().push((table, granule));
        }
        for (owner, granules) in per_node {
            cluster.install_granules(owner, &granules);
        }
        cluster
    }

    /// Install granules on a node at bootstrap: append `Install` records
    /// to the owner's GLog (one batched append) and create empty row sets.
    pub fn install_granules(&mut self, owner: NodeId, granules: &[(TableId, GranuleId)]) {
        let mut payloads = Vec::with_capacity(granules.len());
        for (table, granule) in granules {
            let layout = &self.layouts[table];
            payloads.push(
                GRecord::Install {
                    table: *table,
                    granule: *granule,
                    range: layout.range_of(*granule),
                    owner,
                }
                .encode(),
            );
        }
        let log = LogId::GLog(owner);
        let out = self
            .storage
            .append(log, payloads)
            .expect("owner GLog exists");
        let node = self.nodes.get_mut(&owner).expect("owner admitted");
        let suffix = self
            .storage
            .log(log)
            .expect("glog")
            .read_after(node.marlin.gtable().applied_lsn());
        node.marlin
            .refresh_own_gtable(suffix.into_iter().map(|r| (r.lsn, r.payload)));
        node.marlin.tracker.observe(log, out.new_lsn);
        for (table, granule) in granules {
            let layout = &self.layouts[table];
            node.data
                .install(*table, *granule, Granule::new(layout.range_of(*granule)));
        }
    }

    /// The storage service (shared handle).
    #[must_use]
    pub fn storage(&self) -> &StorageService {
        &self.storage
    }

    /// A table's layout.
    #[must_use]
    pub fn layout(&self, table: TableId) -> &GranuleLayout {
        &self.layouts[&table]
    }

    /// Borrow a node's runtime.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NodeRuntime {
        &self.nodes[&id]
    }

    /// Mutably borrow a node's runtime.
    pub fn node_mut(&mut self, id: NodeId) -> &mut NodeRuntime {
        self.nodes
            .get_mut(&id)
            .expect("NodeId not in the runtime map: ids come from membership and runtimes persist for ex-members, so every id ever admitted resolves")
    }

    /// Node IDs with runtimes (members and ex-members).
    #[must_use]
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Make a node unresponsive (temporary slowdown or crash).
    pub fn kill(&mut self, id: NodeId) {
        self.node_mut(id).alive = false;
    }

    /// Bring a node back. Its caches are whatever they were — the
    /// stale-cache race of Figure 7 is exactly what MarlinCommit handles.
    pub fn revive(&mut self, id: NodeId) {
        self.node_mut(id).alive = true;
    }

    // -- membership ---------------------------------------------------------

    /// `AddNodeTxn`: provision logs for `id`, then commit the membership
    /// record (retrying through cache refreshes on CAS conflicts).
    pub fn add_node(&mut self, id: NodeId, addr: String) -> Result<(), CoordError> {
        self.storage.provision_node(id);
        self.nodes.entry(id).or_insert_with(|| NodeRuntime::new(id));
        for _ in 0..MAX_RETRIES {
            self.refresh_mtable(id);
            let txn = self.node_mut(id).marlin.next_txn();
            let (mut driver, effects) = {
                let node = &self.nodes[&id];
                AddNodeDriver::new(
                    txn,
                    id,
                    addr.clone(),
                    node.marlin.mtable(),
                    &node.marlin.tracker,
                )
            };
            self.pump(id, effects, |input| driver.on_input(input));
            match driver.result() {
                Some(Ok(())) => return Ok(()),
                Some(Err(CoordError::Aborted(_))) => continue,
                Some(Err(e)) => return Err(e.clone()),
                None => unreachable!("synchronous pump always completes"),
            }
        }
        Err(CoordError::ServiceError(
            "add_node retries exhausted".into(),
        ))
    }

    /// `DeleteNodeTxn` run on `coordinator` to remove `victim`.
    pub fn delete_node(&mut self, coordinator: NodeId, victim: NodeId) -> Result<(), CoordError> {
        for _ in 0..MAX_RETRIES {
            self.refresh_mtable(coordinator);
            let txn = self.node_mut(coordinator).marlin.next_txn();
            let (mut driver, effects) = {
                let node = &self.nodes[&coordinator];
                DeleteNodeDriver::new(
                    txn,
                    coordinator,
                    victim,
                    node.marlin.mtable(),
                    &node.marlin.tracker,
                )
            };
            self.pump(coordinator, effects, |input| driver.on_input(input));
            match driver.result() {
                Some(Ok(())) => return Ok(()),
                Some(Err(CoordError::Aborted(_))) => continue,
                Some(Err(e)) => return Err(e.clone()),
                None => unreachable!("synchronous pump always completes"),
            }
        }
        Err(CoordError::ServiceError(
            "delete_node retries exhausted".into(),
        ))
    }

    // -- migration ----------------------------------------------------------

    /// `MigrationTxn`: migrate `granules` of `table` from `src` to `dst`,
    /// then warm up the destination by shipping rows (Squall-style scan).
    pub fn migrate(
        &mut self,
        src: NodeId,
        dst: NodeId,
        table: TableId,
        granules: Vec<GranuleId>,
    ) -> Result<(), CoordError> {
        let txn = self.node_mut(dst).marlin.next_txn();
        let (mut driver, effects) = MigrationDriver::new(txn, src, dst, granules.clone());
        let mut queue: VecDeque<Effect> = effects.into();
        while let Some(effect) = queue.pop_front() {
            if let Some(input) = self.execute_effect(dst, txn, &effect) {
                let tracker = self.nodes[&dst].marlin.tracker.clone();
                queue.extend(driver.on_input(input, &tracker));
            }
        }
        match driver.result() {
            Some(Ok(())) => {
                // Warm-up: ship the rows from the (live) source.
                for granule in &granules {
                    let moved = self
                        .nodes
                        .get_mut(&src)
                        .and_then(|n| n.data.remove(table, *granule));
                    if let Some(g) = moved {
                        self.node_mut(dst).data.install(table, *granule, g);
                    }
                }
                Ok(())
            }
            Some(Err(e)) => Err(e.clone()),
            None => unreachable!("synchronous pump always completes"),
        }
    }

    /// `RecoveryMigrTxn`: take over `granules` from unresponsive `src`,
    /// committing to both GLogs directly, then recover the rows from the
    /// shared page store (the source cannot serve a warm-up scan).
    pub fn recovery_migrate(
        &mut self,
        dst: NodeId,
        src: NodeId,
        granules: Vec<GranuleId>,
    ) -> Result<(), CoordError> {
        // Refresh the destination's copy of the source partition from
        // storage (the source is unresponsive; the log is the truth).
        self.refresh_foreign(dst, src);
        let txn = self.node_mut(dst).marlin.next_txn();
        let (mut driver, effects) = {
            let node = &self.nodes[&dst];
            let partition = node
                .marlin
                .foreign_partition(src)
                .cloned()
                .unwrap_or_default();
            RecoveryMigrDriver::new(
                txn,
                src,
                dst,
                granules.clone(),
                &partition,
                &node.marlin.tracker,
            )
        };
        self.pump(dst, effects, |input| driver.on_input(input));
        match driver.result() {
            Some(Ok(())) => {
                self.recover_rows(dst, src, &granules);
                Ok(())
            }
            Some(Err(e)) => Err(e.clone()),
            None => unreachable!("synchronous pump always completes"),
        }
    }

    fn recover_rows(&mut self, dst: NodeId, src: NodeId, granules: &[GranuleId]) {
        // Drive replay on every log so GetPage@LSN serves the newest
        // versions. A granule's pages may carry deltas from *previous*
        // owners' logs (ownership moved over its lifetime); the paper's
        // replay service runs continuously, so catching all logs up is the
        // synchronous-runtime equivalent.
        self.storage.replay_all();
        let src_log = LogId::GLog(src);
        let store = self.storage.page_store();
        let as_of = store.replayed_lsn(src_log);
        let node = self.nodes.get_mut(&dst).expect("dst admitted");
        for granule in granules {
            let Some(meta) = node.marlin.gtable().get(*granule).copied() else {
                continue;
            };
            let layout = &self.layouts[&meta.table];
            let recovered = recover_granule_from_pages(
                &store,
                meta.table,
                *granule,
                meta.range,
                layout.pages_per_granule(self.page_bytes),
                src_log,
                as_of,
            )
            .unwrap_or_else(|_| Granule::new(meta.range));
            node.data.install(meta.table, *granule, recovered);
        }
    }

    // -- scans & user transactions ------------------------------------------

    /// `ScanGTableTxn` on `node`: the merged cluster-wide ownership map.
    pub fn scan_gtable(
        &mut self,
        node: NodeId,
    ) -> Result<Vec<(GranuleId, GranuleMeta)>, CoordError> {
        for _ in 0..MAX_RETRIES {
            self.refresh_mtable(node);
            let txn = self.node_mut(node).marlin.next_txn();
            let (mut driver, effects) = {
                let rt = &self.nodes[&node];
                ScanGTableDriver::new(
                    txn,
                    node,
                    rt.marlin.mtable(),
                    rt.marlin.gtable().scan(),
                    &rt.marlin.tracker,
                )
            };
            self.pump(node, effects, |input| driver.on_input(input));
            match driver.result() {
                Some(Ok(())) => return driver.into_entries(),
                Some(Err(CoordError::Aborted(TxnError::CommitConflict { .. }))) => continue,
                Some(Err(e)) => return Err(e.clone()),
                None => unreachable!("synchronous pump always completes"),
            }
        }
        Err(CoordError::ServiceError("scan retries exhausted".into()))
    }

    /// A single-site user transaction on `node`: read `reads`, write
    /// `writes`, commit via one-phase MarlinCommit on the node's own GLog.
    ///
    /// Implements Algorithm 1's `UserTxnRequest` guard: every accessed
    /// granule must be owned by `node`, with a shared GTable-entry lock
    /// held to commit; rows are locked via 2PL NO_WAIT.
    pub fn user_txn(
        &mut self,
        node: NodeId,
        table: TableId,
        reads: &[u64],
        writes: &[(u64, Bytes)],
    ) -> Result<Vec<Option<Bytes>>, TxnError> {
        if !self.nodes.get(&node).is_some_and(|n| n.alive) {
            return Err(TxnError::NodeUnavailable(node));
        }
        self.ensure_gtable_fresh(node);
        let layout = self
            .layouts
            .values()
            .find(|l| l.table == table)
            .expect("table exists");
        let pages_per_granule = layout.pages_per_granule(self.page_bytes);
        let txn = self
            .nodes
            .get_mut(&node)
            .expect("node admitted")
            .marlin
            .next_txn();

        // Execution phase: guard + locks + buffered accesses.
        let mut result_reads = Vec::with_capacity(reads.len());
        let mut row_writes = Vec::with_capacity(writes.len());
        {
            let rt = self.nodes.get_mut(&node).expect("node admitted");
            let access = |key: u64, exclusive: bool| -> Result<GranuleId, TxnError> {
                let granule = layout.granule_of(key).expect("key in keyspace");
                rt.marlin.check_user_access(granule)?;
                rt.locks
                    .try_lock(txn, LockTarget::GTableEntry { granule }, LockMode::Shared)?;
                rt.locks.try_lock(
                    txn,
                    LockTarget::Row { table, key },
                    if exclusive {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    },
                )?;
                Ok(granule)
            };
            let outcome: Result<(), TxnError> = (|| {
                for &key in reads {
                    let granule = access(key, false)?;
                    result_reads.push(rt.data.read(table, granule, key)?);
                }
                for (key, value) in writes {
                    let granule = access(*key, true)?;
                    let offset = *key - layout.range_of(granule).lo;
                    let page_index = (offset % u64::from(pages_per_granule)) as u32;
                    row_writes.push(RowWrite {
                        table,
                        granule,
                        key: *key,
                        page_index,
                        value: value.clone(),
                    });
                }
                Ok(())
            })();
            if let Err(e) = outcome {
                rt.locks.release_all(txn);
                return Err(e);
            }
        }

        // Commit phase: one-phase MarlinCommit on the node's own GLog
        // (which is also its data WAL — Figure 7's detection mechanism).
        if row_writes.is_empty() {
            self.node_mut(node).locks.release_all(txn);
            return Ok(result_reads);
        }
        let record = TxnUpdateRecord {
            txn,
            writes: row_writes.clone(),
        };
        let payload = encode_page_updates(&record.to_page_updates());
        let (mut driver, effects) = {
            let rt = &self.nodes[&node];
            CommitDriver::new(
                txn,
                node,
                vec![(Participant::Node(node), Updates::Raw(payload))],
                &rt.marlin.tracker,
            )
        };
        self.pump(node, effects, |input| driver.on_input(input));
        let outcome = driver
            .outcome()
            .cloned()
            .expect("synchronous pump completes");
        let rt = self.node_mut(node);
        match outcome {
            CommitOutcome::Committed => {
                for w in row_writes {
                    rt.data
                        .write(w.table, w.granule, w.key, w.value)
                        .expect("owned granule");
                }
                rt.locks.release_all(txn);
                Ok(result_reads)
            }
            CommitOutcome::Aborted { conflict } => {
                rt.locks.release_all(txn);
                // The CAS failure invalidated the own-partition cache (the
                // driver emitted ClearMetaCache). Refresh and drop rows of
                // granules that moved away (Figure 7 step 3).
                let lost = self.refresh_own_gtable(node);
                let rt = self.node_mut(node);
                for g in &lost {
                    for (t, held) in rt.data.held() {
                        if held == *g {
                            rt.data.remove(t, held);
                        }
                    }
                }
                Err(TxnError::CommitConflict {
                    log: conflict.unwrap_or(LogId::GLog(node)),
                    current: Lsn::ZERO,
                })
            }
        }
    }

    // -- termination protocol -------------------------------------------------

    /// Cornus-style resolution of in-doubt transactions in a dead node's
    /// GLog (§4.3.2): for each prepared-but-undecided transaction, inspect
    /// every participant log; replicate an existing decision, commit if
    /// all participants hold YES votes, otherwise force an abort decision
    /// (which also blocks any in-flight coordinator via the LSN bump).
    /// Returns the transactions resolved.
    pub fn resolve_in_doubt(&mut self, resolver: NodeId, dead: NodeId) -> Vec<TxnId> {
        self.refresh_foreign(resolver, dead);
        let partition = self.nodes[&resolver]
            .marlin
            .foreign_partition(dead)
            .cloned()
            .unwrap_or_default();
        let mut resolved = Vec::new();
        for txn in partition.in_doubt() {
            // Find the Prepared record to learn the participant set.
            let dead_log = self.storage.log(LogId::GLog(dead)).expect("dead glog");
            let mut participants = Vec::new();
            for rec in dead_log.read_after(Lsn::ZERO) {
                if let Some(GRecord::Prepared {
                    txn: t,
                    participants: p,
                    ..
                }) = GRecord::decode(&rec.payload)
                {
                    if t == txn {
                        participants = p;
                        break;
                    }
                }
            }
            if participants.is_empty() {
                continue;
            }
            // Inspect all participant logs.
            let mut existing_decision = None;
            let mut all_prepared = true;
            for &log in &participants {
                let Ok(l) = self.storage.log(log) else {
                    all_prepared = false;
                    continue;
                };
                let mut saw_prepared = false;
                for rec in l.read_after(Lsn::ZERO) {
                    match GRecord::decode(&rec.payload) {
                        Some(GRecord::Prepared { txn: t, .. }) if t == txn => saw_prepared = true,
                        Some(GRecord::Decision { txn: t, commit }) if t == txn => {
                            existing_decision.get_or_insert(commit);
                        }
                        _ => {}
                    }
                }
                all_prepared &= saw_prepared;
            }
            let commit = existing_decision.unwrap_or(all_prepared);
            let decision = GRecord::Decision { txn, commit }.encode();
            for &log in &participants {
                if self.storage.has_log(log) {
                    let out = self
                        .storage
                        .append(log, vec![decision.clone()])
                        .expect("participant log exists");
                    self.after_local_append(resolver, log, out.new_lsn);
                }
            }
            resolved.push(txn);
        }
        resolved
    }

    // -- invariant checking ---------------------------------------------------

    /// Materialize every node's partition from the **storage logs** (the
    /// ground truth) and check Exclusive Granule Ownership and range
    /// agreement over the full granule universe, returning every
    /// violation as a value (`Ok(())` means the invariants hold).
    ///
    /// Violations must surface as data — which invariant, which granule,
    /// which nodes — rather than as a panic, so a fuzzing harness can
    /// record the failing scenario, shrink it, and replay it. The
    /// historical panicking behavior lives on in the thin
    /// [`LocalCluster::assert_invariants`] wrapper that existing call
    /// sites keep using.
    pub fn check_invariants(&self) -> Result<(), Vec<crate::invariants::Violation>> {
        let mut views: BTreeMap<NodeId, GTablePartition> = BTreeMap::new();
        for &id in self.nodes.keys() {
            let Ok(log) = self.storage.log(LogId::GLog(id)) else {
                continue;
            };
            let records = log
                .read_after(Lsn::ZERO)
                .into_iter()
                .filter_map(|r| GRecord::decode(&r.payload).map(|rec| (r.lsn, rec)));
            views.insert(id, materialize(records));
        }
        let universe: Vec<GranuleId> = self
            .layouts
            .values()
            .flat_map(GranuleLayout::granules)
            .collect();
        let refs: BTreeMap<NodeId, &GTablePartition> = views.iter().map(|(n, p)| (*n, p)).collect();
        let mut violations = crate::invariants::check_exclusive_ownership(&refs, &universe);
        violations.extend(crate::invariants::check_range_agreement(&refs));
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Panicking wrapper over [`LocalCluster::check_invariants`] for
    /// tests and walkthroughs where a violation should tear the run down
    /// immediately.
    ///
    /// # Panics
    /// If any I0–I4 violation is found.
    pub fn assert_invariants(&self) {
        if let Err(violations) = self.check_invariants() {
            panic!("Exclusive Granule Ownership violated: {violations:?}");
        }
    }

    // -- cache refresh helpers -------------------------------------------------

    /// Refresh a node's MTable cache from the SysLog suffix.
    pub fn refresh_mtable(&mut self, id: NodeId) {
        let log = self.storage.log(LogId::SysLog).expect("syslog");
        let node = self.node_mut(id);
        let suffix = log.read_after(node.marlin.mtable().applied_lsn());
        node.marlin
            .refresh_mtable(suffix.into_iter().map(|r| (r.lsn, r.payload)));
    }

    /// If `id`'s partition cache was evicted (a TryLog failure called
    /// ClearMetaCache), refetch it from the log and drop rows of granules
    /// whose ownership moved away while the node was out of date.
    pub fn ensure_gtable_fresh(&mut self, id: NodeId) {
        if self.nodes[&id].marlin.gtable_valid() {
            return;
        }
        let lost = self.refresh_own_gtable(id);
        let rt = self.node_mut(id);
        for g in &lost {
            for (t, held) in rt.data.held() {
                if held == *g {
                    rt.data.remove(t, held);
                }
            }
        }
    }

    /// Refresh a node's own-partition cache; returns granules lost.
    pub fn refresh_own_gtable(&mut self, id: NodeId) -> Vec<GranuleId> {
        let log = self.storage.log(LogId::GLog(id)).expect("glog");
        let node = self.node_mut(id);
        let suffix = log.read_after(node.marlin.gtable().applied_lsn());
        node.marlin
            .refresh_own_gtable(suffix.into_iter().map(|r| (r.lsn, r.payload)))
    }

    /// Refresh `viewer`'s cached copy of `target`'s partition.
    pub fn refresh_foreign(&mut self, viewer: NodeId, target: NodeId) {
        let Ok(log) = self.storage.log(LogId::GLog(target)) else {
            return;
        };
        let node = self.node_mut(viewer);
        let from = node
            .marlin
            .foreign_partition(target)
            .map_or(Lsn::ZERO, GTablePartition::applied_lsn);
        let suffix = log.read_after(from);
        node.marlin
            .refresh_foreign(target, suffix.into_iter().map(|r| (r.lsn, r.payload)));
    }

    // -- effect execution -------------------------------------------------------

    /// Drive a driver to completion: fulfill each effect, feed the input
    /// back, enqueue follow-up effects.
    fn pump(
        &mut self,
        coordinator: NodeId,
        initial: Vec<Effect>,
        mut on_input: impl FnMut(Input) -> Vec<Effect>,
    ) {
        let mut queue: VecDeque<Effect> = initial.into();
        // The coordinator's txn id only matters for lock bookkeeping on
        // remote effects, which carry their own txn ids.
        let txn = TxnId::new(coordinator, 0);
        while let Some(effect) = queue.pop_front() {
            if let Some(input) = self.execute_effect(coordinator, txn, &effect) {
                queue.extend(on_input(input));
            }
        }
    }

    /// Fulfill one effect. Returns the input to feed back, if any.
    fn execute_effect(
        &mut self,
        coordinator: NodeId,
        _txn: TxnId,
        effect: &Effect,
    ) -> Option<Input> {
        match effect {
            Effect::ConditionalAppend {
                log,
                payload,
                expected,
            } => {
                match self
                    .storage
                    .conditional_append(*log, vec![payload.clone()], *expected)
                {
                    Ok(out) => {
                        self.after_local_append(coordinator, *log, out.new_lsn);
                        Some(Input::AppendOk {
                            log: *log,
                            new_lsn: out.new_lsn,
                        })
                    }
                    Err(StorageError::LsnMismatch { current, .. }) => {
                        self.node_mut(coordinator)
                            .marlin
                            .tracker
                            .observe(*log, current);
                        Some(Input::AppendConflict { log: *log, current })
                    }
                    Err(e) => panic!("storage error during conditional append: {e}"),
                }
            }
            Effect::Append { log, payload } => {
                match self.storage.append(*log, vec![payload.clone()]) {
                    Ok(out) => {
                        self.after_local_append(coordinator, *log, out.new_lsn);
                        Some(Input::AppendOk {
                            log: *log,
                            new_lsn: out.new_lsn,
                        })
                    }
                    Err(e) => panic!("storage error during append: {e}"),
                }
            }
            Effect::ValidateLsn { log, expected } => {
                let current = self.storage.end_lsn(*log).unwrap_or(Lsn::ZERO);
                if current == *expected {
                    Some(Input::ValidateOk { log: *log })
                } else {
                    self.node_mut(coordinator)
                        .marlin
                        .tracker
                        .observe(*log, current);
                    Some(Input::ValidateConflict { log: *log, current })
                }
            }
            Effect::ClearMetaCache { log } => {
                self.node_mut(coordinator).marlin.clear_meta_cache(*log);
                None
            }
            Effect::SendVoteReq { to, txn, payload } => {
                Some(self.remote_vote_req(*to, *txn, payload))
            }
            Effect::SendDecision { to, txn, commit } => {
                self.remote_decision(*to, *txn, *commit);
                None
            }
            Effect::ReadOwnersRemote { at, txn, granules } => {
                Some(self.remote_read_owners(*at, *txn, granules))
            }
            Effect::ReleaseRemote { at, txn } => {
                if let Some(rt) = self.nodes.get_mut(at) {
                    if rt.alive {
                        rt.locks.release_all(*txn);
                    }
                }
                None
            }
            Effect::SendScanReq { to, txn: _ } => {
                let rt = self.nodes.get(to)?;
                if !rt.alive {
                    return Some(Input::Timeout { from: *to });
                }
                Some(Input::ScanResp {
                    from: *to,
                    entries: rt.marlin.gtable().scan(),
                })
            }
        }
    }

    /// Bookkeeping after the coordinator successfully appended to `log`:
    /// observe the LSN and bring the matching local view up to date.
    fn after_local_append(&mut self, coordinator: NodeId, log: LogId, new_lsn: Lsn) {
        {
            let node = self.node_mut(coordinator);
            node.marlin.tracker.observe(log, new_lsn);
        }
        match log {
            LogId::SysLog => {
                self.refresh_mtable(coordinator);
            }
            LogId::GLog(owner) if owner == coordinator => {
                self.refresh_own_gtable(coordinator);
            }
            LogId::GLog(owner) => {
                self.refresh_foreign(coordinator, owner);
            }
            LogId::DataWal(_) => {}
        }
    }

    /// Remote side of a VOTE-REQ (MigrationTxn's source): lock the swapped
    /// granules, TryLog the prepared record on the own GLog, vote.
    /// Note: deliberately NO cache refresh here. TryLog must use the
    /// H-LSN the transaction's reads were validated against (Algorithm 2):
    /// refreshing the tracker between the data-effectiveness check and the
    /// conditional append would let a commit slip past modifications the
    /// reads never saw. Only the *read* path refetches on a miss.
    fn remote_vote_req(&mut self, to: NodeId, txn: TxnId, payload: &Bytes) -> Input {
        let alive = self.nodes.get(&to).is_some_and(|n| n.alive);
        if !alive {
            return Input::Timeout { from: to };
        }
        let Some(GRecord::Prepared { swaps, .. }) = GRecord::decode(payload) else {
            // Read-only validation request: compare own GLog LSN.
            let log = LogId::GLog(to);
            let current = self.storage.end_lsn(log).unwrap_or(Lsn::ZERO);
            let tracked = self.nodes[&to].marlin.tracker.get(log);
            return Input::VoteResp {
                from: to,
                yes: current == tracked,
            };
        };
        // Acquire the granule + GTable-entry locks (NO_WAIT).
        {
            let rt = self.node_mut(to);
            for s in &swaps {
                let locked = rt
                    .locks
                    .try_lock(
                        txn,
                        LockTarget::GTableEntry { granule: s.granule },
                        LockMode::Exclusive,
                    )
                    .and_then(|()| {
                        rt.locks.try_lock(
                            txn,
                            LockTarget::Granule {
                                table: s.table,
                                granule: s.granule,
                            },
                            LockMode::Exclusive,
                        )
                    });
                if locked.is_err() {
                    rt.locks.release_all(txn);
                    return Input::VoteResp {
                        from: to,
                        yes: false,
                    };
                }
            }
        }
        // TryLog on the own GLog with the own tracker.
        let log = LogId::GLog(to);
        let expected = self.nodes[&to].marlin.tracker.get(log);
        match self
            .storage
            .conditional_append(log, vec![payload.clone()], expected)
        {
            Ok(out) => {
                // Apply via the suffix (not a tail-skip): the view's
                // watermark may lag the tracker if another node's commit
                // previously advanced the log; skipping records would
                // silently lose their GTable effects.
                let _ = out;
                self.refresh_own_gtable(to);
                Input::VoteResp {
                    from: to,
                    yes: true,
                }
            }
            Err(StorageError::LsnMismatch { current, .. }) => {
                let rt = self.node_mut(to);
                rt.marlin.tracker.observe(log, current);
                rt.marlin.clear_meta_cache(log);
                rt.locks.release_all(txn);
                Input::VoteResp {
                    from: to,
                    yes: false,
                }
            }
            Err(e) => panic!("storage error during remote TryLog: {e}"),
        }
    }

    /// Remote side of the decision broadcast: append the decision to the
    /// own GLog, resolve the pending swaps, release the locks.
    fn remote_decision(&mut self, to: NodeId, txn: TxnId, commit: bool) {
        let alive = self.nodes.get(&to).is_some_and(|n| n.alive);
        if !alive {
            // Decision lost; the prepared record stays in-doubt until the
            // termination protocol resolves it.
            return;
        }
        let log = LogId::GLog(to);
        let payload = GRecord::Decision { txn, commit }.encode();
        let out = self
            .storage
            .append(log, vec![payload.clone()])
            .expect("own glog");
        let rt = self.node_mut(to);
        rt.marlin.tracker.observe(log, out.new_lsn);
        // Apply via the suffix so any records this node has not yet seen
        // (e.g. a recovery that wrote to this log while it was slow) are
        // materialized too — a tail-skip would advance the watermark past
        // them and permanently hide their GTable effects.
        self.refresh_own_gtable(to);
        let rt = self.node_mut(to);
        rt.locks.release_all(txn);
        // Rows of granules that migrated away are transferred by the
        // migrate() wrapper (warm-up shipping) after the commit.
    }

    /// Remote side of `ReadOwnersRemote`: lock + read the GTable entries.
    ///
    /// If the node's partition cache was invalidated by a TryLog failure,
    /// the read misses and refetches from storage first (§4.3.2: "the next
    /// transaction that encounters a cache miss in system tables will
    /// fetch the latest data"). Serving the evicted copy instead would let
    /// a data-effectiveness check pass on stale ownership — and a
    /// subsequent commit (whose tracker the failed CAS already updated)
    /// could then double-assign the granule.
    fn remote_read_owners(&mut self, at: NodeId, txn: TxnId, granules: &[GranuleId]) -> Input {
        let alive = self.nodes.get(&at).is_some_and(|n| n.alive);
        if !alive {
            return Input::Timeout { from: at };
        }
        self.ensure_gtable_fresh(at);
        let rt = self.node_mut(at);
        let mut owners = Vec::with_capacity(granules.len());
        for g in granules {
            let meta = rt.marlin.gtable().get(*g).copied();
            let Some(meta) = meta else { continue };
            let locked = rt
                .locks
                .try_lock(
                    txn,
                    LockTarget::GTableEntry { granule: *g },
                    LockMode::Exclusive,
                )
                .and_then(|()| {
                    rt.locks.try_lock(
                        txn,
                        LockTarget::Granule {
                            table: meta.table,
                            granule: *g,
                        },
                        LockMode::Exclusive,
                    )
                });
            if locked.is_err() {
                rt.locks.release_all(txn);
                return Input::OwnersAt {
                    from: at,
                    owners: None,
                };
            }
            owners.push((*g, meta));
        }
        Input::OwnersAt {
            from: at,
            owners: Some(owners),
        }
    }
}
