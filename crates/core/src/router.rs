//! Client-side routing with cached ownership (§4.2).
//!
//! Routers locate partition owners via `ScanGTableTxn` and cache the
//! result. "Cache staleness in routers does not compromise system
//! correctness, as Marlin ensures each compute node maintains the ground
//! truth for its owned GTable partition. Consequently, if a request is
//! misrouted due to stale routing information, the receiving node can
//! detect that it no longer owns the granule and redirect the request to
//! the correct owner."

use crate::gtable::GranuleMeta;
use marlin_common::{GranuleId, NodeId};
use std::collections::BTreeMap;

/// A client/router ownership cache.
#[derive(Clone, Debug, Default)]
pub struct Router {
    routes: BTreeMap<GranuleId, NodeId>,
    /// Statistics: requests routed, redirects absorbed, scans installed.
    hits: u64,
    redirects: u64,
    refreshes: u64,
}

impl Router {
    /// An empty router (no routes; callers must seed or scan).
    #[must_use]
    pub fn new() -> Self {
        Router::default()
    }

    /// Install a full scan result (from `ScanGTableTxn`). Entries may
    /// contain duplicates across partitions (forwarding entries); since a
    /// committed scan is causally consistent, duplicates agree and the
    /// last write wins harmlessly.
    pub fn install_scan(&mut self, entries: &[(GranuleId, GranuleMeta)]) {
        for (g, meta) in entries {
            self.routes.insert(*g, meta.owner);
        }
        self.refreshes += 1;
    }

    /// Route a request for `granule`, if known.
    pub fn route(&mut self, granule: GranuleId) -> Option<NodeId> {
        let owner = self.routes.get(&granule).copied();
        if owner.is_some() {
            self.hits += 1;
        }
        owner
    }

    /// Absorb a `WrongNodeError` redirect: the contacted node told us the
    /// actual owner (Algorithm 1 line 6). `owner` of `u32::MAX` (unknown)
    /// drops the stale route instead.
    pub fn redirect(&mut self, granule: GranuleId, owner: NodeId) {
        self.redirects += 1;
        if owner == NodeId(u32::MAX) {
            self.routes.remove(&granule);
        } else {
            self.routes.insert(granule, owner);
        }
    }

    /// Absorb a proactive ownership broadcast from a compute node (the
    /// optional push path that reduces redirections, §4.2).
    pub fn broadcast_update(&mut self, entries: &[(GranuleId, NodeId)]) {
        for (g, owner) in entries {
            self.routes.insert(*g, *owner);
        }
    }

    /// Number of routed granules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the router knows no routes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// `(hits, redirects, refreshes)` counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.redirects, self.refreshes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::{KeyRange, TableId};

    fn meta(owner: u32) -> GranuleMeta {
        GranuleMeta {
            table: TableId(0),
            range: KeyRange::new(0, 10),
            owner: NodeId(owner),
        }
    }

    #[test]
    fn scan_installs_routes() {
        let mut r = Router::new();
        assert_eq!(r.route(GranuleId(1)), None);
        r.install_scan(&[(GranuleId(1), meta(2)), (GranuleId(2), meta(3))]);
        assert_eq!(r.route(GranuleId(1)), Some(NodeId(2)));
        assert_eq!(r.route(GranuleId(2)), Some(NodeId(3)));
    }

    #[test]
    fn duplicate_entries_agreeing_are_harmless() {
        // Source forwarding entry + destination authoritative entry.
        let mut r = Router::new();
        r.install_scan(&[(GranuleId(1), meta(5)), (GranuleId(1), meta(5))]);
        assert_eq!(r.route(GranuleId(1)), Some(NodeId(5)));
    }

    #[test]
    fn redirect_updates_route() {
        let mut r = Router::new();
        r.install_scan(&[(GranuleId(1), meta(2))]);
        // Node 2 says: not mine anymore, go to node 7.
        r.redirect(GranuleId(1), NodeId(7));
        assert_eq!(r.route(GranuleId(1)), Some(NodeId(7)));
        let (_, redirects, _) = r.stats();
        assert_eq!(redirects, 1);
    }

    #[test]
    fn unknown_owner_redirect_drops_route() {
        let mut r = Router::new();
        r.install_scan(&[(GranuleId(1), meta(2))]);
        r.redirect(GranuleId(1), NodeId(u32::MAX));
        assert_eq!(r.route(GranuleId(1)), None);
    }

    #[test]
    fn broadcast_reduces_staleness() {
        let mut r = Router::new();
        r.install_scan(&[(GranuleId(1), meta(2))]);
        r.broadcast_update(&[(GranuleId(1), NodeId(9))]);
        assert_eq!(r.route(GranuleId(1)), Some(NodeId(9)));
    }
}
