//! Wire format of coordination records stored in SysLog and GLogs.
//!
//! Two record families exist (Figure 5):
//!
//! - [`SysRecord`] — membership changes appended to the single, unowned
//!   SysLog. `AddNodeTxn`/`DeleteNodeTxn` are single-participant
//!   transactions, so their records are final at append time (one-phase).
//! - [`GRecord`] — granule-ownership changes appended to per-node GLogs.
//!   Cross-node transactions (`MigrationTxn`, `RecoveryMigrTxn`) commit in
//!   two phases per Algorithm 2: phase one appends a [`GRecord::Prepared`]
//!   record bundling `VOTE-YES` with the updates (one conditional append =
//!   one vote), phase two appends a [`GRecord::Decision`] record. Readers
//!   materializing a GTable partition buffer prepared swaps until the
//!   matching decision arrives. Single-participant bootstrap records
//!   ([`GRecord::Install`]) and one-phase commits ([`GRecord::OnePhase`])
//!   apply immediately.
//!
//! Encoding is length-prefixed little-endian, independent of any external
//! serialization framework, and intentionally strict: decoders return
//! `None` on any malformed input.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use marlin_common::{GranuleId, KeyRange, LogId, NodeId, TableId, TxnId};

fn put_log_id(buf: &mut BytesMut, log: LogId) {
    match log {
        LogId::SysLog => buf.put_u8(0),
        LogId::GLog(n) => {
            buf.put_u8(1);
            buf.put_u32_le(n.0);
        }
        LogId::DataWal(n) => {
            buf.put_u8(2);
            buf.put_u32_le(n.0);
        }
    }
}

fn get_log_id(buf: &mut Bytes) -> Option<LogId> {
    if !buf.has_remaining() {
        return None;
    }
    match buf.get_u8() {
        0 => Some(LogId::SysLog),
        1 if buf.remaining() >= 4 => Some(LogId::GLog(NodeId(buf.get_u32_le()))),
        2 if buf.remaining() >= 4 => Some(LogId::DataWal(NodeId(buf.get_u32_le()))),
        _ => None,
    }
}

const SYS_ADD: u8 = 1;
const SYS_DELETE: u8 = 2;
const G_INSTALL: u8 = 10;
const G_ONE_PHASE: u8 = 11;
const G_PREPARED: u8 = 12;
const G_DECISION: u8 = 13;

/// A membership record in the SysLog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysRecord {
    /// `AddNodeTxn`: register a node and its server address.
    AddNode { node: NodeId, addr: String },
    /// `DeleteNodeTxn`: remove a node (scale-in or failover, Figure 7 step 4).
    DeleteNode { node: NodeId },
}

impl SysRecord {
    /// Encode into a log payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            SysRecord::AddNode { node, addr } => {
                buf.put_u8(SYS_ADD);
                buf.put_u32_le(node.0);
                buf.put_u32_le(addr.len() as u32);
                buf.put_slice(addr.as_bytes());
            }
            SysRecord::DeleteNode { node } => {
                buf.put_u8(SYS_DELETE);
                buf.put_u32_le(node.0);
            }
        }
        buf.freeze()
    }

    /// Decode from a log payload.
    #[must_use]
    pub fn decode(payload: &Bytes) -> Option<Self> {
        let mut buf = payload.clone();
        if !buf.has_remaining() {
            return None;
        }
        let rec = match buf.get_u8() {
            SYS_ADD => {
                if buf.remaining() < 8 {
                    return None;
                }
                let node = NodeId(buf.get_u32_le());
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return None;
                }
                let addr = String::from_utf8(buf.copy_to_bytes(len).to_vec()).ok()?;
                SysRecord::AddNode { node, addr }
            }
            SYS_DELETE => {
                if buf.remaining() < 4 {
                    return None;
                }
                SysRecord::DeleteNode {
                    node: NodeId(buf.get_u32_le()),
                }
            }
            _ => return None,
        };
        if buf.has_remaining() {
            return None;
        }
        Some(rec)
    }
}

/// One granule-ownership change: swap the owner of `granule` from `old` to
/// `new`. Swaps never delete entries (invariant I3, "Owner Exists"); the
/// key range rides along so a destination partition can create the entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnershipSwap {
    pub table: TableId,
    pub granule: GranuleId,
    pub range: KeyRange,
    pub old: NodeId,
    pub new: NodeId,
}

/// A granule-ownership record in a GLog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GRecord {
    /// Bootstrap: install a granule entry with its initial owner.
    Install {
        table: TableId,
        granule: GranuleId,
        range: KeyRange,
        owner: NodeId,
    },
    /// A committed single-participant transaction's swaps (one-phase).
    OnePhase {
        txn: TxnId,
        swaps: Vec<OwnershipSwap>,
    },
    /// Phase one of MarlinCommit's 2PC: `VOTE-YES` bundled with the updates
    /// for this log (Algorithm 2 line 8). Provisional until decided.
    /// `participants` lists every participant log of the transaction so
    /// that a third party can run the Cornus-style termination protocol
    /// (§4.3.2) by inspecting the other participants' logs.
    Prepared {
        txn: TxnId,
        swaps: Vec<OwnershipSwap>,
        participants: Vec<LogId>,
    },
    /// Phase two: the transaction's outcome.
    Decision { txn: TxnId, commit: bool },
}

fn put_swap(buf: &mut BytesMut, s: &OwnershipSwap) {
    buf.put_u32_le(s.table.0);
    buf.put_u64_le(s.granule.0);
    buf.put_u64_le(s.range.lo);
    buf.put_u64_le(s.range.hi);
    buf.put_u32_le(s.old.0);
    buf.put_u32_le(s.new.0);
}

fn get_swap(buf: &mut Bytes) -> Option<OwnershipSwap> {
    if buf.remaining() < 4 + 8 + 8 + 8 + 4 + 4 {
        return None;
    }
    let table = TableId(buf.get_u32_le());
    let granule = GranuleId(buf.get_u64_le());
    let lo = buf.get_u64_le();
    let hi = buf.get_u64_le();
    if lo > hi {
        return None;
    }
    let old = NodeId(buf.get_u32_le());
    let new = NodeId(buf.get_u32_le());
    Some(OwnershipSwap {
        table,
        granule,
        range: KeyRange::new(lo, hi),
        old,
        new,
    })
}

fn put_swaps(buf: &mut BytesMut, kind: u8, txn: TxnId, swaps: &[OwnershipSwap]) {
    buf.put_u8(kind);
    buf.put_u64_le(txn.0);
    buf.put_u32_le(swaps.len() as u32);
    for s in swaps {
        put_swap(buf, s);
    }
}

fn get_swaps(buf: &mut Bytes) -> Option<(TxnId, Vec<OwnershipSwap>)> {
    if buf.remaining() < 12 {
        return None;
    }
    let txn = TxnId(buf.get_u64_le());
    let count = buf.get_u32_le() as usize;
    let mut swaps = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        swaps.push(get_swap(buf)?);
    }
    Some((txn, swaps))
}

impl GRecord {
    /// Encode into a log payload.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            GRecord::Install {
                table,
                granule,
                range,
                owner,
            } => {
                buf.put_u8(G_INSTALL);
                buf.put_u32_le(table.0);
                buf.put_u64_le(granule.0);
                buf.put_u64_le(range.lo);
                buf.put_u64_le(range.hi);
                buf.put_u32_le(owner.0);
            }
            GRecord::OnePhase { txn, swaps } => put_swaps(&mut buf, G_ONE_PHASE, *txn, swaps),
            GRecord::Prepared {
                txn,
                swaps,
                participants,
            } => {
                put_swaps(&mut buf, G_PREPARED, *txn, swaps);
                buf.put_u32_le(participants.len() as u32);
                for p in participants {
                    put_log_id(&mut buf, *p);
                }
            }
            GRecord::Decision { txn, commit } => {
                buf.put_u8(G_DECISION);
                buf.put_u64_le(txn.0);
                buf.put_u8(u8::from(*commit));
            }
        }
        buf.freeze()
    }

    /// Decode from a log payload.
    #[must_use]
    pub fn decode(payload: &Bytes) -> Option<Self> {
        let mut buf = payload.clone();
        if !buf.has_remaining() {
            return None;
        }
        let rec = match buf.get_u8() {
            G_INSTALL => {
                if buf.remaining() < 4 + 8 + 8 + 8 + 4 {
                    return None;
                }
                let table = TableId(buf.get_u32_le());
                let granule = GranuleId(buf.get_u64_le());
                let lo = buf.get_u64_le();
                let hi = buf.get_u64_le();
                if lo > hi {
                    return None;
                }
                let owner = NodeId(buf.get_u32_le());
                GRecord::Install {
                    table,
                    granule,
                    range: KeyRange::new(lo, hi),
                    owner,
                }
            }
            G_ONE_PHASE => {
                let (txn, swaps) = get_swaps(&mut buf)?;
                GRecord::OnePhase { txn, swaps }
            }
            G_PREPARED => {
                let (txn, swaps) = get_swaps(&mut buf)?;
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut participants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    participants.push(get_log_id(&mut buf)?);
                }
                GRecord::Prepared {
                    txn,
                    swaps,
                    participants,
                }
            }
            G_DECISION => {
                if buf.remaining() < 9 {
                    return None;
                }
                let txn = TxnId(buf.get_u64_le());
                let commit = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                GRecord::Decision { txn, commit }
            }
            _ => return None,
        };
        if buf.has_remaining() {
            return None;
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn swap(g: u64, old: u32, new: u32) -> OwnershipSwap {
        OwnershipSwap {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 100, (g + 1) * 100),
            old: NodeId(old),
            new: NodeId(new),
        }
    }

    #[test]
    fn sys_records_round_trip() {
        for rec in [
            SysRecord::AddNode {
                node: NodeId(3),
                addr: "10.0.0.3:5000".into(),
            },
            SysRecord::AddNode {
                node: NodeId(0),
                addr: String::new(),
            },
            SysRecord::DeleteNode { node: NodeId(7) },
        ] {
            assert_eq!(SysRecord::decode(&rec.encode()), Some(rec));
        }
    }

    #[test]
    fn g_records_round_trip() {
        for rec in [
            GRecord::Install {
                table: TableId(1),
                granule: GranuleId(5),
                range: KeyRange::new(0, 64),
                owner: NodeId(2),
            },
            GRecord::OnePhase {
                txn: TxnId(9),
                swaps: vec![swap(1, 0, 1)],
            },
            GRecord::Prepared {
                txn: TxnId(10),
                swaps: vec![swap(2, 1, 2), swap(3, 1, 2)],
                participants: vec![LogId::GLog(NodeId(1)), LogId::GLog(NodeId(2))],
            },
            GRecord::Prepared {
                txn: TxnId(11),
                swaps: vec![],
                participants: vec![LogId::SysLog],
            },
            GRecord::Decision {
                txn: TxnId(10),
                commit: true,
            },
            GRecord::Decision {
                txn: TxnId(10),
                commit: false,
            },
        ] {
            assert_eq!(GRecord::decode(&rec.encode()), Some(rec));
        }
    }

    #[test]
    fn cross_family_decode_fails() {
        let sys = SysRecord::DeleteNode { node: NodeId(1) }.encode();
        assert_eq!(GRecord::decode(&sys), None);
        let g = GRecord::Decision {
            txn: TxnId(1),
            commit: true,
        }
        .encode();
        assert_eq!(SysRecord::decode(&g), None);
    }

    #[test]
    fn truncated_and_trailing_garbage_rejected() {
        let rec = GRecord::Prepared {
            txn: TxnId(1),
            swaps: vec![swap(1, 0, 1)],
            participants: vec![LogId::GLog(NodeId(0))],
        };
        let encoded = rec.encode();
        let truncated = encoded.slice(0..encoded.len() - 1);
        assert_eq!(GRecord::decode(&truncated), None);
        let mut padded = BytesMut::from(encoded.as_ref());
        padded.put_u8(0);
        assert_eq!(GRecord::decode(&padded.freeze()), None);
        assert_eq!(SysRecord::decode(&Bytes::new()), None);
        assert_eq!(GRecord::decode(&Bytes::new()), None);
    }

    proptest! {
        #[test]
        fn g_record_round_trip_arbitrary(
            txn in any::<u64>(),
            kind in 0u8..3,
            swaps in proptest::collection::vec((0u64..1000, 0u32..64, 0u32..64), 0..8),
        ) {
            let swaps: Vec<OwnershipSwap> = swaps.into_iter().map(|(g, o, n)| swap(g, o, n)).collect();
            let rec = match kind {
                0 => GRecord::OnePhase { txn: TxnId(txn), swaps },
                1 => GRecord::Prepared {
                    txn: TxnId(txn),
                    swaps,
                    participants: vec![LogId::SysLog, LogId::GLog(NodeId(3))],
                },
                _ => GRecord::Decision { txn: TxnId(txn), commit: txn.is_multiple_of(2) },
            };
            prop_assert_eq!(GRecord::decode(&rec.encode()), Some(rec));
        }

        #[test]
        fn decoders_never_panic_on_fuzz(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let payload = Bytes::from(data);
            let _ = SysRecord::decode(&payload);
            let _ = GRecord::decode(&payload);
        }
    }
}
