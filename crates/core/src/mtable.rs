//! MTable: the group-membership system table (§4.1, Figure 5).
//!
//! "MTable is typically small in size and remains unpartitioned. All
//! modifications to it are recorded in a single log, SysLog... SysLog has
//! no exclusive owner, allowing all compute nodes to access and modify it."
//!
//! An [`MTable`] is a deterministic materialization of a SysLog prefix:
//! every node (and the router) holds a cached copy tagged with the LSN it
//! reflects; MarlinCommit invalidates stale caches when a conditional
//! append on the SysLog fails.

use crate::records::SysRecord;
use marlin_common::{Lsn, NodeId};
use std::collections::BTreeMap;

/// Static information about a member node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeInfo {
    /// Server address (opaque; the simulator stores actor coordinates).
    pub addr: String,
}

/// The membership table: a materialized view of the SysLog.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MTable {
    members: BTreeMap<NodeId, NodeInfo>,
    /// SysLog LSN this view reflects.
    applied: Lsn,
}

impl MTable {
    /// An empty membership at SysLog LSN 0.
    #[must_use]
    pub fn new() -> Self {
        MTable::default()
    }

    /// Apply one SysLog record at `lsn` (records must arrive in order).
    ///
    /// Application is idempotent in effect: adding an existing node or
    /// deleting a missing one leaves the table unchanged (the transaction
    /// layer's data-effectiveness checks normally prevent such records
    /// from being committed at all — Algorithm 1 lines 8, 14).
    pub fn apply(&mut self, lsn: Lsn, record: &SysRecord) {
        assert!(lsn > self.applied, "SysLog records must apply in order");
        match record {
            SysRecord::AddNode { node, addr } => {
                self.members
                    .entry(*node)
                    .or_insert_with(|| NodeInfo { addr: addr.clone() });
            }
            SysRecord::DeleteNode { node } => {
                self.members.remove(node);
            }
        }
        self.applied = lsn;
    }

    /// Whether `node` is a member (Algorithm 1 `MTable.exist`).
    #[must_use]
    pub fn exists(&self, node: NodeId) -> bool {
        self.members.contains_key(&node)
    }

    /// A member's info.
    #[must_use]
    pub fn get(&self, node: NodeId) -> Option<&NodeInfo> {
        self.members.get(&node)
    }

    /// All member node IDs in ascending order (`MTable.scan()`).
    #[must_use]
    pub fn scan(&self) -> Vec<NodeId> {
        self.members.keys().copied().collect()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The SysLog LSN this view reflects.
    #[must_use]
    pub fn applied_lsn(&self) -> Lsn {
        self.applied
    }

    /// The `k` ring successors of `node` used by the heartbeat failure
    /// detector (§4.4.2): members sorted by node ID form a ring and each
    /// node monitors the `k` nodes after it.
    #[must_use]
    pub fn ring_successors(&self, node: NodeId, k: usize) -> Vec<NodeId> {
        let ids: Vec<NodeId> = self.scan();
        if ids.len() <= 1 {
            return Vec::new();
        }
        let start = ids.iter().position(|&n| n > node).unwrap_or(0);
        let mut out = Vec::with_capacity(k);
        for i in 0..ids.len() - usize::from(ids.contains(&node)) {
            if out.len() == k {
                break;
            }
            let candidate = ids[(start + i) % ids.len()];
            if candidate != node {
                out.push(candidate);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(n: u32) -> SysRecord {
        SysRecord::AddNode {
            node: NodeId(n),
            addr: format!("10.0.0.{n}"),
        }
    }

    fn del(n: u32) -> SysRecord {
        SysRecord::DeleteNode { node: NodeId(n) }
    }

    #[test]
    fn add_and_delete_members() {
        let mut m = MTable::new();
        m.apply(Lsn(1), &add(1));
        m.apply(Lsn(2), &add(2));
        assert!(m.exists(NodeId(1)));
        assert_eq!(m.len(), 2);
        m.apply(Lsn(3), &del(1));
        assert!(!m.exists(NodeId(1)));
        assert_eq!(m.scan(), vec![NodeId(2)]);
        assert_eq!(m.applied_lsn(), Lsn(3));
    }

    #[test]
    fn duplicate_add_keeps_original_addr() {
        let mut m = MTable::new();
        m.apply(
            Lsn(1),
            &SysRecord::AddNode {
                node: NodeId(1),
                addr: "first".into(),
            },
        );
        m.apply(
            Lsn(2),
            &SysRecord::AddNode {
                node: NodeId(1),
                addr: "second".into(),
            },
        );
        assert_eq!(m.get(NodeId(1)).unwrap().addr, "first");
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_application_panics() {
        let mut m = MTable::new();
        m.apply(Lsn(2), &add(1));
        m.apply(Lsn(1), &add(2));
    }

    #[test]
    fn two_replicas_converge_from_same_log() {
        let records = [add(3), add(1), del(3), add(2)];
        let mut a = MTable::new();
        let mut b = MTable::new();
        for (i, r) in records.iter().enumerate() {
            a.apply(Lsn(i as u64 + 1), r);
        }
        for (i, r) in records.iter().enumerate() {
            b.apply(Lsn(i as u64 + 1), r);
        }
        assert_eq!(a, b);
        assert_eq!(a.scan(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn ring_successors_wrap_around() {
        let mut m = MTable::new();
        for (i, n) in [1u32, 3, 5, 7].iter().enumerate() {
            m.apply(Lsn(i as u64 + 1), &add(*n));
        }
        assert_eq!(m.ring_successors(NodeId(3), 2), vec![NodeId(5), NodeId(7)]);
        assert_eq!(m.ring_successors(NodeId(7), 2), vec![NodeId(1), NodeId(3)]);
        assert_eq!(
            m.ring_successors(NodeId(5), 3),
            vec![NodeId(7), NodeId(1), NodeId(3)]
        );
    }

    #[test]
    fn ring_successors_edge_cases() {
        let mut m = MTable::new();
        assert!(m.ring_successors(NodeId(1), 2).is_empty());
        m.apply(Lsn(1), &add(1));
        assert!(m.ring_successors(NodeId(1), 2).is_empty());
        m.apply(Lsn(2), &add(2));
        assert_eq!(m.ring_successors(NodeId(1), 3), vec![NodeId(2)]);
        // A non-member (already removed) still gets successors from the ring.
        assert_eq!(m.ring_successors(NodeId(9), 1), vec![NodeId(1)]);
    }
}
