//! Post-migration cache warm-up (§4.4.1, Squall-style).
//!
//! "We mitigate the cold-cache issue by proactively warming up the cache
//! after MigrationTxn updates ownership: the destination node issues a
//! scan query to the source node and populates its local cache with the
//! scan results for uncached data."
//!
//! The planner computes which pages of the migrated granules to request
//! and how much data will move; runners perform the transfer (immediately
//! in the synchronous runtime, as priced virtual-time work in the
//! simulator).

use marlin_common::{GranuleId, PageId, TableId};

/// A warm-up task: the pages of one migrated granule to pull from the
/// source (or from the page store if the source is gone).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WarmupPlan {
    pub table: TableId,
    pub granule: GranuleId,
    /// Pages of the granule, in scan order.
    pub pages: Vec<PageId>,
    /// Estimated bytes to transfer.
    pub bytes: u64,
}

/// Plan the warm-up scans for a set of migrated granules.
///
/// `pages_per_granule` and `granule_bytes` come from the table layout.
#[must_use]
pub fn plan_warmup(
    table: TableId,
    granules: &[GranuleId],
    pages_per_granule: u32,
    granule_bytes: u64,
) -> Vec<WarmupPlan> {
    granules
        .iter()
        .map(|g| WarmupPlan {
            table,
            granule: *g,
            pages: (0..pages_per_granule)
                .map(|index| PageId {
                    table,
                    granule: *g,
                    index,
                })
                .collect(),
            bytes: granule_bytes,
        })
        .collect()
}

/// Total bytes across plans (used to price warm-up time in the simulator).
#[must_use]
pub fn total_bytes(plans: &[WarmupPlan]) -> u64 {
    plans.iter().map(|p| p.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_all_pages() {
        let plans = plan_warmup(TableId(1), &[GranuleId(3), GranuleId(4)], 4, 64 << 10);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans[0].pages.len(), 4);
        assert_eq!(
            plans[0].pages[2],
            PageId {
                table: TableId(1),
                granule: GranuleId(3),
                index: 2,
            }
        );
        assert_eq!(total_bytes(&plans), 2 * (64 << 10));
    }

    #[test]
    fn empty_migration_plans_nothing() {
        assert!(plan_warmup(TableId(0), &[], 4, 1024).is_empty());
    }
}
