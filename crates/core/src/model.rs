//! Exhaustive state-space exploration of the migration protocol,
//! mirroring the TLA+ specification in the paper's Appendix B.
//!
//! The PlusCal algorithm models each node's GLog as a set of ownership
//! update actions and each node's GTable as its materialized view. Two
//! actions drive the system:
//!
//! - **DoMigrate(n)** — the `MigrationTxn` fast path: node `n` picks a
//!   granule `g` it owns (per both its own and the peer's view) and a peer
//!   `p`, appends the update to *both* logs, and both views move `g` to
//!   `p`.
//! - **DoRefresh(n)** — the `MetaRefresh` path: node `n` learns one update
//!   from a peer's log that it has not yet applied and whose `old` owner
//!   matches its current view, and applies it.
//!
//! The checker enumerates every reachable state by breadth-first search
//! and verifies on each:
//!
//! - **NoDualOwnership** — no two nodes both believe they own a granule;
//! - **HasOneOwnership** — every granule has at least one believing owner;
//! - **no deadlock** — every non-terminated state has an enabled action
//!   (termination = all migrations done and all views converged).
//!
//! This is the same state space TLC explores for the paper's
//! `Marlin_MC.cfg` (3 nodes, 6 granules, 6 migrations, modulo symmetry);
//! the test suite runs a smaller instance exhaustively and the full
//! instance is available behind [`ModelConfig`].

use std::collections::{BTreeSet, VecDeque};

/// Model parameters (the TLA+ `CONSTANTS`).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Number of compute nodes (≥ 1).
    pub nodes: usize,
    /// Number of granules (≥ nodes, per the spec's assumption).
    pub granules: usize,
    /// Number of migrations to run.
    pub migrations: usize,
    /// Safety valve: abort exploration beyond this many states.
    pub max_states: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            nodes: 3,
            granules: 6,
            migrations: 6,
            max_states: 50_000_000,
        }
    }
}

/// One ownership update action (the spec's `Update(id, gran, old, new)`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct Update {
    gran: u8,
    old: u8,
    new: u8,
}

/// A model state: per-node views, per-node log *sets* (order is irrelevant
/// to enabledness), the update table, and the migration counter.
///
/// `Ord` (lexicographic over the fields) keys the explorer's
/// [`BTreeSet`] seen-set, so dedup order — and therefore the visit-order
/// [`ModelReport::digest`] — is deterministic by construction rather
/// than by hasher seed.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
struct State {
    /// `gtabs[n][g]` = node `n`'s believed owner of granule `g`.
    gtabs: Vec<Vec<u8>>,
    /// `glogs[n]` = bitmask of update IDs present in node `n`'s log.
    glogs: Vec<u64>,
    /// Update table indexed by ID (IDs are assigned in creation order; two
    /// interleavings creating the same updates in different orders reach
    /// distinct-but-isomorphic states, which only enlarges the search).
    updates: Vec<Update>,
    done: u8,
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelReport {
    /// Reachable states visited.
    pub states: usize,
    /// Terminated states (migrations done, views converged).
    pub terminated_states: usize,
    /// FNV-1a digest over every visited state in BFS visit order — a
    /// fingerprint of the explored state space. Stable across runs,
    /// platforms, and std hasher seeds (the seen-set is a `BTreeSet`);
    /// any change to the protocol model or the exploration order moves
    /// it, which the regression tests pin.
    pub digest: u64,
    /// First invariant violation found, if any.
    pub violation: Option<String>,
}

/// FNV-1a accumulator for the visit-order state digest.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn state(&mut self, s: &State) {
        for view in &s.gtabs {
            for &owner in view {
                self.byte(owner);
            }
        }
        for &log in &s.glogs {
            self.u64(log);
        }
        for u in &s.updates {
            self.byte(u.gran);
            self.byte(u.old);
            self.byte(u.new);
        }
        self.byte(s.done);
    }
}

impl ModelReport {
    /// Whether all invariants held over the entire reachable state space.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

fn initial_state(cfg: &ModelConfig) -> State {
    // The spec's `InitGTable` is any map whose range covers all nodes;
    // TLC's CHOOSE is deterministic, ours is round-robin.
    let view: Vec<u8> = (0..cfg.granules).map(|g| (g % cfg.nodes) as u8).collect();
    State {
        gtabs: vec![view; cfg.nodes],
        glogs: vec![0; cfg.nodes],
        updates: Vec::new(),
        done: 0,
    }
}

fn check_invariants(cfg: &ModelConfig, s: &State) -> Option<String> {
    for g in 0..cfg.granules {
        let owners: Vec<usize> = (0..cfg.nodes)
            .filter(|&n| s.gtabs[n][g] == n as u8)
            .collect();
        if owners.is_empty() {
            return Some(format!(
                "HasOneOwnership violated: granule {g} has no owner"
            ));
        }
        if owners.len() > 1 {
            return Some(format!(
                "NoDualOwnership violated: granule {g} owned by {owners:?}"
            ));
        }
    }
    None
}

fn is_terminated(cfg: &ModelConfig, s: &State) -> bool {
    s.done as usize == cfg.migrations && s.gtabs.windows(2).all(|w| w[0] == w[1])
}

fn successors(cfg: &ModelConfig, s: &State) -> Vec<State> {
    let mut out = Vec::new();
    // DoMigrate(n): a migration push between n (owner) and peer p.
    if (s.done as usize) < cfg.migrations {
        for n in 0..cfg.nodes {
            for g in 0..cfg.granules {
                if s.gtabs[n][g] != n as u8 {
                    continue;
                }
                for p in 0..cfg.nodes {
                    if p == n || s.gtabs[p][g] != n as u8 {
                        continue;
                    }
                    let mut next = s.clone();
                    let id = next.updates.len();
                    next.updates.push(Update {
                        gran: g as u8,
                        old: n as u8,
                        new: p as u8,
                    });
                    next.glogs[n] |= 1 << id;
                    next.glogs[p] |= 1 << id;
                    next.gtabs[n][g] = p as u8;
                    next.gtabs[p][g] = p as u8;
                    next.done += 1;
                    out.push(next);
                }
            }
        }
    }
    // DoRefresh(n): learn one update from a peer's log.
    for n in 0..cfg.nodes {
        for p in 0..cfg.nodes {
            if p == n {
                continue;
            }
            let unseen = s.glogs[p] & !s.glogs[n];
            let mut bits = unseen;
            while bits != 0 {
                let id = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let u = s.updates[id];
                if s.gtabs[n][u.gran as usize] == u.old {
                    let mut next = s.clone();
                    next.glogs[n] |= 1 << id;
                    next.gtabs[n][u.gran as usize] = u.new;
                    out.push(next);
                }
            }
        }
    }
    out
}

/// Exhaustively explore the model, checking invariants on every state.
#[must_use]
pub fn explore(cfg: &ModelConfig) -> ModelReport {
    assert!(cfg.nodes >= 1);
    assert!(
        cfg.granules >= cfg.nodes,
        "spec assumption: |Granules| >= |Nodes|"
    );
    assert!(
        cfg.migrations <= 64,
        "update IDs are stored in a u64 bitmask"
    );

    // The seen-set is a BTreeSet, not a HashSet: membership order (and
    // hence the digest below) depends only on `State: Ord`, never on the
    // per-process hasher seed. Visit order itself is BFS over the
    // deterministic `successors` enumeration.
    let init = initial_state(cfg);
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let mut digest = Fnv::new();
    seen.insert(init.clone());
    queue.push_back(init);

    let mut terminated = 0;
    while let Some(state) = queue.pop_front() {
        digest.state(&state);
        if let Some(v) = check_invariants(cfg, &state) {
            return ModelReport {
                states: seen.len(),
                terminated_states: terminated,
                digest: digest.0,
                violation: Some(v),
            };
        }
        let next_states = successors(cfg, &state);
        if next_states.is_empty() {
            if is_terminated(cfg, &state) {
                terminated += 1;
            } else {
                return ModelReport {
                    states: seen.len(),
                    terminated_states: terminated,
                    digest: digest.0,
                    violation: Some(format!("deadlock in non-terminated state {state:?}")),
                };
            }
        }
        for next in next_states {
            if seen.len() >= cfg.max_states {
                return ModelReport {
                    states: seen.len(),
                    terminated_states: terminated,
                    digest: digest.0,
                    violation: Some("state budget exhausted".into()),
                };
            }
            if !seen.contains(&next) {
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    ModelReport {
        states: seen.len(),
        terminated_states: terminated,
        digest: digest.0,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_two_granules_hold() {
        let report = explore(&ModelConfig {
            nodes: 2,
            granules: 2,
            migrations: 3,
            max_states: 1_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
        assert!(report.states > 10);
    }

    #[test]
    fn three_nodes_three_granules_hold() {
        let report = explore(&ModelConfig {
            nodes: 3,
            granules: 3,
            migrations: 3,
            max_states: 5_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
    }

    #[test]
    fn three_nodes_four_granules_four_migrations_hold() {
        let report = explore(&ModelConfig {
            nodes: 3,
            granules: 4,
            migrations: 4,
            max_states: 20_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
        assert!(
            report.terminated_states > 0,
            "termination must be reachable"
        );
    }

    /// Pin the explored-state digest for the standard small instances.
    ///
    /// The digest folds every visited state, in BFS visit order, into an
    /// FNV-1a accumulator. With the `BTreeSet` seen-set it depends only
    /// on the protocol model and the successor enumeration — not on the
    /// per-process hasher seed — so these constants must hold on every
    /// platform, every run. A change here means the explored state space
    /// (or its visit order) changed: deliberate model edits re-pin, any
    /// other cause is a determinism regression.
    #[test]
    fn explored_state_digest_is_pinned() {
        let cases = [
            (2, 2, 3, 15, 0x1f08_7551_d456_18ca_u64),
            (3, 3, 3, 1333, 0x6053_c3c5_a457_7aa0),
            (3, 4, 4, 42_257, 0x5df4_21d9_d006_0c2e),
        ];
        for (nodes, granules, migrations, states, digest) in cases {
            let report = explore(&ModelConfig {
                nodes,
                granules,
                migrations,
                max_states: 50_000_000,
            });
            assert!(report.holds(), "{:?}", report.violation);
            assert_eq!(
                (report.states, report.digest),
                (states, digest),
                "explored-state digest moved for ({nodes},{granules},{migrations})"
            );
            // Re-running must be bit-identical (no ambient state).
            let again = explore(&ModelConfig {
                nodes,
                granules,
                migrations,
                max_states: 50_000_000,
            });
            assert_eq!(report, again, "exploration must be a pure function");
        }
    }

    /// A deliberately broken variant (refresh applies updates without the
    /// `old`-owner guard) must be caught by the invariants — this guards
    /// the checker itself against vacuous passes.
    #[test]
    fn checker_detects_injected_bug() {
        // Simulate the bug by hand: two nodes, both believing they own g0.
        let cfg = ModelConfig {
            nodes: 2,
            granules: 2,
            migrations: 1,
            max_states: 10,
        };
        let mut s = initial_state(&cfg);
        s.gtabs[1][0] = 1; // node 1 wrongly claims granule 0 (owned by 0)
        assert!(check_invariants(&cfg, &s).is_some());
    }

    #[test]
    #[should_panic(expected = "spec assumption")]
    fn fewer_granules_than_nodes_rejected() {
        let _ = explore(&ModelConfig {
            nodes: 3,
            granules: 2,
            migrations: 1,
            max_states: 10,
        });
    }
}
