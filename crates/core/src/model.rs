//! Exhaustive state-space exploration of the migration protocol,
//! mirroring the TLA+ specification in the paper's Appendix B.
//!
//! The PlusCal algorithm models each node's GLog as a set of ownership
//! update actions and each node's GTable as its materialized view. Two
//! actions drive the system:
//!
//! - **DoMigrate(n)** — the `MigrationTxn` fast path: node `n` picks a
//!   granule `g` it owns (per both its own and the peer's view) and a peer
//!   `p`, appends the update to *both* logs, and both views move `g` to
//!   `p`.
//! - **DoRefresh(n)** — the `MetaRefresh` path: node `n` learns one update
//!   from a peer's log that it has not yet applied and whose `old` owner
//!   matches its current view, and applies it.
//!
//! The checker enumerates every reachable state by breadth-first search
//! and verifies on each:
//!
//! - **NoDualOwnership** — no two nodes both believe they own a granule;
//! - **HasOneOwnership** — every granule has at least one believing owner;
//! - **no deadlock** — every non-terminated state has an enabled action
//!   (termination = all migrations done and all views converged).
//!
//! This is the same state space TLC explores for the paper's
//! `Marlin_MC.cfg` (3 nodes, 6 granules, 6 migrations, modulo symmetry);
//! the test suite runs a smaller instance exhaustively and the full
//! instance is available behind [`ModelConfig`].

use std::collections::{HashSet, VecDeque};

/// Model parameters (the TLA+ `CONSTANTS`).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Number of compute nodes (≥ 1).
    pub nodes: usize,
    /// Number of granules (≥ nodes, per the spec's assumption).
    pub granules: usize,
    /// Number of migrations to run.
    pub migrations: usize,
    /// Safety valve: abort exploration beyond this many states.
    pub max_states: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            nodes: 3,
            granules: 6,
            migrations: 6,
            max_states: 50_000_000,
        }
    }
}

/// One ownership update action (the spec's `Update(id, gran, old, new)`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct Update {
    gran: u8,
    old: u8,
    new: u8,
}

/// A model state: per-node views, per-node log *sets* (order is irrelevant
/// to enabledness), the update table, and the migration counter.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct State {
    /// `gtabs[n][g]` = node `n`'s believed owner of granule `g`.
    gtabs: Vec<Vec<u8>>,
    /// `glogs[n]` = bitmask of update IDs present in node `n`'s log.
    glogs: Vec<u64>,
    /// Update table indexed by ID (IDs are assigned in creation order; two
    /// interleavings creating the same updates in different orders reach
    /// distinct-but-isomorphic states, which only enlarges the search).
    updates: Vec<Update>,
    done: u8,
}

/// Result of an exhaustive exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelReport {
    /// Reachable states visited.
    pub states: usize,
    /// Terminated states (migrations done, views converged).
    pub terminated_states: usize,
    /// First invariant violation found, if any.
    pub violation: Option<String>,
}

impl ModelReport {
    /// Whether all invariants held over the entire reachable state space.
    #[must_use]
    pub fn holds(&self) -> bool {
        self.violation.is_none()
    }
}

fn initial_state(cfg: &ModelConfig) -> State {
    // The spec's `InitGTable` is any map whose range covers all nodes;
    // TLC's CHOOSE is deterministic, ours is round-robin.
    let view: Vec<u8> = (0..cfg.granules).map(|g| (g % cfg.nodes) as u8).collect();
    State {
        gtabs: vec![view; cfg.nodes],
        glogs: vec![0; cfg.nodes],
        updates: Vec::new(),
        done: 0,
    }
}

fn check_invariants(cfg: &ModelConfig, s: &State) -> Option<String> {
    for g in 0..cfg.granules {
        let owners: Vec<usize> = (0..cfg.nodes)
            .filter(|&n| s.gtabs[n][g] == n as u8)
            .collect();
        if owners.is_empty() {
            return Some(format!(
                "HasOneOwnership violated: granule {g} has no owner"
            ));
        }
        if owners.len() > 1 {
            return Some(format!(
                "NoDualOwnership violated: granule {g} owned by {owners:?}"
            ));
        }
    }
    None
}

fn is_terminated(cfg: &ModelConfig, s: &State) -> bool {
    s.done as usize == cfg.migrations && s.gtabs.windows(2).all(|w| w[0] == w[1])
}

fn successors(cfg: &ModelConfig, s: &State) -> Vec<State> {
    let mut out = Vec::new();
    // DoMigrate(n): a migration push between n (owner) and peer p.
    if (s.done as usize) < cfg.migrations {
        for n in 0..cfg.nodes {
            for g in 0..cfg.granules {
                if s.gtabs[n][g] != n as u8 {
                    continue;
                }
                for p in 0..cfg.nodes {
                    if p == n || s.gtabs[p][g] != n as u8 {
                        continue;
                    }
                    let mut next = s.clone();
                    let id = next.updates.len();
                    next.updates.push(Update {
                        gran: g as u8,
                        old: n as u8,
                        new: p as u8,
                    });
                    next.glogs[n] |= 1 << id;
                    next.glogs[p] |= 1 << id;
                    next.gtabs[n][g] = p as u8;
                    next.gtabs[p][g] = p as u8;
                    next.done += 1;
                    out.push(next);
                }
            }
        }
    }
    // DoRefresh(n): learn one update from a peer's log.
    for n in 0..cfg.nodes {
        for p in 0..cfg.nodes {
            if p == n {
                continue;
            }
            let unseen = s.glogs[p] & !s.glogs[n];
            let mut bits = unseen;
            while bits != 0 {
                let id = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let u = s.updates[id];
                if s.gtabs[n][u.gran as usize] == u.old {
                    let mut next = s.clone();
                    next.glogs[n] |= 1 << id;
                    next.gtabs[n][u.gran as usize] = u.new;
                    out.push(next);
                }
            }
        }
    }
    out
}

/// Exhaustively explore the model, checking invariants on every state.
#[must_use]
pub fn explore(cfg: &ModelConfig) -> ModelReport {
    assert!(cfg.nodes >= 1);
    assert!(
        cfg.granules >= cfg.nodes,
        "spec assumption: |Granules| >= |Nodes|"
    );
    assert!(
        cfg.migrations <= 64,
        "update IDs are stored in a u64 bitmask"
    );

    let init = initial_state(cfg);
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    seen.insert(init.clone());
    queue.push_back(init);

    let mut terminated = 0;
    while let Some(state) = queue.pop_front() {
        if let Some(v) = check_invariants(cfg, &state) {
            return ModelReport {
                states: seen.len(),
                terminated_states: terminated,
                violation: Some(v),
            };
        }
        let next_states = successors(cfg, &state);
        if next_states.is_empty() {
            if is_terminated(cfg, &state) {
                terminated += 1;
            } else {
                return ModelReport {
                    states: seen.len(),
                    terminated_states: terminated,
                    violation: Some(format!("deadlock in non-terminated state {state:?}")),
                };
            }
        }
        for next in next_states {
            if seen.len() >= cfg.max_states {
                return ModelReport {
                    states: seen.len(),
                    terminated_states: terminated,
                    violation: Some("state budget exhausted".into()),
                };
            }
            if !seen.contains(&next) {
                seen.insert(next.clone());
                queue.push_back(next);
            }
        }
    }
    ModelReport {
        states: seen.len(),
        terminated_states: terminated,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_two_granules_hold() {
        let report = explore(&ModelConfig {
            nodes: 2,
            granules: 2,
            migrations: 3,
            max_states: 1_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
        assert!(report.states > 10);
    }

    #[test]
    fn three_nodes_three_granules_hold() {
        let report = explore(&ModelConfig {
            nodes: 3,
            granules: 3,
            migrations: 3,
            max_states: 5_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
    }

    #[test]
    fn three_nodes_four_granules_four_migrations_hold() {
        let report = explore(&ModelConfig {
            nodes: 3,
            granules: 4,
            migrations: 4,
            max_states: 20_000_000,
        });
        assert!(report.holds(), "{:?}", report.violation);
        assert!(
            report.terminated_states > 0,
            "termination must be reachable"
        );
    }

    /// A deliberately broken variant (refresh applies updates without the
    /// `old`-owner guard) must be caught by the invariants — this guards
    /// the checker itself against vacuous passes.
    #[test]
    fn checker_detects_injected_bug() {
        // Simulate the bug by hand: two nodes, both believing they own g0.
        let cfg = ModelConfig {
            nodes: 2,
            granules: 2,
            migrations: 1,
            max_states: 10,
        };
        let mut s = initial_state(&cfg);
        s.gtabs[1][0] = 1; // node 1 wrongly claims granule 0 (owned by 0)
        assert!(check_invariants(&cfg, &s).is_some());
    }

    #[test]
    #[should_panic(expected = "spec assumption")]
    fn fewer_granules_than_nodes_rejected() {
        let _ = explore(&ModelConfig {
            nodes: 3,
            granules: 2,
            migrations: 1,
            max_states: 10,
        });
    }
}
