//! Sans-io protocol drivers.
//!
//! Protocol logic is expressed as state machines that emit [`Effect`]s and
//! consume [`Input`]s. A *runner* — the synchronous [`crate::runtime`] used
//! by tests/examples, or the discrete-event cluster simulator — fulfills
//! effects against real storage and network substrates and feeds results
//! back. Both runners therefore execute the *same* protocol code, so the
//! protocol being benchmarked is the protocol being tested.
//!
//! [`commit`] implements MarlinCommit (Algorithm 2); [`reconfig`]
//! implements the five reconfiguration transactions (Table 1, Algorithm 1).

pub mod commit;
pub mod reconfig;

pub use commit::{CommitDriver, CommitOutcome, Participant, Updates};
pub use reconfig::{
    AddNodeDriver, DeleteNodeDriver, MigrationDriver, RecoveryMigrDriver, ScanGTableDriver,
};

use bytes::Bytes;
use marlin_common::{LogId, Lsn, NodeId, TxnId};

/// An action a driver asks its runner to perform.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// `Append@LSN` — conditional append of `payload` to `log`, succeeding
    /// only if the log is at `expected` (TryLog's storage operation).
    ConditionalAppend {
        log: LogId,
        payload: Bytes,
        expected: Lsn,
    },
    /// Unconditional append (decision broadcast to a log participant).
    Append { log: LogId, payload: Bytes },
    /// Check that `log`'s current LSN equals `expected` without appending
    /// (read-only participants of `ScanGTableTxn`).
    ValidateLsn { log: LogId, expected: Lsn },
    /// Send a `VOTE-REQ` carrying the peer's prepared record; the peer
    /// performs TryLog on its own log and replies with its vote.
    SendVoteReq {
        to: NodeId,
        txn: TxnId,
        payload: Bytes,
    },
    /// Broadcast the decision to a peer participant node.
    SendDecision {
        to: NodeId,
        txn: TxnId,
        commit: bool,
    },
    /// Invalidate the local cache of the system table backed by `log`
    /// (Algorithm 2 `ClearMetaCache`): SysLog ⇒ MTable cache, `GLog(n)` ⇒
    /// node `n`'s GTable partition cache.
    ClearMetaCache { log: LogId },
    /// Synchronously read (and write-lock, NO_WAIT) the GTable entries of
    /// `granules` at a peer node — MigrationTxn's data-effectiveness check
    /// (Algorithm 1 lines 20-21).
    ReadOwnersRemote {
        at: NodeId,
        txn: TxnId,
        granules: Vec<marlin_common::GranuleId>,
    },
    /// Release any locks the runner acquired on behalf of this txn at a
    /// peer (abort path of cross-node reconfigurations).
    ReleaseRemote { at: NodeId, txn: TxnId },
    /// Request a GTable partition scan from a peer (`ScanGTableTxn`). The
    /// peer validates its own GLog LSN (its TryLog-style vote) before
    /// answering.
    SendScanReq { to: NodeId, txn: TxnId },
}

/// A result the runner feeds back into a driver.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// A (conditional or unconditional) append completed.
    AppendOk { log: LogId, new_lsn: Lsn },
    /// A conditional append failed; `current` is the log's actual LSN.
    AppendConflict { log: LogId, current: Lsn },
    /// LSN validation passed.
    ValidateOk { log: LogId },
    /// LSN validation failed; the log moved to `current`.
    ValidateConflict { log: LogId, current: Lsn },
    /// A peer's vote (its TryLog outcome).
    VoteResp { from: NodeId, yes: bool },
    /// Reply to [`Effect::ReadOwnersRemote`]: each granule's entry per the
    /// peer's GTable partition (granules with no entry are omitted), or
    /// `None` overall if the peer aborted the read (NO_WAIT lock conflict).
    OwnersAt {
        from: NodeId,
        owners: Option<Vec<(marlin_common::GranuleId, crate::gtable::GranuleMeta)>>,
    },
    /// Reply to [`Effect::SendScanReq`].
    ScanResp {
        from: NodeId,
        entries: Vec<(marlin_common::GranuleId, crate::gtable::GranuleMeta)>,
    },
    /// The peer did not answer within the runner's timeout (failure path).
    Timeout { from: NodeId },
}
