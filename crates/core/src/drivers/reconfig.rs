//! The five reconfiguration transactions (Table 1, Algorithm 1).
//!
//! Every reconfiguration transaction follows the same three steps (§4.2):
//!
//! 1. **Check data effectiveness** — verify the system tables say the
//!    cluster is in a valid state for this reconfiguration (node exists /
//!    granule owned by the expected source). This is what prevents
//!    corruption under concurrent reconfigurations.
//! 2. **Modify coordination state** — stage the MTable/GTable updates.
//! 3. **Commit** — run MarlinCommit on the logs backing the touched tables.
//!
//! Drivers are sans-io: they emit [`Effect`]s and consume [`Input`]s.
//! `on_input` takes the coordinator's current [`LsnTracker`] because the
//! commit phase captures expected LSNs at the moment it starts, which may
//! be after cache refreshes.

use super::commit::{CommitDriver, CommitOutcome, Participant, Updates};
use super::{Effect, Input};
use crate::gtable::{GTablePartition, GranuleMeta};
use crate::lsn_tracker::LsnTracker;
use crate::mtable::MTable;
use crate::records::{OwnershipSwap, SysRecord};
use marlin_common::{CoordError, GranuleId, LogId, NodeId, TxnError, TxnId};

/// Terminal result of a reconfiguration driver.
pub type ReconfigResult = Result<(), CoordError>;

// ---------------------------------------------------------------------------
// AddNodeTxn / DeleteNodeTxn (Algorithm 1 lines 7-18)

/// `AddNodeTxn`: executed on the node joining the cluster; commits one
/// membership record to the SysLog via one-phase MarlinCommit.
#[derive(Debug)]
pub struct AddNodeDriver {
    commit: Option<CommitDriver>,
    result: Option<ReconfigResult>,
}

impl AddNodeDriver {
    /// Start the transaction. `mtable` is the caller's (fresh) membership
    /// cache — the data-effectiveness check runs against it.
    pub fn new(
        txn: TxnId,
        new_node: NodeId,
        addr: String,
        mtable: &MTable,
        tracker: &LsnTracker,
    ) -> (Self, Vec<Effect>) {
        if mtable.exists(new_node) {
            return (
                AddNodeDriver {
                    commit: None,
                    result: Some(Err(CoordError::NodeAlreadyExist(new_node))),
                },
                Vec::new(),
            );
        }
        let (commit, effects) = CommitDriver::new(
            txn,
            new_node,
            vec![(
                Participant::Log(LogId::SysLog),
                Updates::Sys(SysRecord::AddNode {
                    node: new_node,
                    addr,
                }),
            )],
            tracker,
        );
        (
            AddNodeDriver {
                commit: Some(commit),
                result: None,
            },
            effects,
        )
    }

    /// Feed a runner result.
    pub fn on_input(&mut self, input: Input) -> Vec<Effect> {
        let Some(commit) = &mut self.commit else {
            return Vec::new();
        };
        let effects = commit.on_input(input);
        if let Some(outcome) = commit.outcome() {
            self.result = Some(match outcome {
                CommitOutcome::Committed => Ok(()),
                CommitOutcome::Aborted { conflict } => {
                    Err(CoordError::Aborted(TxnError::CommitConflict {
                        log: conflict.unwrap_or(LogId::SysLog),
                        current: marlin_common::Lsn::ZERO,
                    }))
                }
            });
        }
        effects
    }

    /// Terminal result, once reached.
    #[must_use]
    pub fn result(&self) -> Option<&ReconfigResult> {
        self.result.as_ref()
    }
}

/// `DeleteNodeTxn`: executed on the leaving node or on the node that
/// detected a failure (Figure 7 step 4).
#[derive(Debug)]
pub struct DeleteNodeDriver {
    commit: Option<CommitDriver>,
    result: Option<ReconfigResult>,
}

impl DeleteNodeDriver {
    /// Start the transaction on `coordinator` to remove `victim`.
    pub fn new(
        txn: TxnId,
        coordinator: NodeId,
        victim: NodeId,
        mtable: &MTable,
        tracker: &LsnTracker,
    ) -> (Self, Vec<Effect>) {
        if !mtable.exists(victim) {
            return (
                DeleteNodeDriver {
                    commit: None,
                    result: Some(Err(CoordError::NodeNotExist(victim))),
                },
                Vec::new(),
            );
        }
        let (commit, effects) = CommitDriver::new(
            txn,
            coordinator,
            vec![(
                Participant::Log(LogId::SysLog),
                Updates::Sys(SysRecord::DeleteNode { node: victim }),
            )],
            tracker,
        );
        (
            DeleteNodeDriver {
                commit: Some(commit),
                result: None,
            },
            effects,
        )
    }

    /// Feed a runner result.
    pub fn on_input(&mut self, input: Input) -> Vec<Effect> {
        let Some(commit) = &mut self.commit else {
            return Vec::new();
        };
        let effects = commit.on_input(input);
        if let Some(outcome) = commit.outcome() {
            self.result = Some(match outcome {
                CommitOutcome::Committed => Ok(()),
                CommitOutcome::Aborted { conflict } => {
                    Err(CoordError::Aborted(TxnError::CommitConflict {
                        log: conflict.unwrap_or(LogId::SysLog),
                        current: marlin_common::Lsn::ZERO,
                    }))
                }
            });
        }
        effects
    }

    /// Terminal result, once reached.
    #[must_use]
    pub fn result(&self) -> Option<&ReconfigResult> {
        self.result.as_ref()
    }
}

// ---------------------------------------------------------------------------
// MigrationTxn (Algorithm 1 lines 19-26)

#[derive(Debug)]
enum MigrationPhase {
    /// Waiting for the source's locked owner read (data-effectiveness).
    CheckingSource,
    /// MarlinCommit in flight.
    Committing(CommitDriver),
    /// Terminal.
    Done,
}

/// `MigrationTxn`: migrate granules from `src` to `dst` (the coordinator,
/// usually the under-utilized destination — §4.4.1). Cross-node: commits on
/// the GLogs of both `src` and `dst`.
#[derive(Debug)]
pub struct MigrationDriver {
    txn: TxnId,
    src: NodeId,
    dst: NodeId,
    granules: Vec<GranuleId>,
    phase: MigrationPhase,
    result: Option<ReconfigResult>,
}

impl MigrationDriver {
    /// Start the transaction on `dst` for `granules` currently owned by
    /// `src`. The first effect reads (and write-locks) the source's GTable
    /// entries.
    pub fn new(
        txn: TxnId,
        src: NodeId,
        dst: NodeId,
        granules: Vec<GranuleId>,
    ) -> (Self, Vec<Effect>) {
        assert!(src != dst, "migration requires distinct nodes");
        assert!(!granules.is_empty(), "migration needs at least one granule");
        let effects = vec![Effect::ReadOwnersRemote {
            at: src,
            txn,
            granules: granules.clone(),
        }];
        (
            MigrationDriver {
                txn,
                src,
                dst,
                granules,
                phase: MigrationPhase::CheckingSource,
                result: None,
            },
            effects,
        )
    }

    /// Feed a runner result. `tracker` is the coordinator's current LSN
    /// tracker (consulted when the commit phase starts).
    pub fn on_input(&mut self, input: Input, tracker: &LsnTracker) -> Vec<Effect> {
        match &mut self.phase {
            MigrationPhase::CheckingSource => match input {
                Input::OwnersAt { from, owners } if from == self.src => match owners {
                    Some(entries) => {
                        // Data-effectiveness (line 21): every granule must
                        // currently be owned by src per src's own partition.
                        let mut swaps = Vec::with_capacity(self.granules.len());
                        for g in &self.granules {
                            match entries.iter().find(|(gid, _)| gid == g) {
                                Some((_, meta)) if meta.owner == self.src => {
                                    swaps.push(OwnershipSwap {
                                        table: meta.table,
                                        granule: *g,
                                        range: meta.range,
                                        old: self.src,
                                        new: self.dst,
                                    });
                                }
                                Some((_, meta)) => {
                                    self.result = Some(Err(CoordError::WrongOwner {
                                        granule: *g,
                                        expected: self.src,
                                        actual: meta.owner,
                                    }));
                                    self.phase = MigrationPhase::Done;
                                    return vec![Effect::ReleaseRemote {
                                        at: self.src,
                                        txn: self.txn,
                                    }];
                                }
                                None => {
                                    self.result = Some(Err(CoordError::WrongOwner {
                                        granule: *g,
                                        expected: self.src,
                                        actual: NodeId(u32::MAX),
                                    }));
                                    self.phase = MigrationPhase::Done;
                                    return vec![Effect::ReleaseRemote {
                                        at: self.src,
                                        txn: self.txn,
                                    }];
                                }
                            }
                        }
                        // Modify + commit (lines 22-24): swap ownership in
                        // both partitions, commit on {src, dst}.
                        let (commit, effects) = CommitDriver::new(
                            self.txn,
                            self.dst,
                            vec![
                                (Participant::Node(self.src), Updates::Granule(swaps.clone())),
                                (Participant::Node(self.dst), Updates::Granule(swaps)),
                            ],
                            tracker,
                        );
                        self.phase = MigrationPhase::Committing(commit);
                        effects
                    }
                    None => {
                        // NO_WAIT conflict at the source (e.g. an ongoing
                        // user transaction holds the granule lock).
                        self.result = Some(Err(CoordError::Aborted(TxnError::LockConflict {
                            granule: self.granules[0],
                        })));
                        self.phase = MigrationPhase::Done;
                        Vec::new()
                    }
                },
                Input::Timeout { from } if from == self.src => {
                    // Source unresponsive: this path is for live migration;
                    // failover uses RecoveryMigrTxn instead.
                    self.result = Some(Err(CoordError::Aborted(TxnError::NodeUnavailable(
                        self.src,
                    ))));
                    self.phase = MigrationPhase::Done;
                    Vec::new()
                }
                _ => Vec::new(),
            },
            MigrationPhase::Committing(commit) => {
                let effects = commit.on_input(input);
                if let Some(outcome) = commit.outcome() {
                    self.result = Some(match outcome {
                        CommitOutcome::Committed => Ok(()),
                        CommitOutcome::Aborted { conflict } => {
                            Err(CoordError::Aborted(TxnError::CommitConflict {
                                log: conflict.unwrap_or(LogId::GLog(self.src)),
                                current: marlin_common::Lsn::ZERO,
                            }))
                        }
                    });
                    self.phase = MigrationPhase::Done;
                }
                effects
            }
            MigrationPhase::Done => Vec::new(),
        }
    }

    /// The granules being migrated.
    #[must_use]
    pub fn granules(&self) -> &[GranuleId] {
        &self.granules
    }

    /// Terminal result, once reached.
    #[must_use]
    pub fn result(&self) -> Option<&ReconfigResult> {
        self.result.as_ref()
    }
}

// ---------------------------------------------------------------------------
// RecoveryMigrTxn (Algorithm 1 lines 27-31)

/// `RecoveryMigrTxn`: migrate granules away from an unresponsive source.
///
/// Executed **only on the destination**; no RPC touches the dead node. The
/// data-effectiveness check runs against the destination's refreshed copy
/// of the source's GTable partition (read from disaggregated storage), and
/// the commit writes to both GLogs directly — the dead node's log being a
/// *participant* is the heart of Marlin's failover story (§4.4.2).
#[derive(Debug)]
pub struct RecoveryMigrDriver {
    src: NodeId,
    commit: Option<CommitDriver>,
    result: Option<ReconfigResult>,
    granules: Vec<GranuleId>,
}

impl RecoveryMigrDriver {
    /// Start the transaction on `dst` for `granules` owned by the
    /// unresponsive `src`. `src_partition` is the destination's freshly
    /// refreshed copy of the source's GTable partition.
    pub fn new(
        txn: TxnId,
        src: NodeId,
        dst: NodeId,
        granules: Vec<GranuleId>,
        src_partition: &GTablePartition,
        tracker: &LsnTracker,
    ) -> (Self, Vec<Effect>) {
        assert!(src != dst, "recovery migration requires distinct nodes");
        assert!(
            !granules.is_empty(),
            "recovery migration needs at least one granule"
        );
        // Data-effectiveness (lines 28-29) against the refreshed copy.
        let mut swaps = Vec::with_capacity(granules.len());
        for g in &granules {
            match src_partition.get(*g) {
                Some(meta) if meta.owner == src => swaps.push(OwnershipSwap {
                    table: meta.table,
                    granule: *g,
                    range: meta.range,
                    old: src,
                    new: dst,
                }),
                Some(meta) => {
                    return (
                        RecoveryMigrDriver {
                            src,
                            commit: None,
                            result: Some(Err(CoordError::WrongOwner {
                                granule: *g,
                                expected: src,
                                actual: meta.owner,
                            })),
                            granules,
                        },
                        Vec::new(),
                    );
                }
                None => {
                    return (
                        RecoveryMigrDriver {
                            src,
                            commit: None,
                            result: Some(Err(CoordError::WrongOwner {
                                granule: *g,
                                expected: src,
                                actual: NodeId(u32::MAX),
                            })),
                            granules,
                        },
                        Vec::new(),
                    );
                }
            }
        }
        // Commit on {src.GLog, dst} (line 31): both are logs the
        // coordinator appends to directly.
        let (commit, effects) = CommitDriver::new(
            txn,
            dst,
            vec![
                (
                    Participant::Log(LogId::GLog(src)),
                    Updates::Granule(swaps.clone()),
                ),
                (Participant::Node(dst), Updates::Granule(swaps)),
            ],
            tracker,
        );
        (
            RecoveryMigrDriver {
                src,
                commit: Some(commit),
                result: None,
                granules,
            },
            effects,
        )
    }

    /// Feed a runner result.
    pub fn on_input(&mut self, input: Input) -> Vec<Effect> {
        let Some(commit) = &mut self.commit else {
            return Vec::new();
        };
        let effects = commit.on_input(input);
        if let Some(outcome) = commit.outcome() {
            self.result = Some(match outcome {
                CommitOutcome::Committed => Ok(()),
                CommitOutcome::Aborted { conflict } => {
                    // A conflict on the source's GLog means the "dead" node
                    // came back (or another recoverer won). The caller
                    // refreshes and re-evaluates.
                    Err(CoordError::Aborted(TxnError::CommitConflict {
                        log: conflict.unwrap_or(LogId::GLog(self.src)),
                        current: marlin_common::Lsn::ZERO,
                    }))
                }
            });
        }
        effects
    }

    /// The granules being recovered.
    #[must_use]
    pub fn granules(&self) -> &[GranuleId] {
        &self.granules
    }

    /// Terminal result, once reached.
    #[must_use]
    pub fn result(&self) -> Option<&ReconfigResult> {
        self.result.as_ref()
    }
}

// ---------------------------------------------------------------------------
// ScanGTableTxn (Algorithm 1 lines 32-38)

/// `ScanGTableTxn`: a read-only distributed scan of every GTable partition,
/// used by routers to locate partition owners. Peers validate their own
/// GLog LSN before answering (their TryLog-style vote), and the coordinator
/// validates the SysLog so a concurrent membership change aborts the scan.
#[derive(Debug)]
pub struct ScanGTableDriver {
    peers_pending: Vec<NodeId>,
    syslog_ok: Option<bool>,
    entries: Vec<(GranuleId, GranuleMeta)>,
    result: Option<Result<(), CoordError>>,
}

impl ScanGTableDriver {
    /// Start the scan on `coordinator`. `own_entries` is the coordinator's
    /// local partition scan (line 34, performed directly); peers from the
    /// membership are asked asynchronously (lines 35-37).
    pub fn new(
        txn: TxnId,
        coordinator: NodeId,
        mtable: &MTable,
        own_entries: Vec<(GranuleId, GranuleMeta)>,
        tracker: &LsnTracker,
    ) -> (Self, Vec<Effect>) {
        let mut effects = Vec::new();
        let mut peers = Vec::new();
        for node in mtable.scan() {
            if node != coordinator {
                effects.push(Effect::SendScanReq { to: node, txn });
                peers.push(node);
            }
        }
        effects.push(Effect::ValidateLsn {
            log: LogId::SysLog,
            expected: tracker.get(LogId::SysLog),
        });
        (
            ScanGTableDriver {
                peers_pending: peers,
                syslog_ok: None,
                entries: own_entries,
                result: None,
            },
            effects,
        )
    }

    /// Feed a runner result.
    pub fn on_input(&mut self, input: Input) -> Vec<Effect> {
        match input {
            Input::ScanResp { from, entries } => {
                self.peers_pending.retain(|n| *n != from);
                self.entries.extend(entries);
            }
            Input::Timeout { from } if self.peers_pending.contains(&from) => {
                self.result = Some(Err(CoordError::Aborted(TxnError::NodeUnavailable(from))));
                self.peers_pending.clear();
            }
            Input::ValidateOk { log: LogId::SysLog } => self.syslog_ok = Some(true),
            Input::ValidateConflict {
                log: LogId::SysLog, ..
            } => {
                self.syslog_ok = Some(false);
            }
            _ => {}
        }
        if self.result.is_none() {
            match self.syslog_ok {
                Some(true) if self.peers_pending.is_empty() => {
                    self.result = Some(Ok(()));
                }
                Some(false) => {
                    self.result = Some(Err(CoordError::Aborted(TxnError::CommitConflict {
                        log: LogId::SysLog,
                        current: marlin_common::Lsn::ZERO,
                    })));
                }
                _ => {}
            }
        }
        Vec::new()
    }

    /// The merged cluster-wide ownership map, available on success.
    #[must_use]
    pub fn entries(&self) -> &[(GranuleId, GranuleMeta)] {
        &self.entries
    }

    /// Terminal result, once reached.
    #[must_use]
    pub fn result(&self) -> Option<&Result<(), CoordError>> {
        self.result.as_ref()
    }

    /// Consume the driver, returning the merged entries on success.
    pub fn into_entries(self) -> Result<Vec<(GranuleId, GranuleMeta)>, CoordError> {
        match self.result {
            Some(Ok(())) => Ok(self.entries),
            Some(Err(e)) => Err(e),
            None => Err(CoordError::ServiceError("scan still in flight".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::GRecord;
    use marlin_common::{KeyRange, Lsn, TableId};

    fn mtable_of(nodes: &[u32]) -> MTable {
        let mut m = MTable::new();
        for (i, n) in nodes.iter().enumerate() {
            m.apply(
                Lsn(i as u64 + 1),
                &SysRecord::AddNode {
                    node: NodeId(*n),
                    addr: format!("n{n}"),
                },
            );
        }
        m
    }

    fn meta(owner: u32, g: u64) -> GranuleMeta {
        GranuleMeta {
            table: TableId(0),
            range: KeyRange::new(g * 10, (g + 1) * 10),
            owner: NodeId(owner),
        }
    }

    #[test]
    fn add_node_checks_membership_first() {
        let mtable = mtable_of(&[1, 2]);
        let tracker = LsnTracker::new();
        let (d, effects) = AddNodeDriver::new(TxnId(1), NodeId(1), "dup".into(), &mtable, &tracker);
        assert!(effects.is_empty());
        assert_eq!(
            d.result(),
            Some(&Err(CoordError::NodeAlreadyExist(NodeId(1))))
        );
    }

    #[test]
    fn add_node_commits_to_syslog() {
        let mtable = mtable_of(&[1]);
        let mut tracker = LsnTracker::new();
        tracker.observe(LogId::SysLog, Lsn(1));
        let (mut d, effects) =
            AddNodeDriver::new(TxnId(2), NodeId(2), "10.0.0.2".into(), &mtable, &tracker);
        assert!(matches!(
            effects[0],
            Effect::ConditionalAppend {
                log: LogId::SysLog,
                expected: Lsn(1),
                ..
            }
        ));
        d.on_input(Input::AppendOk {
            log: LogId::SysLog,
            new_lsn: Lsn(2),
        });
        assert_eq!(d.result(), Some(&Ok(())));
    }

    #[test]
    fn conflicting_membership_txns_one_wins() {
        // Two concurrent AddNodeTxns with the same H-LSN: MarlinCommit
        // ensures only one commits (§4.4.1 "Membership Update").
        let mtable = mtable_of(&[]);
        let tracker = LsnTracker::new();
        let (mut a, ea) = AddNodeDriver::new(TxnId(1), NodeId(1), "a".into(), &mtable, &tracker);
        let (mut b, eb) = AddNodeDriver::new(TxnId(2), NodeId(2), "b".into(), &mtable, &tracker);
        // Both drivers try Append@LSN with expected=0; the log admits one.
        assert!(matches!(
            ea[0],
            Effect::ConditionalAppend {
                expected: Lsn(0),
                ..
            }
        ));
        assert!(matches!(
            eb[0],
            Effect::ConditionalAppend {
                expected: Lsn(0),
                ..
            }
        ));
        a.on_input(Input::AppendOk {
            log: LogId::SysLog,
            new_lsn: Lsn(1),
        });
        let eff = b.on_input(Input::AppendConflict {
            log: LogId::SysLog,
            current: Lsn(1),
        });
        assert_eq!(a.result(), Some(&Ok(())));
        assert!(matches!(b.result(), Some(&Err(CoordError::Aborted(_)))));
        assert!(eff.contains(&Effect::ClearMetaCache { log: LogId::SysLog }));
    }

    #[test]
    fn delete_missing_node_fails_fast() {
        let mtable = mtable_of(&[1]);
        let tracker = LsnTracker::new();
        let (d, effects) = DeleteNodeDriver::new(TxnId(1), NodeId(1), NodeId(9), &mtable, &tracker);
        assert!(effects.is_empty());
        assert_eq!(d.result(), Some(&Err(CoordError::NodeNotExist(NodeId(9)))));
    }

    #[test]
    fn migration_happy_path() {
        let tracker = LsnTracker::new();
        let (mut d, effects) =
            MigrationDriver::new(TxnId(7), NodeId(2), NodeId(3), vec![GranuleId(5)]);
        assert_eq!(
            effects,
            vec![Effect::ReadOwnersRemote {
                at: NodeId(2),
                txn: TxnId(7),
                granules: vec![GranuleId(5)],
            }]
        );
        // Source confirms ownership; commit begins on both GLogs.
        let effects = d.on_input(
            Input::OwnersAt {
                from: NodeId(2),
                owners: Some(vec![(GranuleId(5), meta(2, 5))]),
            },
            &tracker,
        );
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::ConditionalAppend {
                log: LogId::GLog(NodeId(3)),
                ..
            }
        )));
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::SendVoteReq { to: NodeId(2), .. })));
        d.on_input(
            Input::AppendOk {
                log: LogId::GLog(NodeId(3)),
                new_lsn: Lsn(1),
            },
            &tracker,
        );
        let effects = d.on_input(
            Input::VoteResp {
                from: NodeId(2),
                yes: true,
            },
            &tracker,
        );
        assert_eq!(d.result(), Some(&Ok(())));
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::SendDecision {
                to: NodeId(2),
                commit: true,
                ..
            }
        )));
    }

    #[test]
    fn migration_aborts_on_wrong_owner() {
        let tracker = LsnTracker::new();
        let (mut d, _) = MigrationDriver::new(TxnId(7), NodeId(2), NodeId(3), vec![GranuleId(5)]);
        let effects = d.on_input(
            Input::OwnersAt {
                from: NodeId(2),
                owners: Some(vec![(GranuleId(5), meta(9, 5))]),
            },
            &tracker,
        );
        assert_eq!(
            d.result(),
            Some(&Err(CoordError::WrongOwner {
                granule: GranuleId(5),
                expected: NodeId(2),
                actual: NodeId(9),
            }))
        );
        assert_eq!(
            effects,
            vec![Effect::ReleaseRemote {
                at: NodeId(2),
                txn: TxnId(7)
            }]
        );
    }

    #[test]
    fn migration_aborts_on_source_lock_conflict() {
        // Figure 6 step 2: an ongoing user transaction holds the granule
        // lock on the source; NO_WAIT aborts the migration.
        let tracker = LsnTracker::new();
        let (mut d, _) = MigrationDriver::new(TxnId(7), NodeId(2), NodeId(3), vec![GranuleId(5)]);
        d.on_input(
            Input::OwnersAt {
                from: NodeId(2),
                owners: None,
            },
            &tracker,
        );
        assert!(matches!(
            d.result(),
            Some(&Err(CoordError::Aborted(TxnError::LockConflict { .. })))
        ));
    }

    #[test]
    fn migration_multi_granule_builds_all_swaps() {
        let tracker = LsnTracker::new();
        let granules = vec![GranuleId(1), GranuleId(2), GranuleId(3)];
        let (mut d, _) = MigrationDriver::new(TxnId(7), NodeId(0), NodeId(1), granules.clone());
        let owners = granules.iter().map(|g| (*g, meta(0, g.0))).collect();
        let effects = d.on_input(
            Input::OwnersAt {
                from: NodeId(0),
                owners: Some(owners),
            },
            &tracker,
        );
        // The prepared payload carries all three swaps.
        let prepared = effects
            .iter()
            .find_map(|e| match e {
                Effect::ConditionalAppend { payload, .. } => GRecord::decode(payload),
                _ => None,
            })
            .expect("local prepared record");
        match prepared {
            GRecord::Prepared { swaps, .. } => assert_eq!(swaps.len(), 3),
            other => panic!("expected Prepared, got {other:?}"),
        }
    }

    #[test]
    fn recovery_commits_to_dead_nodes_log() {
        let mut src_partition = GTablePartition::new();
        src_partition.apply(
            Lsn(1),
            &GRecord::Install {
                table: TableId(0),
                granule: GranuleId(3),
                range: KeyRange::new(30, 40),
                owner: NodeId(3),
            },
        );
        let mut tracker = LsnTracker::new();
        tracker.observe(LogId::GLog(NodeId(3)), Lsn(1));
        let (mut d, effects) = RecoveryMigrDriver::new(
            TxnId(9),
            NodeId(3),
            NodeId(2),
            vec![GranuleId(3)],
            &src_partition,
            &tracker,
        );
        // Both appends are direct (no VOTE-REQ to the dead node).
        assert_eq!(
            effects
                .iter()
                .filter(|e| matches!(e, Effect::ConditionalAppend { .. }))
                .count(),
            2
        );
        assert!(!effects
            .iter()
            .any(|e| matches!(e, Effect::SendVoteReq { .. })));
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(3)),
            new_lsn: Lsn(2),
        });
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(2)),
            new_lsn: Lsn(1),
        });
        assert_eq!(d.result(), Some(&Ok(())));
    }

    #[test]
    fn recovery_rejects_stale_ownership_view() {
        // The refreshed copy shows the granule already recovered by
        // someone else: fail fast without touching the logs.
        let mut src_partition = GTablePartition::new();
        src_partition.apply(
            Lsn(1),
            &GRecord::OnePhase {
                txn: TxnId(1),
                swaps: vec![OwnershipSwap {
                    table: TableId(0),
                    granule: GranuleId(3),
                    range: KeyRange::new(30, 40),
                    old: NodeId(3),
                    new: NodeId(7),
                }],
            },
        );
        let tracker = LsnTracker::new();
        let (d, effects) = RecoveryMigrDriver::new(
            TxnId(9),
            NodeId(3),
            NodeId(2),
            vec![GranuleId(3)],
            &src_partition,
            &tracker,
        );
        assert!(effects.is_empty());
        assert_eq!(
            d.result(),
            Some(&Err(CoordError::WrongOwner {
                granule: GranuleId(3),
                expected: NodeId(3),
                actual: NodeId(7),
            }))
        );
    }

    #[test]
    fn scan_merges_all_partitions() {
        let mtable = mtable_of(&[0, 1, 2]);
        let tracker = LsnTracker::new();
        let own = vec![(GranuleId(0), meta(0, 0))];
        let (mut d, effects) = ScanGTableDriver::new(TxnId(4), NodeId(0), &mtable, own, &tracker);
        assert_eq!(
            effects
                .iter()
                .filter(|e| matches!(e, Effect::SendScanReq { .. }))
                .count(),
            2
        );
        d.on_input(Input::ValidateOk { log: LogId::SysLog });
        d.on_input(Input::ScanResp {
            from: NodeId(1),
            entries: vec![(GranuleId(1), meta(1, 1))],
        });
        assert!(d.result().is_none(), "one peer still pending");
        d.on_input(Input::ScanResp {
            from: NodeId(2),
            entries: vec![(GranuleId(2), meta(2, 2))],
        });
        assert_eq!(d.result(), Some(&Ok(())));
        assert_eq!(d.entries().len(), 3);
    }

    #[test]
    fn scan_aborts_on_membership_change() {
        let mtable = mtable_of(&[0, 1]);
        let tracker = LsnTracker::new();
        let (mut d, _) = ScanGTableDriver::new(TxnId(4), NodeId(0), &mtable, vec![], &tracker);
        d.on_input(Input::ValidateConflict {
            log: LogId::SysLog,
            current: Lsn(3),
        });
        assert!(matches!(d.result(), Some(&Err(CoordError::Aborted(_)))));
    }

    #[test]
    fn scan_aborts_on_peer_timeout() {
        let mtable = mtable_of(&[0, 1]);
        let tracker = LsnTracker::new();
        let (mut d, _) = ScanGTableDriver::new(TxnId(4), NodeId(0), &mtable, vec![], &tracker);
        d.on_input(Input::ValidateOk { log: LogId::SysLog });
        d.on_input(Input::Timeout { from: NodeId(1) });
        assert!(matches!(
            d.result(),
            Some(&Err(CoordError::Aborted(TxnError::NodeUnavailable(
                NodeId(1)
            ))))
        ));
    }
}
