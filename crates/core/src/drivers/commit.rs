//! MarlinCommit (Algorithm 2): atomic commit with cross-node-modification
//! detection.
//!
//! MarlinCommit extends conventional 1PC/2PC in two ways:
//!
//! 1. `Log()` is replaced by `TryLog()` — a conditional append that
//!    succeeds only if the log's LSN still equals the node's last observed
//!    H-LSN. A failure means another node has modified shared state since;
//!    the transaction aborts and the corresponding system-table cache is
//!    invalidated (`ClearMetaCache`).
//! 2. Participants may be **log instances**, not just compute nodes: the
//!    log is the ground truth and "voting through a node is semantically
//!    identical to appending the vote directly to the log". This is what
//!    lets `RecoveryMigrTxn` commit to a *dead* node's GLog and makes the
//!    protocol non-blocking in the style of Cornus.
//!
//! The driver emits effects; the runner performs storage/network I/O and
//! feeds results back. Phase one of the 2PC path appends a `Prepared`
//! record (vote bundled with updates — one CAS is one vote); phase two
//! broadcasts `Decision` records (unconditional appends to log
//! participants, messages to node participants).

use super::{Effect, Input};
use crate::lsn_tracker::LsnTracker;
use crate::records::{GRecord, OwnershipSwap, SysRecord};
use bytes::Bytes;
use marlin_common::{LogId, NodeId, TxnId};

/// A MarlinCommit participant (Algorithm 2 line 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Participant {
    /// A log instance appended directly by the coordinator.
    Log(LogId),
    /// A peer compute node that votes by running TryLog on its own GLog.
    Node(NodeId),
}

/// The updates a transaction holds for one participant.
#[derive(Clone, Debug, PartialEq)]
pub enum Updates {
    /// A membership record (SysLog participants; always one-phase).
    Sys(SysRecord),
    /// Granule-ownership swaps (GLog participants).
    Granule(Vec<OwnershipSwap>),
    /// Pre-encoded payload (e.g. user data commits produced by the
    /// engine's WAL codec, batched by group commit).
    Raw(Bytes),
    /// Nothing to write — participate in validation only (`ScanGTableTxn`).
    ReadOnly,
}

impl Updates {
    /// Encode the record for a *final* (one-phase) commit.
    fn encode_final(&self, txn: TxnId) -> Option<Bytes> {
        match self {
            Updates::Sys(r) => Some(r.encode()),
            Updates::Granule(swaps) => Some(
                GRecord::OnePhase {
                    txn,
                    swaps: swaps.clone(),
                }
                .encode(),
            ),
            Updates::Raw(b) => Some(b.clone()),
            Updates::ReadOnly => None,
        }
    }

    /// Encode the phase-one (`VOTE-YES` + updates) record. `participants`
    /// lists all participant logs so third parties can run the Cornus-style
    /// termination protocol.
    fn encode_phase1(&self, txn: TxnId, participants: &[LogId]) -> Option<Bytes> {
        match self {
            Updates::Sys(_) => {
                unreachable!("membership transactions are single-participant (SysLog only)")
            }
            Updates::Granule(swaps) => Some(
                GRecord::Prepared {
                    txn,
                    swaps: swaps.clone(),
                    participants: participants.to_vec(),
                }
                .encode(),
            ),
            Updates::Raw(b) => Some(b.clone()),
            Updates::ReadOnly => None,
        }
    }
}

/// Outcome of MarlinCommit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// All participants logged their votes/updates; the transaction is
    /// durable.
    Committed,
    /// A cross-node modification (or peer NO vote / timeout) aborted the
    /// transaction. `conflict` names the log whose CAS failed, if that was
    /// the cause.
    Aborted { conflict: Option<LogId> },
}

// "OnePhase" is the paper's protocol term, not a naming accident.
#[allow(clippy::enum_variant_names)]
#[derive(Clone, Debug, PartialEq)]
enum Phase {
    /// Waiting for the single TryLog/validation of the one-phase path.
    OnePhase { log: LogId },
    /// Collecting phase-one responses.
    Voting,
    /// Decision reached and broadcast; terminal.
    Done,
}

#[derive(Clone, Debug)]
struct LogPart {
    log: LogId,
    /// Payload appended in phase one (`None` for read-only validation).
    prepared: Option<Bytes>,
    responded: bool,
    voted_yes: bool,
}

#[derive(Clone, Debug)]
struct NodePart {
    node: NodeId,
    responded: bool,
    voted_yes: bool,
}

/// The MarlinCommit protocol state machine for one transaction.
#[derive(Clone, Debug)]
pub struct CommitDriver {
    txn: TxnId,
    phase: Phase,
    logs: Vec<LogPart>,
    nodes: Vec<NodePart>,
    outcome: Option<CommitOutcome>,
    conflict: Option<LogId>,
}

impl CommitDriver {
    /// Start MarlinCommit for `txn`, coordinated by `coordinator`.
    ///
    /// `participants` follows the paper's notation: node entries that name
    /// the coordinator itself are resolved to the coordinator's own GLog
    /// (an RPC to self is just a local TryLog). `tracker` supplies the
    /// expected LSN of every log the coordinator appends to.
    ///
    /// Returns the driver plus the initial effects to execute.
    pub fn new(
        txn: TxnId,
        coordinator: NodeId,
        participants: Vec<(Participant, Updates)>,
        tracker: &LsnTracker,
    ) -> (Self, Vec<Effect>) {
        assert!(
            !participants.is_empty(),
            "commit needs at least one participant"
        );
        let mut log_parts: Vec<(LogId, Updates)> = Vec::new();
        let mut node_parts: Vec<(NodeId, Updates)> = Vec::new();
        for (p, updates) in participants {
            match p {
                Participant::Node(n) if n == coordinator => {
                    log_parts.push((LogId::GLog(n), updates));
                }
                Participant::Node(n) => node_parts.push((n, updates)),
                Participant::Log(l) => log_parts.push((l, updates)),
            }
        }

        let mut effects = Vec::new();
        if node_parts.is_empty() && log_parts.len() == 1 {
            // One-phase commit: a single conditional append whose success
            // *is* the commit (Algorithm 2 line 4).
            let (log, updates) = log_parts.into_iter().next().expect("one participant");
            let prepared = updates.encode_final(txn);
            match &prepared {
                Some(p) => effects.push(Effect::ConditionalAppend {
                    log,
                    payload: p.clone(),
                    expected: tracker.get(log),
                }),
                None => effects.push(Effect::ValidateLsn {
                    log,
                    expected: tracker.get(log),
                }),
            }
            let driver = CommitDriver {
                txn,
                phase: Phase::OnePhase { log },
                logs: vec![LogPart {
                    log,
                    prepared,
                    responded: false,
                    voted_yes: false,
                }],
                nodes: Vec::new(),
                outcome: None,
                conflict: None,
            };
            return (driver, effects);
        }

        // Two-phase commit (Algorithm 2 lines 6-12): log participants get
        // TryLog(VOTE-YES ∪ updates) directly; node participants get
        // asynchronous VOTE-REQs carrying their prepared record.
        let all_logs: Vec<LogId> = log_parts
            .iter()
            .map(|(l, _)| *l)
            .chain(node_parts.iter().map(|(n, _)| LogId::GLog(*n)))
            .collect();
        let mut logs = Vec::with_capacity(log_parts.len());
        for (log, updates) in log_parts {
            let prepared = updates.encode_phase1(txn, &all_logs);
            match &prepared {
                Some(p) => effects.push(Effect::ConditionalAppend {
                    log,
                    payload: p.clone(),
                    expected: tracker.get(log),
                }),
                None => effects.push(Effect::ValidateLsn {
                    log,
                    expected: tracker.get(log),
                }),
            }
            logs.push(LogPart {
                log,
                prepared,
                responded: false,
                voted_yes: false,
            });
        }
        let mut nodes = Vec::with_capacity(node_parts.len());
        for (node, updates) in node_parts {
            let payload = updates.encode_phase1(txn, &all_logs).unwrap_or_default();
            effects.push(Effect::SendVoteReq {
                to: node,
                txn,
                payload,
            });
            nodes.push(NodePart {
                node,
                responded: false,
                voted_yes: false,
            });
        }
        let driver = CommitDriver {
            txn,
            phase: Phase::Voting,
            logs,
            nodes,
            outcome: None,
            conflict: None,
        };
        (driver, effects)
    }

    /// The transaction this driver commits.
    #[must_use]
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Feed a runner result; returns follow-up effects.
    pub fn on_input(&mut self, input: Input) -> Vec<Effect> {
        let mut effects = Vec::new();
        match &self.phase {
            Phase::OnePhase { log } => {
                let log = *log;
                match input {
                    Input::AppendOk { log: l, .. } | Input::ValidateOk { log: l } if l == log => {
                        self.outcome = Some(CommitOutcome::Committed);
                        self.phase = Phase::Done;
                    }
                    Input::AppendConflict { log: l, .. }
                    | Input::ValidateConflict { log: l, .. }
                        if l == log =>
                    {
                        // TryLog failure: cross-node modification detected.
                        // Abort and invalidate the backing cache
                        // (Algorithm 2 lines 15-18).
                        effects.push(Effect::ClearMetaCache { log: l });
                        self.outcome = Some(CommitOutcome::Aborted { conflict: Some(l) });
                        self.phase = Phase::Done;
                    }
                    _ => {}
                }
            }
            Phase::Voting => {
                match input {
                    Input::AppendOk { log, .. } | Input::ValidateOk { log } => {
                        if let Some(part) = self.logs.iter_mut().find(|p| p.log == log) {
                            part.responded = true;
                            part.voted_yes = true;
                        }
                    }
                    Input::AppendConflict { log, .. } | Input::ValidateConflict { log, .. } => {
                        if let Some(part) = self.logs.iter_mut().find(|p| p.log == log) {
                            part.responded = true;
                            part.voted_yes = false;
                            self.conflict.get_or_insert(log);
                            effects.push(Effect::ClearMetaCache { log });
                        }
                    }
                    Input::VoteResp { from, yes } => {
                        if let Some(part) = self.nodes.iter_mut().find(|p| p.node == from) {
                            part.responded = true;
                            part.voted_yes = yes;
                        }
                    }
                    Input::Timeout { from } => {
                        // An unresponsive node participant counts as NO.
                        // (The failover path avoids this entirely by using
                        // the dead node's *log* as the participant.)
                        if let Some(part) = self.nodes.iter_mut().find(|p| p.node == from) {
                            part.responded = true;
                            part.voted_yes = false;
                        }
                    }
                    _ => {}
                }
                self.maybe_decide(&mut effects);
            }
            Phase::Done => {}
        }
        effects
    }

    /// Final outcome, once reached.
    #[must_use]
    pub fn outcome(&self) -> Option<&CommitOutcome> {
        self.outcome.as_ref()
    }

    /// Whether the protocol has terminated.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    fn maybe_decide(&mut self, effects: &mut Vec<Effect>) {
        if self.phase != Phase::Voting
            || self.logs.iter().any(|p| !p.responded)
            || self.nodes.iter().any(|p| !p.responded)
        {
            return;
        }
        let commit =
            self.logs.iter().all(|p| p.voted_yes) && self.nodes.iter().all(|p| p.voted_yes);
        // Decision broadcast (Algorithm 2 line 12, asynchronous): append a
        // Decision record to every log participant holding a Prepared
        // record; message every node participant. Logs whose phase-one
        // append failed hold no Prepared record and need no decision.
        let decision = GRecord::Decision {
            txn: self.txn,
            commit,
        }
        .encode();
        for part in &self.logs {
            if part.voted_yes && part.prepared.is_some() {
                effects.push(Effect::Append {
                    log: part.log,
                    payload: decision.clone(),
                });
            }
        }
        for part in &self.nodes {
            effects.push(Effect::SendDecision {
                to: part.node,
                txn: self.txn,
                commit,
            });
        }
        self.outcome = Some(if commit {
            CommitOutcome::Committed
        } else {
            CommitOutcome::Aborted {
                conflict: self.conflict,
            }
        });
        self.phase = Phase::Done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::{GranuleId, KeyRange, Lsn, TableId};

    fn swap(g: u64, old: u32, new: u32) -> OwnershipSwap {
        OwnershipSwap {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 10, (g + 1) * 10),
            old: NodeId(old),
            new: NodeId(new),
        }
    }

    fn tracker_with(entries: &[(LogId, u64)]) -> LsnTracker {
        let mut t = LsnTracker::new();
        for (log, lsn) in entries {
            t.observe(*log, Lsn(*lsn));
        }
        t
    }

    #[test]
    fn one_phase_commit_on_append_ok() {
        let tracker = tracker_with(&[(LogId::SysLog, 2)]);
        let rec = SysRecord::AddNode {
            node: NodeId(3),
            addr: "n3".into(),
        };
        let (mut d, effects) = CommitDriver::new(
            TxnId(1),
            NodeId(3),
            vec![(Participant::Log(LogId::SysLog), Updates::Sys(rec.clone()))],
            &tracker,
        );
        assert_eq!(
            effects,
            vec![Effect::ConditionalAppend {
                log: LogId::SysLog,
                payload: rec.encode(),
                expected: Lsn(2),
            }]
        );
        let follow = d.on_input(Input::AppendOk {
            log: LogId::SysLog,
            new_lsn: Lsn(3),
        });
        assert!(follow.is_empty());
        assert_eq!(d.outcome(), Some(&CommitOutcome::Committed));
    }

    #[test]
    fn one_phase_abort_invalidates_cache() {
        let tracker = tracker_with(&[(LogId::SysLog, 2)]);
        let (mut d, _) = CommitDriver::new(
            TxnId(1),
            NodeId(0),
            vec![(
                Participant::Log(LogId::SysLog),
                Updates::Sys(SysRecord::DeleteNode { node: NodeId(1) }),
            )],
            &tracker,
        );
        let follow = d.on_input(Input::AppendConflict {
            log: LogId::SysLog,
            current: Lsn(4),
        });
        assert_eq!(follow, vec![Effect::ClearMetaCache { log: LogId::SysLog }]);
        assert_eq!(
            d.outcome(),
            Some(&CommitOutcome::Aborted {
                conflict: Some(LogId::SysLog)
            })
        );
    }

    #[test]
    fn coordinator_node_participant_becomes_local_log() {
        // MigrationTxn on dst=N3 with participants {src=N2, dst=N3}:
        // N3 resolves to Log(GLog(N3)), N2 stays a remote voter.
        let tracker = tracker_with(&[(LogId::GLog(NodeId(3)), 5)]);
        let (d, effects) = CommitDriver::new(
            TxnId(9),
            NodeId(3),
            vec![
                (
                    Participant::Node(NodeId(2)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
                (
                    Participant::Node(NodeId(3)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
            ],
            &tracker,
        );
        assert!(matches!(d.phase, Phase::Voting));
        let prepared = GRecord::Prepared {
            txn: TxnId(9),
            swaps: vec![swap(7, 2, 3)],
            participants: vec![LogId::GLog(NodeId(3)), LogId::GLog(NodeId(2))],
        }
        .encode();
        assert!(effects.contains(&Effect::ConditionalAppend {
            log: LogId::GLog(NodeId(3)),
            payload: prepared.clone(),
            expected: Lsn(5),
        }));
        assert!(effects.contains(&Effect::SendVoteReq {
            to: NodeId(2),
            txn: TxnId(9),
            payload: prepared,
        }));
    }

    #[test]
    fn two_phase_commits_after_all_yes() {
        let tracker = LsnTracker::new();
        let (mut d, _) = CommitDriver::new(
            TxnId(9),
            NodeId(3),
            vec![
                (
                    Participant::Node(NodeId(2)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
                (
                    Participant::Node(NodeId(3)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
            ],
            &tracker,
        );
        assert!(d
            .on_input(Input::AppendOk {
                log: LogId::GLog(NodeId(3)),
                new_lsn: Lsn(1)
            })
            .is_empty());
        assert!(d.outcome().is_none(), "must wait for the remote vote");
        let effects = d.on_input(Input::VoteResp {
            from: NodeId(2),
            yes: true,
        });
        assert_eq!(d.outcome(), Some(&CommitOutcome::Committed));
        // Decision: unconditional append to the local log + message to peer.
        let decision = GRecord::Decision {
            txn: TxnId(9),
            commit: true,
        }
        .encode();
        assert_eq!(
            effects,
            vec![
                Effect::Append {
                    log: LogId::GLog(NodeId(3)),
                    payload: decision
                },
                Effect::SendDecision {
                    to: NodeId(2),
                    txn: TxnId(9),
                    commit: true
                },
            ]
        );
    }

    #[test]
    fn two_phase_aborts_on_any_no() {
        let tracker = LsnTracker::new();
        let (mut d, _) = CommitDriver::new(
            TxnId(9),
            NodeId(3),
            vec![
                (
                    Participant::Node(NodeId(2)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
                (
                    Participant::Node(NodeId(3)),
                    Updates::Granule(vec![swap(7, 2, 3)]),
                ),
            ],
            &tracker,
        );
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(3)),
            new_lsn: Lsn(1),
        });
        let effects = d.on_input(Input::VoteResp {
            from: NodeId(2),
            yes: false,
        });
        assert_eq!(
            d.outcome(),
            Some(&CommitOutcome::Aborted { conflict: None })
        );
        // The local log holds a Prepared record that must be resolved with
        // an abort decision; the peer is told as well.
        let decision = GRecord::Decision {
            txn: TxnId(9),
            commit: false,
        }
        .encode();
        assert!(effects.contains(&Effect::Append {
            log: LogId::GLog(NodeId(3)),
            payload: decision,
        }));
        assert!(effects.contains(&Effect::SendDecision {
            to: NodeId(2),
            txn: TxnId(9),
            commit: false,
        }));
    }

    #[test]
    fn recovery_commit_uses_two_logs_no_votes() {
        // RecoveryMigrTxn on dst=N2 for dead src=N3:
        // MarlinCommit({src.GLog, dst}) — both participants are logs the
        // coordinator appends to directly; no RPC to the dead node.
        let tracker = tracker_with(&[(LogId::GLog(NodeId(2)), 2), (LogId::GLog(NodeId(3)), 1)]);
        let swaps = vec![swap(3, 3, 2), swap(4, 3, 2)];
        let (mut d, effects) = CommitDriver::new(
            TxnId(5),
            NodeId(2),
            vec![
                (
                    Participant::Log(LogId::GLog(NodeId(3))),
                    Updates::Granule(swaps.clone()),
                ),
                (
                    Participant::Node(NodeId(2)),
                    Updates::Granule(swaps.clone()),
                ),
            ],
            &tracker,
        );
        assert_eq!(effects.len(), 2);
        assert!(effects
            .iter()
            .all(|e| matches!(e, Effect::ConditionalAppend { .. })));
        assert!(!effects
            .iter()
            .any(|e| matches!(e, Effect::SendVoteReq { .. })));
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(3)),
            new_lsn: Lsn(2),
        });
        let follow = d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(2)),
            new_lsn: Lsn(3),
        });
        assert_eq!(d.outcome(), Some(&CommitOutcome::Committed));
        // Decisions are appended to both logs (the dead node's readers —
        // i.e. a recovering N3 — must see the resolution).
        assert_eq!(
            follow
                .iter()
                .filter(|e| matches!(e, Effect::Append { .. }))
                .count(),
            2
        );
    }

    #[test]
    fn recovery_race_aborts_on_src_log_conflict() {
        // The Figure 7 race from the *recovering* node's perspective: N2's
        // append to GLog3 fails because N3 came back and appended first.
        let tracker = tracker_with(&[(LogId::GLog(NodeId(3)), 1)]);
        let (mut d, _) = CommitDriver::new(
            TxnId(5),
            NodeId(2),
            vec![
                (
                    Participant::Log(LogId::GLog(NodeId(3))),
                    Updates::Granule(vec![swap(3, 3, 2)]),
                ),
                (
                    Participant::Node(NodeId(2)),
                    Updates::Granule(vec![swap(3, 3, 2)]),
                ),
            ],
            &tracker,
        );
        let effects = d.on_input(Input::AppendConflict {
            log: LogId::GLog(NodeId(3)),
            current: Lsn(2),
        });
        assert!(effects.contains(&Effect::ClearMetaCache {
            log: LogId::GLog(NodeId(3))
        }));
        assert!(d.outcome().is_none());
        let effects = d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(2)),
            new_lsn: Lsn(1),
        });
        assert_eq!(
            d.outcome(),
            Some(&CommitOutcome::Aborted {
                conflict: Some(LogId::GLog(NodeId(3)))
            })
        );
        // Abort decision goes only to the log that holds a Prepared record
        // (N2's own); GLog3's append failed so nothing dangles there.
        let decision = GRecord::Decision {
            txn: TxnId(5),
            commit: false,
        }
        .encode();
        assert_eq!(
            effects,
            vec![Effect::Append {
                log: LogId::GLog(NodeId(2)),
                payload: decision
            }]
        );
    }

    #[test]
    fn read_only_scan_validates_all_participants() {
        // ScanGTableTxn: MarlinCommit({SysLog} ∪ nodes), nothing written.
        let tracker = tracker_with(&[(LogId::SysLog, 3), (LogId::GLog(NodeId(0)), 7)]);
        let (mut d, effects) = CommitDriver::new(
            TxnId(11),
            NodeId(0),
            vec![
                (Participant::Log(LogId::SysLog), Updates::ReadOnly),
                (Participant::Node(NodeId(0)), Updates::ReadOnly),
                (Participant::Node(NodeId(1)), Updates::ReadOnly),
            ],
            &tracker,
        );
        assert!(effects.contains(&Effect::ValidateLsn {
            log: LogId::SysLog,
            expected: Lsn(3)
        }));
        assert!(effects.contains(&Effect::ValidateLsn {
            log: LogId::GLog(NodeId(0)),
            expected: Lsn(7)
        }));
        assert!(effects
            .iter()
            .any(|e| matches!(e, Effect::SendVoteReq { to, .. } if *to == NodeId(1))));
        d.on_input(Input::ValidateOk { log: LogId::SysLog });
        d.on_input(Input::ValidateOk {
            log: LogId::GLog(NodeId(0)),
        });
        let effects = d.on_input(Input::VoteResp {
            from: NodeId(1),
            yes: true,
        });
        assert_eq!(d.outcome(), Some(&CommitOutcome::Committed));
        // Read-only: no decision appends, just the async decision message.
        assert!(!effects.iter().any(|e| matches!(e, Effect::Append { .. })));
    }

    #[test]
    fn read_only_scan_aborts_on_stale_membership() {
        let tracker = tracker_with(&[(LogId::SysLog, 3)]);
        let (mut d, _) = CommitDriver::new(
            TxnId(11),
            NodeId(0),
            vec![
                (Participant::Log(LogId::SysLog), Updates::ReadOnly),
                (Participant::Node(NodeId(1)), Updates::ReadOnly),
            ],
            &tracker,
        );
        d.on_input(Input::ValidateConflict {
            log: LogId::SysLog,
            current: Lsn(5),
        });
        d.on_input(Input::VoteResp {
            from: NodeId(1),
            yes: true,
        });
        assert_eq!(
            d.outcome(),
            Some(&CommitOutcome::Aborted {
                conflict: Some(LogId::SysLog)
            })
        );
    }

    #[test]
    fn timeout_counts_as_no_vote() {
        let tracker = LsnTracker::new();
        let (mut d, _) = CommitDriver::new(
            TxnId(2),
            NodeId(0),
            vec![
                (
                    Participant::Node(NodeId(0)),
                    Updates::Granule(vec![swap(1, 1, 0)]),
                ),
                (
                    Participant::Node(NodeId(1)),
                    Updates::Granule(vec![swap(1, 1, 0)]),
                ),
            ],
            &tracker,
        );
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(0)),
            new_lsn: Lsn(1),
        });
        d.on_input(Input::Timeout { from: NodeId(1) });
        assert_eq!(
            d.outcome(),
            Some(&CommitOutcome::Aborted { conflict: None })
        );
    }

    #[test]
    fn duplicate_and_unknown_inputs_are_ignored() {
        let tracker = LsnTracker::new();
        let (mut d, _) = CommitDriver::new(
            TxnId(1),
            NodeId(0),
            vec![(
                Participant::Log(LogId::SysLog),
                Updates::Sys(SysRecord::DeleteNode { node: NodeId(2) }),
            )],
            &tracker,
        );
        // Input for an unrelated log: ignored.
        d.on_input(Input::AppendOk {
            log: LogId::GLog(NodeId(5)),
            new_lsn: Lsn(1),
        });
        assert!(d.outcome().is_none());
        d.on_input(Input::AppendOk {
            log: LogId::SysLog,
            new_lsn: Lsn(1),
        });
        assert!(d.is_done());
        // Late duplicate after completion: ignored.
        let follow = d.on_input(Input::AppendConflict {
            log: LogId::SysLog,
            current: Lsn(9),
        });
        assert!(follow.is_empty());
        assert_eq!(d.outcome(), Some(&CommitOutcome::Committed));
    }
}
