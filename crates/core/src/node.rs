//! Per-node coordination state.
//!
//! A [`MarlinNode`] holds the coordination-relevant state of one compute
//! node: its cached MTable, its materialized GTable partition, cached
//! copies of peers' partitions, and the `lsn_tracker`. It implements the
//! pure state transitions of the protocol — the user-transaction ownership
//! guard (Algorithm 1 lines 1-6), cache invalidation (`ClearMetaCache`),
//! and log-suffix refresh — while runners perform the actual storage and
//! network I/O.
//!
//! Cache model (§4.3.2): every system-table view is a *cache of a log
//! prefix*. A failed conditional append proves the cache stale; the node
//! marks it invalid and, on next use, refreshes by reading the log suffix
//! from its applied watermark (the paper fetches pages via `GetPage@LSN`
//! guided by the updated H-LSN; reading the suffix of the authoritative
//! log is the same data through the other standard API).

use crate::gtable::GTablePartition;
use crate::lsn_tracker::LsnTracker;
use crate::mtable::MTable;
use crate::records::{GRecord, SysRecord};
use bytes::Bytes;
use marlin_common::{GranuleId, LogId, Lsn, NodeId, TxnError};
use std::collections::BTreeMap;

/// Coordination state of one compute node.
#[derive(Debug)]
pub struct MarlinNode {
    /// This node's identity.
    pub id: NodeId,
    /// Cached membership view (materialized SysLog prefix).
    mtable: MTable,
    mtable_valid: bool,
    /// This node's GTable partition (materialized own-GLog prefix).
    gtable: GTablePartition,
    gtable_valid: bool,
    /// Cached copies of peers' partitions (failover and scans).
    foreign: BTreeMap<NodeId, GTablePartition>,
    /// Last observed LSN per log (H-LSN array, §4.3.2).
    pub tracker: LsnTracker,
    /// Next local transaction sequence number.
    next_seq: u32,
}

impl MarlinNode {
    /// A fresh node with empty caches.
    #[must_use]
    pub fn new(id: NodeId) -> Self {
        MarlinNode {
            id,
            mtable: MTable::new(),
            mtable_valid: true,
            gtable: GTablePartition::new(),
            gtable_valid: true,
            foreign: BTreeMap::new(),
            tracker: LsnTracker::new(),
            next_seq: 0,
        }
    }

    /// Mint a fresh transaction ID.
    pub fn next_txn(&mut self) -> marlin_common::TxnId {
        self.next_seq += 1;
        marlin_common::TxnId::new(self.id, self.next_seq)
    }

    // -- user transaction guard (Algorithm 1 lines 1-6) --------------------

    /// The ownership check every user request performs before touching
    /// data: confirms this node owns the granule per its own GTable
    /// partition; otherwise the transaction aborts with `WrongNodeError`
    /// carrying the owner hint for client redirection.
    pub fn check_user_access(&self, granule: GranuleId) -> Result<(), TxnError> {
        match self.gtable.owner_of(granule) {
            Some(owner) if owner == self.id => Ok(()),
            Some(owner) => Err(TxnError::WrongNode { granule, owner }),
            // Never owned and never heard of: the client's routing is very
            // stale; no hint available.
            None => Err(TxnError::WrongNode {
                granule,
                owner: NodeId(u32::MAX),
            }),
        }
    }

    /// Granules this node currently owns.
    #[must_use]
    pub fn owned_granules(&self) -> Vec<GranuleId> {
        self.gtable
            .owned_by(self.id)
            .into_iter()
            .map(|(g, _)| g)
            .collect()
    }

    // -- cache views --------------------------------------------------------

    /// The membership view. Callers must refresh first if
    /// [`Self::mtable_valid`] is false.
    #[must_use]
    pub fn mtable(&self) -> &MTable {
        &self.mtable
    }

    /// Whether the MTable cache is valid.
    #[must_use]
    pub fn mtable_valid(&self) -> bool {
        self.mtable_valid
    }

    /// This node's GTable partition view.
    #[must_use]
    pub fn gtable(&self) -> &GTablePartition {
        &self.gtable
    }

    /// Whether the own-partition cache is valid.
    #[must_use]
    pub fn gtable_valid(&self) -> bool {
        self.gtable_valid
    }

    /// Cached copy of a peer's partition, if any.
    #[must_use]
    pub fn foreign_partition(&self, node: NodeId) -> Option<&GTablePartition> {
        self.foreign.get(&node)
    }

    // -- ClearMetaCache (Algorithm 2 lines 16-17) ---------------------------

    /// Invalidate the cache backed by `log`: SysLog ⇒ MTable, `GLog(n)` ⇒
    /// node `n`'s partition cache (including this node's own — a failed
    /// append to one's own GLog is exactly the Figure 7 recovery race).
    pub fn clear_meta_cache(&mut self, log: LogId) {
        match log {
            LogId::SysLog => self.mtable_valid = false,
            LogId::GLog(n) if n == self.id => self.gtable_valid = false,
            LogId::GLog(n) => {
                self.foreign.remove(&n);
            }
            LogId::DataWal(_) => {
                // User data has exclusive owners; no coordination cache to
                // evict (§4.3.2: "only coordination states can encounter
                // cross-node modification").
            }
        }
    }

    // -- refresh from log suffixes ------------------------------------------

    /// Apply a SysLog suffix (records after the view's watermark) and mark
    /// the MTable cache valid.
    pub fn refresh_mtable(&mut self, records: impl IntoIterator<Item = (Lsn, Bytes)>) {
        for (lsn, payload) in records {
            if lsn <= self.mtable.applied_lsn() {
                continue;
            }
            if let Some(rec) = SysRecord::decode(&payload) {
                self.mtable.apply(lsn, &rec);
            }
            self.tracker.observe(LogId::SysLog, lsn);
        }
        self.mtable_valid = true;
    }

    /// Apply an own-GLog suffix and mark the partition cache valid.
    ///
    /// Returns the granules whose ownership *moved away from this node* as
    /// a result — the runner aborts live transactions on them and evicts
    /// their data pages (Figure 7: "any ongoing or incoming transactions on
    /// N3 targeting these granules are thus aborted").
    pub fn refresh_own_gtable(
        &mut self,
        records: impl IntoIterator<Item = (Lsn, Bytes)>,
    ) -> Vec<GranuleId> {
        let before: Vec<GranuleId> = self.owned_granules();
        for (lsn, payload) in records {
            if lsn <= self.gtable.applied_lsn() {
                continue;
            }
            self.apply_own_glog_record(lsn, &payload);
        }
        self.gtable_valid = true;
        let after = self.owned_granules();
        before.into_iter().filter(|g| !after.contains(g)).collect()
    }

    /// Apply one record this node just appended (or observed) on its own
    /// GLog. Data records advance the watermark; GRecords mutate the view.
    pub fn apply_own_glog_record(&mut self, lsn: Lsn, payload: &Bytes) {
        match GRecord::decode(payload) {
            Some(rec) => self.gtable.apply(lsn, &rec),
            None => self.gtable.note_lsn(lsn),
        }
        self.tracker.observe(LogId::GLog(self.id), lsn);
    }

    /// Install/refresh a cached copy of a peer's partition from a full log
    /// prefix (used before `RecoveryMigrTxn` and by scans).
    pub fn refresh_foreign(
        &mut self,
        node: NodeId,
        records: impl IntoIterator<Item = (Lsn, Bytes)>,
    ) {
        let part = self.foreign.entry(node).or_default();
        let mut end = part.applied_lsn();
        for (lsn, payload) in records {
            if lsn <= part.applied_lsn() {
                continue;
            }
            match GRecord::decode(&payload) {
                Some(rec) => part.apply(lsn, &rec),
                None => part.note_lsn(lsn),
            }
            end = lsn;
        }
        self.tracker.observe(LogId::GLog(node), end);
    }

    /// Bootstrap helper: seed the MTable directly (initial cluster bring-up
    /// reads the SysLog from LSN 0, which is the same thing).
    pub fn seed_mtable(&mut self, mtable: MTable) {
        self.tracker.observe(LogId::SysLog, mtable.applied_lsn());
        self.mtable = mtable;
        self.mtable_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::OwnershipSwap;
    use marlin_common::{KeyRange, TableId, TxnId};

    fn install_payload(g: u64, owner: u32) -> Bytes {
        GRecord::Install {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 10, (g + 1) * 10),
            owner: NodeId(owner),
        }
        .encode()
    }

    fn swap_payload(txn: u64, g: u64, old: u32, new: u32) -> Bytes {
        GRecord::OnePhase {
            txn: TxnId(txn),
            swaps: vec![OwnershipSwap {
                table: TableId(0),
                granule: GranuleId(g),
                range: KeyRange::new(g * 10, (g + 1) * 10),
                old: NodeId(old),
                new: NodeId(new),
            }],
        }
        .encode()
    }

    #[test]
    fn user_access_guard_matches_algorithm_1() {
        let mut n = MarlinNode::new(NodeId(2));
        n.refresh_own_gtable([
            (Lsn(1), install_payload(3, 2)),
            (Lsn(2), install_payload(4, 5)),
        ]);
        assert!(n.check_user_access(GranuleId(3)).is_ok());
        assert_eq!(
            n.check_user_access(GranuleId(4)),
            Err(TxnError::WrongNode {
                granule: GranuleId(4),
                owner: NodeId(5)
            })
        );
        assert!(matches!(
            n.check_user_access(GranuleId(99)),
            Err(TxnError::WrongNode { .. })
        ));
    }

    #[test]
    fn refresh_reports_lost_granules() {
        // The Figure 7 discovery: N3 refreshes its own partition after a
        // CAS failure and learns G3/G4 moved to N2.
        let mut n3 = MarlinNode::new(NodeId(3));
        n3.refresh_own_gtable([
            (Lsn(1), install_payload(3, 3)),
            (Lsn(2), install_payload(4, 3)),
        ]);
        assert_eq!(n3.owned_granules(), vec![GranuleId(3), GranuleId(4)]);
        let lost = n3.refresh_own_gtable([
            (Lsn(3), swap_payload(1, 3, 3, 2)),
            (Lsn(4), swap_payload(1, 4, 3, 2)),
        ]);
        assert_eq!(lost, vec![GranuleId(3), GranuleId(4)]);
        assert!(n3.owned_granules().is_empty());
        assert!(n3.check_user_access(GranuleId(3)).is_err());
    }

    #[test]
    fn clear_meta_cache_targets_the_right_view() {
        let mut n = MarlinNode::new(NodeId(1));
        assert!(n.mtable_valid());
        n.clear_meta_cache(LogId::SysLog);
        assert!(!n.mtable_valid());
        assert!(n.gtable_valid());
        n.clear_meta_cache(LogId::GLog(NodeId(1)));
        assert!(!n.gtable_valid());
        // Foreign cache eviction drops the copy entirely.
        n.refresh_foreign(NodeId(2), [(Lsn(1), install_payload(1, 2))]);
        assert!(n.foreign_partition(NodeId(2)).is_some());
        n.clear_meta_cache(LogId::GLog(NodeId(2)));
        assert!(n.foreign_partition(NodeId(2)).is_none());
    }

    #[test]
    fn data_records_advance_watermark_without_gtable_change() {
        let mut n = MarlinNode::new(NodeId(0));
        n.refresh_own_gtable([(Lsn(1), install_payload(1, 0))]);
        // A user-data batch (not a GRecord) lands on the same log.
        n.apply_own_glog_record(Lsn(2), &Bytes::from_static(b"\x57\x4duser-data"));
        assert_eq!(n.gtable().applied_lsn(), Lsn(2));
        assert_eq!(n.owned_granules(), vec![GranuleId(1)]);
        assert_eq!(n.tracker.get(LogId::GLog(NodeId(0))), Lsn(2));
    }

    #[test]
    fn refresh_skips_already_applied_records() {
        let mut n = MarlinNode::new(NodeId(0));
        let records = [
            (Lsn(1), install_payload(1, 0)),
            (Lsn(2), install_payload(2, 0)),
        ];
        n.refresh_own_gtable(records.clone());
        // Re-delivering the full prefix is harmless (idempotent refresh).
        n.refresh_own_gtable(records);
        assert_eq!(n.owned_granules(), vec![GranuleId(1), GranuleId(2)]);
    }

    #[test]
    fn foreign_refresh_tracks_lsn() {
        let mut n = MarlinNode::new(NodeId(0));
        n.refresh_foreign(
            NodeId(3),
            [
                (Lsn(1), install_payload(7, 3)),
                (Lsn(2), swap_payload(1, 7, 3, 0)),
            ],
        );
        let p = n.foreign_partition(NodeId(3)).unwrap();
        assert_eq!(p.owner_of(GranuleId(7)), Some(NodeId(0)));
        assert_eq!(n.tracker.get(LogId::GLog(NodeId(3))), Lsn(2));
    }

    #[test]
    fn txn_ids_are_unique_and_tagged() {
        let mut n = MarlinNode::new(NodeId(5));
        let a = n.next_txn();
        let b = n.next_txn();
        assert_ne!(a, b);
        assert_eq!(a.origin(), NodeId(5));
    }
}
