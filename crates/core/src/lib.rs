//! # marlin-core — the paper's primary contribution
//!
//! Marlin consolidates cluster coordination into the database it manages
//! (§4): coordination state lives in system tables backed by shared logs in
//! disaggregated storage, and every access goes through transactions
//! committed with **MarlinCommit**, a commit protocol built on conditional
//! append (`Append@LSN`) that detects cross-node modifications.
//!
//! Layout:
//!
//! - [`records`] — the wire format of SysLog and GLog records, including
//!   the `Prepared`/`Decision` two-phase records MarlinCommit appends.
//! - [`mtable`] / [`gtable`] — the two system tables: group membership
//!   (MTable, single unowned SysLog) and granule ownership (GTable,
//!   partitioned by owner node, one GLog per node). Both materialize
//!   deterministically from their logs.
//! - [`lsn_tracker`] — each node's `H-LSN` map (last observed LSN per log).
//! - [`drivers`] — sans-io protocol state machines: [`drivers::commit`]
//!   implements Algorithm 2 (MarlinCommit), [`drivers::reconfig`]
//!   implements the five reconfiguration transactions of Table 1 /
//!   Algorithm 1. Drivers emit [`drivers::Effect`]s and consume
//!   [`drivers::Input`]s, so the synchronous runtime (tests, examples) and
//!   the discrete-event cluster simulator drive the *same* protocol code.
//! - [`node`] — per-node coordination state: MTable/GTable caches with
//!   validity flags, the LSN tracker, and the user-transaction ownership
//!   guard (Algorithm 1 lines 1–6).
//! - [`runtime`] — a synchronous in-process cluster runner that fulfills
//!   driver effects directly against `marlin-storage`; the functional
//!   reference implementation used by unit/integration tests and examples.
//! - [`failure`] — ring-based heartbeat failure detection (§4.4.2).
//! - [`router`] — client-side routing cache with `WrongNode` redirect
//!   handling and `ScanGTableTxn` refresh.
//! - [`warmup`] — Squall-style cache warm-up planning after migration.
//! - [`invariants`] — executable checks of invariants I0–I4 (§4.5).
//! - [`model`] — an exhaustive state-space explorer mirroring the TLA+
//!   specification in Appendix B (NoDualOwnership, HasOneOwnership).

pub mod drivers;
pub mod failure;
pub mod gtable;
pub mod invariants;
pub mod lsn_tracker;
pub mod model;
pub mod mtable;
pub mod node;
pub mod records;
pub mod router;
pub mod runtime;
pub mod warmup;

pub use gtable::{GTablePartition, GranuleMeta};
pub use lsn_tracker::LsnTracker;
pub use mtable::{MTable, NodeInfo};
pub use node::MarlinNode;
pub use records::{GRecord, OwnershipSwap, SysRecord};
pub use runtime::LocalCluster;
