//! GTable: the granule-ownership system table (§4.1, Figure 5).
//!
//! GTable grows with the data volume, so Marlin partitions it **by owner
//! node ID**: node `n`'s partition describes the granules `n` owns and is
//! logged in `GLog(n)`. Migrations update both the source and destination
//! partitions (Figure 6) by *swapping* entries — never deleting them — so
//! every granule always has an owner (invariant I3) and at most one node
//! `n` satisfies `GTable[g].owner == n` (invariant I4). After a migration
//! the source partition retains a forwarding entry pointing at the new
//! owner, which is what lets misrouted requests discover the move.
//!
//! A [`GTablePartition`] is the deterministic materialization of one GLog.
//! Cross-node transactions append [`GRecord::Prepared`] records (phase one
//! of MarlinCommit) whose swaps stay *pending* until the matching
//! [`GRecord::Decision`] record arrives; one-phase records apply
//! immediately. This mirrors how a reader of the log — including a node
//! taking over after a failure — reconstructs exactly the committed state.

use crate::records::{GRecord, OwnershipSwap};
use marlin_common::{GranuleId, KeyRange, Lsn, NodeId, TableId, TxnId};
use std::collections::BTreeMap;

/// One GTable row: a granule's key range and current owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GranuleMeta {
    pub table: TableId,
    pub range: KeyRange,
    pub owner: NodeId,
}

/// A materialized GTable partition (one node's view of its GLog).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GTablePartition {
    entries: BTreeMap<GranuleId, GranuleMeta>,
    /// Swaps from `Prepared` records awaiting their decision.
    pending: BTreeMap<TxnId, Vec<OwnershipSwap>>,
    /// GLog LSN this view reflects.
    applied: Lsn,
}

impl GTablePartition {
    /// An empty partition at GLog LSN 0.
    #[must_use]
    pub fn new() -> Self {
        GTablePartition::default()
    }

    /// Advance the applied watermark past a GLog record that carries no
    /// ownership information (the per-node GLog doubles as the node's data
    /// WAL — §4.1, Figure 5 — so user-data records interleave with GTable
    /// records and must still advance the view's LSN).
    pub fn note_lsn(&mut self, lsn: Lsn) {
        assert!(lsn > self.applied, "GLog records must apply in order");
        self.applied = lsn;
    }

    /// Apply one GLog record at `lsn` (records must arrive in order).
    pub fn apply(&mut self, lsn: Lsn, record: &GRecord) {
        assert!(lsn > self.applied, "GLog records must apply in order");
        match record {
            GRecord::Install {
                table,
                granule,
                range,
                owner,
            } => {
                self.entries.insert(
                    *granule,
                    GranuleMeta {
                        table: *table,
                        range: *range,
                        owner: *owner,
                    },
                );
            }
            GRecord::OnePhase { swaps, .. } => {
                for s in swaps {
                    self.apply_swap(s);
                }
            }
            GRecord::Prepared { txn, swaps, .. } => {
                self.pending.insert(*txn, swaps.clone());
            }
            GRecord::Decision { txn, commit } => {
                if let Some(swaps) = self.pending.remove(txn) {
                    if *commit {
                        for s in &swaps {
                            self.apply_swap(s);
                        }
                    }
                }
                // A decision without a matching prepared record is legal:
                // the decision broadcast is appended to every participant
                // log, including ones whose phase-one append failed.
            }
        }
        self.applied = lsn;
    }

    fn apply_swap(&mut self, s: &OwnershipSwap) {
        // Swap semantics: upsert the entry with the new owner. The range
        // rides along so a destination partition can create the entry it
        // has never seen. Entries are never deleted (invariant I3).
        self.entries.insert(
            s.granule,
            GranuleMeta {
                table: s.table,
                range: s.range,
                owner: s.new,
            },
        );
    }

    /// Owner of `granule` per this partition, if the partition has an entry
    /// (Algorithm 1 `GTable[granule].NodeID`).
    #[must_use]
    pub fn owner_of(&self, granule: GranuleId) -> Option<NodeId> {
        self.entries.get(&granule).map(|m| m.owner)
    }

    /// Full entry for `granule`.
    #[must_use]
    pub fn get(&self, granule: GranuleId) -> Option<&GranuleMeta> {
        self.entries.get(&granule)
    }

    /// All entries currently owned by `node` (the partition's live rows).
    #[must_use]
    pub fn owned_by(&self, node: NodeId) -> Vec<(GranuleId, GranuleMeta)> {
        self.entries
            .iter()
            .filter(|(_, m)| m.owner == node)
            .map(|(g, m)| (*g, *m))
            .collect()
    }

    /// Scan every entry (`ScanGTableTxn` merges these across nodes).
    #[must_use]
    pub fn scan(&self) -> Vec<(GranuleId, GranuleMeta)> {
        self.entries.iter().map(|(g, m)| (*g, *m)).collect()
    }

    /// The GLog LSN this view reflects.
    #[must_use]
    pub fn applied_lsn(&self) -> Lsn {
        self.applied
    }

    /// Transactions prepared but not yet decided in this log — candidates
    /// for the termination protocol during failover (§4.3.2; Cornus-style
    /// non-blocking resolution).
    #[must_use]
    pub fn in_doubt(&self) -> Vec<TxnId> {
        self.pending.keys().copied().collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the partition has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Materialize a partition from a full GLog record sequence.
#[must_use]
pub fn materialize(records: impl IntoIterator<Item = (Lsn, GRecord)>) -> GTablePartition {
    let mut p = GTablePartition::new();
    for (lsn, record) in records {
        p.apply(lsn, &record);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn install(g: u64, owner: u32) -> GRecord {
        GRecord::Install {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 100, (g + 1) * 100),
            owner: NodeId(owner),
        }
    }

    fn swap(g: u64, old: u32, new: u32) -> OwnershipSwap {
        OwnershipSwap {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 100, (g + 1) * 100),
            old: NodeId(old),
            new: NodeId(new),
        }
    }

    #[test]
    fn install_then_query() {
        let p = materialize([(Lsn(1), install(3, 2))]);
        assert_eq!(p.owner_of(GranuleId(3)), Some(NodeId(2)));
        assert_eq!(p.get(GranuleId(3)).unwrap().range, KeyRange::new(300, 400));
        assert_eq!(p.owner_of(GranuleId(9)), None);
    }

    #[test]
    fn one_phase_swap_applies_immediately() {
        let p = materialize([
            (Lsn(1), install(1, 0)),
            (
                Lsn(2),
                GRecord::OnePhase {
                    txn: TxnId(5),
                    swaps: vec![swap(1, 0, 1)],
                },
            ),
        ]);
        assert_eq!(p.owner_of(GranuleId(1)), Some(NodeId(1)));
    }

    #[test]
    fn prepared_swaps_wait_for_decision() {
        let mut p = materialize([(Lsn(1), install(1, 0))]);
        p.apply(
            Lsn(2),
            &GRecord::Prepared {
                txn: TxnId(7),
                swaps: vec![swap(1, 0, 1)],
                participants: vec![],
            },
        );
        // Not yet applied.
        assert_eq!(p.owner_of(GranuleId(1)), Some(NodeId(0)));
        assert_eq!(p.in_doubt(), vec![TxnId(7)]);
        p.apply(
            Lsn(3),
            &GRecord::Decision {
                txn: TxnId(7),
                commit: true,
            },
        );
        assert_eq!(p.owner_of(GranuleId(1)), Some(NodeId(1)));
        assert!(p.in_doubt().is_empty());
    }

    #[test]
    fn aborted_decision_drops_swaps() {
        let mut p = materialize([(Lsn(1), install(1, 0))]);
        p.apply(
            Lsn(2),
            &GRecord::Prepared {
                txn: TxnId(7),
                swaps: vec![swap(1, 0, 1)],
                participants: vec![],
            },
        );
        p.apply(
            Lsn(3),
            &GRecord::Decision {
                txn: TxnId(7),
                commit: false,
            },
        );
        assert_eq!(p.owner_of(GranuleId(1)), Some(NodeId(0)));
        assert!(p.in_doubt().is_empty());
    }

    #[test]
    fn decision_without_prepare_is_harmless() {
        let mut p = GTablePartition::new();
        p.apply(
            Lsn(1),
            &GRecord::Decision {
                txn: TxnId(3),
                commit: true,
            },
        );
        assert!(p.is_empty());
    }

    #[test]
    fn swap_into_new_partition_creates_forwarding_entry() {
        // Destination partition never saw granule 4; the swap's embedded
        // range lets it create the entry.
        let p = materialize([(
            Lsn(1),
            GRecord::OnePhase {
                txn: TxnId(1),
                swaps: vec![swap(4, 0, 2)],
            },
        )]);
        assert_eq!(p.owner_of(GranuleId(4)), Some(NodeId(2)));
        assert_eq!(p.get(GranuleId(4)).unwrap().range, KeyRange::new(400, 500));
    }

    #[test]
    fn source_partition_keeps_forwarding_entry() {
        // After migration away, the source still answers with the new
        // owner (this is how misrouted clients get redirected).
        let p = materialize([
            (Lsn(1), install(2, 0)),
            (
                Lsn(2),
                GRecord::OnePhase {
                    txn: TxnId(1),
                    swaps: vec![swap(2, 0, 5)],
                },
            ),
        ]);
        assert_eq!(p.owner_of(GranuleId(2)), Some(NodeId(5)));
        assert_eq!(p.len(), 1, "swap must not delete the entry");
        assert!(p.owned_by(NodeId(0)).is_empty());
    }

    #[test]
    fn owned_by_filters_current_owner() {
        let p = materialize([
            (Lsn(1), install(1, 0)),
            (Lsn(2), install(2, 0)),
            (
                Lsn(3),
                GRecord::OnePhase {
                    txn: TxnId(1),
                    swaps: vec![swap(1, 0, 9)],
                },
            ),
        ]);
        let owned = p.owned_by(NodeId(0));
        assert_eq!(owned.len(), 1);
        assert_eq!(owned[0].0, GranuleId(2));
    }

    #[test]
    fn interleaved_transactions_resolve_independently() {
        let mut p = materialize([(Lsn(1), install(1, 0)), (Lsn(2), install(2, 0))]);
        p.apply(
            Lsn(3),
            &GRecord::Prepared {
                txn: TxnId(10),
                swaps: vec![swap(1, 0, 1)],
                participants: vec![],
            },
        );
        p.apply(
            Lsn(4),
            &GRecord::Prepared {
                txn: TxnId(11),
                swaps: vec![swap(2, 0, 2)],
                participants: vec![],
            },
        );
        p.apply(
            Lsn(5),
            &GRecord::Decision {
                txn: TxnId(11),
                commit: true,
            },
        );
        assert_eq!(
            p.owner_of(GranuleId(1)),
            Some(NodeId(0)),
            "txn 10 still pending"
        );
        assert_eq!(p.owner_of(GranuleId(2)), Some(NodeId(2)));
        p.apply(
            Lsn(6),
            &GRecord::Decision {
                txn: TxnId(10),
                commit: false,
            },
        );
        assert_eq!(p.owner_of(GranuleId(1)), Some(NodeId(0)));
    }

    #[test]
    fn replicas_converge_from_same_log() {
        let records = vec![
            (Lsn(1), install(1, 0)),
            (
                Lsn(2),
                GRecord::Prepared {
                    txn: TxnId(1),
                    swaps: vec![swap(1, 0, 1)],
                    participants: vec![],
                },
            ),
            (
                Lsn(3),
                GRecord::Decision {
                    txn: TxnId(1),
                    commit: true,
                },
            ),
            (
                Lsn(4),
                GRecord::OnePhase {
                    txn: TxnId(2),
                    swaps: vec![swap(1, 1, 2)],
                },
            ),
        ];
        let a = materialize(records.clone());
        let b = materialize(records);
        assert_eq!(a, b);
        assert_eq!(a.owner_of(GranuleId(1)), Some(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_application_panics() {
        let mut p = GTablePartition::new();
        p.apply(Lsn(2), &install(1, 0));
        p.apply(Lsn(1), &install(2, 0));
    }
}
