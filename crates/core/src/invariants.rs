//! Executable correctness invariants (§4.5, Appendix A).
//!
//! The paper's central safety property is **Exclusive Granule Ownership**
//! (I0): at any time every granule has exactly one owner node, where node
//! `N` owns granule `G` iff `N.GTable[G].NodeID == N` (definition D1).
//! These checks run over a set of per-node partition views — exactly the
//! state the TLA+ spec models — and are asserted by unit tests, by the
//! integration suite, and periodically during simulations.

use crate::gtable::GTablePartition;
use marlin_common::{GranuleId, NodeId};
use std::collections::BTreeMap;

/// A violation of one of the invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// I2/"HasOneOwnership": no node's own partition claims the granule.
    NoOwner { granule: GranuleId },
    /// I3/"NoDualOwnership": two nodes' own partitions both claim it.
    DualOwner {
        granule: GranuleId,
        a: NodeId,
        b: NodeId,
    },
    /// A node's partition view disagrees with the owner's about a granule's
    /// key range (metadata corruption).
    RangeMismatch { granule: GranuleId },
}

/// Check Exclusive Granule Ownership over the nodes' own-partition views.
///
/// `views` maps each live node to its own GTable partition; `universe`
/// lists every granule that must have an owner. Returns all violations
/// (empty means the invariant holds).
#[must_use]
pub fn check_exclusive_ownership(
    views: &BTreeMap<NodeId, &GTablePartition>,
    universe: &[GranuleId],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut owners: BTreeMap<GranuleId, NodeId> = BTreeMap::new();
    for (&node, view) in views {
        for (granule, meta) in view.owned_by(node) {
            debug_assert_eq!(meta.owner, node);
            if let Some(prev) = owners.insert(granule, node) {
                violations.push(Violation::DualOwner {
                    granule,
                    a: prev,
                    b: node,
                });
            }
        }
    }
    for &g in universe {
        if !owners.contains_key(&g) {
            violations.push(Violation::NoOwner { granule: g });
        }
    }
    violations
}

/// Check that every view that has an entry for a granule agrees on its key
/// range (ranges are immutable; only ownership changes).
#[must_use]
pub fn check_range_agreement(views: &BTreeMap<NodeId, &GTablePartition>) -> Vec<Violation> {
    let mut ranges: BTreeMap<GranuleId, marlin_common::KeyRange> = BTreeMap::new();
    let mut violations = Vec::new();
    for view in views.values() {
        for (granule, meta) in view.scan() {
            match ranges.get(&granule) {
                None => {
                    ranges.insert(granule, meta.range);
                }
                Some(r) if *r == meta.range => {}
                Some(_) => violations.push(Violation::RangeMismatch { granule }),
            }
        }
    }
    violations
}

/// Convenience: assert I0 over views, panicking with a readable report.
///
/// # Panics
/// If any violation is found.
pub fn assert_exclusive_ownership(
    views: &BTreeMap<NodeId, &GTablePartition>,
    universe: &[GranuleId],
) {
    let violations = check_exclusive_ownership(views, universe);
    assert!(
        violations.is_empty(),
        "Exclusive Granule Ownership violated: {violations:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{GRecord, OwnershipSwap};
    use marlin_common::{KeyRange, Lsn, TableId, TxnId};

    fn install(g: u64, owner: u32) -> GRecord {
        GRecord::Install {
            table: TableId(0),
            granule: GranuleId(g),
            range: KeyRange::new(g * 10, (g + 1) * 10),
            owner: NodeId(owner),
        }
    }

    fn swap(g: u64, old: u32, new: u32) -> GRecord {
        GRecord::OnePhase {
            txn: TxnId(g),
            swaps: vec![OwnershipSwap {
                table: TableId(0),
                granule: GranuleId(g),
                range: KeyRange::new(g * 10, (g + 1) * 10),
                old: NodeId(old),
                new: NodeId(new),
            }],
        }
    }

    #[test]
    fn healthy_cluster_passes() {
        let mut p0 = GTablePartition::new();
        p0.apply(Lsn(1), &install(0, 0));
        let mut p1 = GTablePartition::new();
        p1.apply(Lsn(1), &install(1, 1));
        let views = BTreeMap::from([(NodeId(0), &p0), (NodeId(1), &p1)]);
        assert!(check_exclusive_ownership(&views, &[GranuleId(0), GranuleId(1)]).is_empty());
        assert!(check_range_agreement(&views).is_empty());
    }

    #[test]
    fn post_migration_forwarding_entries_do_not_trip_the_check() {
        // After G0 moves 0→1: node 0 keeps a forwarding entry (owner=1);
        // only node 1's own claim counts.
        let mut p0 = GTablePartition::new();
        p0.apply(Lsn(1), &install(0, 0));
        p0.apply(Lsn(2), &swap(0, 0, 1));
        let mut p1 = GTablePartition::new();
        p1.apply(Lsn(1), &swap(0, 0, 1));
        let views = BTreeMap::from([(NodeId(0), &p0), (NodeId(1), &p1)]);
        assert!(check_exclusive_ownership(&views, &[GranuleId(0)]).is_empty());
    }

    #[test]
    fn dual_ownership_is_detected() {
        let mut p0 = GTablePartition::new();
        p0.apply(Lsn(1), &install(0, 0));
        let mut p1 = GTablePartition::new();
        p1.apply(Lsn(1), &install(0, 1)); // corrupted: both claim G0
        let views = BTreeMap::from([(NodeId(0), &p0), (NodeId(1), &p1)]);
        let violations = check_exclusive_ownership(&views, &[GranuleId(0)]);
        assert_eq!(
            violations,
            vec![Violation::DualOwner {
                granule: GranuleId(0),
                a: NodeId(0),
                b: NodeId(1)
            }]
        );
    }

    #[test]
    fn missing_owner_is_detected() {
        let p0 = GTablePartition::new();
        let views = BTreeMap::from([(NodeId(0), &p0)]);
        let violations = check_exclusive_ownership(&views, &[GranuleId(5)]);
        assert_eq!(
            violations,
            vec![Violation::NoOwner {
                granule: GranuleId(5)
            }]
        );
    }

    #[test]
    fn range_disagreement_is_detected() {
        let mut p0 = GTablePartition::new();
        p0.apply(Lsn(1), &install(0, 0));
        let mut p1 = GTablePartition::new();
        p1.apply(
            Lsn(1),
            &GRecord::Install {
                table: TableId(0),
                granule: GranuleId(0),
                range: KeyRange::new(0, 999), // wrong range
                owner: NodeId(1),
            },
        );
        let views = BTreeMap::from([(NodeId(0), &p0), (NodeId(1), &p1)]);
        assert_eq!(
            check_range_agreement(&views),
            vec![Violation::RangeMismatch {
                granule: GranuleId(0)
            }]
        );
    }

    #[test]
    #[should_panic(expected = "Exclusive Granule Ownership violated")]
    fn assertion_panics_on_violation() {
        let views = BTreeMap::new();
        assert_exclusive_ownership(&views, &[GranuleId(0)]);
    }
}
