//! Ring-based heartbeat failure detection (§4.4.2).
//!
//! Without a centralized coordination service, Marlin detects failures in
//! a decentralized manner: "Compute nodes in MTable form a ring (sorted by
//! node ID) and each node periodically sends heartbeat messages to its k
//! successors in the ring. If a successor fails to respond after a
//! configurable number of attempts, the monitoring node assumes the
//! successor has failed and initiates a Failover procedure" (Orleans-style).
//!
//! The detector is pure: callers feed it clock ticks, membership views,
//! and ack events; it emits the heartbeats to send and the suspicions it
//! has formed. Both runners drive it.

use crate::mtable::MTable;
use marlin_common::NodeId;
use std::collections::BTreeMap;

/// Configuration of the ring detector.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// Number of ring successors each node monitors (`k`).
    pub fanout: usize,
    /// Consecutive missed heartbeats before suspecting a successor.
    pub miss_threshold: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            fanout: 2,
            miss_threshold: 3,
        }
    }
}

/// Per-monitored-node bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
struct Watch {
    outstanding: u32,
    suspected: bool,
}

/// The ring heartbeat detector for one node.
#[derive(Clone, Debug)]
pub struct RingDetector {
    me: NodeId,
    config: DetectorConfig,
    watches: BTreeMap<NodeId, Watch>,
}

impl RingDetector {
    /// A detector for node `me`.
    #[must_use]
    pub fn new(me: NodeId, config: DetectorConfig) -> Self {
        RingDetector {
            me,
            config,
            watches: BTreeMap::new(),
        }
    }

    /// Recompute the monitored set from the current membership. Call after
    /// every MTable refresh; nodes that left the ring are forgotten.
    pub fn update_membership(&mut self, mtable: &MTable) {
        let successors = mtable.ring_successors(self.me, self.config.fanout);
        self.watches.retain(|n, _| successors.contains(n));
        for s in successors {
            self.watches.entry(s).or_default();
        }
    }

    /// One heartbeat period elapsed: returns the targets to ping, after
    /// charging every watched node one outstanding beat. Nodes crossing
    /// the miss threshold are newly suspected (returned by
    /// [`Self::take_suspicions`]).
    pub fn tick(&mut self) -> Vec<NodeId> {
        let mut targets = Vec::with_capacity(self.watches.len());
        for (node, w) in &mut self.watches {
            w.outstanding += 1;
            if w.outstanding > self.config.miss_threshold {
                w.suspected = true;
            }
            targets.push(*node);
        }
        targets
    }

    /// A heartbeat ack arrived from `node`: clears its miss counter and any
    /// standing suspicion (the node was merely slow — the Figure 7 N3 case).
    pub fn ack(&mut self, node: NodeId) {
        if let Some(w) = self.watches.get_mut(&node) {
            w.outstanding = 0;
            w.suspected = false;
        }
    }

    /// Drain newly formed suspicions. Each suspected node is reported once;
    /// it is reported again only if it acks (recovers) and then goes silent
    /// past the threshold again.
    pub fn take_suspicions(&mut self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (node, w) in &mut self.watches {
            if w.suspected {
                w.suspected = false;
                // Freeze the counter so the node is not re-reported every
                // tick while it stays silent.
                w.outstanding = 0;
                out.push(*node);
            }
        }
        out
    }

    /// Nodes currently monitored by this detector.
    #[must_use]
    pub fn monitored(&self) -> Vec<NodeId> {
        self.watches.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::SysRecord;
    use marlin_common::Lsn;

    fn mtable(nodes: &[u32]) -> MTable {
        let mut m = MTable::new();
        for (i, n) in nodes.iter().enumerate() {
            m.apply(
                Lsn(i as u64 + 1),
                &SysRecord::AddNode {
                    node: NodeId(*n),
                    addr: String::new(),
                },
            );
        }
        m
    }

    fn detector(me: u32, nodes: &[u32]) -> RingDetector {
        let mut d = RingDetector::new(
            NodeId(me),
            DetectorConfig {
                fanout: 2,
                miss_threshold: 3,
            },
        );
        d.update_membership(&mtable(nodes));
        d
    }

    #[test]
    fn monitors_ring_successors() {
        let d = detector(1, &[1, 2, 3, 4]);
        assert_eq!(d.monitored(), vec![NodeId(2), NodeId(3)]);
        let d = detector(4, &[1, 2, 3, 4]);
        assert_eq!(d.monitored(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn acks_prevent_suspicion() {
        let mut d = detector(1, &[1, 2, 3]);
        for _ in 0..20 {
            let targets = d.tick();
            assert_eq!(targets, vec![NodeId(2), NodeId(3)]);
            d.ack(NodeId(2));
            d.ack(NodeId(3));
        }
        assert!(d.take_suspicions().is_empty());
    }

    #[test]
    fn silence_past_threshold_suspects() {
        let mut d = detector(1, &[1, 2, 3]);
        // N2 acks, N3 is silent.
        for _ in 0..3 {
            d.tick();
            d.ack(NodeId(2));
        }
        assert!(d.take_suspicions().is_empty(), "threshold not crossed yet");
        d.tick();
        d.ack(NodeId(2));
        assert_eq!(d.take_suspicions(), vec![NodeId(3)]);
    }

    #[test]
    fn suspicion_reported_once_until_recovery() {
        let mut d = detector(1, &[1, 2]);
        for _ in 0..10 {
            d.tick();
        }
        assert_eq!(d.take_suspicions(), vec![NodeId(2)]);
        // Still silent: not re-reported immediately.
        for _ in 0..2 {
            d.tick();
        }
        assert!(d.take_suspicions().is_empty());
        // Recovers, then goes silent again: re-reported.
        d.ack(NodeId(2));
        for _ in 0..4 {
            d.tick();
        }
        assert_eq!(d.take_suspicions(), vec![NodeId(2)]);
    }

    #[test]
    fn membership_change_drops_stale_watches() {
        let mut d = detector(1, &[1, 2, 3]);
        for _ in 0..2 {
            d.tick(); // N2 and N3 each owe 2 beats
        }
        // N3 is deleted from the cluster; N4 joins.
        d.update_membership(&mtable(&[1, 2, 4]));
        assert_eq!(d.monitored(), vec![NodeId(2), NodeId(4)]);
        // N4 starts with a clean slate.
        for _ in 0..2 {
            d.tick();
            d.ack(NodeId(2));
            d.ack(NodeId(4));
        }
        assert!(d.take_suspicions().is_empty());
    }

    #[test]
    fn single_node_cluster_monitors_nothing() {
        let mut d = detector(1, &[1]);
        assert!(d.tick().is_empty());
        assert!(d.take_suspicions().is_empty());
    }
}
