//! Per-node `H-LSN` tracking.
//!
//! "Each node maintains a `lsn_tracker` array to track the last committed
//! LSN H-LSN of each log in the cluster" (§4.3.2). The tracker is the input
//! to every conditional append: `Append(updates, tracker[log])` succeeds
//! only if nobody else has appended since this node last observed the log.
//! TryLog updates the tracker on both success (new LSN) and failure (the
//! log's actual current LSN, enabling a retry after cache refresh).

use marlin_common::{LogId, Lsn};
use std::collections::BTreeMap;

/// A node's map of last-observed LSNs, one entry per log it has touched.
#[derive(Clone, Debug, Default)]
pub struct LsnTracker {
    observed: BTreeMap<LogId, Lsn>,
}

impl LsnTracker {
    /// An empty tracker (all logs assumed at [`Lsn::ZERO`]).
    #[must_use]
    pub fn new() -> Self {
        LsnTracker::default()
    }

    /// The H-LSN for `log` (zero if never observed).
    #[must_use]
    pub fn get(&self, log: LogId) -> Lsn {
        self.observed.get(&log).copied().unwrap_or(Lsn::ZERO)
    }

    /// Record an observation of `log` at `lsn`.
    ///
    /// Observations are monotone: an older LSN never overwrites a newer
    /// one (a delayed response cannot roll the tracker back).
    pub fn observe(&mut self, log: LogId, lsn: Lsn) {
        let entry = self.observed.entry(log).or_insert(Lsn::ZERO);
        if lsn > *entry {
            *entry = lsn;
        }
    }

    /// Forget a log (e.g. a deleted node's GLog was garbage-collected).
    pub fn forget(&mut self, log: LogId) {
        self.observed.remove(&log);
    }

    /// Number of tracked logs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.observed.len()
    }

    /// Whether nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.observed.is_empty()
    }

    /// Iterate over `(log, lsn)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (LogId, Lsn)> + '_ {
        self.observed.iter().map(|(l, n)| (*l, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marlin_common::NodeId;
    use proptest::prelude::*;

    #[test]
    fn unobserved_logs_read_zero() {
        let t = LsnTracker::new();
        assert_eq!(t.get(LogId::SysLog), Lsn::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    fn observations_advance() {
        let mut t = LsnTracker::new();
        t.observe(LogId::SysLog, Lsn(3));
        assert_eq!(t.get(LogId::SysLog), Lsn(3));
        t.observe(LogId::SysLog, Lsn(5));
        assert_eq!(t.get(LogId::SysLog), Lsn(5));
    }

    #[test]
    fn stale_observations_do_not_roll_back() {
        let mut t = LsnTracker::new();
        t.observe(LogId::GLog(NodeId(1)), Lsn(10));
        t.observe(LogId::GLog(NodeId(1)), Lsn(4)); // delayed response
        assert_eq!(t.get(LogId::GLog(NodeId(1))), Lsn(10));
    }

    #[test]
    fn logs_are_tracked_independently() {
        let mut t = LsnTracker::new();
        t.observe(LogId::GLog(NodeId(1)), Lsn(1));
        t.observe(LogId::GLog(NodeId(2)), Lsn(2));
        t.observe(LogId::SysLog, Lsn(3));
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(LogId::GLog(NodeId(1))), Lsn(1));
        assert_eq!(t.get(LogId::GLog(NodeId(2))), Lsn(2));
    }

    #[test]
    fn forget_removes_entry() {
        let mut t = LsnTracker::new();
        t.observe(LogId::GLog(NodeId(1)), Lsn(9));
        t.forget(LogId::GLog(NodeId(1)));
        assert_eq!(t.get(LogId::GLog(NodeId(1))), Lsn::ZERO);
    }

    proptest! {
        /// The tracker equals the running maximum of observations per log.
        #[test]
        fn tracker_is_running_max(observations in proptest::collection::vec((0u32..4, 0u64..100), 0..200)) {
            let mut t = LsnTracker::new();
            let mut maxes = std::collections::BTreeMap::new();
            for (node, lsn) in observations {
                let log = LogId::GLog(NodeId(node));
                t.observe(log, Lsn(lsn));
                let e = maxes.entry(node).or_insert(0);
                *e = (*e).max(lsn);
            }
            for (node, expect) in maxes {
                prop_assert_eq!(t.get(LogId::GLog(NodeId(node))), Lsn(expect));
            }
        }
    }
}
