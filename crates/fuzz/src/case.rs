//! The plain-data fuzz case: every generation choice as a value.
//!
//! A [`FuzzCase`] is the *genotype* of one fuzzed run — small integers
//! and event lists, no trait objects — so it can be (a) built from a
//! seed, (b) serialized into a replayable repro artifact, (c) shrunk
//! field by field, and (d) lowered into the harness's [`Scenario`] for
//! execution. Everything the run does is a deterministic function of
//! this struct.

use marlin_autoscaler::ScaleAction;
use marlin_cluster::harness::{Fault, Scenario};
use marlin_cluster::params::{ClientEngine, CoordKind, CpuModel};
use marlin_cluster::sim::Workload;
use marlin_common::{NodeId, RegionId};
use marlin_sim::Nanos;
use marlin_workload::LoadTrace;

/// Nanoseconds per millisecond — the case stores times in ms to keep
/// repro files human-readable.
pub const MS: Nanos = 1_000_000;

/// Which execution backend the case runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunnerKind {
    /// The discrete-event `ClusterSim` (queueing, faults, churn).
    Sim,
    /// The synchronous `LocalCluster` (real reconfiguration
    /// transactions, I0–I4 checked after every step).
    Local,
}

/// Which scaling policy closes the loop, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Script-only run: the generated events are the whole schedule.
    None,
    /// Reactive thresholds with hysteresis between the node bounds.
    Reactive {
        /// Minimum live nodes.
        min: u32,
        /// Maximum live nodes.
        max: u32,
    },
    /// Forecast-driven proactive sizing between the node bounds.
    Predictive {
        /// Minimum live nodes.
        min: u32,
        /// Maximum live nodes.
        max: u32,
    },
}

/// One generated schedule entry (scripted action or fault).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FuzzEvent {
    /// Crash the node (no-op if dead/unknown — both runners guard).
    Crash {
        /// Victim node id.
        node: u32,
    },
    /// Scripted scale-out of `count` nodes.
    AddNodes {
        /// Nodes to add.
        count: u32,
    },
    /// Scripted scale-in of the listed nodes (guarded against emptying
    /// the membership).
    RemoveNodes {
        /// Victim node ids.
        nodes: Vec<u32>,
    },
    /// Region latency spike: every hop touching the region pays extra
    /// one-way latency for the duration.
    LatencySpike {
        /// Degraded region.
        region: u16,
        /// Extra one-way latency, ms.
        extra_ms: u64,
        /// Duration, ms.
        dur_ms: u64,
    },
    /// Region partition: cross-region hops to/from the region stall for
    /// the duration.
    Partition {
        /// Partitioned region.
        region: u16,
        /// Duration, ms.
        dur_ms: u64,
    },
    /// One-shot provisioning-lead jitter on the next scale-out order.
    LeadJitter {
        /// Extra lead, ms.
        extra_ms: u64,
    },
}

/// A scheduled [`FuzzEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Virtual time of the event, ms.
    pub at_ms: u64,
    /// The event.
    pub event: FuzzEvent,
}

/// Every generation choice of one fuzzed run.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// The seed the case was generated from (also the scenario seed).
    pub seed: u64,
    /// Execution backend.
    pub runner: RunnerKind,
    /// Coordination backend (always Marlin on the local runner).
    pub backend: CoordKind,
    /// CPU congestion model.
    pub cpu_model: CpuModel,
    /// Client engine (`Cohort` is parity-pinned to `Exact` below the
    /// activation threshold, so sampling it never forks the digest
    /// corpus — unless the pin breaks, which is the point).
    pub client_engine: ClientEngine,
    /// Whether granule heat may use the count-min sketch (also pinned:
    /// fuzz-scale granule counts sit below the sketch threshold).
    pub heat_sketch: bool,
    /// Scaling policy, if any.
    pub policy: PolicyKind,
    /// Granules the workload spans.
    pub granules: u64,
    /// Nodes at t=0.
    pub initial_nodes: u32,
    /// Migration worker threads per new/drained node.
    pub threads_per_node: u32,
    /// Placement regions (1, or 4 = the paper's geo deployment).
    pub regions: u16,
    /// End of virtual time, ms.
    pub horizon_ms: u64,
    /// Control-loop cadence, ms.
    pub control_interval_ms: u64,
    /// Observation window, ms.
    pub observe_window_ms: u64,
    /// Provisioning lead time, ms.
    pub provision_lead_ms: u64,
    /// Client-count trace: `(at_ms, clients)` steps.
    pub trace: Vec<(u64, u32)>,
    /// Per-region traces (empty, or one per region — geo cases only).
    pub region_traces: Vec<Vec<(u64, u32)>>,
    /// Membership churn stress: `(virtual members, period_ms)`.
    pub membership_stress: Option<(u32, u64)>,
    /// The fault/churn schedule, sorted by time.
    pub events: Vec<TimedEvent>,
}

fn trace_from(steps: &[(u64, u32)]) -> LoadTrace {
    LoadTrace::steps(steps.iter().map(|&(t, c)| (t * MS, c)).collect())
}

impl FuzzCase {
    /// Lower the case into the harness [`Scenario`] it describes. Pure:
    /// the same case always builds a byte-identical scenario (the
    /// determinism the replay/shrink cycle rests on).
    #[must_use]
    pub fn build_scenario(&self) -> Scenario {
        let mut s = Scenario::new(format!("fuzz-{}", self.seed))
            .backend(self.backend)
            .workload(Workload::ycsb(self.granules))
            .seed(self.seed)
            .cpu_model(self.cpu_model)
            .client_engine(self.client_engine)
            .heat_sketch(self.heat_sketch);
        if self.regions > 1 {
            s = s.geo();
        }
        s = s
            .initial_nodes(self.initial_nodes)
            .threads_per_node(self.threads_per_node)
            .control_interval(self.control_interval_ms * MS)
            .observe_window(self.observe_window_ms * MS)
            .provision_lead_time(self.provision_lead_ms * MS)
            .duration(self.horizon_ms * MS)
            .trace(trace_from(&self.trace));
        if !self.region_traces.is_empty() {
            s = s.region_traces(self.region_traces.iter().map(|t| trace_from(t)).collect());
        }
        if let Some((members, period_ms)) = self.membership_stress {
            s = s.membership_stress(members, period_ms * MS);
        }
        let policy = match self.policy {
            PolicyKind::None => None,
            PolicyKind::Reactive { min, max } => Some(s.reactive_policy(min, max)),
            PolicyKind::Predictive { min, max } => Some(s.predictive_policy(min, max)),
        };
        if let Some(p) = policy {
            s = s.policy(p);
        }
        let mut faults: Vec<(Nanos, Fault)> = Vec::new();
        for ev in &self.events {
            let at = ev.at_ms * MS;
            match &ev.event {
                FuzzEvent::Crash { node } => faults.push((at, Fault::Crash(NodeId(*node)))),
                FuzzEvent::AddNodes { count } => {
                    s = s.action(
                        at,
                        ScaleAction::AddNodes {
                            count: *count,
                            region: None,
                        },
                    );
                }
                FuzzEvent::RemoveNodes { nodes } => {
                    s = s.action(
                        at,
                        ScaleAction::RemoveNodes {
                            victims: nodes.iter().map(|&n| NodeId(n)).collect(),
                        },
                    );
                }
                FuzzEvent::LatencySpike {
                    region,
                    extra_ms,
                    dur_ms,
                } => faults.push((
                    at,
                    Fault::RegionLatencySpike {
                        region: RegionId(*region),
                        extra: extra_ms * MS,
                        until: at + dur_ms * MS,
                    },
                )),
                FuzzEvent::Partition { region, dur_ms } => faults.push((
                    at,
                    Fault::RegionPartition {
                        region: RegionId(*region),
                        until: at + dur_ms * MS,
                    },
                )),
                FuzzEvent::LeadJitter { extra_ms } => faults.push((
                    at,
                    Fault::ProvisionLeadJitter {
                        extra: extra_ms * MS,
                    },
                )),
            }
        }
        faults.sort_by_key(|&(t, _)| t);
        s.faults(faults)
    }

    // -- repro artifact -----------------------------------------------------

    /// Serialize the case into the line-oriented repro format: a header,
    /// `key=value` lines, and `#`-prefixed comment lines carrying the
    /// scenario manifest for humans. [`FuzzCase::from_repro`] round-trips
    /// it exactly.
    #[must_use]
    pub fn to_repro(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("marlin-fuzz-repro v1\n");
        out.push_str(&format!(
            "# manifest: {}\n",
            self.build_scenario().manifest_json()
        ));
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!(
            "runner={}\n",
            match self.runner {
                RunnerKind::Sim => "sim",
                RunnerKind::Local => "local",
            }
        ));
        out.push_str(&format!(
            "backend={}\n",
            match self.backend {
                CoordKind::Marlin => "marlin",
                CoordKind::ZkSmall => "zk-small",
                CoordKind::ZkLarge => "zk-large",
                CoordKind::Fdb => "fdb",
            }
        ));
        out.push_str(&format!(
            "cpu={}\n",
            match self.cpu_model {
                CpuModel::Analytic => "analytic",
                CpuModel::PerRequest => "per-request",
            }
        ));
        // Engine knobs are emitted only when non-default, so repros of
        // default cases stay byte-identical to the v1 format (and old
        // artifacts parse unchanged).
        if self.client_engine == ClientEngine::Cohort {
            out.push_str("engine=cohort\n");
        }
        if self.heat_sketch {
            out.push_str("sketch=on\n");
        }
        out.push_str(&format!(
            "policy={}\n",
            match self.policy {
                PolicyKind::None => "none".to_string(),
                PolicyKind::Reactive { min, max } => format!("reactive:{min}:{max}"),
                PolicyKind::Predictive { min, max } => format!("predictive:{min}:{max}"),
            }
        ));
        out.push_str(&format!("granules={}\n", self.granules));
        out.push_str(&format!("nodes={}\n", self.initial_nodes));
        out.push_str(&format!("threads={}\n", self.threads_per_node));
        out.push_str(&format!("regions={}\n", self.regions));
        out.push_str(&format!("horizon_ms={}\n", self.horizon_ms));
        out.push_str(&format!("control_ms={}\n", self.control_interval_ms));
        out.push_str(&format!("observe_ms={}\n", self.observe_window_ms));
        out.push_str(&format!("lead_ms={}\n", self.provision_lead_ms));
        if let Some((members, period_ms)) = self.membership_stress {
            out.push_str(&format!("membership={members}:{period_ms}\n"));
        }
        out.push_str(&format!("trace={}\n", fmt_steps(&self.trace)));
        for (r, t) in self.region_traces.iter().enumerate() {
            out.push_str(&format!("rtrace{r}={}\n", fmt_steps(t)));
        }
        for ev in &self.events {
            let body = match &ev.event {
                FuzzEvent::Crash { node } => format!("crash:{node}"),
                FuzzEvent::AddNodes { count } => format!("add:{count}"),
                FuzzEvent::RemoveNodes { nodes } => {
                    let ids: Vec<String> = nodes.iter().map(u32::to_string).collect();
                    format!("remove:{}", ids.join("+"))
                }
                FuzzEvent::LatencySpike {
                    region,
                    extra_ms,
                    dur_ms,
                } => format!("spike:{region}:{extra_ms}:{dur_ms}"),
                FuzzEvent::Partition { region, dur_ms } => {
                    format!("partition:{region}:{dur_ms}")
                }
                FuzzEvent::LeadJitter { extra_ms } => format!("lead:{extra_ms}"),
            };
            out.push_str(&format!("event={}:{body}\n", ev.at_ms));
        }
        out
    }

    /// Parse a repro artifact produced by [`FuzzCase::to_repro`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_repro(text: &str) -> Result<FuzzCase, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("marlin-fuzz-repro v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut case = FuzzCase {
            seed: 0,
            runner: RunnerKind::Sim,
            backend: CoordKind::Marlin,
            cpu_model: CpuModel::Analytic,
            client_engine: ClientEngine::Exact,
            heat_sketch: false,
            policy: PolicyKind::None,
            granules: 100,
            initial_nodes: 2,
            threads_per_node: 4,
            regions: 1,
            horizon_ms: 30_000,
            control_interval_ms: 1_000,
            observe_window_ms: 2_000,
            provision_lead_ms: 0,
            trace: vec![(0, 0)],
            region_traces: Vec::new(),
            membership_stress: None,
            events: Vec::new(),
        };
        let mut region_traces: Vec<(usize, Vec<(u64, u32)>)> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("not key=value: {line:?}"))?;
            match key {
                "seed" => case.seed = parse_u64(key, value)?,
                "runner" => {
                    case.runner = match value {
                        "sim" => RunnerKind::Sim,
                        "local" => RunnerKind::Local,
                        _ => return Err(format!("unknown runner {value:?}")),
                    }
                }
                "backend" => {
                    case.backend = match value {
                        "marlin" => CoordKind::Marlin,
                        "zk-small" => CoordKind::ZkSmall,
                        "zk-large" => CoordKind::ZkLarge,
                        "fdb" => CoordKind::Fdb,
                        _ => return Err(format!("unknown backend {value:?}")),
                    }
                }
                "cpu" => {
                    case.cpu_model = match value {
                        "analytic" => CpuModel::Analytic,
                        "per-request" => CpuModel::PerRequest,
                        _ => return Err(format!("unknown cpu model {value:?}")),
                    }
                }
                "engine" => {
                    case.client_engine = match value {
                        "exact" => ClientEngine::Exact,
                        "cohort" => ClientEngine::Cohort,
                        _ => return Err(format!("unknown client engine {value:?}")),
                    }
                }
                "sketch" => {
                    case.heat_sketch = match value {
                        "on" => true,
                        "off" => false,
                        _ => return Err(format!("bad sketch flag {value:?}")),
                    }
                }
                "policy" => {
                    case.policy = if value == "none" {
                        PolicyKind::None
                    } else {
                        let parts: Vec<&str> = value.split(':').collect();
                        if parts.len() != 3 {
                            return Err(format!("bad policy {value:?}"));
                        }
                        let min = parse_u64("policy min", parts[1])? as u32;
                        let max = parse_u64("policy max", parts[2])? as u32;
                        match parts[0] {
                            "reactive" => PolicyKind::Reactive { min, max },
                            "predictive" => PolicyKind::Predictive { min, max },
                            _ => return Err(format!("unknown policy {value:?}")),
                        }
                    }
                }
                "granules" => case.granules = parse_u64(key, value)?,
                "nodes" => case.initial_nodes = parse_u64(key, value)? as u32,
                "threads" => case.threads_per_node = parse_u64(key, value)? as u32,
                "regions" => case.regions = parse_u64(key, value)? as u16,
                "horizon_ms" => case.horizon_ms = parse_u64(key, value)?,
                "control_ms" => case.control_interval_ms = parse_u64(key, value)?,
                "observe_ms" => case.observe_window_ms = parse_u64(key, value)?,
                "lead_ms" => case.provision_lead_ms = parse_u64(key, value)?,
                "membership" => {
                    let (m, p) = value
                        .split_once(':')
                        .ok_or_else(|| format!("bad membership {value:?}"))?;
                    case.membership_stress =
                        Some((parse_u64("members", m)? as u32, parse_u64("period", p)?));
                }
                "trace" => case.trace = parse_steps(value)?,
                "event" => case.events.push(parse_event(value)?),
                _ if key.starts_with("rtrace") => {
                    let r: usize = key["rtrace".len()..]
                        .parse()
                        .map_err(|_| format!("bad region trace key {key:?}"))?;
                    region_traces.push((r, parse_steps(value)?));
                }
                _ => return Err(format!("unknown key {key:?}")),
            }
        }
        region_traces.sort_by_key(|&(r, _)| r);
        case.region_traces = region_traces.into_iter().map(|(_, t)| t).collect();
        Ok(case)
    }
}

fn fmt_steps(steps: &[(u64, u32)]) -> String {
    let cells: Vec<String> = steps.iter().map(|&(t, c)| format!("{t}:{c}")).collect();
    cells.join(",")
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("{key}: not a number: {value:?}"))
}

fn parse_steps(value: &str) -> Result<Vec<(u64, u32)>, String> {
    value
        .split(',')
        .map(|cell| {
            let (t, c) = cell
                .split_once(':')
                .ok_or_else(|| format!("bad trace step {cell:?}"))?;
            Ok((
                parse_u64("step time", t)?,
                parse_u64("step count", c)? as u32,
            ))
        })
        .collect()
}

fn parse_event(value: &str) -> Result<TimedEvent, String> {
    let (at, body) = value
        .split_once(':')
        .ok_or_else(|| format!("bad event {value:?}"))?;
    let at_ms = parse_u64("event time", at)?;
    let parts: Vec<&str> = body.split(':').collect();
    let event = match parts[0] {
        "crash" if parts.len() == 2 => FuzzEvent::Crash {
            node: parse_u64("crash node", parts[1])? as u32,
        },
        "add" if parts.len() == 2 => FuzzEvent::AddNodes {
            count: parse_u64("add count", parts[1])? as u32,
        },
        "remove" if parts.len() == 2 => FuzzEvent::RemoveNodes {
            nodes: parts[1]
                .split('+')
                .map(|n| Ok(parse_u64("remove node", n)? as u32))
                .collect::<Result<Vec<u32>, String>>()?,
        },
        "spike" if parts.len() == 4 => FuzzEvent::LatencySpike {
            region: parse_u64("spike region", parts[1])? as u16,
            extra_ms: parse_u64("spike extra", parts[2])?,
            dur_ms: parse_u64("spike duration", parts[3])?,
        },
        "partition" if parts.len() == 3 => FuzzEvent::Partition {
            region: parse_u64("partition region", parts[1])? as u16,
            dur_ms: parse_u64("partition duration", parts[2])?,
        },
        "lead" if parts.len() == 2 => FuzzEvent::LeadJitter {
            extra_ms: parse_u64("lead extra", parts[1])?,
        },
        _ => return Err(format!("unknown event {body:?}")),
    };
    Ok(TimedEvent { at_ms, event })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_case() -> FuzzCase {
        FuzzCase {
            seed: 99,
            runner: RunnerKind::Sim,
            backend: CoordKind::ZkSmall,
            cpu_model: CpuModel::PerRequest,
            client_engine: ClientEngine::Cohort,
            heat_sketch: true,
            policy: PolicyKind::Reactive { min: 2, max: 6 },
            granules: 300,
            initial_nodes: 3,
            threads_per_node: 4,
            regions: 4,
            horizon_ms: 25_000,
            control_interval_ms: 2_000,
            observe_window_ms: 4_000,
            provision_lead_ms: 3_000,
            trace: vec![(0, 20), (8_000, 60), (18_000, 20)],
            region_traces: vec![
                vec![(0, 10)],
                vec![(0, 10), (9_000, 40)],
                vec![(0, 10)],
                vec![(0, 10)],
            ],
            membership_stress: Some((8, 1_000)),
            events: vec![
                TimedEvent {
                    at_ms: 5_000,
                    event: FuzzEvent::Crash { node: 1 },
                },
                TimedEvent {
                    at_ms: 7_000,
                    event: FuzzEvent::LatencySpike {
                        region: 2,
                        extra_ms: 40,
                        dur_ms: 5_000,
                    },
                },
                TimedEvent {
                    at_ms: 9_000,
                    event: FuzzEvent::Partition {
                        region: 1,
                        dur_ms: 2_000,
                    },
                },
                TimedEvent {
                    at_ms: 11_000,
                    event: FuzzEvent::RemoveNodes { nodes: vec![2, 3] },
                },
                TimedEvent {
                    at_ms: 13_000,
                    event: FuzzEvent::LeadJitter { extra_ms: 4_000 },
                },
                TimedEvent {
                    at_ms: 15_000,
                    event: FuzzEvent::AddNodes { count: 2 },
                },
            ],
        }
    }

    #[test]
    fn repro_round_trips_exactly() {
        let case = sample_case();
        let text = case.to_repro();
        let parsed = FuzzCase::from_repro(&text).expect("parses");
        assert_eq!(parsed, case);
        // And serializing the parse is byte-identical.
        assert_eq!(parsed.to_repro(), text);
    }

    #[test]
    fn build_scenario_is_pure() {
        let case = sample_case();
        let a = case.build_scenario().manifest_json();
        let b = case.build_scenario().manifest_json();
        assert_eq!(a, b);
        assert!(a.contains("\"faults\""));
        assert!(a.contains("latency_spike"));
    }

    #[test]
    fn default_engine_knobs_are_omitted_from_the_repro() {
        let mut case = sample_case();
        case.client_engine = ClientEngine::Exact;
        case.heat_sketch = false;
        let text = case.to_repro();
        assert!(!text.contains("engine="), "default engine key emitted");
        assert!(!text.contains("sketch="), "default sketch key emitted");
        // A v1 artifact without the keys parses to the defaults.
        let parsed = FuzzCase::from_repro(&text).expect("parses");
        assert_eq!(parsed, case);
        // And non-default knobs round-trip through their keys.
        let cohort = sample_case();
        let text = cohort.to_repro();
        assert!(text.contains("engine=cohort\n"));
        assert!(text.contains("sketch=on\n"));
        assert_eq!(FuzzCase::from_repro(&text).expect("parses"), cohort);
    }

    #[test]
    fn malformed_repros_are_rejected() {
        assert!(FuzzCase::from_repro("").is_err());
        assert!(FuzzCase::from_repro("marlin-fuzz-repro v2\n").is_err());
        assert!(FuzzCase::from_repro("marlin-fuzz-repro v1\nseed=x\n").is_err());
        assert!(FuzzCase::from_repro("marlin-fuzz-repro v1\nevent=5:warp:1\n").is_err());
    }
}
