//! Deterministic scenario fuzzer for the Marlin reproduction.
//!
//! FoundationDB-style simulation testing: from a single `u64` seed,
//! [`generate`] samples a complete randomized [`FuzzCase`] — composite
//! load traces, fault schedules (crashes, region latency spikes and
//! partitions, provisioning-lead jitter), membership churn, and a
//! policy/CPU-model/backend configuration — which lowers into the
//! harness [`Scenario`](marlin_cluster::harness::Scenario) and runs
//! with every invariant armed. A violation triggers automatic
//! shrinking ([`shrink_case`]) and yields a replayable repro artifact
//! ([`FuzzCase::to_repro`]) that reproduces the identical decision log
//! byte for byte.
//!
//! The pipeline is pure end to end: seed → case → scenario → report
//! digest involves no wall clock, no ambient randomness, and no
//! thread-order dependence, so `swarm` results are stable across
//! machines and a failing seed from CI replays locally unchanged.
//!
//! Entry points:
//!
//! - [`generate`]`(seed, scale)` — seed to case, pure.
//! - [`run_case`] — execute one case, collect violations.
//! - [`fuzz_seed`] — generate + run + shrink + package, one seed.
//! - [`swarm()`] — fan a seed list over threads (`examples/fuzz_swarm.rs`
//!   wires this to `MARLIN_FUZZ_SEEDS` / `MARLIN_FUZZ_REPRO`).
//! - [`FuzzCase::from_repro`] — parse an artifact for replay.

#![warn(missing_docs)]

pub mod case;
pub mod gen;
pub mod shrink;
pub mod swarm;

pub use case::{FuzzCase, FuzzEvent, PolicyKind, RunnerKind, TimedEvent};
pub use gen::generate;
pub use shrink::{shrink_case, ShrinkOutcome};
pub use swarm::{
    fuzz_seed, report_digest, run_case, swarm, CaseOutcome, Failure, FuzzConfig, Oracle,
    SwarmOutcome,
};
