//! Case execution, oracles, and the multi-threaded swarm driver.
//!
//! One fuzz iteration is: [`crate::gen::generate`] a case from a seed,
//! [`run_case`] it through the harness with every invariant armed,
//! and — on a violation — [`crate::shrink::shrink_case`] it down and
//! package a replayable repro artifact. [`swarm`] fans a seed list over
//! OS threads; because every per-seed step is a pure function of the
//! seed, the thread count and interleaving cannot change any result,
//! only the wall-clock time.

use crate::case::{FuzzCase, RunnerKind};
use crate::gen::generate;
use crate::shrink::shrink_case;
use marlin_cluster::harness::{run, LocalRunner, RunReport, SimRunner};

/// A property checked against a finished run: returns one message per
/// violated expectation (empty = pass). Runs in addition to the
/// built-in structural checks and, on the local runner, the I2–I4
/// ownership invariants.
pub type Oracle = dyn Fn(&FuzzCase, &RunReport) -> Vec<String> + Sync;

/// Knobs for a fuzz run.
#[derive(Clone, Copy)]
pub struct FuzzConfig<'a> {
    /// Cost divisor applied during generation (`MARLIN_SCALE` semantics).
    pub scale: u64,
    /// Maximum scenario re-runs the shrinker may spend per failure.
    pub shrink_budget: u64,
    /// Extra property to check on every run, if any.
    pub oracle: Option<&'a Oracle>,
}

impl Default for FuzzConfig<'_> {
    fn default() -> Self {
        FuzzConfig {
            scale: 1,
            shrink_budget: 400,
            oracle: None,
        }
    }
}

/// Result of executing one case.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Order-insensitive digest of the (actuation-time-stripped) report.
    pub digest: u64,
    /// Violation messages (invariants + oracle); empty = clean run.
    pub violations: Vec<String>,
}

/// A confirmed, shrunk failure.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Violations observed on the *original* generated case.
    pub violations: Vec<String>,
    /// The minimal still-failing case.
    pub shrunk: FuzzCase,
    /// Replayable artifact for the shrunk case (`fuzz replay` input).
    pub repro: String,
    /// Report digest of the shrunk case's run (replay must match it).
    pub digest: u64,
}

/// Everything the swarm learned about one seed.
#[derive(Clone, Debug)]
pub struct SwarmOutcome {
    /// The seed.
    pub seed: u64,
    /// Digest of the generated case's run.
    pub digest: u64,
    /// The shrunk failure, if the run violated anything.
    pub failure: Option<Failure>,
}

/// FNV-1a over the report JSON with per-decision wall-clock actuation
/// times zeroed — the same strip the determinism tests use, so the
/// digest is identical across machines and runs.
#[must_use]
pub fn report_digest(report: &RunReport) -> u64 {
    let mut stripped = report.clone();
    for record in &mut stripped.log {
        record.actuation_micros = 0;
    }
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in stripped.to_json().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Structural expectations that must hold for *any* scenario the
/// generator can produce. Deliberately weak — e.g. `live_nodes ≥ 1`
/// rather than an exact count, because scripted removes and crashes
/// legitimately reshape the membership — so a reported violation is a
/// real bug, not an oracle false positive.
fn builtin_oracle(report: &RunReport) -> Vec<String> {
    let mut out = Vec::new();
    let m = &report.metrics;
    if m.live_nodes == 0 {
        out.push("membership emptied: live_nodes == 0 at end of run".to_string());
    }
    if !(0.0..=1.0).contains(&m.abort_ratio) {
        out.push(format!("abort_ratio out of [0,1]: {}", m.abort_ratio));
    }
    if m.mean_latency < 0.0 {
        out.push(format!("negative mean latency: {}", m.mean_latency));
    }
    out
}

/// Execute one case and collect every violation.
#[must_use]
pub fn run_case(case: &FuzzCase, oracle: Option<&Oracle>) -> CaseOutcome {
    let scenario = case.build_scenario();
    let (report, mut violations) = match case.runner {
        RunnerKind::Sim => {
            let mut runner = SimRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            (report, Vec::new())
        }
        RunnerKind::Local => {
            let mut runner = LocalRunner::new(&scenario);
            let report = run(scenario, &mut runner);
            let violations = runner
                .violations()
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            (report, violations)
        }
    };
    violations.extend(builtin_oracle(&report));
    if let Some(oracle) = oracle {
        violations.extend(oracle(case, &report));
    }
    CaseOutcome {
        digest: report_digest(&report),
        violations,
    }
}

/// Run one seed end to end: generate, execute, and — on violation —
/// shrink and package a repro artifact.
#[must_use]
pub fn fuzz_seed(seed: u64, cfg: &FuzzConfig) -> SwarmOutcome {
    let case = generate(seed, cfg.scale);
    let outcome = run_case(&case, cfg.oracle);
    if outcome.violations.is_empty() {
        return SwarmOutcome {
            seed,
            digest: outcome.digest,
            failure: None,
        };
    }
    let shrunk = shrink_case(
        &case,
        |candidate| !run_case(candidate, cfg.oracle).violations.is_empty(),
        cfg.shrink_budget,
    );
    let digest = run_case(&shrunk.case, cfg.oracle).digest;
    let repro = shrunk.case.to_repro();
    SwarmOutcome {
        seed,
        digest: outcome.digest,
        failure: Some(Failure {
            violations: outcome.violations,
            shrunk: shrunk.case,
            repro,
            digest,
        }),
    }
}

/// Fan `seeds` across OS threads and return one [`SwarmOutcome`] per
/// seed, in input order. Deterministic by construction: each outcome
/// depends only on its seed and `cfg`, so the partitioning is purely a
/// wall-clock optimization.
#[must_use]
pub fn swarm(seeds: &[u64], cfg: &FuzzConfig) -> Vec<SwarmOutcome> {
    if seeds.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(seeds.len());
    let chunk = seeds.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|part| {
                scope.spawn(move || part.iter().map(|&s| fuzz_seed(s, cfg)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("fuzz worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> FuzzConfig<'static> {
        FuzzConfig {
            scale: 20,
            shrink_budget: 50,
            oracle: None,
        }
    }

    #[test]
    fn same_seed_same_digest() {
        let cfg = quick_cfg();
        let a = fuzz_seed(3, &cfg);
        let b = fuzz_seed(3, &cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.failure.is_some(), b.failure.is_some());
    }

    #[test]
    fn swarm_order_matches_seed_order() {
        let cfg = quick_cfg();
        let seeds = [5u64, 1, 9, 2];
        let outcomes = swarm(&seeds, &cfg);
        let got: Vec<u64> = outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(got, seeds);
        // And each slot matches a sequential run of that seed.
        for o in &outcomes {
            assert_eq!(o.digest, fuzz_seed(o.seed, &cfg).digest);
        }
    }

    #[test]
    fn oracle_failures_shrink_and_replay() {
        // Plant an oracle that trips whenever the case carries any
        // schedule event — every failing seed must shrink to one event
        // and its repro must round-trip to the same digest.
        let oracle = |case: &FuzzCase, _: &RunReport| -> Vec<String> {
            if case.events.is_empty() {
                Vec::new()
            } else {
                vec!["planted".to_string()]
            }
        };
        let cfg = FuzzConfig {
            scale: 20,
            shrink_budget: 200,
            oracle: Some(&oracle),
        };
        let seed = (0..100)
            .find(|&s| !generate(s, cfg.scale).events.is_empty())
            .expect("some seed has events");
        let outcome = fuzz_seed(seed, &cfg);
        let failure = outcome.failure.expect("planted oracle fired");
        assert_eq!(failure.shrunk.events.len(), 1);
        let replayed = FuzzCase::from_repro(&failure.repro).expect("repro parses");
        assert_eq!(run_case(&replayed, cfg.oracle).digest, failure.digest);
    }
}
