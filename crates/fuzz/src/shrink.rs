//! Automatic shrinking of failing fuzz cases.
//!
//! Given a [`FuzzCase`] that violates an invariant and a predicate that
//! re-runs a candidate and reports whether it *still* fails,
//! [`shrink_case`] walks a fixed sequence of deterministic reduction
//! passes — drop schedule events (ddmin), shorten the horizon, reduce
//! node and granule counts, flatten the load — re-running after every
//! candidate and keeping the smallest case that still reproduces the
//! violation. The passes loop to a fixpoint (or until the run budget is
//! spent), so the artifact handed to a human is minimal with respect to
//! every pass, not just the first.

use crate::case::FuzzCase;
use proptest::shrink::{halves_toward, list_candidates};

/// Outcome of a shrink search.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    /// The smallest still-failing case found.
    pub case: FuzzCase,
    /// Candidate re-runs spent (each one is a full scenario run).
    pub runs: u64,
}

/// Shrink `case` while `still_fails` keeps returning `true` for
/// candidates, spending at most `max_runs` re-runs.
///
/// The input case is assumed to fail (callers observed a violation);
/// it is returned unchanged if no smaller candidate still fails.
pub fn shrink_case(
    case: &FuzzCase,
    mut still_fails: impl FnMut(&FuzzCase) -> bool,
    max_runs: u64,
) -> ShrinkOutcome {
    let mut best = case.clone();
    let mut runs = 0u64;
    // Loop passes to a fixpoint: a later pass (e.g. fewer nodes) can
    // unlock an earlier one (e.g. another event becomes droppable).
    loop {
        let mut improved = false;
        for pass in [
            Pass::Events,
            Pass::Horizon,
            Pass::Nodes,
            Pass::Granules,
            Pass::Load,
        ] {
            while let Some(smaller) = try_pass(pass, &best, &mut still_fails, &mut runs, max_runs) {
                best = smaller;
                improved = true;
            }
            if runs >= max_runs {
                return ShrinkOutcome { case: best, runs };
            }
        }
        if !improved {
            return ShrinkOutcome { case: best, runs };
        }
    }
}

#[derive(Clone, Copy)]
enum Pass {
    Events,
    Horizon,
    Nodes,
    Granules,
    Load,
}

/// Run one reduction pass: emit candidates in decreasing aggressiveness
/// and return the first that still fails, or `None` if the pass is
/// exhausted at the current case.
fn try_pass(
    pass: Pass,
    case: &FuzzCase,
    still_fails: &mut impl FnMut(&FuzzCase) -> bool,
    runs: &mut u64,
    max_runs: u64,
) -> Option<FuzzCase> {
    let candidates: Vec<FuzzCase> = match pass {
        Pass::Events => list_candidates(&case.events)
            .into_iter()
            .map(|events| FuzzCase {
                events,
                ..case.clone()
            })
            .collect(),
        Pass::Horizon => halves_toward(case.horizon_ms, 5_000)
            .into_iter()
            .map(|horizon_ms| {
                let mut c = case.clone();
                c.horizon_ms = horizon_ms;
                // Keep the case well-formed: drop schedule entries and
                // trace steps the shorter horizon can no longer reach.
                c.events.retain(|e| e.at_ms + 1_000 <= horizon_ms);
                c.trace.retain(|&(t, _)| t < horizon_ms);
                for t in &mut c.region_traces {
                    t.retain(|&(at, _)| at < horizon_ms);
                }
                c
            })
            .collect(),
        Pass::Nodes => halves_toward(u64::from(case.initial_nodes), 2)
            .into_iter()
            .map(|n| {
                let mut c = case.clone();
                c.initial_nodes = n as u32;
                c
            })
            .collect(),
        Pass::Granules => halves_toward(case.granules, 24)
            .into_iter()
            .map(|granules| FuzzCase {
                granules,
                ..case.clone()
            })
            .collect(),
        Pass::Load => {
            // One candidate: halve every step's client count (floor 1).
            let halve = |steps: &[(u64, u32)]| -> Vec<(u64, u32)> {
                steps.iter().map(|&(t, c)| (t, (c / 2).max(1))).collect()
            };
            let c = FuzzCase {
                trace: halve(&case.trace),
                region_traces: case.region_traces.iter().map(|t| halve(t)).collect(),
                ..case.clone()
            };
            if c == *case {
                Vec::new()
            } else {
                vec![c]
            }
        }
    };
    for candidate in candidates {
        if *runs >= max_runs {
            return None;
        }
        *runs += 1;
        if still_fails(&candidate) {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// An oracle that "fails" iff the case still contains a Crash event —
    /// shrinking must strip everything else away.
    #[test]
    fn shrinks_to_the_single_triggering_event() {
        let case = (0..500)
            .map(|s| generate(s, 10))
            .find(|c| {
                c.events.len() >= 4
                    && c.events
                        .iter()
                        .any(|e| matches!(e.event, crate::case::FuzzEvent::Crash { .. }))
            })
            .expect("some generated case has a crash among several events");
        let fails = |c: &FuzzCase| {
            c.events
                .iter()
                .any(|e| matches!(e.event, crate::case::FuzzEvent::Crash { .. }))
        };
        let outcome = shrink_case(&case, fails, 10_000);
        assert!(fails(&outcome.case), "shrunk case must still fail");
        assert_eq!(outcome.case.events.len(), 1, "only the crash survives");
        assert!(outcome.case.horizon_ms <= case.horizon_ms);
        assert!(outcome.case.initial_nodes <= case.initial_nodes);
        assert!(outcome.runs > 0);
    }

    #[test]
    fn shrinking_is_deterministic() {
        let case = generate(7, 10);
        let fails = |c: &FuzzCase| !c.events.is_empty();
        if !fails(&case) {
            return; // nothing to shrink for this seed; covered elsewhere
        }
        let a = shrink_case(&case, fails, 1_000);
        let b = shrink_case(&case, fails, 1_000);
        assert_eq!(a.case, b.case);
        assert_eq!(a.runs, b.runs);
    }

    #[test]
    fn budget_bounds_the_search() {
        let case = generate(11, 10);
        let outcome = shrink_case(&case, |_| false, 3);
        assert!(outcome.runs <= 3);
        assert_eq!(outcome.case, case, "nothing adopted when nothing fails");
    }
}
