//! Seed → [`FuzzCase`] generation.
//!
//! [`generate`] is a pure function of `(seed, scale)`: it forks three
//! labeled [`DetRng`] streams (configuration, load trace, event
//! schedule) so that the sampled dimensions stay decorrelated, and
//! never consults ambient state. The same inputs always yield the same
//! case — that is what makes `MARLIN_FUZZ_SEEDS` swarm runs replayable
//! from nothing but a seed list.

use crate::case::{FuzzCase, FuzzEvent, PolicyKind, RunnerKind, TimedEvent};
use marlin_cluster::params::{ClientEngine, CoordKind, CpuModel};
use marlin_sim::DetRng;

/// Fork labels for the independent generation streams. Distinct
/// constants so adding draws to one dimension never perturbs another.
const FORK_CONFIG: u64 = 9001;
const FORK_TRACE: u64 = 9002;
const FORK_EVENTS: u64 = 9003;
/// Scale-engine knobs (client engine, heat sketch) — a separate stream
/// so sampling them leaves every pre-existing seed's case unchanged.
const FORK_ENGINE: u64 = 9004;

/// Generate the deterministic [`FuzzCase`] for `seed`.
///
/// `scale` divides client counts and granule counts (floor applied) the
/// same way `MARLIN_SCALE` shrinks the repo's benchmarks: scale 10 makes
/// each case roughly an order of magnitude cheaper while keeping the
/// schedule shape. It must be ≥ 1 (0 is treated as 1).
#[must_use]
pub fn generate(seed: u64, scale: u64) -> FuzzCase {
    let scale = scale.max(1);
    let root = DetRng::seed(seed);
    let mut cfg = root.fork(FORK_CONFIG);
    let mut trc = root.fork(FORK_TRACE);
    let mut evr = root.fork(FORK_EVENTS);
    let mut eng = root.fork(FORK_ENGINE);

    // --- configuration ----------------------------------------------------
    let local = cfg.chance(0.25);
    let (runner, backend, cpu_model, regions) = if local {
        // The local runner only supports the Marlin backend, runs real
        // reconfiguration transactions, and has no region model.
        (RunnerKind::Local, CoordKind::Marlin, CpuModel::Analytic, 1)
    } else {
        let backend = *cfg.pick(&[
            CoordKind::Marlin,
            CoordKind::Marlin,
            CoordKind::ZkSmall,
            CoordKind::ZkLarge,
            CoordKind::Fdb,
        ]);
        let cpu = if cfg.chance(0.3) {
            CpuModel::PerRequest
        } else {
            CpuModel::Analytic
        };
        let regions = if cfg.chance(0.3) { 4 } else { 1 };
        (RunnerKind::Sim, backend, cpu, regions)
    };
    // Engine knobs, sampled for sim cases only (the local runner has no
    // `ClusterSim`). Fuzz-scale client and granule counts sit below both
    // activation thresholds, so either sample is parity-pinned to the
    // exact path — the swarm's digest oracle exists to notice if not.
    let (client_engine, heat_sketch) = if runner == RunnerKind::Sim {
        let engine = if eng.chance(0.5) {
            ClientEngine::Cohort
        } else {
            ClientEngine::Exact
        };
        (engine, eng.chance(0.5))
    } else {
        (ClientEngine::Exact, false)
    };
    let granules = (cfg.range(48, 257) / scale).max(24);
    let initial_nodes = cfg.range(2, 5) as u32;
    let threads_per_node = *cfg.pick(&[2u32, 4, 8]);
    let horizon_ms = cfg.range(20_000, 60_001);
    let control_interval_ms = *cfg.pick(&[1_000u64, 2_000, 2_500, 5_000]);
    let observe_window_ms = control_interval_ms * 2;
    let provision_lead_ms = if cfg.chance(0.3) {
        cfg.range(2_000, 10_001)
    } else {
        0
    };
    let policy = {
        let max = initial_nodes + cfg.range(2, 7) as u32;
        let roll = cfg.unit();
        if roll < 0.2 {
            PolicyKind::None
        } else if roll < 0.8 {
            PolicyKind::Reactive {
                min: initial_nodes.min(2),
                max,
            }
        } else {
            PolicyKind::Predictive {
                min: initial_nodes.min(2),
                max,
            }
        }
    };
    let membership_stress = if runner == RunnerKind::Sim && cfg.chance(0.2) {
        Some((
            initial_nodes + cfg.range(2, 9) as u32,
            *cfg.pick(&[500u64, 1_000, 2_000]),
        ))
    } else {
        None
    };

    // --- load trace -------------------------------------------------------
    let clients = |r: &mut DetRng, lo: u64, hi: u64| -> u32 {
        (r.range(lo, hi) / scale).clamp(4, (200 / scale).max(4)) as u32
    };
    let trace = gen_trace(&mut trc, horizon_ms, &clients);
    let region_traces = if regions > 1 {
        (0..regions)
            .map(|_| gen_trace(&mut trc, horizon_ms, &clients))
            .collect()
    } else {
        Vec::new()
    };

    // --- fault/churn schedule ---------------------------------------------
    let mut events = Vec::new();
    if horizon_ms > 2_000 {
        for _ in 0..evr.range(0, 9) {
            let at_ms = evr.range(1_000, horizon_ms - 1_000);
            let event = match evr.range(0, 6) {
                0 => FuzzEvent::Crash {
                    node: evr.range(0, u64::from(initial_nodes) + 2) as u32,
                },
                1 => FuzzEvent::AddNodes {
                    count: evr.range(1, 4) as u32,
                },
                2 => FuzzEvent::RemoveNodes {
                    nodes: (0..evr.range(1, 3))
                        .map(|_| evr.range(0, u64::from(initial_nodes) + 4) as u32)
                        .collect(),
                },
                3 => FuzzEvent::LeadJitter {
                    extra_ms: evr.range(1_000, 8_001),
                },
                4 if regions > 1 => FuzzEvent::Partition {
                    region: evr.range(0, u64::from(regions)) as u16,
                    dur_ms: evr.range(1_000, 6_001),
                },
                _ => FuzzEvent::LatencySpike {
                    region: evr.range(0, u64::from(regions)) as u16,
                    extra_ms: evr.range(10, 121),
                    dur_ms: evr.range(1_000, 8_001),
                },
            };
            events.push(TimedEvent { at_ms, event });
        }
    }
    events.sort_by_key(|e| e.at_ms);

    FuzzCase {
        seed,
        runner,
        backend,
        cpu_model,
        client_engine,
        heat_sketch,
        policy,
        granules,
        initial_nodes,
        threads_per_node,
        regions,
        horizon_ms,
        control_interval_ms,
        observe_window_ms,
        provision_lead_ms,
        trace,
        region_traces,
        membership_stress,
        events,
    }
}

/// Sample a stepped client trace: a base load plus 1–4 shifts (spikes,
/// drops, ramps) at random times inside the horizon.
fn gen_trace(
    rng: &mut DetRng,
    horizon_ms: u64,
    clients: &impl Fn(&mut DetRng, u64, u64) -> u32,
) -> Vec<(u64, u32)> {
    let base = clients(rng, 8, 60);
    let mut steps = vec![(0u64, base)];
    for _ in 0..rng.range(1, 5) {
        let at = rng.range(1, horizon_ms.max(2));
        let level = if rng.chance(0.5) {
            // Spike: multiply the base.
            clients(rng, u64::from(base) * 2, u64::from(base) * 6 + 1)
        } else {
            clients(rng, 4, u64::from(base).max(5))
        };
        steps.push((at, level));
    }
    steps.sort_by_key(|&(t, _)| t);
    steps.dedup_by_key(|&mut (t, _)| t);
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            let a = generate(seed, 10);
            let b = generate(seed, 10);
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn seeds_explore_the_space() {
        let cases: Vec<FuzzCase> = (0..200).map(|s| generate(s, 10)).collect();
        assert!(cases.iter().any(|c| c.runner == RunnerKind::Local));
        assert!(cases.iter().any(|c| c.runner == RunnerKind::Sim));
        assert!(cases.iter().any(|c| c.regions > 1));
        assert!(cases.iter().any(|c| c.policy == PolicyKind::None));
        assert!(cases
            .iter()
            .any(|c| matches!(c.policy, PolicyKind::Predictive { .. })));
        assert!(cases.iter().any(|c| !c.events.is_empty()));
        assert!(cases.iter().any(|c| c.membership_stress.is_some()));
        assert!(cases
            .iter()
            .any(|c| c.client_engine == ClientEngine::Cohort));
        assert!(cases.iter().any(|c| c.client_engine == ClientEngine::Exact));
        assert!(cases.iter().any(|c| c.heat_sketch));
        assert!(cases.iter().any(|c| !c.heat_sketch));
        assert!(cases.iter().any(|c| c
            .events
            .iter()
            .any(|e| matches!(e.event, FuzzEvent::Partition { .. }))));
    }

    #[test]
    fn local_cases_stay_on_supported_config() {
        for seed in 0..300 {
            let c = generate(seed, 10);
            if c.runner == RunnerKind::Local {
                assert_eq!(c.backend, CoordKind::Marlin);
                assert_eq!(c.regions, 1);
                assert_eq!(c.client_engine, ClientEngine::Exact);
                assert!(!c.heat_sketch);
            }
        }
    }

    #[test]
    fn the_default_swarm_sweep_samples_both_engines() {
        // The CI swarm runs 64 seeds; that window alone must exercise
        // both client engines and both sketch settings.
        let cases: Vec<FuzzCase> = (0..64).map(|s| generate(s, 10)).collect();
        assert!(cases
            .iter()
            .any(|c| c.client_engine == ClientEngine::Cohort));
        assert!(cases.iter().any(|c| c.client_engine == ClientEngine::Exact));
        assert!(cases.iter().any(|c| c.heat_sketch));
        assert!(cases.iter().any(|c| !c.heat_sketch));
    }

    #[test]
    fn events_fit_inside_the_horizon() {
        for seed in 0..200 {
            let c = generate(seed, 10);
            for ev in &c.events {
                assert!(ev.at_ms >= 1_000 && ev.at_ms < c.horizon_ms);
            }
        }
    }
}
