//! Strongly typed identifiers used throughout the workspace.
//!
//! Each identifier is a transparent newtype over an integer so that mixing
//! up, say, a [`NodeId`] and a [`GranuleId`] is a compile error rather than
//! a data-corruption bug. All IDs are `Copy`, ordered, and hashable so they
//! can serve as map keys in protocol state.

use std::fmt;

/// Identifier of a compute node in the cluster.
///
/// Node IDs are assigned once at provisioning time and never reused; the
/// ring-based failure detector (paper §4.4.2) sorts the membership by
/// `NodeId` to derive heartbeat successors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Identifier of a data granule — the paper's unit of data ownership and
/// migration (64 KB fine-grained partitions, §4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GranuleId(pub u64);

/// Identifier of a user or system table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TableId(pub u32);

/// Globally unique transaction identifier.
///
/// The high 32 bits carry the originating node (or client), the low 32 bits
/// a per-origin sequence number, so IDs can be minted without coordination.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Mint a transaction ID from an origin node and a local sequence number.
    #[must_use]
    pub fn new(origin: NodeId, seq: u32) -> Self {
        TxnId((u64::from(origin.0) << 32) | u64::from(seq))
    }

    /// The node (or client) that originated this transaction.
    #[must_use]
    pub fn origin(self) -> NodeId {
        NodeId((self.0 >> 32) as u32)
    }

    /// The per-origin sequence number.
    #[must_use]
    pub fn seq(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }
}

/// Identifier of a closed-loop client in the evaluation harness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClientId(pub u32);

/// Identifier of a deployment region (geo-distributed experiments, §6.5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(pub u16);

/// Identifier of a page in the disaggregated page store.
///
/// Pages are addressed by `(table, granule, index-within-granule)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId {
    pub table: TableId,
    pub granule: GranuleId,
    pub index: u32,
}

/// Log sequence number: the version of a shared log.
///
/// `Lsn(n)` means "n records have been appended"; a fresh log has
/// [`Lsn::ZERO`]. The conditional append API (`Append@LSN`, paper §4.3.1)
/// succeeds only if the log's current LSN equals the caller's expected LSN.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The LSN of an empty log.
    pub const ZERO: Lsn = Lsn(0);

    /// The LSN after appending `records` more records at `self`.
    #[must_use]
    pub fn advance(self, records: u64) -> Lsn {
        Lsn(self.0 + records)
    }

    /// The next LSN (one more record appended).
    #[must_use]
    pub fn next(self) -> Lsn {
        self.advance(1)
    }
}

/// Identity of a log instance in the disaggregated storage layer.
///
/// The paper distinguishes three kinds of logs (§4.1, Figure 5):
/// - the single, unowned **SysLog** recording MTable (membership) changes;
/// - one **GLog** per node recording that node's GTable partition changes;
/// - one **data WAL** per node recording user-table updates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LogId {
    /// The global membership log. No exclusive owner; all nodes may append.
    SysLog,
    /// The GTable log of the given node's metadata partition.
    GLog(NodeId),
    /// The data write-ahead log of the given node.
    DataWal(NodeId),
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Debug for GranuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl fmt::Display for GranuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txn({}:{})", self.origin(), self.seq())
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P({:?}/{:?}/{})", self.table, self.granule, self.index)
    }
}

impl fmt::Debug for LogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogId::SysLog => write!(f, "SysLog"),
            LogId::GLog(n) => write!(f, "GLog({n})"),
            LogId::DataWal(n) => write!(f, "DataWal({n})"),
        }
    }
}

impl fmt::Display for LogId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_round_trips_origin_and_seq() {
        let id = TxnId::new(NodeId(7), 42);
        assert_eq!(id.origin(), NodeId(7));
        assert_eq!(id.seq(), 42);
    }

    #[test]
    fn txn_id_ordering_is_origin_major() {
        let a = TxnId::new(NodeId(1), u32::MAX);
        let b = TxnId::new(NodeId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn lsn_advance_and_next() {
        assert_eq!(Lsn::ZERO.next(), Lsn(1));
        assert_eq!(Lsn(5).advance(3), Lsn(8));
        assert!(Lsn(2) < Lsn(10));
    }

    #[test]
    fn log_id_display_names() {
        assert_eq!(LogId::SysLog.to_string(), "SysLog");
        assert_eq!(LogId::GLog(NodeId(3)).to_string(), "GLog(N3)");
        assert_eq!(LogId::DataWal(NodeId(1)).to_string(), "DataWal(N1)");
    }

    #[test]
    fn ids_are_usable_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<LogId, Lsn> = BTreeMap::new();
        m.insert(LogId::SysLog, Lsn(1));
        m.insert(LogId::GLog(NodeId(0)), Lsn(2));
        assert_eq!(m.len(), 2);
        assert_eq!(m[&LogId::SysLog], Lsn(1));
    }
}
