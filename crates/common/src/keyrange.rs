//! Half-open key ranges, the unit of range partitioning.
//!
//! User tables are range-partitioned into granules (paper §4.1, Figure 5):
//! each GTable row records a granule's `[lo, hi)` key range together with
//! its owner node.

use std::fmt;

/// A half-open interval `[lo, hi)` over 64-bit primary keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeyRange {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
}

impl KeyRange {
    /// Construct a range. Panics if `lo > hi` (an empty range `lo == hi`
    /// is permitted and contains nothing).
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "KeyRange requires lo <= hi, got [{lo}, {hi})");
        KeyRange { lo, hi }
    }

    /// Whether `key` falls inside the range.
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        key >= self.lo && key < self.hi
    }

    /// Number of keys covered by the range.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.hi - self.lo
    }

    /// Whether the range covers no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether two ranges share at least one key.
    #[must_use]
    pub fn overlaps(&self, other: &KeyRange) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn covers(&self, other: &KeyRange) -> bool {
        other.lo >= self.lo && other.hi <= self.hi
    }

    /// Split the range into `parts` near-equal contiguous sub-ranges.
    ///
    /// The first `len % parts` sub-ranges are one key larger so the union
    /// of the result is exactly `self` with no gaps or overlaps.
    #[must_use]
    pub fn split(&self, parts: u64) -> Vec<KeyRange> {
        assert!(parts > 0, "cannot split into zero parts");
        let total = self.len();
        let base = total / parts;
        let extra = total % parts;
        let mut out = Vec::with_capacity(parts as usize);
        let mut lo = self.lo;
        for i in 0..parts {
            let width = base + u64::from(i < extra);
            let hi = lo + width;
            out.push(KeyRange { lo, hi });
            lo = hi;
        }
        debug_assert_eq!(lo, self.hi);
        out
    }
}

impl fmt::Debug for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_is_half_open() {
        let r = KeyRange::new(100, 300);
        assert!(r.contains(100));
        assert!(r.contains(299));
        assert!(!r.contains(300));
        assert!(!r.contains(99));
    }

    #[test]
    fn empty_range_contains_nothing() {
        let r = KeyRange::new(5, 5);
        assert!(r.is_empty());
        assert!(!r.contains(5));
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn overlap_and_cover() {
        let a = KeyRange::new(0, 10);
        let b = KeyRange::new(5, 15);
        let c = KeyRange::new(10, 20);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c)); // half-open: [0,10) and [10,20) are disjoint
        assert!(a.covers(&KeyRange::new(2, 8)));
        assert!(!a.covers(&b));
    }

    #[test]
    fn split_is_exact_partition() {
        let r = KeyRange::new(0, 10);
        let parts = r.split(3);
        assert_eq!(
            parts,
            vec![
                KeyRange::new(0, 4),
                KeyRange::new(4, 7),
                KeyRange::new(7, 10),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_range_panics() {
        let _ = KeyRange::new(10, 5);
    }

    proptest! {
        /// Splitting always yields contiguous, gapless, complete coverage.
        #[test]
        fn split_partitions_exactly(lo in 0u64..1_000, width in 0u64..10_000, parts in 1u64..64) {
            let r = KeyRange::new(lo, lo + width);
            let pieces = r.split(parts);
            prop_assert_eq!(pieces.len() as u64, parts);
            let mut cursor = r.lo;
            for p in &pieces {
                prop_assert_eq!(p.lo, cursor);
                cursor = p.hi;
            }
            prop_assert_eq!(cursor, r.hi);
            let total: u64 = pieces.iter().map(KeyRange::len).sum();
            prop_assert_eq!(total, r.len());
        }

        /// Every key in the parent is in exactly one piece.
        #[test]
        fn split_covers_each_key_once(key in 0u64..5_000, parts in 1u64..16) {
            let r = KeyRange::new(0, 5_000);
            let pieces = r.split(parts);
            let hits = pieces.iter().filter(|p| p.contains(key)).count();
            prop_assert_eq!(hits, 1);
        }
    }
}
