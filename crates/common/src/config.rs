//! Cluster and data-layout configuration shared by the engine, the
//! coordination layer, and the evaluation harness.

use crate::ids::{GranuleId, NodeId, TableId};
use crate::keyrange::KeyRange;

/// How a user table is laid out into granules.
///
/// Granules are the paper's unit of ownership and migration (§4.1). The
/// layout is fixed at load time; migrations change *ownership*, never the
/// key ranges themselves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GranuleLayout {
    /// The table being described.
    pub table: TableId,
    /// Full key space of the table.
    pub keyspace: KeyRange,
    /// Number of granules the key space is split into.
    pub granule_count: u64,
    /// Nominal granule size in bytes (64 KB in the paper's implementation;
    /// TPC-C uses ~1 MB warehouses). Only used for accounting.
    pub granule_bytes: u64,
    /// Nominal tuple size in bytes (1 KB for YCSB).
    pub tuple_bytes: u32,
}

impl GranuleLayout {
    /// Uniform layout: split `keyspace` into `granule_count` equal ranges.
    #[must_use]
    pub fn uniform(
        table: TableId,
        keyspace: KeyRange,
        granule_count: u64,
        granule_bytes: u64,
        tuple_bytes: u32,
    ) -> Self {
        assert!(granule_count > 0, "a table needs at least one granule");
        assert!(
            keyspace.len() >= granule_count,
            "keyspace must have at least one key per granule"
        );
        GranuleLayout {
            table,
            keyspace,
            granule_count,
            granule_bytes,
            tuple_bytes,
        }
    }

    /// The granule that holds `key`, or `None` if the key is outside the
    /// table's key space.
    #[must_use]
    pub fn granule_of(&self, key: u64) -> Option<GranuleId> {
        if !self.keyspace.contains(key) {
            return None;
        }
        let offset = u128::from(key - self.keyspace.lo);
        let width = u128::from(self.keyspace.len());
        let count = u128::from(self.granule_count);
        // Exact inverse of `range_of`: granule g covers
        // [floor(width*g/count), floor(width*(g+1)/count)), so the granule
        // of offset o is the largest g with floor(width*g/count) <= o,
        // i.e. g = floor(((o+1)*count - 1) / width).
        let g = (((offset + 1) * count - 1) / width) as u64;
        Some(GranuleId(g.min(self.granule_count - 1)))
    }

    /// Key range covered by granule `g`.
    #[must_use]
    pub fn range_of(&self, g: GranuleId) -> KeyRange {
        assert!(g.0 < self.granule_count, "granule {g} out of bounds");
        let width = u128::from(self.keyspace.len());
        let count = u128::from(self.granule_count);
        let lo = self.keyspace.lo + (width * u128::from(g.0) / count) as u64;
        let hi = self.keyspace.lo + (width * (u128::from(g.0) + 1) / count) as u64;
        KeyRange::new(lo, hi)
    }

    /// Iterate over all granule IDs of the table.
    pub fn granules(&self) -> impl Iterator<Item = GranuleId> {
        (0..self.granule_count).map(GranuleId)
    }

    /// Number of pages per granule given a page size.
    #[must_use]
    pub fn pages_per_granule(&self, page_bytes: u64) -> u32 {
        (self.granule_bytes.div_ceil(page_bytes)).max(1) as u32
    }
}

/// Static description of a cluster at bootstrap.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Nodes present at time zero (scale-out adds more later).
    pub initial_nodes: Vec<NodeId>,
    /// Layouts of all user tables.
    pub tables: Vec<GranuleLayout>,
    /// Buffer-cache capacity per node, in pages.
    pub cache_pages_per_node: usize,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Group-commit batch window in microseconds (paper §5 batches log
    /// records from multiple transactions into one log operation).
    pub group_commit_us: u64,
    /// Heartbeat period of the ring failure detector, microseconds.
    pub heartbeat_period_us: u64,
    /// Missed heartbeats before a successor is suspected dead.
    pub heartbeat_miss_threshold: u32,
    /// Number of ring successors each node monitors (k in §4.4.2).
    pub heartbeat_fanout: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            initial_nodes: (0..4).map(NodeId).collect(),
            tables: vec![GranuleLayout::uniform(
                TableId(0),
                KeyRange::new(0, 1 << 20),
                1024,
                64 * 1024,
                1024,
            )],
            cache_pages_per_node: 64 * 1024,
            page_bytes: 16 * 1024,
            group_commit_us: 1_000,
            heartbeat_period_us: 500_000,
            heartbeat_miss_threshold: 3,
            heartbeat_fanout: 2,
        }
    }
}

impl ClusterConfig {
    /// Initial round-robin assignment of granules to the initial nodes.
    ///
    /// Contiguous blocks (not striped) so each node owns a compact key
    /// range, matching the paper's scale-out examples (Figure 6).
    #[must_use]
    pub fn initial_assignment(&self) -> Vec<(TableId, GranuleId, NodeId)> {
        let mut out = Vec::new();
        let n = self.initial_nodes.len() as u64;
        for layout in &self.tables {
            for g in layout.granules() {
                let idx =
                    (u128::from(g.0) * u128::from(n) / u128::from(layout.granule_count)) as usize;
                out.push((layout.table, g, self.initial_nodes[idx]));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> GranuleLayout {
        GranuleLayout::uniform(TableId(0), KeyRange::new(0, 1000), 10, 64 << 10, 1024)
    }

    #[test]
    fn granule_of_matches_range_of() {
        let l = layout();
        for key in [0u64, 99, 100, 450, 999] {
            let g = l.granule_of(key).unwrap();
            assert!(
                l.range_of(g).contains(key),
                "key {key} not in {:?}",
                l.range_of(g)
            );
        }
        assert_eq!(l.granule_of(1000), None);
    }

    #[test]
    fn ranges_tile_the_keyspace() {
        let l = layout();
        let mut cursor = 0;
        for g in l.granules() {
            let r = l.range_of(g);
            assert_eq!(r.lo, cursor);
            cursor = r.hi;
        }
        assert_eq!(cursor, 1000);
    }

    #[test]
    fn uneven_split_still_tiles() {
        let l = GranuleLayout::uniform(TableId(0), KeyRange::new(5, 108), 7, 64 << 10, 100);
        let mut cursor = 5;
        for g in l.granules() {
            let r = l.range_of(g);
            assert_eq!(r.lo, cursor);
            assert!(!r.is_empty());
            cursor = r.hi;
        }
        assert_eq!(cursor, 108);
        for key in 5..108 {
            let g = l.granule_of(key).unwrap();
            assert!(l.range_of(g).contains(key));
        }
    }

    #[test]
    fn initial_assignment_is_contiguous_and_balanced() {
        let cfg = ClusterConfig {
            initial_nodes: vec![NodeId(0), NodeId(1)],
            tables: vec![layout()],
            ..ClusterConfig::default()
        };
        let assign = cfg.initial_assignment();
        assert_eq!(assign.len(), 10);
        let n0 = assign.iter().filter(|(_, _, n)| *n == NodeId(0)).count();
        let n1 = assign.iter().filter(|(_, _, n)| *n == NodeId(1)).count();
        assert_eq!(n0, 5);
        assert_eq!(n1, 5);
        // Contiguity: node of granule i never decreases.
        let mut last = NodeId(0);
        for (_, _, n) in &assign {
            assert!(*n >= last);
            last = *n;
        }
    }

    #[test]
    fn pages_per_granule_rounds_up() {
        let l = layout();
        assert_eq!(l.pages_per_granule(16 << 10), 4);
        assert_eq!(l.pages_per_granule(60 << 10), 2);
        assert_eq!(l.pages_per_granule(1 << 20), 1);
    }
}
