//! Shared vocabulary types for the Marlin workspace.
//!
//! Everything here is deliberately small and dependency-free: strongly typed
//! identifiers ([`NodeId`], [`GranuleId`], [`Lsn`], ...), key ranges,
//! error types shared across layers, and cluster/workload configuration.

pub mod config;
pub mod error;
pub mod ids;
pub mod keyrange;

pub use config::{ClusterConfig, GranuleLayout};
pub use error::{CoordError, StorageError, TxnError};
pub use ids::{ClientId, GranuleId, LogId, Lsn, NodeId, PageId, RegionId, TableId, TxnId};
pub use keyrange::KeyRange;
